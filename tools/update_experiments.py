"""Refresh the measured tables embedded in EXPERIMENTS.md from the
current `benchmarks/out/` artifacts.

Usage:
    python -m pytest benchmarks/ --benchmark-only   # regenerate artifacts
    python tools/update_experiments.py              # print the fresh tables

The script prints a ready-to-paste markdown section per artifact; the
narrative commentary in EXPERIMENTS.md is maintained by hand.
"""

from __future__ import annotations

import pathlib
import sys

OUT = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "out"

ORDER = (
    "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11_zero_copy", "fig11_no_zero_copy", "table1", "fig12", "fig13",
    "sec5f", "sec5b2",
    "ablation_memory_policy", "ablation_split_ratio",
    "ablation_branch_scheduling", "ablation_adaptive_feedback",
    "ablation_contention",
    "ext_power_modes", "ext_service_warmup", "ext_sensitivity",
    "ext_multitenant", "ext_mobilenet", "ext_precision", "ext_batching",
    "serving_knee", "serving_batching", "serving_multitenant",
)


def main() -> int:
    missing = []
    for artifact in ORDER:
        path = OUT / f"{artifact}.txt"
        if not path.exists():
            missing.append(artifact)
            continue
        print(f"### {artifact}\n")
        print("```")
        print(path.read_text().rstrip())
        print("```\n")
    if missing:
        print(f"(missing artifacts: {', '.join(missing)} — run "
              "`pytest benchmarks/ --benchmark-only` first)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
