"""Extension — cold-start vs warm steady-state service latency.

The paper measures one-shot inference (weights staged per run).  A
deployed service keeps weights resident; this bench quantifies how much of
the zero-copy benefit is a cold-start effect.
"""

import pytest

from repro.core.engine import EdgeNNConfig
from repro.core.service import profile_service
from repro.eval.formatting import render_table

from conftest import run_once

NETWORKS = ("fcnn", "alexnet", "squeezenet")


def test_ext_service_cold_vs_warm(benchmark, record_artifact):
    plain = EdgeNNConfig(use_memory_management=False,
                         use_hybrid_execution=False)

    def compute():
        return {
            net: (profile_service(net, config=plain), profile_service(net))
            for net in NETWORKS
        }

    profiles = run_once(benchmark, compute)
    record_artifact(
        "ext_service_warmup",
        render_table(
            ["network", "original cold_ms", "original warm_ms",
             "edgenn cold_ms", "edgenn warm_ms"],
            [
                (net, base.cold_s * 1e3, base.warm_s * 1e3,
                 edge.cold_s * 1e3, edge.warm_s * 1e3)
                for net, (base, edge) in profiles.items()
            ],
            title="Extension — inference-service cold start vs steady state",
        ),
    )
    for base, edge in profiles.values():
        assert base.warm_s <= base.cold_s + 1e-12
        assert edge.warm_s <= edge.cold_s + 1e-12
        # The original program pays a real cold-start (parameter staging);
        # EdgeNN's zero-copy makes cold ~= warm.
        assert base.cold_overhead_s > edge.cold_overhead_s
        # EdgeNN keeps winning in the warm steady state (hybrid execution
        # persists even when the staging advantage is gone).
        assert edge.warm_s < base.warm_s


def test_ext_zero_copy_benefit_is_mostly_cold_start(benchmark):
    def compute():
        plain = EdgeNNConfig(use_memory_management=False,
                             use_hybrid_execution=False)
        managed = EdgeNNConfig(use_hybrid_execution=False)
        regular = profile_service("fcnn", config=plain)
        zero_copy = profile_service("fcnn", config=managed)
        return regular, zero_copy

    regular, zero_copy = run_once(benchmark, compute)
    cold_gain = regular.cold_s - zero_copy.cold_s
    warm_gain = regular.warm_s - zero_copy.warm_s
    # Zero-copy's win comes overwhelmingly from eliminating the one-shot
    # parameter staging — precisely the regime the paper evaluates.
    assert cold_gain > warm_gain
