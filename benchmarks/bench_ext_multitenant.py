"""Extension — multi-DNN concurrent inference (the DART [88] scenario the
paper's related work discusses).

Two findings this bench documents:

1. Naively co-running two *GPU-tuned* plans saves almost nothing and can
   starve the small tenant behind the big one's non-preemptive kernels —
   exactly why DART exists.
2. Placing the tenants on *complementary* resources (the small network
   runs whole on the otherwise-idle CPU) overlaps them and cuts the
   makespan, with the big tenant essentially undisturbed.
"""

import pytest

from repro.baselines import cpu_only_plan
from repro.core.engine import EdgeNN
from repro.core.multitenant import concurrent_edgenn, run_concurrent
from repro.eval.formatting import render_table
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build

from conftest import run_once


def complementary_corun():
    """LeNet pinned to the CPU co-runs with GPU-tuned AlexNet."""
    lenet = build("lenet")
    lenet_plan = cpu_only_plan(lenet, JETSON_AGX_XAVIER)
    alexnet_engine = EdgeNN("alexnet")
    return run_concurrent(
        JETSON_AGX_XAVIER,
        [(lenet, lenet_plan), (alexnet_engine.graph, alexnet_engine.plan)],
    )


def test_ext_multitenant_corun(benchmark, record_artifact):
    def compute():
        return {
            "both tuned (naive)": concurrent_edgenn(["lenet", "alexnet"]),
            "complementary (lenet->CPU)": complementary_corun(),
        }

    reports = run_once(benchmark, compute)
    rows = []
    for label, report in reports.items():
        small = min(report.tenants, key=lambda t: t.solo_s)
        rows.append((
            label,
            report.sequential_s * 1e3,
            report.makespan_s * 1e3,
            report.makespan_saving_pct,
            small.slowdown,
        ))
    record_artifact(
        "ext_multitenant",
        render_table(
            ["placement", "sequential_ms", "corun_ms", "saving %",
             "small tenant slowdown"],
            rows,
            title="Extension — LeNet + AlexNet co-running on one Jetson",
        ),
    )
    naive = reports["both tuned (naive)"]
    complementary = reports["complementary (lenet->CPU)"]
    # Co-running never exceeds sequential execution.
    for report in reports.values():
        assert report.makespan_s <= report.sequential_s * 1.001
    # Naive sharing starves the small tenant behind non-preemptive kernels;
    # complementary placement rescues it.
    naive_small = min(naive.tenants, key=lambda t: t.solo_s)
    comp_small = min(complementary.tenants, key=lambda t: t.solo_s)
    assert naive_small.slowdown > 10.0
    assert comp_small.slowdown < naive_small.slowdown / 5.0
    # And the big tenant is essentially undisturbed by the CPU tenant.
    comp_big = max(complementary.tenants, key=lambda t: t.solo_s)
    assert comp_big.slowdown < 1.3
