"""Section V-B2 — utilization and power observations during EdgeNN runs.

Paper result: Jetson averages 75% CPU / 62% GPU utilization; measured
draws include 5.5 W (ResNet, 72%/42%) and 7.9 W (SqueezeNet, 100%/100%).
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_sec5b2_utilization_and_power(benchmark, record_artifact):
    result = run_once(benchmark, ex.sec5b2_utilization)
    record_artifact("sec5b2", fmt.format_sec5b2(result))
    assert result.mean_cpu_util >= 50.0
    assert result.mean_gpu_util >= 50.0
    for row in result.rows:
        assert 4.0 <= row.power_w <= 8.0
