"""Serving — the latency/throughput knee.

Open-loop Poisson sweep for AlexNet on the Jetson AGX Xavier.  Below the
service capacity, throughput tracks the offered rate and p99 stays near
the service time.  Past the knee the device saturates: throughput
plateaus while queueing makes p99 explode super-linearly and admission
control starts shedding.  This is the classic serving curve the paper's
one-shot latency numbers cannot show.
"""

from repro.eval.formatting import format_serving_sweep
from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

from conftest import run_once, write_bench_json

NETWORK = "alexnet"
RATES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
DURATION_S = 10.0
SEED = 11


def test_serving_knee(benchmark, record_artifact):
    def compute():
        config = ServingConfig(policy=BatchPolicy(max_batch_size=8))
        return [
            (rate, simulate_poisson(NETWORK, rate, DURATION_S, seed=SEED,
                                    config=config))
            for rate in RATES
        ]

    rows = run_once(benchmark, compute)
    record_artifact("serving_knee", format_serving_sweep(rows))
    write_bench_json("serving_knee", {
        "network": NETWORK,
        "duration_s": DURATION_S,
        "seed": SEED,
        "sweep": [
            {
                "rate_rps": rate,
                "throughput_rps": report.throughput_rps,
                "goodput_rps": report.goodput_rps,
                "p50_ms": report.latency.p50_s * 1e3,
                "p99_ms": report.latency.p99_s * 1e3,
                "served": report.served,
                "shed": report.shed,
                "digest": report.digest(),
            }
            for rate, report in rows
        ],
    })

    reports = {rate: r for rate, r in rows}

    # Below the knee the service keeps up: everything is served and
    # throughput tracks the offered rate.
    light = reports[RATES[0]]
    assert light.shed == 0
    assert light.throughput_rps > 0.9 * RATES[0]

    # Past the knee: p99 grows super-linearly in offered rate (measured
    # from the last sustainable rate, 2 req/s, to 16 req/s: an 8x rate
    # step must blow p99 up by much more than 8x)...
    ref, heavy = reports[2.0], reports[16.0]
    assert ref.shed == 0
    rate_factor = 16.0 / 2.0
    p99_factor = heavy.latency.p99_s / ref.latency.p99_s
    assert p99_factor > 1.5 * rate_factor, (
        f"p99 grew {p99_factor:.1f}x for a {rate_factor:.0f}x rate increase"
    )
    # ...while throughput plateaus at capacity instead of tracking it.
    last, second_last = reports[RATES[-1]], reports[RATES[-2]]
    assert last.throughput_rps < 1.1 * second_last.throughput_rps
    assert last.throughput_rps < 0.5 * RATES[-1]
    # Overload is resolved by shedding, not unbounded queues.
    assert last.shed > 0
    assert last.queue_depth_max <= BatchPolicy().max_queue_depth
