"""Section V-F — comparison with the inter-kernel-only co-running
state of the art (FineStream-style, the paper's ref [96]).

Paper result: inter-kernel-only co-running yields +8.27% on SqueezeNet and
no improvement on the other five networks — only the benchmarks with
independent DAG parts can benefit without intra-kernel splitting.
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_sec5f_interkernel_only(benchmark, record_artifact):
    result = run_once(benchmark, ex.sec5f_interkernel_only)
    record_artifact("sec5f", fmt.format_sec5f(result))
    assert result.row("squeezenet").interkernel_improvement_pct >= 3.0
    for name in ("fcnn", "lenet", "alexnet", "vgg16"):
        assert abs(result.row(name).interkernel_improvement_pct) < 1.0
    for row in result.rows:
        assert row.edgenn_improvement_pct >= row.interkernel_improvement_pct - 0.5
