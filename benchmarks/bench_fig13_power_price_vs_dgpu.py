"""Figure 13 — performance/power and performance/price vs the RTX 2080 Ti.

Paper result: 5.70x higher energy efficiency and 1.25x higher
cost-effectiveness on average.
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig13_efficiency_vs_discrete_gpu(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig13_efficiency_vs_discrete_gpu)
    record_artifact(
        "fig13",
        fmt.format_efficiency(result, "Fig 13",
                              "paper: power 5.70x, price 1.25x"),
    )
    assert result.geomean_power > 3.0
    assert 0.9 <= result.geomean_price <= 2.0
