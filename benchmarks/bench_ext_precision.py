"""Extension — reduced-precision (FP16/INT8) inference on the Jetson.

Quantization is the standard edge deployment lever the paper leaves to
future work.  This bench sweeps the three datatypes across the paper's
networks and records the achieved speedups (never the ideal 2x/4x — launch
overheads and transfer latencies don't shrink with the data).
"""

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.eval.formatting import render_table
from repro.nn.precision import Precision

from conftest import run_once

NETWORKS = ("fcnn", "alexnet", "squeezenet")


def test_ext_precision_sweep(benchmark, record_artifact):
    def compute():
        out = {}
        for net in NETWORKS:
            out[net] = {
                p: EdgeNN(net, config=EdgeNNConfig(precision=p)).run().total_s
                for p in Precision
            }
        return out

    results = run_once(benchmark, compute)
    rows = []
    for net, by_precision in results.items():
        fp32 = by_precision[Precision.FP32]
        rows.append((
            net,
            fp32 * 1e3,
            by_precision[Precision.FP16] * 1e3,
            by_precision[Precision.INT8] * 1e3,
            fp32 / by_precision[Precision.INT8],
        ))
    record_artifact(
        "ext_precision",
        render_table(
            ["network", "fp32_ms", "fp16_ms", "int8_ms", "int8 speedup"],
            rows,
            title="Extension — EdgeNN latency vs inference datatype",
        ),
    )
    for net, by_precision in results.items():
        assert (by_precision[Precision.INT8]
                < by_precision[Precision.FP16]
                < by_precision[Precision.FP32])
        speedup = by_precision[Precision.FP32] / by_precision[Precision.INT8]
        assert 1.3 < speedup < 4.5
