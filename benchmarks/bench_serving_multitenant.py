"""Serving — weighted fair sharing between co-located tenants.

Two identical overloaded LeNet tenants with a 3:1 weight split.  The
fair-share scheduler must translate weights into served-request shares
(and correspondingly better tail latency for the heavier tenant) while
each batch runs exactly as the one-shot engine would.  LeNet's ~ms
service time gives thousands of scheduling decisions per run, so the
long-run shares actually converge; with a 300 ms-per-batch model the
post-horizon queue drain (both tenants emptying equal bounded queues)
would dominate the counts.
"""

from repro.eval.formatting import format_serving
from repro.serving import BatchPolicy, ServingConfig, poisson_tenant, simulate

from conftest import run_once, write_bench_json

DURATION_S = 10.0
RATE_RPS = 5000.0  # each tenant alone already saturates batched lenet
SEED = 17


def test_serving_multitenant(benchmark, record_artifact):
    def compute():
        tenants = [
            poisson_tenant("lenet", RATE_RPS, DURATION_S, seed=SEED,
                           weight=3.0, name="gold"),
            poisson_tenant("lenet", RATE_RPS, DURATION_S, seed=SEED + 1,
                           weight=1.0, name="bronze"),
        ]
        config = ServingConfig(policy=BatchPolicy(max_batch_size=8))
        return simulate(tenants, config=config)

    report = run_once(benchmark, compute)
    record_artifact("serving_multitenant", format_serving(report))

    gold = report.tenant("gold")
    bronze = report.tenant("bronze")
    share = gold.served / bronze.served
    write_bench_json("serving_multitenant", {
        "duration_s": DURATION_S,
        "rate_rps": RATE_RPS,
        "seed": SEED,
        "served_share_gold_over_bronze": share,
        "tenants": {
            name: {
                "weight": weight,
                "offered": stats.offered,
                "served": stats.served,
                "shed_rate": stats.shed_rate,
                "p99_ms": stats.latency.p99_s * 1e3,
            }
            for name, weight, stats in (
                ("gold", 3.0, gold), ("bronze", 1.0, bronze),
            )
        },
    })
    # The 3:1 weight split shows up in served shares (batching makes the
    # ratio approximate: grants are whole batches, not unit requests,
    # and the bronze queue sheds more of its arrivals).
    assert 2.0 < share < 4.5, f"served share {share:.2f} far from 3:1"
    assert gold.latency.p99_s < bronze.latency.p99_s
    assert gold.shed_rate < bronze.shed_rate
    assert report.served + report.shed == report.offered
