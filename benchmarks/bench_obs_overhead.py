"""Observability overhead guard — disabled instrumentation must be free.

Every hot path in the engine, executor, and serving loop is gated on
``obs.enabled`` against shared no-op singletons.  Wall-clock A/B timing
of a simulated run is too noisy for a 2% assertion in CI, so the guard
is analytic: time the no-op operations themselves, count how many of
them one run actually performs (by running once with tracing *on* and
counting what was recorded), and assert the product stays under 2% of
the run's real cost.  A second test pins the structural invariant the
bound relies on: a default-constructed engine really does share the
no-op singletons.
"""

import timeit

from repro.core.engine import EdgeNN
from repro.core.plan_cache import PlanCache
from repro.obs import NOOP_OBS, Observability
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.provenance import NULL_PROVENANCE
from repro.obs.spans import NOOP_TRACER

from conftest import write_bench_json


def _best_of(stmt, repeats=5, number=2000):
    return min(timeit.repeat(stmt, repeat=repeats, number=number)) / number


def test_disabled_observability_overhead_under_2_percent():
    # Real per-run cost, measured on a plan tuned outside the loop and a
    # private cache so process-wide state cannot skew the baseline.
    engine = EdgeNN("alexnet", plan_cache=PlanCache())
    engine.tune()
    run_s = min(timeit.repeat(engine.run, repeat=5, number=3)) / 3

    # The disabled path performs exactly one ``obs.enabled`` boolean
    # check per gated block: one per layer step, one per scheduled copy,
    # plus a handful of run-level gates.  Count the blocks by running
    # once with tracing on — each layer span / memcpy record produced
    # there is one boolean check in the disabled case.
    obs = Observability.on()
    counted = EdgeNN("alexnet", plan_cache=PlanCache(), obs=obs)
    counted.run()
    (execute,) = obs.tracer.find(f"execute:{counted.graph.name}")
    n_layer_gates = len(execute.children)
    n_copy_gates = sum(
        1 for s in obs.tracer.iter_spans() if s.category == "memcpy"
    )
    gated_checks = n_layer_gates + n_copy_gates + 8   # + run-level gates

    per_check_s = max(
        _best_of(lambda: NOOP_OBS.enabled),
        # The few non-gated no-op calls (engine.tune's span on the cold
        # path) are covered by charging every gate at the dearest rate.
        _best_of(lambda: NOOP_TRACER.span("x", a=1).__exit__(None, None, None)),
        _best_of(lambda: NULL_REGISTRY.counter("c").labels(a="b").inc()),
        _best_of(lambda: NULL_PROVENANCE.record_placement(None)),
    )

    worst_case_overhead = gated_checks * per_check_s
    assert worst_case_overhead < 0.02 * run_s, (
        f"disabled observability could add "
        f"{worst_case_overhead / run_s:.2%} to a "
        f"{run_s * 1e3:.2f} ms run ({gated_checks} gated checks at "
        f"{per_check_s * 1e9:.0f} ns each); budget is 2%"
    )
    write_bench_json("obs_overhead", {
        "run_s": run_s,
        "gated_checks": gated_checks,
        "per_check_ns": per_check_s * 1e9,
        "worst_case_overhead_pct": 100.0 * worst_case_overhead / run_s,
        "budget_pct": 2.0,
    })


def test_default_engine_shares_noop_singletons():
    engine = EdgeNN("lenet")
    assert engine.obs is NOOP_OBS
    assert engine.obs.tracer is NOOP_TRACER
    assert engine.obs.metrics is NULL_REGISTRY
    assert engine.obs.provenance is NULL_PROVENANCE
    assert not engine.obs.enabled


def test_disabled_run_records_nothing():
    engine = EdgeNN("lenet", plan_cache=PlanCache())
    engine.run()
    assert NOOP_TRACER.roots == []
    assert NULL_REGISTRY.families() == []
    assert NULL_PROVENANCE.placements() == []


def test_disabled_fault_machinery_overhead_under_2_percent():
    """With no fault scenario the serving loop's entire fault path is a
    handful of ``faults is not None`` identity checks per event — bound
    their worst-case cost analytically, same as the obs guard above."""
    from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

    def serve():
        return simulate_poisson(
            "lenet", 200.0, 1.0, seed=3,
            config=ServingConfig(policy=BatchPolicy(max_batch_size=4)),
        )

    report = serve()  # warm the plan cache so timing is the serve loop
    run_s = min(timeit.repeat(serve, repeat=5, number=1))

    # Gated checks per run: one ``faults is not None`` per heap event
    # (arrival + completion + timer <= 3 per offered request), one on
    # each arrival's payload-validation branch, and one per dispatch in
    # batch_service.  Charge everything at the identity-check rate.
    batch_count = int(report.extra["batch_count"])
    gated_checks = 4 * report.offered + 2 * batch_count
    sentinel = None
    per_check_s = _best_of(lambda: sentinel is not None)

    worst_case_overhead = gated_checks * per_check_s
    assert worst_case_overhead < 0.02 * run_s, (
        f"disabled fault injection could add "
        f"{worst_case_overhead / run_s:.2%} to a "
        f"{run_s * 1e3:.2f} ms serve ({gated_checks} gated checks at "
        f"{per_check_s * 1e9:.0f} ns each); budget is 2%"
    )


def test_disabled_timeline_overhead_under_2_percent():
    """With ``timeline_window_s=0`` the serve loop's whole telemetry
    path is ``tl is not None`` identity checks — bound them analytically
    like the fault guard above."""
    from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

    def serve():
        return simulate_poisson(
            "lenet", 200.0, 1.0, seed=3,
            config=ServingConfig(policy=BatchPolicy(max_batch_size=4)),
        )

    report = serve()  # warm the plan cache so timing is the serve loop
    run_s = min(timeit.repeat(serve, repeat=5, number=1))

    # Gated checks per run: one per arrival (record_offered), one per
    # expiry sweep and completion, one per dispatch (record_batch).
    # Charge 6/offered + 3/batch to stay well past conservative.
    batch_count = int(report.extra["batch_count"])
    gated_checks = 6 * report.offered + 3 * batch_count
    sentinel = None
    per_check_s = _best_of(lambda: sentinel is not None)

    worst_case_overhead = gated_checks * per_check_s
    assert worst_case_overhead < 0.02 * run_s, (
        f"disabled timeline recording could add "
        f"{worst_case_overhead / run_s:.2%} to a "
        f"{run_s * 1e3:.2f} ms serve ({gated_checks} gated checks at "
        f"{per_check_s * 1e9:.0f} ns each); budget is 2%"
    )


def test_enabled_timeline_recording_overhead_under_2_percent():
    """Recording *enabled* must also stay under 2% on the serve loop.

    The recorder is append-only on the hot path: every hook is one
    C-level buffer append, and all windowing is deferred to the
    one-shot vectorized :meth:`finish` pass that runs *after* the event
    loop ends (artifact materialization, like report building).  The
    guard therefore charges the hot path analytically — each hook's
    actual invocation count (``timeline_op_counts``) at its own
    measured per-append rate — and bounds finish() separately below.
    """
    from repro.obs.timeline import TimelineRecorder
    from repro.serving import BatchPolicy, ServingConfig
    from repro.serving.simulator import ServingSimulator, poisson_tenant

    def serve(window_s):
        sim = ServingSimulator(
            None, [poisson_tenant("lenet", 2000.0, 2.0, seed=3)],
            ServingConfig(policy=BatchPolicy(max_batch_size=8),
                          timeline_window_s=window_s),
        )
        return sim, sim.run()

    serve(0.0)  # warm the plan cache so timing is the serve loop
    run_s = min(timeit.repeat(lambda: serve(0.0), repeat=5, number=1))

    sim, report = serve(0.25)
    counts = sim.timeline_op_counts
    assert sim.timeline_ops > 0 and sim.timeline is not None

    # Per-append cost of each hook the serve loop calls, measured on a
    # live recorder with representative arguments (batch latencies of
    # the run's batch size, the real busy tuple shape).
    rec = TimelineRecorder(0.25, source="bench")
    rate_s = {
        "offered": _best_of(lambda: rec.record_offered(0.5)),
        "shed": _best_of(lambda: rec.record_shed(0.5)),
        "rejected": _best_of(lambda: rec.record_rejected(0.5)),
        "failed": _best_of(lambda: rec.record_failed(0.5, 2)),
        "timed_out": _best_of(lambda: rec.record_timed_out(0.5, 2)),
        # A list, not a tuple: the simulators pass freshly built lists,
        # and record_served's tuple() is a copy for lists but free for
        # tuples — measure the rate the call sites actually pay.
        "served": _best_of(
            lambda: rec.record_served(0.5, [0.004] * 8)
        ),
        "batch": _best_of(lambda: rec.record_batch(
            0.5, 0.6, 8, busy=(("cpu", 0.01), ("gpu", 0.02)),
            energy_j=0.1,
        )),
    }
    assert set(counts) <= set(rate_s), counts

    hot_path_overhead = sum(
        counts[name] * rate_s[name] for name in counts
    )
    assert hot_path_overhead < 0.02 * run_s, (
        f"timeline recording could add "
        f"{hot_path_overhead / run_s:.2%} to a "
        f"{run_s * 1e3:.2f} ms serve "
        f"({sim.timeline_ops} recorder calls: {counts}); budget is 2%"
    )

    # finish() runs once per simulation, after the loop.  Bound it
    # relative to the run so an accidental per-event Python loop (an
    # order of magnitude over the vectorized pass) fails loudly.  It
    # reads its buffers without consuming them, so time a probe loaded
    # with the run's real event volume.
    offered = report.offered
    batch_count = int(report.extra["batch_count"])
    probe = TimelineRecorder(0.25, source="bench")
    for i in range(offered):
        probe.record_offered(2.0 * i / max(offered, 1))
    for i in range(batch_count):
        start = 2.0 * i / max(batch_count, 1)
        probe.record_batch(
            start, start + 0.004, 8,
            busy=(("cpu", 0.001), ("gpu", 0.003)), energy_j=0.02,
        )
        probe.record_served(start + 0.004, (0.004,) * 8)
    finish_s = min(timeit.repeat(
        lambda: probe.finish(
            horizon_s=2.0, makespan_s=2.0,
            capacity={"cpu": 1.0, "gpu": 1.0},
        ),
        repeat=3, number=1,
    ))
    assert finish_s < 0.15 * run_s, (
        f"one-shot timeline finish() took {finish_s * 1e3:.2f} ms "
        f"against a {run_s * 1e3:.2f} ms serve — the windowing pass "
        f"must stay vectorized"
    )

    write_bench_json("timeline_overhead", {
        "run_s": run_s,
        "recorder_ops": sim.timeline_ops,
        "op_counts": counts,
        "rate_ns": {k: v * 1e9 for k, v in rate_s.items()},
        "finish_us": finish_s * 1e6,
        "hot_path_overhead_pct": 100.0 * hot_path_overhead / run_s,
        "budget_pct": 2.0,
    })


def test_cluster_timeline_makes_no_per_request_python_calls():
    """The fleet loop feeds arrivals to the recorder as ONE bulk numpy
    call, so enabled recording must make far fewer Python-level hook
    calls than there are requests — the structural property that keeps
    fleet-scale telemetry off the vectorized hot path."""
    from repro.cluster import (
        ClusterConfig,
        ClusterSimulator,
        ClusterTenant,
        DeviceMix,
    )
    from repro.serving.batcher import BatchPolicy
    from repro.workloads.arrivals import PoissonArrivals

    config = ClusterConfig(
        policy=BatchPolicy(max_batch_size=8, max_wait_s=0.0,
                           max_queue_depth=32, deadline_s=0.5),
        seed=11, timeline_window_s=1.0,
    )
    sim = ClusterSimulator(
        [ClusterTenant("squeezenet", PoissonArrivals(400.0, 5.0, seed=11))],
        DeviceMix.parse("jetson-agx-xavier:4"), 2, config,
    )
    report = sim.run()
    assert report.offered > 1000
    assert sim.timeline is not None
    assert sum(sim.timeline.series["offered"]) == report.offered
    # The whole arrival stream goes in as ONE bulk call; everything
    # else is per-batch / per-completion.  A regression back to
    # per-arrival record_offered() shows up immediately in both.
    assert sim.timeline_op_counts["offered"] == 1
    batch_calls = sim.timeline_op_counts["batch"]
    assert sim.timeline_ops <= 1 + 3 * batch_calls + report.shed + (
        report.timed_out + report.failed
    ), (
        f"{sim.timeline_ops} recorder calls for {report.offered} "
        f"requests ({sim.timeline_op_counts}) — telemetry is back on "
        f"the per-request path"
    )


def test_no_scenario_leaves_no_fault_state():
    from repro.serving import BatchPolicy, ServingConfig
    from repro.serving.simulator import ServingSimulator, poisson_tenant

    sim = ServingSimulator(
        None, [poisson_tenant("lenet", 50.0, 0.5)],
        ServingConfig(policy=BatchPolicy()),
    )
    report = sim.run()
    assert sim.injector is None
    assert sim.breaker is None
    assert sim.degradation is None
    assert "fault_events" not in report.extra
