"""Observability overhead guard — disabled instrumentation must be free.

Every hot path in the engine, executor, and serving loop is gated on
``obs.enabled`` against shared no-op singletons.  Wall-clock A/B timing
of a simulated run is too noisy for a 2% assertion in CI, so the guard
is analytic: time the no-op operations themselves, count how many of
them one run actually performs (by running once with tracing *on* and
counting what was recorded), and assert the product stays under 2% of
the run's real cost.  A second test pins the structural invariant the
bound relies on: a default-constructed engine really does share the
no-op singletons.
"""

import timeit

from repro.core.engine import EdgeNN
from repro.core.plan_cache import PlanCache
from repro.obs import NOOP_OBS, Observability
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.provenance import NULL_PROVENANCE
from repro.obs.spans import NOOP_TRACER


def _best_of(stmt, repeats=5, number=2000):
    return min(timeit.repeat(stmt, repeat=repeats, number=number)) / number


def test_disabled_observability_overhead_under_2_percent():
    # Real per-run cost, measured on a plan tuned outside the loop and a
    # private cache so process-wide state cannot skew the baseline.
    engine = EdgeNN("alexnet", plan_cache=PlanCache())
    engine.tune()
    run_s = min(timeit.repeat(engine.run, repeat=5, number=3)) / 3

    # The disabled path performs exactly one ``obs.enabled`` boolean
    # check per gated block: one per layer step, one per scheduled copy,
    # plus a handful of run-level gates.  Count the blocks by running
    # once with tracing on — each layer span / memcpy record produced
    # there is one boolean check in the disabled case.
    obs = Observability.on()
    counted = EdgeNN("alexnet", plan_cache=PlanCache(), obs=obs)
    counted.run()
    (execute,) = obs.tracer.find(f"execute:{counted.graph.name}")
    n_layer_gates = len(execute.children)
    n_copy_gates = sum(
        1 for s in obs.tracer.iter_spans() if s.category == "memcpy"
    )
    gated_checks = n_layer_gates + n_copy_gates + 8   # + run-level gates

    per_check_s = max(
        _best_of(lambda: NOOP_OBS.enabled),
        # The few non-gated no-op calls (engine.tune's span on the cold
        # path) are covered by charging every gate at the dearest rate.
        _best_of(lambda: NOOP_TRACER.span("x", a=1).__exit__(None, None, None)),
        _best_of(lambda: NULL_REGISTRY.counter("c").labels(a="b").inc()),
        _best_of(lambda: NULL_PROVENANCE.record_placement(None)),
    )

    worst_case_overhead = gated_checks * per_check_s
    assert worst_case_overhead < 0.02 * run_s, (
        f"disabled observability could add "
        f"{worst_case_overhead / run_s:.2%} to a "
        f"{run_s * 1e3:.2f} ms run ({gated_checks} gated checks at "
        f"{per_check_s * 1e9:.0f} ns each); budget is 2%"
    )


def test_default_engine_shares_noop_singletons():
    engine = EdgeNN("lenet")
    assert engine.obs is NOOP_OBS
    assert engine.obs.tracer is NOOP_TRACER
    assert engine.obs.metrics is NULL_REGISTRY
    assert engine.obs.provenance is NULL_PROVENANCE
    assert not engine.obs.enabled


def test_disabled_run_records_nothing():
    engine = EdgeNN("lenet", plan_cache=PlanCache())
    engine.run()
    assert NOOP_TRACER.roots == []
    assert NULL_REGISTRY.families() == []
    assert NULL_PROVENANCE.placements() == []


def test_disabled_fault_machinery_overhead_under_2_percent():
    """With no fault scenario the serving loop's entire fault path is a
    handful of ``faults is not None`` identity checks per event — bound
    their worst-case cost analytically, same as the obs guard above."""
    from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

    def serve():
        return simulate_poisson(
            "lenet", 200.0, 1.0, seed=3,
            config=ServingConfig(policy=BatchPolicy(max_batch_size=4)),
        )

    report = serve()  # warm the plan cache so timing is the serve loop
    run_s = min(timeit.repeat(serve, repeat=5, number=1))

    # Gated checks per run: one ``faults is not None`` per heap event
    # (arrival + completion + timer <= 3 per offered request), one on
    # each arrival's payload-validation branch, and one per dispatch in
    # batch_service.  Charge everything at the identity-check rate.
    batch_count = int(report.extra["batch_count"])
    gated_checks = 4 * report.offered + 2 * batch_count
    sentinel = None
    per_check_s = _best_of(lambda: sentinel is not None)

    worst_case_overhead = gated_checks * per_check_s
    assert worst_case_overhead < 0.02 * run_s, (
        f"disabled fault injection could add "
        f"{worst_case_overhead / run_s:.2%} to a "
        f"{run_s * 1e3:.2f} ms serve ({gated_checks} gated checks at "
        f"{per_check_s * 1e9:.0f} ns each); budget is 2%"
    )


def test_no_scenario_leaves_no_fault_state():
    from repro.serving import BatchPolicy, ServingConfig
    from repro.serving.simulator import ServingSimulator, poisson_tenant

    sim = ServingSimulator(
        None, [poisson_tenant("lenet", 50.0, 0.5)],
        ServingConfig(policy=BatchPolicy()),
    )
    report = sim.run()
    assert sim.injector is None
    assert sim.breaker is None
    assert sim.degradation is None
    assert "fault_events" not in report.extra
