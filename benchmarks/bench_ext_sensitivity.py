"""Extension — sensitivity of the headline conclusions to the fitted
hardware parameters (DESIGN.md calibration uncertainty).
"""

import pytest

from repro.eval.formatting import render_table
from repro.eval.sensitivity import sweep

from conftest import run_once

PARAMETERS = ("dram_bandwidth", "copy_rate", "corun_efficiency")
SCALES = (0.5, 1.0, 2.0)


def test_ext_sensitivity_sweep(benchmark, record_artifact):
    def compute():
        return {p: sweep("alexnet", p, SCALES) for p in PARAMETERS}

    sweeps = run_once(benchmark, compute)
    rows = []
    for parameter, points in sweeps.items():
        for pt in points:
            rows.append((
                parameter, pt.scale,
                pt.edgenn_improvement_pct, pt.cpu_speedup,
                "yes" if pt.conclusions_hold else "NO",
            ))
    record_artifact(
        "ext_sensitivity",
        render_table(
            ["parameter", "scale", "edgenn improv %", "vs cpu",
             "conclusions hold"],
            rows,
            title="Extension — AlexNet conclusions under perturbed hardware "
                  "assumptions",
        ),
    )
    assert all(pt.conclusions_hold for pts in sweeps.values() for pt in pts)
