"""Figure 6 — EdgeNN speedups over the three edge CPUs.

Paper result: average speedups of 3.97x (Jetson CPU), 3.12x (Dimensity
8100), 8.80x (Raspberry Pi 4).
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig06_edge_cpu_speedups(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig06_edge_cpu_speedups)
    record_artifact("fig06", fmt.format_fig06(result))
    # Regression guards on the reproduced shape.
    assert 2.5 <= result.mean_jetson_cpu <= 5.5
    assert 2.0 <= result.mean_mobile_cpu <= 4.5
    assert 6.0 <= result.mean_raspberry_pi <= 12.0
