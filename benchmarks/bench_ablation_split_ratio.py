"""Ablation 2 (DESIGN.md §4) — sensitivity of the intra-kernel split to
the CPU fraction, against the Eq. 4 optimum.

Sweeps p over AlexNet's fc6 and checks that the measured minimum sits
near the tuner's chosen fraction — and that fixed 50/50 splitting (the
obvious naive choice) is not optimal.
"""

import pytest

from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import ExecutionPlan, gpu_layer, split_layer
from repro.eval.formatting import render_table
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build

from conftest import run_once

SWEEP = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def fc6_time(p: float) -> float:
    net = build("alexnet")
    device = Device(JETSON_AGX_XAVIER)
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    if p > 0:
        plan.set_layer(split_layer("fc6", p))
    plan_allocations(net, plan, JETSON_AGX_XAVIER, MemoryPolicy.SEMANTIC)
    report = HybridExecutor(net, device, plan).run()
    return report.layer("fc6").attributed_s


def test_ablation_split_ratio_sweep(benchmark, record_artifact):
    def compute():
        return {p: fc6_time(p) for p in SWEEP}

    times = run_once(benchmark, compute)
    best_p = min(times, key=times.get)
    rows = [(p, t * 1e3, "<-- best" if p == best_p else "")
            for p, t in times.items()]
    record_artifact(
        "ablation_split_ratio",
        render_table(["p_cpu", "fc6_ms", ""], rows,
                     title="Ablation — AlexNet fc6 time vs CPU fraction"),
    )
    # The sweep has an interior optimum: splitting beats GPU-only...
    assert times[best_p] < times[0.0]
    # ...the best fraction is meaningful (CPU GEMV beats GPU GEMV slightly,
    # so the optimum sits past the midpoint)...
    assert 0.3 <= best_p <= 0.8
    # ...and extreme CPU shares are worse than the optimum.
    assert times[0.9] > times[best_p]
