"""Figure 9 — memory-copy time share of the original programs.

Paper result: averages 11.46% on the integrated device vs 23.34% on the
discrete platform, "even reaching 36%".
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig09_memcpy_share(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig09_memcpy_share)
    record_artifact("fig09", fmt.format_fig09(result))
    assert 7.0 <= result.mean_integrated <= 16.0
    assert 15.0 <= result.mean_discrete <= 30.0
    assert result.mean_discrete > result.mean_integrated
    assert result.max_discrete >= 30.0
