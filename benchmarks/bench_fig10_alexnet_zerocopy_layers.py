"""Figure 10 — AlexNet per-layer kernel time with and without zero-copy.

Paper result: pooling kernels get *slower* under zero-copy (coherent-path
access penalty); compute-bound convolutions barely change.
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig10_alexnet_zero_copy_layers(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig10_alexnet_zero_copy_layers)
    record_artifact(
        "fig10",
        fmt.format_layer_times(
            result, "Fig 10 — AlexNet layer kernel times, zero-copy off vs on"
        ),
    )
    pools = result.rows_of_class("pool")
    assert pools
    for row in pools:
        assert row.with_ms > row.without_ms       # pools slow down
    for row in result.rows_of_class("conv"):
        assert abs(row.improvement_pct) < 8.0     # convs barely move
