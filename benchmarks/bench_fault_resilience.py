"""Fault resilience — goodput with the resilience layer on vs off.

Replays each built-in fault scenario twice through the serving
simulator on the real engine (squeezenet on Jetson AGX Xavier) at a
sane operating point (~4 req/s against a ~6 req/s device, 2 s
deadline): once with the resilience layer enabled (deadlines, retries
+ breaker, zero-copy demotion, drift-triggered re-tuning, payload
validation) and once naive.  The resilient service must win on goodput
in at least three scenarios, and the whole fault timeline must be
deterministic: the same seed twice produces identical digests.

Runs two ways:

* under pytest (the bench suite): writes the ``fault_resilience``
  artifact for EXPERIMENTS.md;
* as a script (CI fault smoke): ``python benchmarks/\
bench_fault_resilience.py --quick`` prints the table and exits
  non-zero if the goodput wins or the determinism gate fail.
"""

import argparse
import sys

from repro.core.plan_cache import clear_plan_cache
from repro.faults import SCENARIO_CATALOG, load_scenario
from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

NETWORK = "squeezenet"
RATE_RPS = 4.0
DURATION_S = 10.0
SEED = 7
#: bad-payloads only differentiates when batches actually form (a
#: poisoned batch loses its batchmates), so it gets a batching-friendly
#: wait budget; the rest dispatch promptly.
WAIT_S = {"bad-payloads": 0.5}
SCENARIOS = (
    "thermal-soak", "flaky-kernels", "memory-pressure",
    "bad-payloads", "edge-storm",
)
QUICK_SCENARIOS = ("flaky-kernels", "memory-pressure", "edge-storm")
MIN_WINS = 3


def _policy(scenario_name):
    return BatchPolicy(
        max_batch_size=4,
        max_wait_s=WAIT_S.get(scenario_name, 0.05),
        max_queue_depth=64,
        deadline_s=2.0,
    )


def _serve(scenario_name, *, resilience, seed=SEED):
    return simulate_poisson(
        NETWORK, RATE_RPS, DURATION_S, seed=seed,
        config=ServingConfig(
            policy=_policy(scenario_name),
            seed=seed,
            faults=load_scenario(scenario_name),
            resilience=resilience,
        ),
    )


def run_matrix(scenarios):
    """goodput (resilient, naive) per scenario; plan cache shared so
    each (network, batch, variant) tunes once across the matrix."""
    results = {}
    for name in scenarios:
        resilient = _serve(name, resilience=True)
        naive = _serve(name, resilience=False)
        results[name] = (resilient, naive)
    return results


def render_rows(results):
    lines = [
        f"{'scenario':<16} {'goodput on':>11} {'goodput off':>12} "
        f"{'win':>4}  {'on: served/timeout/fail':>24}"
    ]
    wins = 0
    for name, (resilient, naive) in results.items():
        win = resilient.goodput_rps > naive.goodput_rps
        wins += win
        lines.append(
            f"{name:<16} {resilient.goodput_rps:>11.2f} "
            f"{naive.goodput_rps:>12.2f} {'yes' if win else 'no':>4}  "
            f"{resilient.served:>8}/{resilient.timed_out}/"
            f"{resilient.failed}"
        )
    return "\n".join(lines), wins


def bench_payload(results, determinism_digest):
    """The machine-readable BENCH_fault_resilience.json body."""
    return {
        "network": NETWORK,
        "rate_rps": RATE_RPS,
        "duration_s": DURATION_S,
        "seed": SEED,
        "determinism_digest": determinism_digest,
        "scenarios": {
            name: {
                "goodput_resilient_rps": resilient.goodput_rps,
                "goodput_naive_rps": naive.goodput_rps,
                "win": resilient.goodput_rps > naive.goodput_rps,
                "served": resilient.served,
                "timed_out": resilient.timed_out,
                "failed": resilient.failed,
            }
            for name, (resilient, naive) in results.items()
        },
    }


def check_determinism(scenario_name="edge-storm"):
    """Same seed + scenario twice must reproduce identical digests."""
    clear_plan_cache()
    first = _serve(scenario_name, resilience=True, seed=SEED)
    clear_plan_cache()
    second = _serve(scenario_name, resilience=True, seed=SEED)
    assert first.digest() == second.digest(), (
        f"report digest drifted across replays: "
        f"{first.digest()} != {second.digest()}"
    )
    return first.digest()


# -- pytest entry points --------------------------------------------------------


def test_fault_resilience(benchmark, record_artifact):
    from conftest import run_once, write_bench_json

    clear_plan_cache()
    results = run_once(benchmark, lambda: run_matrix(SCENARIOS))
    table, wins = render_rows(results)
    record_artifact(
        "fault_resilience",
        f"Fault resilience — goodput, resilience on vs off "
        f"({NETWORK} @ {RATE_RPS:g} req/s, 2 s deadline)\n{table}",
    )
    write_bench_json(
        "fault_resilience", bench_payload(results, check_determinism())
    )
    assert wins >= MIN_WINS, (
        f"resilience must win goodput in >= {MIN_WINS} scenarios, "
        f"won {wins}:\n{table}"
    )


def test_fault_timeline_is_deterministic():
    digest = check_determinism()
    assert len(digest) == 64


# -- CI smoke script ------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke subset: three scenarios + the determinism gate",
    )
    args = parser.parse_args(argv)
    scenarios = QUICK_SCENARIOS if args.quick else SCENARIOS
    min_wins = len(QUICK_SCENARIOS) if args.quick else MIN_WINS

    clear_plan_cache()
    results = run_matrix(scenarios)
    table, wins = render_rows(results)
    print(table)
    if wins < min_wins:
        print(
            f"FAIL: resilience won goodput in {wins}/{len(scenarios)} "
            f"scenarios, need >= {min_wins}",
            file=sys.stderr,
        )
        return 1
    digest = check_determinism()
    print(f"determinism gate OK: report digest {digest[:16]}…")
    assert set(scenarios) <= set(SCENARIO_CATALOG)
    from conftest import write_bench_json

    path = write_bench_json(
        "fault_resilience", bench_payload(results, digest)
    )
    print(f"[written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
