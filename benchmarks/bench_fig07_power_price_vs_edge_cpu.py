"""Figure 7 — performance/power and performance/price vs the Raspberry Pi.

Paper result: power-efficiency geomean 29.14x (but see EXPERIMENTS.md —
that figure is inconsistent with the paper's own Fig 6 + power readings);
cost-effectiveness geomean 0.61 / arithmetic mean 0.94 (the Pi wins).
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig07_efficiency_vs_edge_cpu(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig07_efficiency_vs_edge_cpu)
    record_artifact(
        "fig07",
        fmt.format_efficiency(result, "Fig 7",
                              "paper: power geomean 29.14x, price geomean 0.61"),
    )
    assert result.geomean_power > 2.0       # far more power-efficient
    assert result.geomean_price < 1.0       # the Pi is more cost-effective
