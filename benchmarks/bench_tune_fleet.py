"""Tune-fleet cold start — fault-tolerant AOT compilation at catalog scale.

Cold-starts the full plan catalog (every benchmark network x every
catalog device x batch sizes 1/2/4/8 — 200+ plans) across a
multiprocess fleet with the ``flaky-fleet`` scenario injected: every
(job, attempt) has a 20% chance its worker dies mid-write and a 10%
chance it writes a corrupt artifact.  The run must still land every
plan exactly once, with zero poisoned jobs, and two same-seed runs
must produce byte-identical store manifests.

Runs two ways:

* under pytest (the bench suite): times the cold start and writes the
  ``tune_fleet`` artifact + ``BENCH_tune_fleet.json``;
* as a script (the CI ``fleet`` job): ``python benchmarks/\
bench_tune_fleet.py`` runs the full gate; ``--quick`` shrinks the
  catalog for a fast smoke.
"""

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

from repro.faults import load_scenario
from repro.faults.resilience import RetryPolicy
from repro.store.plan_store import PlanStore
from repro.tuning import fleet_catalog, run_fleet

SEED = 0
WORKERS = 4
SCENARIO = "flaky-fleet"
MAX_ATTEMPTS = 6
#: the cold-start floor the CI gate enforces
MIN_PLANS = 200
#: flaky-fleet must actually hurt: injected failure share of attempts
MIN_FAILURE_SHARE = 0.20

QUICK_CATALOG = dict(
    networks=["lenet", "squeezenet"],
    devices=["jetson-agx-xavier", "raspberry-pi-4"],
    batch_sizes=(1, 2),
)


def _jobs(quick=False):
    return fleet_catalog(**QUICK_CATALOG) if quick else fleet_catalog()


def _run(store_root, jobs):
    return run_fleet(
        store_root,
        jobs,
        workers=WORKERS,
        seed=SEED,
        scenario=load_scenario(SCENARIO),
        retry_policy=RetryPolicy(
            max_attempts=MAX_ATTEMPTS,
            base_delay_s=0.01,
            max_delay_s=0.25,
            seed=SEED,
        ),
    )


def run_gate(root, jobs, *, min_failure_share=MIN_FAILURE_SHARE):
    """Cold start + determinism double-run + warm no-op; returns
    (cold report, rerun report, warm report, failures).

    ``min_failure_share`` only makes statistical sense at full catalog
    scale; the ``--quick`` smoke passes 0 (a tiny catalog may draw few
    faults at p=0.2).
    """
    cold = _run(Path(root) / "a", jobs)
    rerun = _run(Path(root) / "b", jobs)
    warm = _run(Path(root) / "a", jobs)

    failures = []
    if cold.completed != len(jobs) or cold.poisoned:
        failures.append(
            f"cold start incomplete: {cold.completed}/{len(jobs)} done, "
            f"{cold.poisoned} poisoned"
        )
    failed_attempts = cold.attempts - cold.completed
    share = failed_attempts / cold.attempts if cold.attempts else 0.0
    if share < min_failure_share:
        failures.append(
            f"fault injection too tame: {share:.0%} of attempts failed, "
            f"gate wants >= {min_failure_share:.0%}"
        )
    manifest_a = (Path(root) / "a" / "manifest.json").read_bytes()
    manifest_b = (Path(root) / "b" / "manifest.json").read_bytes()
    if manifest_a != manifest_b:
        failures.append("same-seed manifests are not byte-identical")
    if warm.attempts != 0:
        failures.append(
            f"warm re-run compiled {warm.attempts} plans; store misses"
        )
    store = PlanStore(Path(root) / "a")
    objects = len(list(store.objects_dir.glob("*.json")))
    if objects != len(jobs):
        failures.append(
            f"{objects} objects for {len(jobs)} plans: duplicates or loss"
        )
    return cold, rerun, warm, failures


def render(cold, jobs):
    failed_attempts = cold.attempts - cold.completed
    share = failed_attempts / cold.attempts if cold.attempts else 0.0
    return "\n".join([
        f"{'plans':<22} {cold.completed}/{len(jobs)}",
        f"{'workers':<22} {cold.workers}",
        f"{'cold-start wall':<22} {cold.wall_s:.2f} s",
        f"{'attempts':<22} {cold.attempts} "
        f"({failed_attempts} failed, {share:.0%})",
        f"{'worker crashes':<22} {cold.worker_crashes}",
        f"{'corrupt ingests':<22} {cold.corrupt_ingests} "
        f"({cold.quarantined} quarantined)",
        f"{'lease expirations':<22} {cold.lease_expirations}",
        f"{'poisoned':<22} {cold.poisoned}",
        f"{'manifest digest':<22} {cold.manifest_digest}",
    ])


def bench_payload(cold, warm, jobs):
    """The machine-readable BENCH_tune_fleet.json body."""
    failed_attempts = cold.attempts - cold.completed
    return {
        "seed": SEED,
        "workers": WORKERS,
        "scenario": SCENARIO,
        "max_attempts": MAX_ATTEMPTS,
        "planned": len(jobs),
        "completed": cold.completed,
        "poisoned": cold.poisoned,
        "attempts": cold.attempts,
        "failed_attempts": failed_attempts,
        "failed_attempt_share": (
            failed_attempts / cold.attempts if cold.attempts else 0.0
        ),
        "worker_crashes": cold.worker_crashes,
        "corrupt_ingests": cold.corrupt_ingests,
        "quarantined": cold.quarantined,
        "lease_expirations": cold.lease_expirations,
        "cold_start_wall_s": cold.wall_s,
        "warm_rerun_attempts": warm.attempts,
        "manifest_digest": cold.manifest_digest,
    }


# -- pytest entry points --------------------------------------------------------


def test_tune_fleet(benchmark, record_artifact, tmp_path):
    from conftest import run_once, write_bench_json

    jobs = _jobs()
    assert len(jobs) >= MIN_PLANS
    cold, rerun, warm, failures = run_once(
        benchmark, lambda: run_gate(tmp_path, jobs)
    )
    assert failures == [], failures
    record_artifact(
        "tune_fleet",
        "Tune-fleet cold start — full catalog under flaky-fleet "
        f"(crash p={0.20}, corrupt p={0.10}, seed {SEED})\n\n"
        + render(cold, jobs),
    )
    write_bench_json("tune_fleet", bench_payload(cold, warm, jobs))


# -- CI gate script --------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small catalog smoke instead of the full 200+ plan gate",
    )
    parser.add_argument(
        "--keep", default=None, metavar="DIR",
        help="run in DIR and keep the stores (default: temp dir)",
    )
    args = parser.parse_args(argv)

    jobs = _jobs(quick=args.quick)
    if not args.quick and len(jobs) < MIN_PLANS:
        print(
            f"FAIL: catalog shrank to {len(jobs)} plans, "
            f"gate wants >= {MIN_PLANS}",
            file=sys.stderr,
        )
        return 1

    root = args.keep or tempfile.mkdtemp(prefix="tune-fleet-bench-")
    try:
        cold, rerun, warm, failures = run_gate(
            root, jobs,
            min_failure_share=0.0 if args.quick else MIN_FAILURE_SHARE,
        )
        print(render(cold, jobs))
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"determinism gate OK: manifest {cold.manifest_digest[:16]}… "
            f"reproduced; warm re-run 0 attempts"
        )
        from conftest import write_bench_json

        path = write_bench_json(
            "tune_fleet", bench_payload(cold, warm, jobs)
        )
        print(f"[written to {path}]")
        return 0
    finally:
        if not args.keep:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
