"""Figure 11 — AlexNet per-layer times with hybrid execution.

Paper result: the fully connected layers improve by ~31.71% without and
~53.80% with zero-copy; the convolutional layers do not improve.
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt
from repro.eval.metrics import arithmetic_mean

from conftest import run_once


def test_fig11_with_zero_copy(benchmark, record_artifact):
    result = run_once(
        benchmark, lambda: ex.fig11_alexnet_hybrid_layers(zero_copy=True)
    )
    record_artifact(
        "fig11_zero_copy",
        fmt.format_layer_times(
            result, "Fig 11 — AlexNet layers with hybrid execution (zero-copy)"
        ),
    )
    fc = [r.improvement_pct for r in result.rows_of_class("dense")]
    assert 40.0 <= arithmetic_mean(fc) <= 70.0
    for row in result.rows_of_class("conv"):
        assert row.improvement_pct <= 3.0


def test_fig11_without_zero_copy(benchmark, record_artifact):
    result = run_once(
        benchmark, lambda: ex.fig11_alexnet_hybrid_layers(zero_copy=False)
    )
    record_artifact(
        "fig11_no_zero_copy",
        fmt.format_layer_times(
            result,
            "Fig 11 — AlexNet layers with hybrid execution (no zero-copy)",
        ),
    )
    with_zc = ex.fig11_alexnet_hybrid_layers(zero_copy=True)
    fc_without = arithmetic_mean(
        [r.improvement_pct for r in result.rows_of_class("dense")]
    )
    fc_with = arithmetic_mean(
        [r.improvement_pct for r in with_zc.rows_of_class("dense")]
    )
    assert fc_with > fc_without   # zero-copy amplifies the fc gains
