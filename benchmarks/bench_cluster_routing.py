"""Cluster routing — three router policies on a mixed diurnal fleet.

Runs the same heterogeneous fleet (Jetson AGX Xavier, Dimensity 8100,
Raspberry Pi 4, RTX 2080 Ti host, 15% thermally throttled) under the
same multi-model diurnal workload three times — once per router policy
— and compares fleet goodput and tail latency.  Device-blind
``round_robin`` feeds a Raspberry Pi the same share as a desktop GPU,
so its slow-device queues blow through the deadline; ``plan_cost``
routes on the compiled plans' predicted completion and must win on
*both* fleet goodput and p99 latency.  A rolling ``thermal-soak``
scenario is active on a quarter of the fleet throughout, so the win is
demonstrated under faults, not in a clean room.

Three scales share one harness:

* ``quick`` — CI smoke: 24 replicas, ~16k requests, seconds of wall
  time;
* ``bench`` — the pytest default: 72 replicas, ~100k requests;
* ``full``  — the committed artifact: 510 replicas, >1e6 requests,
  exercising the acceptance envelope (>=500 replicas, >=1M virtual
  requests in one process).

Runs two ways:

* under pytest (the bench suite): writes the ``cluster_routing``
  artifact and ``BENCH_cluster.json``;
* as a script (CI cluster smoke): ``python benchmarks/\
bench_cluster_routing.py --quick`` prints the table, rewrites the
  JSON artifact, and exits non-zero if the plan_cost wins or the
  determinism gate fail.
"""

import argparse
import sys

from repro.cluster import ClusterConfig, ClusterTenant, DeviceMix, simulate_cluster
from repro.faults import load_scenario, scale_to_horizon
from repro.serving import BatchPolicy
from repro.workloads import DiurnalPoissonArrivals

SEED = 7
ROUTERS = ("round_robin", "least_queue", "plan_cost")
DEVICES = "jetson-agx-xavier:3,dimensity-8100:2,raspberry-pi-4:1,rtx-2080ti-host:1"
THROTTLED_SHARE = 0.15
FAULT_SCENARIO = "thermal-soak"
FAULT_SHARE = 0.25
DEADLINE_S = 5.0

#: Per-scale fleet size, horizon, and per-model mean arrival rates.
#: Rates keep the same per-replica intensity at every scale (2 / 62.5 /
#: 50 req/s per replica), chosen against the mix's measured capacity:
#: squeezenet leaves the plan_cost router headroom to absorb the
#: thermally faulted replicas, while the fcnn share saturates a
#: round-robin'd Raspberry Pi (~52 req/s capacity vs a 62.5 req/s
#: share) — its bounded queue then serves a dense sub-deadline tail
#: that device-aware routing avoids.  lenet supplies request volume.
SCALES = {
    "quick": {
        "replicas_per_pool": 8,
        "duration_s": 20.0,
        "rates": {"squeezenet": 16.0, "fcnn": 500.0, "lenet": 400.0},
    },
    "bench": {
        "replicas_per_pool": 24,
        "duration_s": 40.0,
        "rates": {"squeezenet": 48.0, "fcnn": 1500.0, "lenet": 1200.0},
    },
    "full": {
        "replicas_per_pool": 170,
        "duration_s": 60.0,
        "rates": {"squeezenet": 340.0, "fcnn": 10625.0, "lenet": 8500.0},
    },
}


def _tenants(scale):
    """One diurnal tenant per model, phase-staggered so the pools do not
    peak simultaneously (a mixed workload, not three copies of one)."""
    spec = SCALES[scale]
    duration = spec["duration_s"]
    tenants = []
    for index, (network, rate) in enumerate(sorted(spec["rates"].items())):
        tenants.append(
            ClusterTenant(
                network,
                DiurnalPoissonArrivals(
                    rate,
                    duration,
                    period_s=duration,
                    amplitude=0.5,
                    phase=index * 2.0,
                    seed=SEED + index,
                ),
            )
        )
    return tenants


def _config(router, scale, *, seed=SEED):
    duration = SCALES[scale]["duration_s"]
    return ClusterConfig(
        router=router,
        policy=BatchPolicy(
            max_batch_size=8,
            max_wait_s=0.0,
            max_queue_depth=64,
            deadline_s=DEADLINE_S,
        ),
        seed=seed,
        faults=scale_to_horizon(load_scenario(FAULT_SCENARIO), duration),
        fault_share=FAULT_SHARE,
        fault_stagger_s=duration * 0.25,
    )


def run_comparison(scale):
    """Same fleet + workload under each router; report per policy."""
    mix = DeviceMix.parse(DEVICES, throttled_share=THROTTLED_SHARE)
    tenants = _tenants(scale)
    replicas = SCALES[scale]["replicas_per_pool"]
    return {
        router: simulate_cluster(
            tenants, mix, replicas, _config(router, scale)
        )
        for router in ROUTERS
    }


def render_rows(results):
    lines = [
        f"{'router':<12} {'goodput r/s':>12} {'p50 ms':>9} {'p95 ms':>9} "
        f"{'p99 ms':>9} {'shed':>8} {'timeout':>8} {'energy J':>10}"
    ]
    for name, report in results.items():
        lines.append(
            f"{name:<12} {report.goodput_rps:>12.1f} "
            f"{report.latency.p50_s * 1e3:>9.2f} "
            f"{report.latency.p95_s * 1e3:>9.2f} "
            f"{report.latency.p99_s * 1e3:>9.2f} "
            f"{report.shed:>8} {report.timed_out:>8} "
            f"{report.energy_j:>10.1f}"
        )
    return "\n".join(lines)


def check_wins(results):
    """plan_cost must beat round_robin on goodput AND p99; errors list."""
    plan = results["plan_cost"]
    rr = results["round_robin"]
    errors = []
    if plan.goodput_rps <= rr.goodput_rps:
        errors.append(
            f"plan_cost goodput {plan.goodput_rps:.1f} <= "
            f"round_robin {rr.goodput_rps:.1f}"
        )
    if plan.latency.p99_s >= rr.latency.p99_s:
        errors.append(
            f"plan_cost p99 {plan.latency.p99_s * 1e3:.1f} ms >= "
            f"round_robin {rr.latency.p99_s * 1e3:.1f} ms"
        )
    return errors


def check_determinism(scale="quick"):
    """Same seed + config twice must reproduce identical digests."""
    mix = DeviceMix.parse(DEVICES, throttled_share=THROTTLED_SHARE)
    replicas = SCALES[scale]["replicas_per_pool"]
    first = simulate_cluster(
        _tenants(scale), mix, replicas, _config("plan_cost", scale)
    )
    second = simulate_cluster(
        _tenants(scale), mix, replicas, _config("plan_cost", scale)
    )
    assert first.digest() == second.digest(), (
        f"cluster report digest drifted across replays: "
        f"{first.digest()} != {second.digest()}"
    )
    return first.digest()


def bench_payload(scale, results, determinism_digest):
    """The machine-readable BENCH_cluster.json body."""
    spec = SCALES[scale]
    sample = next(iter(results.values()))
    return {
        "scale": scale,
        "seed": SEED,
        "devices": DEVICES,
        "throttled_share": THROTTLED_SHARE,
        "fault_scenario": FAULT_SCENARIO,
        "fault_share": FAULT_SHARE,
        "deadline_s": DEADLINE_S,
        "duration_s": spec["duration_s"],
        "rates_rps": spec["rates"],
        "replicas": sample.replicas_start,
        "offered": sample.offered,
        "determinism_digest": determinism_digest,
        "routers": {
            name: {
                "goodput_rps": report.goodput_rps,
                "throughput_rps": report.throughput_rps,
                "p50_ms": report.latency.p50_s * 1e3,
                "p95_ms": report.latency.p95_s * 1e3,
                "p99_ms": report.latency.p99_s * 1e3,
                "served": report.served,
                "shed": report.shed,
                "timed_out": report.timed_out,
                "failed": report.failed,
                "energy_j": report.energy_j,
                "energy_per_request_j": report.energy_per_request_j,
                "digest": report.digest(),
            }
            for name, report in results.items()
        },
        "plan_cost_vs_round_robin": {
            "goodput_x": (
                results["plan_cost"].goodput_rps
                / results["round_robin"].goodput_rps
            ),
            "p99_x": (
                results["round_robin"].latency.p99_s
                / results["plan_cost"].latency.p99_s
            ),
        },
    }


def _title(scale, results):
    sample = next(iter(results.values()))
    return (
        f"Cluster routing — router policies on a mixed diurnal fleet "
        f"({scale}: {sample.replicas_start} replicas, "
        f"{sample.offered} requests, {FAULT_SCENARIO} on "
        f"{FAULT_SHARE:.0%} of replicas, {DEADLINE_S:g} s deadline)"
    )


# -- pytest entry points --------------------------------------------------------


def test_cluster_routing(benchmark, record_artifact):
    from conftest import run_once, write_bench_json

    results = run_once(benchmark, lambda: run_comparison("bench"))
    table = render_rows(results)
    record_artifact("cluster_routing", f"{_title('bench', results)}\n{table}")
    errors = check_wins(results)
    assert not errors, f"{'; '.join(errors)}\n{table}"
    digest = check_determinism()
    write_bench_json("cluster", bench_payload("bench", results, digest))


def test_cluster_run_is_deterministic():
    digest = check_determinism()
    assert len(digest) == 64


# -- CI smoke / artifact script -------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small fleet, faults on, determinism gate",
    )
    group.add_argument(
        "--full", action="store_true",
        help="acceptance envelope: >=500 replicas, >=1M requests",
    )
    args = parser.parse_args(argv)
    scale = "quick" if args.quick else ("full" if args.full else "bench")

    results = run_comparison(scale)
    table = render_rows(results)
    print(_title(scale, results))
    print(table)
    errors = check_wins(results)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    digest = check_determinism()
    print(f"determinism gate OK: report digest {digest[:16]}…")
    from conftest import OUT_DIR, write_bench_json

    OUT_DIR.mkdir(exist_ok=True)
    txt = OUT_DIR / "cluster_routing.txt"
    txt.write_text(f"{_title(scale, results)}\n{table}\n")
    path = write_bench_json(
        "cluster", bench_payload(scale, results, digest)
    )
    print(f"[written to {txt} and {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
