"""Extension — EdgeNN on MobileNetV1 (the architecture family real edge
deployments ship; not part of the paper's suite).

Depthwise-separable blocks have extremely low arithmetic intensity, so
MobileNet sits in a different regime than the paper's networks: every
depthwise kernel is memory-bound, and a much larger share of the model is
CPU-competitive.
"""

import pytest

from repro.baselines import run_cpu_only, run_gpu_only
from repro.core.engine import EdgeNN
from repro.eval.formatting import render_table
from repro.eval.breakdown import roofline_breakdown
from repro.hardware.specs import JETSON_AGX_XAVIER

from conftest import run_once


def test_ext_mobilenet_v1(benchmark, record_artifact):
    def compute():
        edgenn = EdgeNN("mobilenet-v1").run()
        gpu = run_gpu_only("mobilenet-v1", JETSON_AGX_XAVIER)
        cpu = run_cpu_only("mobilenet-v1", JETSON_AGX_XAVIER)
        return edgenn, gpu, cpu

    edgenn, gpu, cpu = run_once(benchmark, compute)
    improvement = (gpu.total_s - edgenn.total_s) / gpu.total_s * 100
    rows = [
        ("gpu-only (original)", gpu.total_s * 1e3, gpu.energy.average_power_w),
        ("cpu-only (jetson)", cpu.total_s * 1e3, cpu.energy.average_power_w),
        ("edgenn", edgenn.total_s * 1e3, edgenn.energy.average_power_w),
    ]
    record_artifact(
        "ext_mobilenet",
        render_table(
            ["method", "latency_ms", "power_W"], rows,
            title=f"Extension — MobileNetV1 on Jetson "
                  f"(EdgeNN improvement {improvement:.2f}%)",
        ),
    )
    assert edgenn.total_s <= gpu.total_s * 1.001
    assert edgenn.total_s < cpu.total_s
    # Regime check: depthwise kernels have an order of magnitude lower
    # arithmetic intensity than the standard convolutions, so the CPU is
    # far more competitive on them (smaller t_cpu/t_gpu ratios).
    rows = roofline_breakdown("mobilenet-v1")
    dw = [r for r in rows if r.layer.endswith("/dw")]
    pw = [r for r in rows if r.layer.endswith("/pw")]
    assert dw and pw
    mean_ai_dw = sum(r.arithmetic_intensity for r in dw) / len(dw)
    mean_ai_pw = sum(r.arithmetic_intensity for r in pw) / len(pw)
    assert mean_ai_dw < mean_ai_pw / 5.0
    mean_ratio_dw = sum(r.cpu_gpu_ratio for r in dw) / len(dw)
    mean_ratio_pw = sum(r.cpu_gpu_ratio for r in pw) / len(pw)
    assert mean_ratio_dw < mean_ratio_pw
