"""Ablation 1 (DESIGN.md §4) — semantic-aware allocation vs the two
single-mechanism policies.

The paper's §IV-B claim: neither all-zero-copy nor all-regular wins
everywhere; choosing per buffer by data-processing semantics dominates
both once layers are split across processors.
"""

import pytest

from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import ExecutionPlan, gpu_layer, split_layer
from repro.eval.formatting import render_table
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build

from conftest import run_once


def run_policy(policy: MemoryPolicy) -> float:
    """AlexNet with the tuned-style split fc layers under one policy."""
    net = build("alexnet")
    device = Device(JETSON_AGX_XAVIER)
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    for fc in ("fc6", "fc7", "fc8"):
        plan.set_layer(split_layer(fc, 0.5))
    plan_allocations(net, plan, JETSON_AGX_XAVIER, policy)
    executor = HybridExecutor(
        net, device, plan,
        host_staging=policy is MemoryPolicy.ALL_REGULAR,
    )
    return executor.run().total_s


def test_ablation_memory_policy(benchmark, record_artifact):
    def compute():
        return {policy: run_policy(policy) for policy in MemoryPolicy}

    results = run_once(benchmark, compute)
    rows = [
        (policy.value, seconds * 1e3,
         (results[MemoryPolicy.ALL_REGULAR] - seconds)
         / results[MemoryPolicy.ALL_REGULAR] * 100.0)
        for policy, seconds in results.items()
    ]
    record_artifact(
        "ablation_memory_policy",
        render_table(
            ["policy", "alexnet_ms", "improvement %"], rows,
            title="Ablation — allocation policy under hybrid execution "
                  "(split fc layers)",
        ),
    )
    semantic = results[MemoryPolicy.SEMANTIC]
    assert semantic < results[MemoryPolicy.ALL_REGULAR]
    assert semantic < results[MemoryPolicy.ALL_MANAGED]
