"""Extension — batched inference economics.

The paper evaluates batch-1 latency (the AIoT setting).  This bench sweeps
the batch size and shows the two regimes the cost model predicts:

* weight-bound fc networks batch almost for free (the GEMV's weight
  traffic amortizes across the batch);
* work-bound conv networks scale nearly linearly (no free lunch).
"""

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.eval.formatting import render_table

from conftest import run_once

NETWORKS = ("fcnn", "lenet", "squeezenet")
BATCHES = (1, 4, 16)


def test_ext_batching(benchmark, record_artifact):
    def compute():
        out = {}
        for net in NETWORKS:
            out[net] = {
                b: EdgeNN(net, config=EdgeNNConfig(batch_size=b)).run().total_s
                for b in BATCHES
            }
        return out

    results = run_once(benchmark, compute)
    rows = []
    for net, by_batch in results.items():
        t1 = by_batch[1]
        rows.append((
            net,
            t1 * 1e3,
            by_batch[4] * 1e3 / 4,
            by_batch[16] * 1e3 / 16,
            t1 / (by_batch[16] / 16),
        ))
    record_artifact(
        "ext_batching",
        render_table(
            ["network", "b=1 ms/sample", "b=4 ms/sample", "b=16 ms/sample",
             "throughput gain @16"],
            rows,
            title="Extension — per-sample latency vs batch size",
        ),
    )
    for net, by_batch in results.items():
        # Per-sample cost never rises with batching...
        assert by_batch[16] / 16 <= by_batch[1] * 1.001
    # ...and the fc network amortizes far better than the conv network.
    fcnn_gain = results["fcnn"][1] / (results["fcnn"][16] / 16)
    squeeze_gain = results["squeezenet"][1] / (results["squeezenet"][16] / 16)
    assert fcnn_gain > 2 * squeeze_gain
