"""Shared benchmark plumbing.

Every bench regenerates one of the paper's tables/figures: it times the
experiment computation once (memoized sub-results cleared first so the
timing is the real cost) and writes the rendered rows to
``benchmarks/out/<artifact>.txt`` — the files EXPERIMENTS.md is built from.

Benches that feed dashboards additionally write a machine-readable
``BENCH_<name>.json`` next to the .txt via :func:`write_bench_json` —
schema-versioned so downstream tooling can detect shape changes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.eval import experiments

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Schema identity stamped into every BENCH_*.json artifact.
BENCH_SCHEMA = "repro.bench"
BENCH_SCHEMA_VERSION = 1


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Write ``benchmarks/out/BENCH_<name>.json`` with the schema header.

    ``payload`` carries the bench-specific results; the wrapper adds
    ``schema``/``version``/``bench`` so every artifact self-identifies.
    Keys are sorted for diff-stable output.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    doc = {
        "schema": BENCH_SCHEMA,
        "version": BENCH_SCHEMA_VERSION,
        "bench": name,
        **payload,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session", autouse=True)
def _fresh_cache():
    """One shared memoization cache for the whole benchmark session —
    the first bench that needs a report pays for it, later ones reuse it
    (mirroring how the experiments compose)."""
    experiments.clear_cache()
    yield


@pytest.fixture
def record_artifact():
    """Write one regenerated artifact to benchmarks/out/ and echo it."""

    def _record(artifact_id: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{artifact_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are deterministic; repeated
    rounds would only re-read the memoization cache)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
