"""Extension — Jetson nvpmodel power modes (paper §V-A mentions the 10W /
15W / 30W options; the evaluation uses full power).

Regenerates a latency/power/energy trade-off table across the three modes
and checks the physical orderings.
"""

import pytest

from repro.core.engine import EdgeNN
from repro.eval.formatting import render_table
from repro.hardware.variants import jetson_power_mode

from conftest import run_once

MODES = ("10W", "15W", "30W")


def run_mode(mode: str):
    report = EdgeNN("squeezenet", jetson_power_mode(mode)).run()
    return report.total_s, report.energy.average_power_w, report.energy.energy_j


def test_ext_jetson_power_modes(benchmark, record_artifact):
    def compute():
        return {mode: run_mode(mode) for mode in MODES}

    results = run_once(benchmark, compute)
    record_artifact(
        "ext_power_modes",
        render_table(
            ["mode", "squeezenet_ms", "power_W", "energy_J"],
            [(m, t * 1e3, p, e) for m, (t, p, e) in results.items()],
            title="Extension — EdgeNN across Jetson power modes",
        ),
    )
    latencies = [results[m][0] for m in MODES]
    powers = [results[m][1] for m in MODES]
    assert latencies == sorted(latencies, reverse=True)  # 10W slowest
    assert powers == sorted(powers)                      # 10W frugalest
    # Every capped mode respects its budget.
    assert results["10W"][1] <= 10.0
    assert results["15W"][1] <= 15.0
