"""Serving — disk-persisted plans make warm starts tuning-free.

A serving process tunes a plan per (network, batch size) it dispatches;
with ``PlanCache(save_dir=...)`` every tuned plan is written as a
versioned ``PlanArtifact``. This bench runs the same overloaded serving
workload twice against one plan directory:

* **cold** — empty directory: every distinct batch size is tuned (with
  its profiling passes and feedback rounds) and persisted;
* **warm** — a fresh cache (a restarted process) over the now-populated
  directory: every plan is replayed from its artifact.

The headline assertion is the paper-level point of plan artifacts: the
warm run executes **zero** tuner feedback rounds — all tuning cost is
ahead-of-time — while serving identical plans (same per-request latency).
"""

import time

import pytest

from repro.core.plan_cache import (
    clear_plan_cache,
    configure_default_plan_cache,
)
from repro.eval.formatting import render_table
from repro.obs import Observability
from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

from conftest import run_once

NETWORK = "lenet"
RATE_RPS = 8000.0          # well past batched capacity: backlog at max batch
DURATION_S = 5.0
SEED = 13


def _rounds(obs: Observability) -> float:
    if "repro_tuner_feedback_rounds_total" not in obs.metrics:
        return 0.0
    fam = obs.metrics.family("repro_tuner_feedback_rounds_total")
    return sum(inst.value for _, inst in fam.children())


def _serve(plan_dir) -> dict:
    cache = configure_default_plan_cache(save_dir=plan_dir)
    obs = Observability.on()
    start = time.perf_counter()
    report = simulate_poisson(
        NETWORK, RATE_RPS, DURATION_S, seed=SEED,
        config=ServingConfig(policy=BatchPolicy(max_batch_size=8)),
        obs=obs,
    )
    return {
        "wall_s": time.perf_counter() - start,
        "tuner_rounds": _rounds(obs),
        "misses": cache.misses,
        "disk_hits": cache.disk_hits,
        "p50_ms": report.latency.p50_s * 1e3,
        "throughput_rps": report.throughput_rps,
        "artifacts": len(list(plan_dir.glob("*.json"))),
    }


@pytest.fixture
def plan_dir(tmp_path):
    yield tmp_path / "plans"
    # Don't leak the disk-backed cache into other benchmarks.
    configure_default_plan_cache()
    clear_plan_cache()


def test_plan_cache_persistence(benchmark, record_artifact, plan_dir):
    def compute():
        return {"cold": _serve(plan_dir), "warm": _serve(plan_dir)}

    results = run_once(benchmark, compute)
    cold, warm = results["cold"], results["warm"]
    rows = [
        (phase, r["wall_s"], int(r["tuner_rounds"]), r["misses"],
         r["disk_hits"], r["p50_ms"])
        for phase, r in (("cold", cold), ("warm", warm))
    ]
    record_artifact(
        "plan_cache_persistence",
        render_table(
            ["phase", "wall s", "tuner rounds", "tunes", "disk hits",
             "p50 ms"],
            rows,
            title=(
                "Plan persistence — warm start replays artifacts, "
                f"0 tuner rounds ({NETWORK}, batch<=8)"
            ),
        ),
    )

    # Cold run tuned every distinct batch size and wrote an artifact each.
    assert cold["misses"] > 0
    assert cold["tuner_rounds"] > 0
    assert cold["artifacts"] == cold["misses"]
    # Warm start: every plan came from disk, not one tuner round ran,
    # and the served plans are the same ones (identical latency).
    assert warm["misses"] == 0
    assert warm["tuner_rounds"] == 0
    assert warm["disk_hits"] == cold["misses"]
    assert warm["p50_ms"] == cold["p50_ms"]
    # Wall time is reported, not asserted: for lenet the request-loop
    # simulation dominates, so the tuning saving is within run noise.
    # The tuner-round counter is the noise-free form of the claim.
