"""Ablation 5 (DESIGN.md §4) — DRAM-contention modelling sensitivity.

Sweeps the co-run DRAM efficiency of the unified memory controller and
shows why an additive (no-contention) model mispredicts co-running: the
same split plan gets slower as the controller degrades.
"""

from dataclasses import replace

import pytest

from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import ExecutionPlan, gpu_layer, split_layer
from repro.eval.formatting import render_table
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build

from conftest import run_once

EFFICIENCIES = (1.0, 0.88, 0.7, 0.5)


def alexnet_with_corun_efficiency(efficiency: float) -> float:
    spec = replace(JETSON_AGX_XAVIER, corun_dram_efficiency=efficiency)
    net = build("alexnet")
    device = Device(spec)
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    for fc in ("fc6", "fc7"):
        plan.set_layer(split_layer(fc, 0.5))
    plan_allocations(net, plan, spec, MemoryPolicy.SEMANTIC)
    return HybridExecutor(net, device, plan).run().total_s


def test_ablation_corun_dram_efficiency(benchmark, record_artifact):
    def compute():
        return {eff: alexnet_with_corun_efficiency(eff) for eff in EFFICIENCIES}

    times = run_once(benchmark, compute)
    record_artifact(
        "ablation_contention",
        render_table(
            ["corun DRAM efficiency", "alexnet_ms"],
            [(eff, t * 1e3) for eff, t in times.items()],
            title="Ablation — shared-memory-controller degradation under "
                  "co-running",
        ),
    )
    ordered = [times[eff] for eff in EFFICIENCIES]
    assert ordered == sorted(ordered)  # worse controller, slower co-run
