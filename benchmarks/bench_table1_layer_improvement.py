"""Table I — per-class improvement of hybrid execution with zero-copy.

Paper result: LeNet conv 4.95/36.25/20.60 (min/max/avg %), fc
31.56/41.24/36.40; AlexNet conv all 0, fc 48.43/58.32/53.81; VGG conv
0/19.15/4.12, fc 16.07/43.09/31.43.
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_table1_layer_improvements(benchmark, record_artifact):
    result = run_once(benchmark, ex.table1_layer_improvements)
    record_artifact("table1", fmt.format_table1(result))
    # The table's signature shapes:
    assert result.cell("alexnet", "conv").max_pct <= 3.0      # conv = 0
    assert 40.0 <= result.cell("alexnet", "dense").avg_pct <= 70.0
    assert result.cell("lenet", "conv").max_pct >= 10.0       # small convs win
    assert result.cell("vgg16", "conv").avg_pct <= 8.0
    assert result.cell("lenet", "dense").avg_pct >= 25.0
