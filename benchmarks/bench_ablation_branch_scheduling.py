"""Ablation 3 (DESIGN.md §4) — enumerated branch assignment vs always-GPU
for the non-chain DAG parts of SqueezeNet.
"""

import pytest

from repro.baselines import run_gpu_only
from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.eval.formatting import render_table
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build

from conftest import run_once


def interkernel_time(allow_cpu: bool) -> float:
    net = build("squeezenet")
    device = Device(JETSON_AGX_XAVIER)
    config = TunerConfig(
        use_intra_kernel=False,
        use_inter_kernel=allow_cpu,
        memory_policy=MemoryPolicy.SEMANTIC,
    )
    result = AdaptiveTuner(net, device, config).tune()
    return HybridExecutor(net, device, result.plan).run().total_s


def test_ablation_branch_scheduling(benchmark, record_artifact):
    def compute():
        return {
            "all-gpu": interkernel_time(allow_cpu=False),
            "enumerated": interkernel_time(allow_cpu=True),
        }

    results = run_once(benchmark, compute)
    improvement = (
        (results["all-gpu"] - results["enumerated"]) / results["all-gpu"] * 100
    )
    record_artifact(
        "ablation_branch_scheduling",
        render_table(
            ["strategy", "squeezenet_ms"],
            [(k, v * 1e3) for k, v in results.items()],
            title=f"Ablation — fire-module branch assignment "
                  f"(improvement {improvement:.2f}%)",
        ),
    )
    # Assigning the light expand-1x1 chains to the CPU overlaps them with
    # the heavy expand-3x3 chains (paper §V-F: ~8%).
    assert 2.0 <= improvement <= 15.0
