"""Serving — what dynamic batching buys at peak load.

Overload each network and compare sustained throughput with dynamic
batching (max 8, re-tuned plan per batch size) against per-request
dispatch.  Weight-bound networks amortize their weight traffic across
the batch, so batching lifts the plateau; the gain mirrors the
per-sample economics in ext_batching, now measured end-to-end through
queueing and admission control.
"""

from repro.eval.formatting import render_table
from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

from conftest import run_once, write_bench_json

NETWORKS = ("fcnn", "lenet", "alexnet")
DURATION_S = 10.0
SEED = 13
# Rates well past each network's *batched* capacity so the batcher
# always has backlog (lenet sustains ~5k req/s batched, alexnet ~4).
OVERLOAD_RATES = {"fcnn": 2000.0, "lenet": 8000.0, "alexnet": 40.0}


def _overloaded(network, policy):
    rate = OVERLOAD_RATES[network]
    return simulate_poisson(
        network, rate, DURATION_S, seed=SEED,
        config=ServingConfig(policy=policy),
    )


def test_serving_batching(benchmark, record_artifact):
    def compute():
        out = {}
        for net in NETWORKS:
            out[net] = {
                "batched": _overloaded(net, BatchPolicy(max_batch_size=8)),
                "single": _overloaded(net, BatchPolicy(max_batch_size=1)),
            }
        return out

    results = run_once(benchmark, compute)
    rows = []
    for net, pair in results.items():
        batched, single = pair["batched"], pair["single"]
        rows.append((
            net,
            single.throughput_rps,
            batched.throughput_rps,
            batched.throughput_rps / single.throughput_rps,
            batched.mean_batch_size,
            batched.latency.p99_s * 1e3,
        ))
    record_artifact(
        "serving_batching",
        render_table(
            ["network", "thr b=1 req/s", "thr batched req/s", "gain",
             "mean batch", "batched p99 ms"],
            rows,
            title="Serving — peak throughput, dynamic batching vs batch=1",
        ),
    )
    write_bench_json("serving_batching", {
        "duration_s": DURATION_S,
        "seed": SEED,
        "networks": {
            net: {
                "rate_rps": OVERLOAD_RATES[net],
                "throughput_single_rps": pair["single"].throughput_rps,
                "throughput_batched_rps": pair["batched"].throughput_rps,
                "gain": (pair["batched"].throughput_rps
                         / pair["single"].throughput_rps),
                "mean_batch_size": pair["batched"].mean_batch_size,
                "batched_p99_ms": pair["batched"].latency.p99_s * 1e3,
            }
            for net, pair in results.items()
        },
    })

    # Dynamic batching strictly improves peak throughput everywhere, and
    # the weight-bound fc network gains the most.
    for net, pair in results.items():
        assert pair["batched"].throughput_rps > pair["single"].throughput_rps
        assert pair["batched"].mean_batch_size > 1.0
    gains = {net: pair["batched"].throughput_rps
             / pair["single"].throughput_rps
             for net, pair in results.items()}
    assert gains["fcnn"] > gains["alexnet"]
