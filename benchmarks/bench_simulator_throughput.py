"""Simulator throughput — how fast the library itself runs.

Not a paper artifact: these are the true pytest-benchmark timings of one
simulated inference (executor pass) and one full tuning cycle, the costs a
downstream user of this library pays.
"""

import pytest

from repro.baselines import run_gpu_only
from repro.core.engine import EdgeNN
from repro.core.executor import HybridExecutor
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build


@pytest.mark.parametrize("network", ["lenet", "alexnet", "squeezenet",
                                     "resnet18"])
def test_simulated_inference_speed(benchmark, network):
    engine = EdgeNN(network)
    engine.tune()  # plan once; the benchmark times pure execution

    result = benchmark(engine.run)
    assert result.total_s > 0


@pytest.mark.parametrize("network", ["lenet", "squeezenet"])
def test_tuning_cycle_speed(benchmark, network):
    def tune_fresh():
        return EdgeNN(network).tune()

    result = benchmark(tune_fresh)
    assert result.final_report.total_s > 0


def test_baseline_simulation_speed(benchmark):
    net = build("vgg16")
    device = Device(JETSON_AGX_XAVIER)

    def run():
        return run_gpu_only(net, device)

    result = benchmark(run)
    assert result.total_s > 0
