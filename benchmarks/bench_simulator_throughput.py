"""Simulator throughput — how fast the library itself runs.

Not a paper artifact: these are the true pytest-benchmark timings of one
simulated inference (executor pass) and one full tuning cycle, the costs a
downstream user of this library pays — plus the serving event-engine
speed bench that writes ``BENCH_serving_speed.json`` for the CI speed
gate.
"""

import time

import pytest

from conftest import write_bench_json
from repro.baselines import run_gpu_only
from repro.core.engine import EdgeNN
from repro.core.executor import HybridExecutor
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingConfig, ServingSimulator, poisson_tenant

#: Pre-refactor per-request event-loop throughput (simulated requests
#: per wall-clock second), measured at commit 7be03cb with the exact
#: workload below (best of 3 after one warm-up run).  "20k" is the
#: event-bound regime (one completion per full batch dominates); "200k"
#: is the saturated regime where bulk admission pays off.
LEGACY_REQ_PER_S = {"20k": 193_192.0, "200k": 240_625.0}

#: CI regression reference for the saturated point: ten times the legacy
#: throughput — the refactor's acceptance floor.  The speed job fails
#: when the measured rate drops more than 20% below this, i.e. when the
#: engine stops clearing ~8x legacy even on slower runners.
REFERENCE_REQ_PER_S = 2_400_000.0
REFERENCE_MIN_FRACTION = 0.8


def _serving_rate(rate_rps: float) -> float:
    """Best-of-3 simulated-requests/sec for the bench workload."""

    def run():
        sim = ServingSimulator(
            None,
            [poisson_tenant("lenet", rate_rps, 5.0, seed=3)],
            ServingConfig(
                policy=BatchPolicy(max_batch_size=32, max_queue_depth=256)
            ),
        )
        t0 = time.perf_counter()
        report = sim.run()
        return report.offered / (time.perf_counter() - t0)

    run()  # warm-up: plan tuning and allocator pools
    return max(run() for _ in range(3))


def test_serving_engine_speed():
    """Vectorized event engine vs the committed legacy baseline.

    Writes ``BENCH_serving_speed.json`` (before/after req/s and the CI
    gate parameters) and enforces the regression gate locally too.
    """
    after = {key: _serving_rate(rate) for key, rate in
             (("20k", 20_000.0), ("200k", 200_000.0))}
    speedup = {k: after[k] / LEGACY_REQ_PER_S[k] for k in after}
    write_bench_json("serving_speed", {
        "workload": {
            "network": "lenet",
            "arrivals": "PoissonArrivals(rate, 5.0, seed=3)",
            "policy": "BatchPolicy(max_batch_size=32, max_queue_depth=256)",
            "protocol": "best of 3 runs of report.offered/dt after warm-up",
        },
        "before_req_per_s": LEGACY_REQ_PER_S,
        "before_provenance": "per-request loop at 7be03cb, same machine class",
        "after_req_per_s": after,
        "speedup": speedup,
        "gate": {
            "point": "200k",
            "reference_req_per_s": REFERENCE_REQ_PER_S,
            "min_fraction": REFERENCE_MIN_FRACTION,
        },
    })
    assert after["200k"] >= REFERENCE_MIN_FRACTION * REFERENCE_REQ_PER_S, (
        f"serving engine regressed: {after['200k']:.0f} req/s at the "
        f"saturated point, gate is {REFERENCE_MIN_FRACTION:.0%} of "
        f"{REFERENCE_REQ_PER_S:.0f}"
    )


@pytest.mark.parametrize("network", ["lenet", "alexnet", "squeezenet",
                                     "resnet18"])
def test_simulated_inference_speed(benchmark, network):
    engine = EdgeNN(network)
    engine.tune()  # plan once; the benchmark times pure execution

    result = benchmark(engine.run)
    assert result.total_s > 0


@pytest.mark.parametrize("network", ["lenet", "squeezenet"])
def test_tuning_cycle_speed(benchmark, network):
    def tune_fresh():
        return EdgeNN(network).tune()

    result = benchmark(tune_fresh)
    assert result.final_report.total_s > 0


def test_baseline_simulation_speed(benchmark):
    net = build("vgg16")
    device = Device(JETSON_AGX_XAVIER)

    def run():
        return run_gpu_only(net, device)

    result = benchmark(run)
    assert result.total_s > 0
