"""Ablation 4 (DESIGN.md §4) — analytic seed plan vs adaptive feedback.

Eq. 1-4 ignore co-run interference and fixed split overheads; the
feedback rounds are what demote the analytically-attractive-but-measured-
useless conv splits (the paper's justification for being adaptive).
"""

import pytest

from repro.core.executor import HybridExecutor
from repro.core.plan import Assignment
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.eval.formatting import render_table
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build

from conftest import run_once


def seed_vs_tuned(network: str):
    net = build(network)
    device = Device(JETSON_AGX_XAVIER)
    tuner = AdaptiveTuner(net, device, TunerConfig())
    result = tuner.tune()
    seed_plan = tuner.build_initial_plan()
    seed_time = HybridExecutor(net, device, seed_plan).run().total_s
    tuned_time = HybridExecutor(net, device, result.plan).run().total_s
    seed_splits = len(seed_plan.split_layers)
    tuned_splits = len(result.plan.split_layers)
    return seed_time, tuned_time, seed_splits, tuned_splits


def test_ablation_adaptive_feedback(benchmark, record_artifact):
    def compute():
        return {net: seed_vs_tuned(net) for net in ("alexnet", "lenet")}

    results = run_once(benchmark, compute)
    rows = [
        (net, seed * 1e3, tuned * 1e3, s_splits, t_splits)
        for net, (seed, tuned, s_splits, t_splits) in results.items()
    ]
    record_artifact(
        "ablation_adaptive_feedback",
        render_table(
            ["network", "analytic_seed_ms", "tuned_ms",
             "seed splits", "tuned splits"],
            rows,
            title="Ablation — one-shot Eq.1-4 plan vs adaptive feedback",
        ),
    )
    for net, (seed, tuned, seed_splits, tuned_splits) in results.items():
        # Feedback never hurts, and it prunes the over-eager analytic splits.
        assert tuned <= seed * 1.001
        assert tuned_splits <= seed_splits


def test_feedback_demotes_conv_splits(benchmark):
    def compute():
        net = build("alexnet")
        device = Device(JETSON_AGX_XAVIER)
        tuner = AdaptiveTuner(net, device, TunerConfig())
        result = tuner.tune()
        seed = tuner.build_initial_plan()
        conv_names = set(net.layers_of_class("conv"))
        seed_conv_splits = conv_names & set(seed.split_layers)
        tuned_conv_splits = conv_names & set(result.plan.split_layers)
        return seed_conv_splits, tuned_conv_splits

    seed_conv_splits, tuned_conv_splits = run_once(benchmark, compute)
    # Eq. 4 wants to split large convs (t_cpu/t_gpu ~ 4 predicts ~20%
    # gain); measurement under co-run interference says otherwise, and the
    # feedback loop must end with none of them split (Table I: conv = 0).
    assert seed_conv_splits, "analytic seed should propose conv splits"
    assert not tuned_conv_splits
