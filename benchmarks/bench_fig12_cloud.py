"""Figure 12 — EdgeNN vs cloud offload (400 KB input, ~1 MB/s uplink,
~100 ms cloud latency, RTX 2080 Ti server).

Paper result: EdgeNN wins on average (20.28%); compute-heavy VGG is the
one benchmark where the cloud's discrete GPU wins.
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig12_cloud_comparison(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig12_cloud_comparison)
    record_artifact("fig12", fmt.format_fig12(result))
    vgg = next(r for r in result.rows if r.network == "vgg16")
    assert not vgg.edgenn_wins
    for row in result.rows:
        if row.network != "vgg16":
            assert row.edgenn_wins
    assert result.mean_improvement > 0
