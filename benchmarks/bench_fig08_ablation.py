"""Figure 8 — ablation: zero-copy alone, hybrid execution alone, EdgeNN.

Paper result: averages of 9.93% (memory management), 10.76% (hybrid
execution), 22.02% (EdgeNN); per-network totals from 16.29% (VGG) to
27.22% (AlexNet).
"""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt

from conftest import run_once


def test_fig08_ablation(benchmark, record_artifact):
    result = run_once(benchmark, ex.fig08_ablation)
    record_artifact("fig08", fmt.format_fig08(result))
    assert 5.0 <= result.mean_memory <= 15.0
    assert result.mean_edgenn > 15.0
    alexnet = next(r for r in result.rows if r.network == "alexnet")
    assert 18.0 <= alexnet.edgenn_improvement_pct <= 35.0
