"""Request-stream serving: find the latency/throughput knee.

Run with:  python examples/request_stream.py [network]

The paper measures one-shot inference; a deployed service sees a
sustained request stream.  This example sweeps the open-loop arrival
rate for one model on the Jetson AGX Xavier and shows the classic
serving curve: throughput tracks the offered rate until the device
saturates, after which throughput plateaus while p99 latency explodes
and admission control starts shedding.  It also shows what dynamic
batching buys: the batched service sustains a higher plateau than
batch=1 dispatch because weight traffic amortizes across the batch.
"""

import sys

from repro.hardware import JETSON_AGX_XAVIER
from repro.serving import BatchPolicy, ServingConfig, simulate_poisson

DURATION_S = 8.0
SEED = 7


def sweep(network: str, rates, policy: BatchPolicy):
    config = ServingConfig(policy=policy)
    return [
        (rate, simulate_poisson(network, rate, DURATION_S, seed=SEED,
                                config=config))
        for rate in rates
    ]


def find_knee(rows) -> float:
    """Last rate the service still keeps up with: highest rate that sheds
    nothing and whose p99 stays under 3x the lightest load's p99."""
    base_p99 = rows[0][1].latency.p99_s
    knee = rows[0][0]
    for rate, report in rows:
        if report.shed == 0 and report.latency.p99_s <= 3.0 * base_p99:
            knee = rate
    return knee


def main(network: str = "alexnet") -> None:
    device = JETSON_AGX_XAVIER
    print(f"=== request-stream serving: {network} on {device.name} ===\n")

    # Calibrate the sweep around the device's batch-1 capacity.
    probe = simulate_poisson(
        network, 2.0, 2.0, seed=SEED,
        config=ServingConfig(policy=BatchPolicy(max_batch_size=1)),
    )
    service_ms = probe.latency.p50_s * 1e3
    capacity = 1.0 / probe.latency.p50_s
    rates = [max(0.5, capacity * f) for f in (0.25, 0.5, 0.75, 1.0, 1.5, 3.0)]
    print(f"batch-1 service time ~{service_ms:.2f} ms "
          f"=> nominal capacity ~{capacity:.1f} req/s\n")

    batched = sweep(network, rates, BatchPolicy(max_batch_size=8))
    single = sweep(network, rates, BatchPolicy(max_batch_size=1))

    print(f"{'rate':>8}  {'-- dynamic batching (<=8) --':^34}  "
          f"{'-- batch=1 --':^22}")
    print(f"{'req/s':>8}  {'thr':>7} {'p99 ms':>10} {'shed':>6} {'mb':>5}  "
          f"{'thr':>7} {'p99 ms':>10}")
    for (rate, rb), (_, r1) in zip(batched, single):
        print(f"{rate:8.1f}  {rb.throughput_rps:7.2f} "
              f"{rb.latency.p99_s * 1e3:10.1f} {rb.shed_rate:6.1%} "
              f"{rb.mean_batch_size:5.2f}  "
              f"{r1.throughput_rps:7.2f} {r1.latency.p99_s * 1e3:10.1f}")

    knee = find_knee(batched)
    peak_batched = max(r.throughput_rps for _, r in batched)
    peak_single = max(r.throughput_rps for _, r in single)
    print(f"\nknee (last sustainable rate): ~{knee:.1f} req/s on {network}")
    print(f"peak throughput: {peak_batched:.2f} req/s batched vs "
          f"{peak_single:.2f} req/s at batch=1 "
          f"({peak_batched / peak_single:.2f}x from dynamic batching)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "alexnet")
