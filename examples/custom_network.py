"""Bring your own network: tune a custom model with the public API.

Run with:  python examples/custom_network.py

EdgeNN is not limited to the six paper benchmarks.  This example defines a
compact keyword-spotting-style CNN with a SqueezeNet-like fire module,
checks its structure, tunes it, and compares the three memory policies —
the workflow for adopting the library on your own model.
"""

from repro import EdgeNN, EdgeNNConfig, NetworkGraph
from repro.baselines import run_gpu_only
from repro.core.memory_manager import MemoryPolicy
from repro.hardware import JETSON_AGX_XAVIER
from repro.nn.layers import (
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Softmax,
)
from repro.workloads import input_for


def build_keyword_spotter(classes: int = 12) -> NetworkGraph:
    """A small audio-spectrogram classifier (1x64x64 input)."""
    net = NetworkGraph("keyword-spotter", (1, 64, 64))
    net.add(Conv2D("conv1", out_channels=32, kernel_size=5, stride=2))
    net.add(ReLU("relu1"))
    net.add(MaxPool2D("pool1", kernel_size=2))

    # A fire-style block: squeeze, then parallel 1x1 / 3x3 expands — the
    # tuner will consider running the two expands on different processors.
    fork = net.add(Conv2D("squeeze", out_channels=8, kernel_size=1))
    net.add(Conv2D("expand1x1", out_channels=24, kernel_size=1), inputs=[fork])
    left = net.add(ReLU("expand1x1_relu"))
    net.add(Conv2D("expand3x3", out_channels=24, kernel_size=3, padding=1),
            inputs=[fork])
    right = net.add(ReLU("expand3x3_relu"))
    net.add(Concat("concat"), inputs=[left, right])

    net.add(GlobalAvgPool("gap"))
    net.add(Dense("fc", classes))
    net.add(Softmax("softmax"))
    return net


def main() -> None:
    net = build_keyword_spotter()
    print(net.summary())
    print(f"\ntotal: {net.total_flops() / 1e6:.1f} MFLOPs, "
          f"{net.total_param_bytes() / 1e3:.1f} KB of parameters\n")

    baseline = run_gpu_only(net, JETSON_AGX_XAVIER)
    print(f"GPU-only original program : {baseline.total_s * 1e3:8.3f} ms")

    for label, config in (
        ("EdgeNN (full)", EdgeNNConfig()),
        ("memory mgmt only", EdgeNNConfig(use_hybrid_execution=False)),
        ("hybrid only", EdgeNNConfig(use_memory_management=False)),
    ):
        engine = EdgeNN(build_keyword_spotter(), config=config)
        report = engine.run()
        gain = (baseline.total_s - report.total_s) / baseline.total_s
        print(f"{label:<26}: {report.total_s * 1e3:8.3f} ms ({gain:+.1%})")

    engine = EdgeNN(net)
    probs = engine.infer(input_for(net))
    print(f"\nnumeric check: predicted keyword class "
          f"{int(probs.argmax())} (p={probs.max():.3f})")
    print(f"plan: {engine.plan.describe()}")


if __name__ == "__main__":
    main()
