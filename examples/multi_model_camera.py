"""Multi-model edge deployment: detector + classifier on one device.

Run with:  python examples/multi_model_camera.py

A common AIoT pattern runs several models per frame (e.g. a light
keyword/trigger network alongside a heavy scene classifier).  This example
co-runs LeNet (trigger) and AlexNet (classifier) on one Jetson and
compares three deployment strategies:

1. sequential      — run the two models back to back;
2. naive co-run    — both tuned plans share the device; the tiny trigger
                     starves behind the classifier's non-preemptive kernels;
3. complementary   — pin the trigger to the CPU: it rides along for free
                     while the GPU serves the classifier.
"""

from repro.baselines import cpu_only_plan
from repro.core.engine import EdgeNN
from repro.core.multitenant import concurrent_edgenn, run_concurrent
from repro.hardware import JETSON_AGX_XAVIER
from repro.nn.models import build

TRIGGER, CLASSIFIER = "lenet", "alexnet"


def describe(label: str, report) -> None:
    trigger = min(report.tenants, key=lambda t: t.solo_s)
    classifier = max(report.tenants, key=lambda t: t.solo_s)
    print(f"{label}")
    print(f"  makespan            : {report.makespan_s * 1e3:8.2f} ms "
          f"(sequential would be {report.sequential_s * 1e3:.2f} ms)")
    print(f"  trigger latency     : {trigger.completion_s * 1e3:8.2f} ms "
          f"({trigger.slowdown:.2f}x its solo time)")
    print(f"  classifier latency  : {classifier.completion_s * 1e3:8.2f} ms "
          f"({classifier.slowdown:.2f}x its solo time)")
    print(f"  average power       : {report.energy.average_power_w:8.2f} W\n")


def main() -> None:
    print(f"=== {TRIGGER} (trigger) + {CLASSIFIER} (classifier) "
          f"on {JETSON_AGX_XAVIER.name} ===\n")

    naive = concurrent_edgenn([TRIGGER, CLASSIFIER])
    describe("naive co-run (both tuned plans):", naive)

    trigger_net = build(TRIGGER)
    trigger_plan = cpu_only_plan(trigger_net, JETSON_AGX_XAVIER)
    classifier_engine = EdgeNN(CLASSIFIER)
    complementary = run_concurrent(
        JETSON_AGX_XAVIER,
        [(trigger_net, trigger_plan),
         (classifier_engine.graph, classifier_engine.plan)],
    )
    describe("complementary placement (trigger pinned to CPU):", complementary)

    naive_trigger = min(naive.tenants, key=lambda t: t.solo_s)
    comp_trigger = min(complementary.tenants, key=lambda t: t.solo_s)
    print("takeaway: without placement awareness the trigger's latency "
          f"explodes {naive_trigger.slowdown:.0f}x behind the classifier's "
          "non-preemptive kernels; pinning it to the otherwise-idle CPU "
          f"restores it to {comp_trigger.slowdown:.2f}x solo latency — the "
          "same resource-complementarity reasoning EdgeNN applies within a "
          "single network.")


if __name__ == "__main__":
    main()
