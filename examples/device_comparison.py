"""Device comparison: where should an edge workload run?

Run with:  python examples/device_comparison.py

Sweeps all six paper benchmarks across the four evaluated platforms
(EdgeNN on the integrated Jetson, three edge CPUs, the discrete 2080 Ti,
and cloud offload) and prints latency / power / energy-efficiency /
cost-efficiency — a compact reproduction of the decisions behind
Figs 6, 7, 12, and 13.
"""

from repro.baselines import run_cloud, run_cpu_only, run_gpu_only
from repro.eval import metrics
from repro.eval.experiments import edgenn_report
from repro.eval.formatting import render_table
from repro.hardware import (
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
)
from repro.nn.models import benchmark_names


def main() -> None:
    rows = []
    for net in benchmark_names():
        edgenn = edgenn_report(net)
        rows.append((
            net,
            edgenn.total_s * 1e3,
            run_cpu_only(net, JETSON_AGX_XAVIER).total_s * 1e3,
            run_cpu_only(net, DIMENSITY_8100).total_s * 1e3,
            run_cpu_only(net, RASPBERRY_PI_4).total_s * 1e3,
            run_gpu_only(net, RTX_2080TI_HOST).total_s * 1e3,
            run_cloud(net).total_s * 1e3,
        ))
    print(render_table(
        ["network", "edgenn", "jetson-cpu", "phone-cpu", "rpi4",
         "2080ti", "cloud"],
        rows,
        title="End-to-end latency per inference (ms)",
    ))

    print()
    eff_rows = []
    for net in benchmark_names():
        edgenn = edgenn_report(net)
        dgpu = run_gpu_only(net, RTX_2080TI_HOST)
        rpi = run_cpu_only(net, RASPBERRY_PI_4)
        eff_rows.append((
            net,
            edgenn.energy.energy_j,
            metrics.performance_per_power_ratio(
                edgenn.total_s, edgenn.energy.average_power_w,
                dgpu.total_s, dgpu.energy.average_power_w,
            ),
            metrics.performance_per_price_ratio(
                edgenn.total_s, JETSON_AGX_XAVIER.price_usd,
                rpi.total_s, RASPBERRY_PI_4.price_usd,
            ),
        ))
    print(render_table(
        ["network", "edgenn J/inf", "perf/W vs 2080Ti", "perf/$ vs rpi4"],
        eff_rows,
        title="Efficiency (higher ratio = EdgeNN better)",
    ))

    print("\ntakeaways (matching the paper's conclusions):")
    print(" * the integrated device beats every edge CPU on latency;")
    print(" * it beats the discrete GPU on energy efficiency by a wide margin;")
    print(" * the Raspberry Pi remains the cost-effectiveness champion;")
    print(" * only compute-monsters like VGG justify shipping frames to the cloud.")


if __name__ == "__main__":
    main()
