"""Inside the fine-grained adaptive tuner (§IV-D).

Run with:  python examples/tuning_exploration.py [network]

Shows the tuner's internals for one network: per-layer CPU/GPU profiles,
the Eq. 4 analytic seed, how feedback reshapes the plan round by round,
and exports the final schedule as a Chrome trace
(open chrome://tracing or https://ui.perfetto.dev and load the file).
"""

import pathlib
import sys

from repro import Device, JETSON_AGX_XAVIER
from repro.core import partition
from repro.core.executor import HybridExecutor
from repro.core.plan import Assignment
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.nn.models import build


def main(network: str = "alexnet") -> None:
    net = build(network)
    device = Device(JETSON_AGX_XAVIER)
    tuner = AdaptiveTuner(net, device, TunerConfig())
    result = tuner.tune()

    print(f"=== Tuning {network}: per-layer profiles and decisions ===\n")
    header = (f"{'layer':<18}{'class':<8}{'t_cpu(us)':>10}{'t_gpu(us)':>10}"
              f"{'p_op':>7}  final plan")
    print(header)
    print("-" * len(header))
    s = device.copy_rate()
    for name in net.topo_order():
        node = net.node(name)
        if node.layer.is_noop:
            continue
        t_cpu = tuner.profiles.cpu_time(name)
        t_gpu = tuner.profiles.gpu_time(name)
        p_op = partition.optimal_cpu_fraction(
            t_cpu, t_gpu, float(net.out_bytes(name)), s
        )
        lp = result.plan.layer_plan(name)
        placement = lp.assignment.value
        if lp.assignment is Assignment.SPLIT:
            placement += f" (p={lp.cpu_fraction:.2f})"
        print(f"{name:<18}{node.layer.kernel_class:<8}"
              f"{t_cpu * 1e6:>10.1f}{t_gpu * 1e6:>10.1f}{p_op:>7.2f}  {placement}")

    print("\nround-by-round latency (the adaptation trajectory):")
    for i, report in enumerate(result.rounds):
        label = "gpu profile" if i == 0 else f"round {i}"
        print(f"  {label:<12}: {report.total_s * 1e3:8.3f} ms")

    final = HybridExecutor(net, device, result.plan).run()
    out = pathlib.Path(f"{network}_schedule.trace.json")
    out.write_text(final.trace.to_chrome_trace())
    print(f"\nfinal plan: {result.plan.describe()}")
    print(f"final latency: {final.total_s * 1e3:.3f} ms")
    print(f"chrome trace written to {out} "
          "(load it at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "alexnet")
