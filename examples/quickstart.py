"""Quickstart: tune and run EdgeNN on one network.

Run with:  python examples/quickstart.py [network]

Builds AlexNet (or the named benchmark), tunes it for the Jetson AGX
Xavier, compares against the GPU-only original program, and runs a real
numeric inference on a synthetic image.
"""

import sys

from repro import EdgeNN
from repro.baselines import run_gpu_only
from repro.hardware import JETSON_AGX_XAVIER
from repro.workloads import input_for


def main(network: str = "alexnet") -> None:
    print(f"=== EdgeNN quickstart: {network} on {JETSON_AGX_XAVIER.name} ===\n")

    # The original program: GPU kernels, regular memory, per-layer staging.
    baseline = run_gpu_only(network, JETSON_AGX_XAVIER)
    print(f"original program : {baseline.total_s * 1e3:8.3f} ms "
          f"(copy share {baseline.copy_share:.1%})")

    # EdgeNN: profiles both processors, seeds a plan from Eq. 1-4, then
    # adapts from measured feedback.
    engine = EdgeNN(network)
    tuning = engine.tune()
    report = engine.run()
    improvement = (baseline.total_s - report.total_s) / baseline.total_s
    print(f"EdgeNN           : {report.total_s * 1e3:8.3f} ms "
          f"({improvement:+.1%} vs original)")
    print(f"tuning           : {tuning.converged_after} feedback rounds")
    print(f"plan             : {engine.plan.describe()}")
    print(f"power            : {report.energy.average_power_w:.2f} W "
          f"(cpu util {report.cpu_utilization:.0%}, "
          f"gpu util {report.gpu_utilization:.0%})")

    # Placement never changes the numbers: run a real forward pass.
    probs = engine.infer(input_for(network))
    top = probs.argsort()[-3:][::-1]
    print("\nnumeric inference on a synthetic image — top-3 classes:")
    for idx in top:
        print(f"  class {idx:4d}  p={probs[idx]:.4f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "alexnet")
