"""Smart-camera scenario: continuous on-device image recognition.

Run with:  python examples/smart_camera.py

The paper's motivating AIoT deployment (Fig 1): an edge camera must
classify frames continuously.  This example streams a batch of frames
through SqueezeNet (the paper's edge-friendly network) and answers the
deployment questions an integrator would ask:

* steady-state latency and achievable frame rate on the Jetson,
* energy per frame and battery-life implications,
* whether cloud offload could ever keep up on the measured uplink.
"""

from repro import EdgeNN
from repro.baselines import run_cloud, run_cpu_only
from repro.hardware import JETSON_AGX_XAVIER, RASPBERRY_PI_4
from repro.workloads import batch_of_inputs

NETWORK = "squeezenet"
FRAMES = 16
BATTERY_WH = 40.0  # a typical camera battery pack


def main() -> None:
    print(f"=== Smart camera: {NETWORK}, {FRAMES} frames ===\n")

    engine = EdgeNN(NETWORK)
    engine.tune()

    # Steady state: one tuned simulated inference per frame.
    report = engine.run()
    frame_s = report.total_s
    fps = 1.0 / frame_s
    energy_per_frame = report.energy.energy_j
    frames_per_battery = BATTERY_WH * 3600.0 / energy_per_frame

    print(f"latency per frame   : {frame_s * 1e3:8.2f} ms")
    print(f"sustained rate      : {fps:8.2f} frames/s")
    print(f"power draw          : {report.energy.average_power_w:8.2f} W")
    print(f"energy per frame    : {energy_per_frame:8.3f} J")
    print(f"frames per {BATTERY_WH:.0f} Wh   : {frames_per_battery:,.0f}")

    # Classify the actual frames (numeric path).
    print(f"\nclassifying {FRAMES} synthetic frames...")
    for i, frame in enumerate(batch_of_inputs(NETWORK, FRAMES)):
        probs = engine.infer(frame)
        print(f"  frame {i:2d}: class {int(probs.argmax()):4d} "
              f"(p={probs.max():.4f})")

    # Deployment alternatives.
    print("\nalternatives for the same workload:")
    cloud = run_cloud(NETWORK)
    print(f"  cloud offload      : {cloud.total_s * 1e3:8.2f} ms/frame "
          f"({1.0 / cloud.total_s:.2f} fps — the {cloud.transmission_s * 1e3:.0f} ms "
          "uplink dominates)")
    rpi = run_cpu_only(NETWORK, RASPBERRY_PI_4)
    print(f"  raspberry pi 4     : {rpi.total_s * 1e3:8.2f} ms/frame "
          f"({1.0 / rpi.total_s:.2f} fps)")
    jetson_cpu = run_cpu_only(NETWORK, JETSON_AGX_XAVIER)
    print(f"  jetson CPU only    : {jetson_cpu.total_s * 1e3:8.2f} ms/frame")
    print(f"\n=> EdgeNN on the integrated device sustains "
          f"{fps / (1.0 / cloud.total_s):.0f}x the cloud pipeline's frame rate "
          "with no network dependency.")


if __name__ == "__main__":
    main()
