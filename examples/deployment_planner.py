"""Deployment planner: pick a configuration for an SLO and a battery.

Run with:  python examples/deployment_planner.py

Combines three of the library's extensions to answer a realistic
provisioning question: *"I need SqueezeNet classifications within 250 ms
per frame on a battery-powered Jetson — what should I configure?"*

The planner sweeps inference datatype x Jetson power mode, keeps the
configurations that meet the SLO, and ranks them by energy per frame.
"""

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.hardware.variants import JETSON_POWER_MODES, jetson_power_mode
from repro.nn.precision import Precision

NETWORK = "squeezenet"
SLO_MS = 250.0
BATTERY_WH = 40.0


def main() -> None:
    print(f"=== Deployment planner: {NETWORK}, SLO {SLO_MS:.0f} ms ===\n")
    rows = []
    for mode in sorted(JETSON_POWER_MODES,
                       key=lambda m: JETSON_POWER_MODES[m][3]):
        for precision in Precision:
            engine = EdgeNN(
                NETWORK,
                jetson_power_mode(mode),
                EdgeNNConfig(precision=precision),
            )
            report = engine.run()
            rows.append((mode, precision.value, report.total_s,
                         report.energy.average_power_w,
                         report.energy.energy_j))

    print(f"{'mode':<6}{'dtype':<7}{'latency_ms':>12}{'power_W':>9}"
          f"{'J/frame':>9}{'meets SLO':>11}")
    feasible = []
    for mode, dtype, latency, power, energy in rows:
        ok = latency * 1e3 <= SLO_MS
        if ok:
            feasible.append((energy, mode, dtype, latency, power))
        print(f"{mode:<6}{dtype:<7}{latency * 1e3:>12.2f}{power:>9.2f}"
              f"{energy:>9.3f}{'yes' if ok else 'no':>11}")

    if not feasible:
        print("\nno configuration meets the SLO")
        return
    energy, mode, dtype, latency, power = min(feasible)
    frames = BATTERY_WH * 3600.0 / energy
    print(f"\nrecommendation: {mode} power mode at {dtype} "
          f"({latency * 1e3:.1f} ms/frame, {power:.2f} W)")
    print(f"a {BATTERY_WH:.0f} Wh battery sustains ~{frames:,.0f} frames "
          f"({frames * latency / 3600:.1f} h of continuous inference)")


if __name__ == "__main__":
    main()
