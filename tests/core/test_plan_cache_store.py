"""PlanCache as a read-through client of the content-addressed store."""

import pytest

from repro.core.plan_cache import (
    PlanCache,
    PlanKey,
    configure_default_plan_cache,
    default_plan_cache,
)
from repro.core.tuner import AdaptiveTuner
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build as build_model
from repro.store.plan_store import PlanStore


def make_key(**overrides) -> PlanKey:
    fields = dict(
        network="lenet", device="jetson-agx-xavier", batch_size=1,
        precision="fp32", use_memory_management=True,
        use_hybrid_execution=True, use_inter_kernel=True,
        use_intra_kernel=True, objective="latency",
    )
    fields.update(overrides)
    return PlanKey(**fields)


def tune_lenet():
    tuner = AdaptiveTuner(build_model("lenet"), Device(JETSON_AGX_XAVIER))
    return tuner.tune()


def fail_tune():
    raise AssertionError("tuner should not run on a store hit")


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "store")


class TestReadThrough:
    def test_store_hit_skips_tuning(self, store):
        key = make_key()
        writer = PlanCache(store=store)
        writer.get_or_tune(key, tune_lenet)
        assert store.contains(key)

        reader = PlanCache(store=store)
        result = reader.get_or_tune(key, fail_tune)
        assert result.source == "artifact"
        assert result.rounds == []
        assert reader.disk_hits == 1
        assert reader.misses == 0

    def test_memory_wins_over_store(self, store):
        key = make_key()
        cache = PlanCache(store=store)
        first = cache.get_or_tune(key, tune_lenet)
        store_hits_before = store.hits
        assert cache.get_or_tune(key, fail_tune) is first
        assert store.hits == store_hits_before

    def test_corrupt_store_object_degrades_to_retune(self, store):
        key = make_key()
        PlanCache(store=store).get_or_tune(key, tune_lenet)
        (obj,) = store.objects_dir.glob("*.json")
        obj.write_text(obj.read_text()[:50])

        reader = PlanCache(store=store)
        result = reader.get_or_tune(key, tune_lenet)
        assert result is not None
        assert reader.corrupt_loads == 1
        assert store.quarantined == 1
        # The re-tuned plan healed the store.
        assert store.contains(key)

    def test_persist_feeds_both_sinks(self, store, tmp_path):
        save_dir = tmp_path / "plans"
        key = make_key()
        cache = PlanCache(save_dir=save_dir, store=store)
        cache.get_or_tune(key, tune_lenet)
        assert store.contains(key)
        assert (save_dir / f"{key.slug()}.json").exists()


class TestInvalidate:
    def test_remove_disk_sweeps_store_and_siblings(self, store, tmp_path):
        save_dir = tmp_path / "plans"
        key = make_key()
        cache = PlanCache(save_dir=save_dir, store=store)
        cache.get_or_tune(key, tune_lenet)
        # Plant quarantine-style siblings next to the save_dir slot.
        slug = key.slug()
        (save_dir / f"{slug}.json.corrupt").write_text("x")
        (save_dir / f"{slug}.json.tmp").write_text("y")

        removed = cache.invalidate(key, remove_disk=True)
        assert "memory" in removed
        names = [r for r in removed if r != "memory"]
        assert any(name.endswith(f"{slug}.json") for name in names)
        assert any(".corrupt" in name for name in names)
        assert any(name.endswith(".tmp") for name in names)
        assert not store.contains(key)
        assert list(save_dir.glob(f"{slug}*")) == []

    def test_invalidate_without_remove_disk_keeps_files(self, store):
        key = make_key()
        cache = PlanCache(store=store)
        cache.get_or_tune(key, tune_lenet)
        removed = cache.invalidate(key)
        assert removed == ["memory"]
        assert store.contains(key)

    def test_empty_invalidate_is_falsy(self, store):
        cache = PlanCache(store=store)
        assert not cache.invalidate(make_key())


class TestDefaultCacheWiring:
    def test_configure_store_dir(self, tmp_path):
        try:
            configure_default_plan_cache(store_dir=tmp_path / "store")
            cache = default_plan_cache()
            assert cache.store is not None
            key = make_key()
            cache.get_or_tune(key, tune_lenet)
            assert PlanStore(tmp_path / "store").contains(key)
        finally:
            configure_default_plan_cache()

    def test_store_property_default_none(self):
        assert PlanCache().store is None
