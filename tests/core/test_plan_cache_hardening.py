"""Disk-load hardening: corrupt artifacts degrade to a miss + re-tune,
checksum tampering is caught, invalidation forces re-tuning."""

import json
import logging

import pytest

from repro.compile.artifact import PlanArtifact
from repro.core.plan_cache import PlanCache, PlanKey
from repro.core.tuner import AdaptiveTuner
from repro.errors import ReproError
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build as build_model


def make_key(**overrides) -> PlanKey:
    fields = dict(
        network="lenet", device="jetson-agx-xavier", batch_size=1,
        precision="fp32", use_memory_management=True,
        use_hybrid_execution=True, use_inter_kernel=True,
        use_intra_kernel=True, objective="latency",
    )
    fields.update(overrides)
    return PlanKey(**fields)


def tune_lenet():
    tuner = AdaptiveTuner(build_model("lenet"), Device(JETSON_AGX_XAVIER))
    return tuner.tune()


@pytest.fixture
def populated(tmp_path):
    """A cache with one persisted lenet plan; returns (key, path)."""
    key = make_key()
    cache = PlanCache(save_dir=tmp_path)
    cache.get_or_tune(key, tune_lenet)
    return key, tmp_path / f"{key.slug()}.json"


class TestCorruptLoads:
    def test_truncated_file_is_a_warned_miss(self, populated, tmp_path,
                                             caplog):
        key, path = populated
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        cache = PlanCache(save_dir=tmp_path)
        with caplog.at_level(logging.WARNING):
            result = cache.get_or_tune(key, tune_lenet)
        assert result.plan is not None  # re-tuned, not crashed
        assert cache.corrupt_loads == 1
        assert cache.misses == 1
        assert cache.hits == 0
        assert any("corrupt" in r.message for r in caplog.records)

    def test_garbage_json_is_a_miss(self, populated, tmp_path):
        key, path = populated
        path.write_text("not json at all {{{")
        cache = PlanCache(save_dir=tmp_path)
        sentinel_calls = []

        def tune():
            sentinel_calls.append(1)
            return tune_lenet()

        cache.get_or_tune(key, tune)
        assert sentinel_calls == [1]
        assert cache.corrupt_loads == 1

    def test_checksum_tamper_is_caught(self, populated, tmp_path):
        key, path = populated
        data = json.loads(path.read_text())
        # Flip a value the checksum covers, keep the JSON well-formed.
        data["provenance"]["final_total_s"] = 123.456
        path.write_text(json.dumps(data))
        with pytest.raises(ReproError, match="checksum mismatch"):
            PlanArtifact.load(path)
        # The cache degrades the same tamper to a counted miss.
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(key, tune_lenet)
        assert cache.corrupt_loads == 1

    def test_artifact_without_checksum_still_loads(self, populated,
                                                   tmp_path):
        key, path = populated
        data = json.loads(path.read_text())
        del data["checksum"]  # a pre-hardening artifact
        path.write_text(json.dumps(data))
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(key, tune_lenet)
        assert cache.disk_hits == 1
        assert cache.corrupt_loads == 0

    def test_key_mismatch_still_raises(self, populated, tmp_path):
        # A *valid* artifact under the wrong key is a deployment error,
        # not corruption; it must keep raising loudly.
        key, path = populated
        other = make_key(objective="energy")
        (tmp_path / f"{other.slug()}.json").write_text(path.read_text())
        with pytest.raises(ReproError, match="different key"):
            PlanCache(save_dir=tmp_path).get_or_tune(other, tune_lenet)

    def test_clear_resets_corrupt_counter(self, populated, tmp_path):
        key, path = populated
        path.write_text("{")
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(key, tune_lenet)
        assert cache.corrupt_loads == 1
        cache.clear()
        assert cache.corrupt_loads == 0


class TestInvalidate:
    def test_invalidate_memory_entry(self, tmp_path):
        cache = PlanCache()
        key = make_key()
        sentinel = object()
        cache.get_or_tune(key, lambda: sentinel)
        assert cache.invalidate(key)
        assert key not in cache
        assert not cache.invalidate(key)  # already gone

    def test_invalidate_keeps_disk_by_default(self, populated, tmp_path):
        key, path = populated
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(key, tune_lenet)
        cache.invalidate(key)
        assert path.exists()
        # Next lookup reloads from disk (stale plan reinstated).
        cache.get_or_tune(key, tune_lenet)
        assert cache.disk_hits >= 1

    def test_invalidate_remove_disk_forces_retune(self, populated,
                                                  tmp_path):
        key, path = populated
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(key, tune_lenet)
        assert cache.invalidate(key, remove_disk=True)
        assert not path.exists()
        misses_before = cache.misses
        cache.get_or_tune(key, tune_lenet)
        assert cache.misses == misses_before + 1


class TestChecksumDeterminism:
    def test_round_trip_preserves_checksum(self, populated):
        _, path = populated
        art = PlanArtifact.load(path)
        again = PlanArtifact.from_json(art.to_json())
        assert again.to_dict()["checksum"] == art.to_dict()["checksum"]
        assert again.to_dict() == art.to_dict()

    def test_checksum_covers_every_section(self, populated):
        _, path = populated
        data = json.loads(path.read_text())
        recorded = data["checksum"]
        assert recorded == PlanArtifact._checksum_of(data)
        for section in ("key", "plan", "lowering", "provenance"):
            mutated = json.loads(path.read_text())
            mutated[section] = {"tampered": True}
            assert PlanArtifact._checksum_of(mutated) != recorded
