"""Semantic-aware memory management policy (§IV-B)."""

import pytest

from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import ExecutionPlan, gpu_layer, split_layer
from repro.hardware.memory import AllocKind
from repro.hardware.specs import JETSON_AGX_XAVIER, RASPBERRY_PI_4, RTX_2080TI_HOST

from ..conftest import make_chain_net


def plan_for(net, split=None):
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    if split:
        plan.set_layer(split_layer(split, 0.4))
    return plan


class TestSemanticPolicy:
    def test_weights_and_input_managed(self, chain_net):
        plan = plan_for(chain_net)
        alloc = plan_allocations(chain_net, plan, JETSON_AGX_XAVIER)
        assert alloc["input"] is AllocKind.MANAGED
        assert alloc["conv1.weights"] is AllocKind.MANAGED

    def test_single_writer_activations_managed(self, chain_net):
        alloc = plan_allocations(chain_net, plan_for(chain_net),
                                 JETSON_AGX_XAVIER)
        assert alloc["conv1.out"] is AllocKind.MANAGED

    def test_cowritten_outputs_regular(self, chain_net):
        plan = plan_for(chain_net, split="fc1")
        alloc = plan_allocations(chain_net, plan, JETSON_AGX_XAVIER)
        assert alloc["fc1.out"] is AllocKind.REGULAR
        # Everything else stays zero-copy.
        assert alloc["fc2.out"] is AllocKind.MANAGED

    def test_stored_into_plan(self, chain_net):
        plan = plan_for(chain_net)
        plan_allocations(chain_net, plan, JETSON_AGX_XAVIER)
        assert plan.alloc_kind("input") is AllocKind.MANAGED


class TestOtherPolicies:
    def test_all_regular(self, chain_net):
        alloc = plan_allocations(chain_net, plan_for(chain_net),
                                 JETSON_AGX_XAVIER, MemoryPolicy.ALL_REGULAR)
        assert set(alloc.values()) == {AllocKind.REGULAR}

    def test_all_managed(self, chain_net):
        alloc = plan_allocations(chain_net, plan_for(chain_net),
                                 JETSON_AGX_XAVIER, MemoryPolicy.ALL_MANAGED)
        assert set(alloc.values()) == {AllocKind.MANAGED}

    def test_all_managed_even_for_cowrites(self, chain_net):
        # The naive policy the semantic manager improves on: co-written
        # buffers stay managed and will pay the consistency penalty.
        plan = plan_for(chain_net, split="fc1")
        alloc = plan_allocations(chain_net, plan, JETSON_AGX_XAVIER,
                                 MemoryPolicy.ALL_MANAGED)
        assert alloc["fc1.out"] is AllocKind.MANAGED


class TestNonIntegratedDevices:
    @pytest.mark.parametrize("device", [RASPBERRY_PI_4, RTX_2080TI_HOST])
    @pytest.mark.parametrize("policy", list(MemoryPolicy))
    def test_everything_regular_off_integrated(self, chain_net, device, policy):
        # The paper: unified memory brings no benefit on discrete platforms.
        alloc = plan_allocations(chain_net, plan_for(chain_net), device, policy)
        assert set(alloc.values()) == {AllocKind.REGULAR}
