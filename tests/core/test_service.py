"""Inference-service (cold/warm) simulation."""

import pytest

from repro.core.engine import EdgeNNConfig
from repro.core.service import ServiceProfile, profile_service, warm_report
from repro.core.memory_manager import MemoryPolicy

from ..conftest import make_chain_net


class TestProfileService:
    def test_warm_not_slower_than_cold(self, chain_net):
        profile = profile_service(chain_net)
        assert profile.warm_s <= profile.cold_s + 1e-12

    def test_amortization_estimate_positive(self, chain_net):
        profile = profile_service(chain_net)
        assert profile.requests_to_amortize >= 1
        assert profile.cold_overhead_s >= 0

    def test_profile_identifies_network_and_device(self, chain_net):
        profile = profile_service(chain_net)
        assert profile.network == chain_net.name
        assert profile.device == "jetson-agx-xavier"

    def test_accepts_network_name(self):
        assert profile_service("lenet").network == "lenet"


class TestWarmBehaviour:
    def test_warm_regular_run_skips_weight_copies(self, chain_net):
        config = EdgeNNConfig(use_memory_management=False,
                              use_hybrid_execution=False)
        cold_like = profile_service(make_chain_net("svc-a"), config=config)
        # The cold/warm delta under regular allocation is exactly the
        # parameter-staging cost, which warm execution eliminates.
        assert cold_like.cold_overhead_s > 0

    def test_zero_copy_advantage_shrinks_when_warm(self):
        """The paper's one-shot setting maximizes the zero-copy benefit;
        a warm service keeps weights resident so the benefit shrinks."""
        plain = EdgeNNConfig(use_memory_management=False,
                             use_hybrid_execution=False)
        managed = EdgeNNConfig(use_memory_management=True,
                               use_hybrid_execution=False)
        cold_regular = profile_service(make_chain_net("svc-c1"), config=plain)
        cold_managed = profile_service(make_chain_net("svc-c2"), config=managed)
        cold_gain = cold_regular.cold_s - cold_managed.cold_s
        warm_gain = cold_regular.warm_s - cold_managed.warm_s
        assert cold_gain > warm_gain

    def test_warm_report_is_full_report(self, chain_net):
        report = warm_report(chain_net)
        assert report.total_s > 0
        assert len(report.layers) == len(chain_net)
