"""Equations 1-4 of the paper (intra-kernel partitioning math)."""

import pytest

from repro.core import partition
from repro.errors import TuningError


class TestEq1Collaboration:
    def test_all_gpu(self):
        assert partition.collaboration_time(10.0, 4.0, 0.0) == 4.0

    def test_all_cpu(self):
        assert partition.collaboration_time(10.0, 4.0, 1.0) == 10.0

    def test_max_of_sides(self):
        # p=0.5: cpu side 5.0, gpu side 2.0 -> 5.0.
        assert partition.collaboration_time(10.0, 4.0, 0.5) == 5.0

    def test_balance_point_equalizes(self):
        p = partition.balance_point(10.0, 4.0)
        assert 10.0 * p == pytest.approx(4.0 * (1 - p))

    def test_rejects_bad_fraction(self):
        with pytest.raises(TuningError):
            partition.collaboration_time(1.0, 1.0, 1.5)

    def test_rejects_negative_times(self):
        with pytest.raises(TuningError):
            partition.collaboration_time(-1.0, 1.0, 0.5)


class TestEq2Transfer:
    def test_proportional_to_fraction(self):
        t = partition.data_transfer_time(0.25, out_bytes=1e6, copy_rate=1e9)
        assert t == pytest.approx(0.25e-3)

    def test_zero_fraction_free(self):
        assert partition.data_transfer_time(0.0, 1e6, 1e9) == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(TuningError):
            partition.data_transfer_time(0.5, 1e6, 0.0)

    def test_rejects_negative_volume(self):
        with pytest.raises(TuningError):
            partition.data_transfer_time(0.5, -1.0, 1e9)


class TestEq3Total:
    def test_sum_of_terms(self):
        total = partition.total_time(10.0, 4.0, 0.5, out_bytes=1e9,
                                     copy_rate=1e9)
        assert total == pytest.approx(5.0 + 0.5)

    def test_p_zero_equals_gpu_time(self):
        assert partition.total_time(10.0, 4.0, 0.0, 1e6, 1e9) == 4.0


class TestEq4Optimum:
    def test_zero_when_merge_dominates(self):
        # v_o / s >= t_gpu: copying the CPU slice costs more than the GPU
        # time it saves.
        p = partition.optimal_cpu_fraction(
            t_cpu=1.0, t_gpu=0.5, out_bytes=1e9, copy_rate=1e9
        )
        assert p == 0.0

    def test_balance_point_when_merge_cheap(self):
        p = partition.optimal_cpu_fraction(
            t_cpu=1.0, t_gpu=0.5, out_bytes=1.0, copy_rate=1e9
        )
        assert p == pytest.approx(0.5 / 1.5)

    def test_boundary_condition(self):
        # Exactly at v_o/s == t_gpu the paper's Eq. 4 picks 0.
        p = partition.optimal_cpu_fraction(
            t_cpu=1.0, t_gpu=0.5, out_bytes=0.5e9, copy_rate=1e9
        )
        assert p == 0.0

    def test_merge_free_ignores_volume(self):
        p = partition.optimal_cpu_fraction(
            t_cpu=1.0, t_gpu=0.5, out_bytes=1e12, copy_rate=1e9,
            merge_free=True,
        )
        assert p == pytest.approx(0.5 / 1.5)

    def test_degenerate_zero_times(self):
        assert partition.optimal_cpu_fraction(0.0, 0.0, 1.0, 1e9) == 0.0

    def test_fast_cpu_gets_large_share(self):
        p = partition.optimal_cpu_fraction(
            t_cpu=0.5, t_gpu=1.0, out_bytes=1.0, copy_rate=1e9
        )
        assert p == pytest.approx(1.0 / 1.5)

    def test_optimum_is_minimum_of_eq3(self):
        t_cpu, t_gpu, v, s = 8.0, 3.0, 1e7, 1e9
        p_op = partition.optimal_cpu_fraction(t_cpu, t_gpu, v, s)
        best = partition.total_time(t_cpu, t_gpu, p_op, v, s)
        for p in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert best <= partition.total_time(t_cpu, t_gpu, p, v, s) + 1e-12
