"""Batched inference (extension): per-sample economics of batching."""

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.errors import PlanError

from ..conftest import make_chain_net


def latency(network, batch_size):
    config = EdgeNNConfig(batch_size=batch_size)
    return EdgeNN(network, config=config).run().total_s


class TestBatchingBasics:
    def test_invalid_batch_rejected(self, jetson, chain_net):
        from repro.core.executor import HybridExecutor
        from repro.core.memory_manager import plan_allocations
        from repro.core.plan import ExecutionPlan, gpu_layer
        plan = ExecutionPlan(chain_net.name)
        for n in chain_net.topo_order():
            plan.set_layer(gpu_layer(n))
        plan_allocations(chain_net, plan, jetson.spec)
        with pytest.raises(PlanError):
            HybridExecutor(chain_net, jetson, plan, batch_size=0)

    def test_batch_one_is_default(self):
        net = make_chain_net("batch-default")
        a = EdgeNN(net).run().total_s
        b = EdgeNN(make_chain_net("batch-one"),
                   config=EdgeNNConfig(batch_size=1)).run().total_s
        assert a == pytest.approx(b)

    def test_larger_batches_take_longer_total(self):
        times = [latency(make_chain_net(f"bt-{b}"), b) for b in (1, 4, 16)]
        assert times[0] < times[1] < times[2]

    def test_per_sample_latency_improves(self):
        t1 = latency(make_chain_net("ps-1"), 1)
        t16 = latency(make_chain_net("ps-16"), 16)
        assert t16 / 16 < t1


class TestBatchingEconomics:
    def test_fc_networks_batch_nearly_free(self):
        """At batch 1 a GEMV is weight-bound; the batch's extra activations
        are small next to the weights, so fcnn's batch-16 run costs far
        less than 16x (the regime behind the paper's batch-1 fc findings)."""
        t1 = latency("fcnn", 1)
        t16 = latency("fcnn", 16)
        assert t16 < 6 * t1

    def test_conv_networks_scale_nearly_linearly(self):
        """Convolutions are work-bound: doubling frames ~doubles time."""
        t1 = latency("squeezenet", 1)
        t4 = latency("squeezenet", 4)
        assert 2.8 < t4 / t1 < 4.2

    def test_batching_improves_gpu_occupancy_on_small_layers(self):
        """LeNet's tiny kernels under-fill the GPU at batch 1; batching
        feeds the occupancy ramp so per-sample time improves sharply."""
        t1 = latency("lenet", 1)
        t32 = latency("lenet", 32)
        assert t32 / 32 < 0.5 * t1
