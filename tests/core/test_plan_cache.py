"""Plan cache: LRU semantics and EdgeNN integration."""

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.plan_cache import PlanCache, PlanKey
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build as build_model
from repro.nn.precision import Precision


def key(batch=1, network="lenet", precision="fp32"):
    return PlanKey(
        network=network, device="jetson-agx-xavier", batch_size=batch,
        precision=precision, use_memory_management=True,
        use_hybrid_execution=True, use_inter_kernel=True,
        use_intra_kernel=True, objective="latency",
    )


class TestLRU:
    def test_miss_then_hit(self):
        cache = PlanCache()
        calls = []

        def tune():
            calls.append(1)
            return "plan"

        assert cache.get_or_tune(key(), tune) == "plan"
        assert cache.get_or_tune(key(), tune) == "plan"
        assert len(calls) == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_keys_tune_separately(self):
        cache = PlanCache()
        cache.get_or_tune(key(batch=1), lambda: "b1")
        cache.get_or_tune(key(batch=2), lambda: "b2")
        cache.get_or_tune(key(precision="fp16"), lambda: "half")
        assert cache.misses == 3
        assert len(cache) == 3
        assert cache.get_or_tune(key(batch=2), lambda: "new") == "b2"

    def test_eviction_drops_least_recent(self):
        cache = PlanCache(capacity=2)
        cache.get_or_tune(key(batch=1), lambda: "a")
        cache.get_or_tune(key(batch=2), lambda: "b")
        cache.get_or_tune(key(batch=1), lambda: "a")   # refresh 1
        cache.get_or_tune(key(batch=3), lambda: "c")   # evicts 2
        assert key(batch=1) in cache
        assert key(batch=2) not in cache
        assert key(batch=3) in cache

    def test_clear(self):
        cache = PlanCache()
        cache.get_or_tune(key(), lambda: "x")
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestEngineIntegration:
    def test_second_engine_reuses_plan(self):
        cache = PlanCache()
        first = EdgeNN("lenet", plan_cache=cache)
        first.tune()
        assert (cache.hits, cache.misses) == (0, 1)

        second = EdgeNN("lenet", plan_cache=cache)
        result = second.tune()
        assert (cache.hits, cache.misses) == (1, 1)
        assert result is first.tune()  # identical object, not a re-tune

    def test_engine_level_memoization_still_works(self):
        cache = PlanCache()
        engine = EdgeNN("lenet", plan_cache=cache)
        assert engine.tune() is engine.tune()
        assert cache.misses == 1

    def test_force_bypasses_cache(self):
        cache = PlanCache()
        engine = EdgeNN("lenet", plan_cache=cache)
        engine.tune()
        engine.tune(force=True)
        # Forced re-tune neither reads nor needs the cached entry.
        assert cache.hits == 0

    def test_batch_sizes_get_distinct_entries(self):
        cache = PlanCache()
        for batch in (1, 2, 4):
            EdgeNN("lenet", config=EdgeNNConfig(batch_size=batch),
                   plan_cache=cache).tune()
        assert len(cache) == 3
        assert cache.misses == 3

    def test_custom_graph_never_cached(self):
        cache = PlanCache()
        graph = build_model("lenet")
        engine = EdgeNN(graph, plan_cache=cache)
        engine.tune()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_cached_plan_matches_uncached(self):
        cached = EdgeNN("lenet", plan_cache=PlanCache())
        fresh = EdgeNN("lenet", plan_cache=PlanCache())
        assert cached.run().total_s == pytest.approx(fresh.run().total_s)


class TestKey:
    def test_from_config_round_trip(self):
        config = EdgeNNConfig(batch_size=4, precision=Precision.FP16)
        built = PlanKey.from_config("alexnet", "jetson-agx-xavier", config)
        assert built.batch_size == 4
        assert built.precision == "fp16"
        assert built.network == "alexnet"
        assert built == PlanKey.from_config(
            "alexnet", "jetson-agx-xavier", config)

    def test_key_is_hashable_and_comparable(self):
        assert key(batch=1) != key(batch=2)
        assert len({key(batch=1), key(batch=1), key(batch=2)}) == 2
