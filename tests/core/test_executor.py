"""Hybrid executor: scheduling, memory behaviour, reports."""

import pytest

from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import (
    Assignment,
    ExecutionPlan,
    cpu_layer,
    gpu_layer,
    split_layer,
)
from repro.errors import PlanError, ReproError
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER, RASPBERRY_PI_4

from ..conftest import make_branch_net, make_chain_net


def build_plan(net, device_spec, policy=MemoryPolicy.SEMANTIC, overrides=None):
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    for lp in (overrides or []):
        plan.set_layer(lp)
    plan_allocations(net, plan, device_spec, policy)
    return plan


class TestBasicExecution:
    def test_all_gpu_run_produces_report(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert report.total_s > 0
        assert report.network == chain_net.name
        assert len(report.layers) == len(chain_net)

    def test_all_cpu_run(self, chain_net, jetson):
        plan = build_plan(
            chain_net, jetson.spec,
            overrides=[cpu_layer(n) for n in chain_net.topo_order()],
        )
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert report.gpu_busy_s == 0.0
        assert report.cpu_busy_s > 0.0

    def test_cpu_only_device_runs_cpu_plan(self, chain_net, rpi):
        plan = build_plan(
            chain_net, rpi.spec, policy=MemoryPolicy.ALL_REGULAR,
            overrides=[cpu_layer(n) for n in chain_net.topo_order()],
        )
        report = HybridExecutor(chain_net, rpi, plan).run()
        assert report.total_s > 0
        assert report.copy_s_total == 0.0

    def test_gpu_plan_rejected_on_cpu_only_device(self, chain_net, rpi):
        plan = build_plan(chain_net, rpi.spec, policy=MemoryPolicy.ALL_REGULAR)
        with pytest.raises(PlanError, match="has none"):
            HybridExecutor(chain_net, rpi, plan)

    def test_missing_layer_plan_rejected(self, chain_net, jetson):
        plan = ExecutionPlan(chain_net.name)
        with pytest.raises(PlanError):
            HybridExecutor(chain_net, jetson, plan)

    def test_noop_layers_cost_nothing(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert report.layer("flatten").attributed_s == 0.0
        assert report.layer("drop1").attributed_s == 0.0

    def test_deterministic(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec)
        r1 = HybridExecutor(chain_net, jetson, plan).run()
        jetson.reset()
        plan2 = build_plan(chain_net, jetson.spec)
        r2 = HybridExecutor(chain_net, jetson, plan2).run()
        assert r1.total_s == pytest.approx(r2.total_s)


class TestMemoryBehaviour:
    def test_regular_plan_generates_copies(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert report.copy_s_total > 0
        assert report.copy_share > 0

    def test_managed_plan_has_no_copies(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_MANAGED)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert report.copy_s_total == 0.0

    def test_zero_copy_is_faster_for_gpu_only_chain(self, chain_net, jetson):
        regular = HybridExecutor(
            chain_net, jetson,
            build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR),
            serialize=True, host_staging=True,
        ).run()
        jetson.reset()
        managed = HybridExecutor(
            chain_net, jetson,
            build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_MANAGED),
        ).run()
        assert managed.total_s < regular.total_s

    def test_host_staging_adds_copies(self, chain_net, jetson):
        base = HybridExecutor(
            chain_net, jetson,
            build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR),
        ).run()
        jetson.reset()
        staged = HybridExecutor(
            chain_net, jetson,
            build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR),
            host_staging=True,
        ).run()
        assert staged.copy_s_total > base.copy_s_total

    def test_serialize_exposes_copy_latency(self, chain_net, jetson):
        overlapped = HybridExecutor(
            chain_net, jetson,
            build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR),
            serialize=False,
        ).run()
        jetson.reset()
        serial = HybridExecutor(
            chain_net, jetson,
            build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR),
            serialize=True,
        ).run()
        assert serial.total_s >= overlapped.total_s


class TestSplitExecution:
    def test_split_layer_uses_both_processors(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec,
                          overrides=[split_layer("fc1", 0.4)])
        report = HybridExecutor(chain_net, jetson, plan).run()
        lr = report.layer("fc1")
        assert lr.assignment is Assignment.SPLIT
        assert lr.kernel_cpu_s > 0 and lr.kernel_gpu_s > 0

    def test_split_output_merge_copy(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec,
                          overrides=[split_layer("fc1", 0.4)])
        report = HybridExecutor(chain_net, jetson, plan).run()
        # The cowritten output is REGULAR; its CPU slice merges via the
        # copy engine (Eq. 2).
        assert report.layer("fc1").copy_s > 0

    def test_managed_cowrite_pays_consistency_penalty(self, jetson):
        # §IV-B: on a large co-written output, two REGULAR copies plus an
        # explicit merge beat the zero-copy consistency storm.  (For tiny
        # buffers the fixed memcpy latency can win instead — which is why
        # the choice is semantic, not unconditional.)
        from repro.nn.graph import NetworkGraph
        from repro.nn.layers import Conv2D, Flatten, Dense, Softmax
        net = NetworkGraph("big-split", (8, 32, 32))
        net.add(Conv2D("conv", out_channels=32, kernel_size=3, padding=1))
        net.add(Flatten("flatten"))
        net.add(Dense("fc", 10))
        net.add(Softmax("softmax"))
        semantic = HybridExecutor(
            net, jetson,
            build_plan(net, jetson.spec, MemoryPolicy.SEMANTIC,
                       overrides=[split_layer("conv", 0.4)]),
        ).run()
        jetson.reset()
        managed = HybridExecutor(
            net, jetson,
            build_plan(net, jetson.spec, MemoryPolicy.ALL_MANAGED,
                       overrides=[split_layer("conv", 0.4)]),
        ).run()
        assert (semantic.layer("conv").attributed_s
                < managed.layer("conv").attributed_s)


class TestBranchExecution:
    def test_branches_on_two_processors_overlap(self, branch_net, jetson):
        overrides = [cpu_layer("left"), cpu_layer("left_relu")]
        plan = build_plan(branch_net, jetson.spec, overrides=overrides)
        report = HybridExecutor(branch_net, jetson, plan).run()
        left = report.layer("left")
        right = report.layer("right")
        # The CPU branch starts before the GPU branch finishes.
        assert left.start_s < right.end_s
        assert report.cpu_busy_s > 0 and report.gpu_busy_s > 0

    def test_join_waits_for_both_branches(self, branch_net, jetson):
        overrides = [cpu_layer("left"), cpu_layer("left_relu")]
        plan = build_plan(branch_net, jetson.spec, overrides=overrides)
        report = HybridExecutor(branch_net, jetson, plan).run()
        join = report.layer("concat")
        # The join's completion follows both branches (its prefetch may
        # start earlier on the copy stream, but the kernel cannot finish
        # before its inputs exist).
        assert join.end_s >= report.layer("left_relu").end_s - 1e-12
        assert join.end_s >= report.layer("right_relu").end_s - 1e-12


class TestReportContents:
    def test_energy_populated(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert report.energy.average_power_w >= jetson.spec.power.idle_w
        assert report.energy.energy_j > 0

    def test_trace_populated(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert len(report.trace) > 0
        assert report.trace.span() == pytest.approx(report.total_s)

    def test_unknown_layer_lookup(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec)
        report = HybridExecutor(chain_net, jetson, plan).run()
        with pytest.raises(ReproError):
            report.layer("ghost")


class TestPrefetch:
    def test_prefetch_events_appear_for_managed_buffers(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_MANAGED)
        report = HybridExecutor(chain_net, jetson, plan).run()
        prefetches = [e for e in report.trace.events
                      if e.label.startswith("prefetch:")]
        assert prefetches  # cudaMemPrefetchAsync issued on the copy stream

    def test_prefetch_not_slower_than_first_touch_in_kernel(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_MANAGED)
        with_prefetch = HybridExecutor(chain_net, jetson, plan).run()
        jetson.reset()
        plan2 = build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_MANAGED)
        without = HybridExecutor(chain_net, jetson, plan2, prefetch=False).run()
        assert with_prefetch.total_s <= without.total_s * 1.001

    def test_no_prefetch_for_regular_buffers(self, chain_net, jetson):
        plan = build_plan(chain_net, jetson.spec, MemoryPolicy.ALL_REGULAR)
        report = HybridExecutor(chain_net, jetson, plan).run()
        assert not any(e.label.startswith("prefetch:")
                       for e in report.trace.events)
