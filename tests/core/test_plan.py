"""Execution plan records."""

import pytest

from repro.core.plan import (
    Assignment,
    ExecutionPlan,
    LayerPlan,
    cpu_layer,
    gpu_layer,
    split_layer,
)
from repro.errors import PlanError
from repro.hardware.memory import AllocKind
from repro.hardware.specs import ProcessorKind


class TestLayerPlan:
    def test_gpu_layer(self):
        lp = gpu_layer("conv1")
        assert lp.assignment is Assignment.GPU
        assert lp.cpu_fraction == 0.0
        assert lp.uses_gpu and not lp.uses_cpu
        assert lp.processor is ProcessorKind.GPU

    def test_cpu_layer(self):
        lp = cpu_layer("relu1")
        assert lp.cpu_fraction == 1.0
        assert lp.uses_cpu and not lp.uses_gpu
        assert lp.processor is ProcessorKind.CPU

    def test_split_layer(self):
        lp = split_layer("fc6", 0.4)
        assert lp.assignment is Assignment.SPLIT
        assert lp.uses_cpu and lp.uses_gpu

    def test_split_has_no_single_processor(self):
        with pytest.raises(PlanError):
            split_layer("fc6", 0.4).processor

    def test_split_clamps_degenerate_fractions(self):
        assert split_layer("x", 0.0).assignment is Assignment.GPU
        assert split_layer("x", 1.0).assignment is Assignment.CPU
        assert split_layer("x", -0.5).assignment is Assignment.GPU

    def test_direct_construction_validation(self):
        with pytest.raises(PlanError):
            LayerPlan("x", Assignment.SPLIT, 0.0)
        with pytest.raises(PlanError):
            LayerPlan("x", Assignment.GPU, 0.5)
        with pytest.raises(PlanError):
            LayerPlan("x", Assignment.CPU, 0.5)


class TestExecutionPlan:
    def make_plan(self):
        plan = ExecutionPlan("net")
        plan.set_layer(gpu_layer("a"))
        plan.set_layer(cpu_layer("b"))
        plan.set_layer(split_layer("c", 0.3))
        plan.alloc = {"a.out": AllocKind.MANAGED, "c.out": AllocKind.REGULAR}
        return plan

    def test_lookup(self):
        plan = self.make_plan()
        assert plan.layer_plan("b").assignment is Assignment.CPU

    def test_missing_layer_raises(self):
        with pytest.raises(PlanError):
            self.make_plan().layer_plan("ghost")

    def test_alloc_defaults_to_regular(self):
        plan = self.make_plan()
        assert plan.alloc_kind("a.out") is AllocKind.MANAGED
        assert plan.alloc_kind("unknown") is AllocKind.REGULAR

    def test_split_layers_view(self):
        assert self.make_plan().split_layers == {"c": 0.3}

    def test_cpu_layers_view(self):
        assert self.make_plan().cpu_layers == ["b"]

    def test_counts(self):
        counts = self.make_plan().counts()
        assert counts == {"gpu": 1, "cpu": 1, "split": 1}

    def test_describe_mentions_counts(self):
        text = self.make_plan().describe()
        assert "gpu=1" in text and "split=1" in text and "managed_buffers=1/2" in text
