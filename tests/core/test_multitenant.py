"""Multi-DNN concurrent inference."""

import pytest

from repro.core.engine import EdgeNN
from repro.core.multitenant import (
    MultiTenantReport,
    concurrent_edgenn,
    run_concurrent,
)
from repro.errors import ReproError
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER

from ..conftest import make_branch_net, make_chain_net


def tuned_job(net):
    engine = EdgeNN(net)
    return engine.graph, engine.plan


class TestRunConcurrent:
    def test_two_tenants_complete(self):
        jobs = [tuned_job(make_chain_net("tenant-a")),
                tuned_job(make_branch_net("tenant-b"))]
        report = run_concurrent(JETSON_AGX_XAVIER, jobs)
        assert isinstance(report, MultiTenantReport)
        assert len(report.tenants) == 2
        for tenant in report.tenants:
            assert tenant.completion_s > 0

    def test_rejects_empty_job_list(self):
        with pytest.raises(ReproError):
            run_concurrent(JETSON_AGX_XAVIER, [])

    def test_makespan_covers_all_completions(self):
        jobs = [tuned_job(make_chain_net("mk-a")),
                tuned_job(make_chain_net("mk-b"))]
        report = run_concurrent(JETSON_AGX_XAVIER, jobs)
        for tenant in report.tenants:
            assert tenant.completion_s <= report.makespan_s + 1e-12

    def test_corun_beats_sequential(self):
        # Two networks time-sharing the device finish sooner than running
        # them back-to-back (they overlap on different resources).
        jobs = [tuned_job(make_chain_net("sq-a")),
                tuned_job(make_branch_net("sq-b"))]
        report = run_concurrent(JETSON_AGX_XAVIER, jobs)
        assert report.makespan_s < report.sequential_s
        assert report.makespan_saving_pct > 0

    def test_each_tenant_slows_down_under_sharing(self):
        jobs = [tuned_job(make_chain_net("sl-a")),
                tuned_job(make_chain_net("sl-b"))]
        report = run_concurrent(JETSON_AGX_XAVIER, jobs)
        for tenant in report.tenants:
            assert tenant.slowdown >= 0.999   # never faster than solo

    def test_tenant_lookup(self):
        jobs = [tuned_job(make_chain_net("look-a"))]
        report = run_concurrent(JETSON_AGX_XAVIER, jobs)
        assert report.tenant("look-a").report.network == "look-a"
        with pytest.raises(ReproError):
            report.tenant("ghost")

    def test_single_tenant_matches_solo_run(self):
        net = make_chain_net("solo-net")
        graph, plan = tuned_job(net)
        report = run_concurrent(JETSON_AGX_XAVIER, [(graph, plan)])
        tenant = report.tenants[0]
        assert tenant.completion_s == pytest.approx(tenant.solo_s, rel=1e-6)

    def test_buffers_are_namespaced_not_colliding(self):
        # Same network name twice: allocations must not collide.
        jobs = [tuned_job(make_chain_net("dup")),
                tuned_job(make_chain_net("dup"))]
        report = run_concurrent(JETSON_AGX_XAVIER, jobs)
        assert len(report.tenants) == 2


class TestConcurrentEdgeNN:
    def test_end_to_end_on_paper_networks(self):
        report = concurrent_edgenn(["lenet", "squeezenet"])
        assert {t.report.network for t in report.tenants} == {
            "lenet", "squeezenet"
        }
        assert report.makespan_s > 0
        assert report.energy.energy_j > 0

    def test_energy_accounted_at_device_level(self):
        report = concurrent_edgenn(["lenet", "lenet"])
        spec = JETSON_AGX_XAVIER.power
        assert (spec.idle_w
                <= report.energy.average_power_w
                <= spec.idle_w + spec.cpu_dynamic_w + spec.gpu_dynamic_w)
