"""Per-layer measurement store."""

import pytest

from repro.core.profiler import LayerProfile, ProfileStore
from repro.errors import TuningError


class TestProfileStore:
    def test_record_and_read(self):
        store = ProfileStore()
        store.record_gpu("conv1", 1e-3)
        store.record_cpu("conv1", 4e-3)
        assert store.gpu_time("conv1") == pytest.approx(1e-3)
        assert store.cpu_time("conv1") == pytest.approx(4e-3)

    def test_missing_profile_raises(self):
        store = ProfileStore()
        with pytest.raises(TuningError):
            store.gpu_time("conv1")
        store.record_gpu("conv1", 1e-3)
        with pytest.raises(TuningError):
            store.cpu_time("conv1")

    def test_has_both(self):
        store = ProfileStore()
        assert not store.has_both("x")
        store.record_gpu("x", 1.0)
        assert not store.has_both("x")
        store.record_cpu("x", 1.0)
        assert store.has_both("x")

    def test_contains(self):
        store = ProfileStore()
        assert "x" not in store
        store.record_gpu("x", 1.0)
        assert "x" in store

    def test_ewma_smoothing(self):
        store = ProfileStore(ewma_alpha=0.5)
        store.record_gpu("x", 1.0)
        store.record_gpu("x", 3.0)
        assert store.gpu_time("x") == pytest.approx(2.0)

    def test_alpha_one_tracks_latest(self):
        store = ProfileStore(ewma_alpha=1.0)
        store.record_gpu("x", 1.0)
        store.record_gpu("x", 3.0)
        assert store.gpu_time("x") == 3.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(TuningError):
            ProfileStore(ewma_alpha=0.0)
        with pytest.raises(TuningError):
            ProfileStore(ewma_alpha=1.5)

    def test_negative_measurement_rejected(self):
        store = ProfileStore()
        with pytest.raises(TuningError):
            store.record_gpu("x", -1.0)
        with pytest.raises(TuningError):
            store.record_split("x", 0.5, -1.0, 0.0, 0.0)

    def test_split_history(self):
        store = ProfileStore()
        store.record_split("fc", 0.4, 2e-3, 1.8e-3, 2e-3)
        store.record_split("fc", 0.5, 1.5e-3, 1.5e-3, 1.4e-3)
        latest = store.latest_split("fc")
        assert latest.cpu_fraction == 0.5
        assert latest.wall_s == pytest.approx(1.5e-3)

    def test_latest_split_none_when_absent(self):
        store = ProfileStore()
        assert store.latest_split("fc") is None


class TestLayerProfile:
    def test_best_known_wall(self):
        profile = LayerProfile("x", cpu_s=3.0, gpu_s=2.0)
        assert profile.best_known_wall() == 2.0

    def test_best_known_includes_splits(self):
        store = ProfileStore()
        store.record_gpu("x", 2.0)
        store.record_split("x", 0.5, 1.2, 1.1, 1.2)
        assert store.profile("x").best_known_wall() == pytest.approx(1.2)

    def test_best_known_empty(self):
        assert LayerProfile("x").best_known_wall() is None
