"""Adaptive tuner: profiling, analytic seed, and feedback behaviour."""

import pytest

from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy
from repro.core.plan import Assignment
from repro.core.tuner import AdaptiveTuner, TunerConfig, TuningResult
from repro.errors import TuningError
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER, RASPBERRY_PI_4

from ..conftest import make_branch_net, make_chain_net


class TestConstruction:
    def test_requires_gpu_device(self, chain_net, rpi):
        with pytest.raises(TuningError, match="no GPU"):
            AdaptiveTuner(chain_net, rpi)


class TestProfiling:
    def test_profile_passes_fill_store(self, chain_net, jetson):
        tuner = AdaptiveTuner(chain_net, jetson)
        result = tuner.tune()
        for name in chain_net.topo_order():
            assert tuner.profiles.has_both(name)
        assert isinstance(result, TuningResult)

    def test_profiles_are_positive_for_real_layers(self, chain_net, jetson):
        tuner = AdaptiveTuner(chain_net, jetson)
        tuner.tune()
        assert tuner.profiles.gpu_time("conv1") > 0
        assert tuner.profiles.cpu_time("conv1") > 0


class TestTunedPlanQuality:
    def test_tuned_plan_not_slower_than_gpu_only(self, chain_net, jetson):
        tuner = AdaptiveTuner(chain_net, jetson)
        result = tuner.tune()
        tuned = HybridExecutor(chain_net, jetson, result.plan).run()
        gpu_only_round = result.rounds[0]  # the GPU profiling pass
        assert tuned.total_s <= gpu_only_round.total_s * 1.001

    def test_rounds_recorded(self, chain_net, jetson):
        result = AdaptiveTuner(chain_net, jetson).tune()
        assert len(result.rounds) >= 2
        assert result.converged_after >= 1

    def test_final_report_exists(self, chain_net, jetson):
        result = AdaptiveTuner(chain_net, jetson).tune()
        assert result.final_report.total_s > 0

    def test_empty_result_raises_on_final_report(self, chain_net):
        from repro.core.plan import ExecutionPlan
        result = TuningResult(plan=ExecutionPlan("x"))
        with pytest.raises(TuningError):
            result.final_report

    def test_plan_covers_every_layer(self, chain_net, jetson):
        result = AdaptiveTuner(chain_net, jetson).tune()
        for name in chain_net.topo_order():
            result.plan.layer_plan(name)


class TestFeatureFlags:
    def test_intra_kernel_disabled_yields_no_splits(self, chain_net, jetson):
        config = TunerConfig(use_intra_kernel=False)
        result = AdaptiveTuner(chain_net, jetson, config).tune()
        assert result.plan.split_layers == {}
        assert result.plan.cpu_layers == []

    def test_inter_kernel_disabled_keeps_branches_on_gpu(self, branch_net, jetson):
        config = TunerConfig(use_intra_kernel=False, use_inter_kernel=False)
        result = AdaptiveTuner(branch_net, jetson, config).tune()
        for name in ("left", "left_relu", "right", "right_relu"):
            assert result.plan.layer_plan(name).assignment is Assignment.GPU

    def test_inter_kernel_splits_branches_across_processors(self, branch_net, jetson):
        config = TunerConfig(use_intra_kernel=False, use_inter_kernel=True)
        result = AdaptiveTuner(branch_net, jetson, config).tune()
        assignments = {
            name: result.plan.layer_plan(name).assignment
            for name in ("left", "right")
        }
        # Inter-kernel co-running engaged: the two independent branches run
        # on different processors (which one gets the CPU depends on the
        # measured costs at this scale).
        assert set(assignments.values()) == {Assignment.CPU, Assignment.GPU}

    def test_branch_layers_share_their_branch_processor(self, branch_net, jetson):
        config = TunerConfig(use_intra_kernel=False, use_inter_kernel=True)
        result = AdaptiveTuner(branch_net, jetson, config).tune()
        assert (result.plan.layer_plan("left").assignment
                is result.plan.layer_plan("left_relu").assignment)
        assert (result.plan.layer_plan("right").assignment
                is result.plan.layer_plan("right_relu").assignment)

    def test_memory_policy_respected(self, chain_net, jetson):
        from repro.hardware.memory import AllocKind
        config = TunerConfig(memory_policy=MemoryPolicy.ALL_REGULAR)
        result = AdaptiveTuner(chain_net, jetson, config).tune()
        kinds = set(result.plan.alloc.values())
        assert kinds == {AllocKind.REGULAR}


class TestFeedback:
    def test_branch_layers_protected_from_demotion(self, branch_net, jetson):
        # The scheduler's branch assignments must survive the per-layer
        # feedback rounds (a CPU branch can be individually slower than the
        # GPU yet globally useful).
        config = TunerConfig(use_intra_kernel=False, use_inter_kernel=True,
                             max_feedback_rounds=4)
        tuner = AdaptiveTuner(branch_net, jetson, config)
        result = tuner.tune()
        branch_assignments = {
            result.plan.layer_plan(n).assignment for n in ("left", "right")
        }
        assert Assignment.CPU in branch_assignments

    def test_splits_have_sane_fractions(self, jetson):
        from repro.nn.models import build
        result = AdaptiveTuner(build("alexnet"), jetson).tune()
        for fraction in result.plan.split_layers.values():
            assert 0.05 <= fraction <= 0.95

    def test_best_measured_plan_kept(self, chain_net, jetson):
        result = AdaptiveTuner(chain_net, jetson).tune()
        best = min(r.total_s for r in result.rounds[1:])
        final = HybridExecutor(chain_net, jetson, result.plan).run()
        assert final.total_s <= best * 1.001
