"""Inter-kernel branch assignment (§IV-D non-chain strategy search)."""

import pytest

from repro.core.profiler import ProfileStore
from repro.core.scheduler import (
    BranchCosts,
    assignments_for_graph,
    branch_costs,
    choose_assignment,
    predict_assignment_time,
)
from repro.errors import PlanError
from repro.hardware.specs import ProcessorKind
from repro.nn.graph import BranchSegment

from ..conftest import make_branch_net, make_residual_net

CPU = ProcessorKind.CPU
GPU = ProcessorKind.GPU

RATE = 1e9  # 1 GB/s copy rate for readable numbers


def costs_pair(cpu1, gpu1, cpu2, gpu2, out1=0.0, out2=0.0):
    return [
        BranchCosts(layers=("a",), cpu_s=cpu1, gpu_s=gpu1, out_bytes=out1),
        BranchCosts(layers=("b",), cpu_s=cpu2, gpu_s=gpu2, out_bytes=out2),
    ]


class TestPrediction:
    def test_paper_strategy_one(self):
        # Yellow -> CPU, green -> GPU: max(t_c1, t_g2) + v1/s.
        costs = costs_pair(cpu1=3.0, gpu1=1.0, cpu2=9.0, gpu2=4.0, out1=1e9)
        t = predict_assignment_time(costs, [CPU, GPU], RATE)
        assert t == pytest.approx(max(3.0, 4.0) + 1.0)

    def test_paper_strategy_all_gpu(self):
        costs = costs_pair(cpu1=3.0, gpu1=1.0, cpu2=9.0, gpu2=4.0)
        t = predict_assignment_time(costs, [GPU, GPU], RATE)
        assert t == pytest.approx(1.0 + 4.0)

    def test_handoff_free_drops_copy_term(self):
        costs = costs_pair(cpu1=3.0, gpu1=1.0, cpu2=9.0, gpu2=4.0, out1=1e9)
        t = predict_assignment_time(costs, [CPU, GPU], RATE, handoff_free=True)
        assert t == pytest.approx(4.0)

    def test_arity_mismatch_rejected(self):
        costs = costs_pair(1, 1, 1, 1)
        with pytest.raises(PlanError):
            predict_assignment_time(costs, [CPU], RATE)

    def test_bad_rate_rejected(self):
        with pytest.raises(PlanError):
            predict_assignment_time(costs_pair(1, 1, 1, 1), [CPU, GPU], 0.0)


class TestChoice:
    def test_parallel_win(self):
        # CPU on the small branch overlaps the GPU's big branch.
        costs = costs_pair(cpu1=2.0, gpu1=1.0, cpu2=16.0, gpu2=4.0)
        best = choose_assignment(costs, RATE, handoff_free=True)
        assert best.processors == (CPU, GPU)
        assert best.predicted_s == pytest.approx(4.0)
        assert best.uses_cpu

    def test_all_gpu_when_cpu_too_slow(self):
        costs = costs_pair(cpu1=100.0, gpu1=1.0, cpu2=100.0, gpu2=4.0)
        best = choose_assignment(costs, RATE)
        assert best.processors == (GPU, GPU)

    def test_handoff_cost_can_flip_decision(self):
        # CPU branch helps on compute but its output copy erases the gain.
        costs = costs_pair(cpu1=2.0, gpu1=1.9, cpu2=16.0, gpu2=4.0, out1=3e9)
        with_copy = choose_assignment(costs, RATE, handoff_free=False)
        free = choose_assignment(costs, RATE, handoff_free=True)
        assert with_copy.processors == (GPU, GPU)
        assert free.processors == (CPU, GPU)

    def test_empty_branches_pinned_to_gpu(self):
        costs = [
            BranchCosts(layers=(), cpu_s=0.0, gpu_s=0.0, out_bytes=0.0),
            BranchCosts(layers=("m",), cpu_s=4.0, gpu_s=2.0, out_bytes=0.0),
        ]
        best = choose_assignment(costs, RATE)
        assert best.processors[0] is GPU

    def test_allow_cpu_false_forces_all_gpu(self):
        costs = costs_pair(cpu1=0.1, gpu1=10.0, cpu2=0.1, gpu2=10.0)
        best = choose_assignment(costs, RATE, allow_cpu=False)
        assert best.processors == (GPU, GPU)

    def test_empty_segment_rejected(self):
        with pytest.raises(PlanError):
            choose_assignment([], RATE)


class TestGraphIntegration:
    def _profiles_for(self, net, cpu_s=1e-3, gpu_s=1e-4):
        profiles = ProfileStore()
        for name in net.topo_order():
            profiles.record_cpu(name, cpu_s)
            profiles.record_gpu(name, gpu_s)
        return profiles

    def test_branch_costs_sums_layers(self, branch_net):
        profiles = self._profiles_for(branch_net)
        seg = next(s for s in branch_net.segments()
                   if isinstance(s, BranchSegment))
        costs = branch_costs(branch_net, seg, profiles)
        assert len(costs) == 2
        for c in costs:
            assert c.cpu_s == pytest.approx(2e-3)   # conv + relu
            assert c.gpu_s == pytest.approx(2e-4)
            assert c.out_bytes > 0

    def test_branch_costs_skip_noop_layers(self, residual_net):
        profiles = self._profiles_for(residual_net)
        seg = next(s for s in residual_net.segments()
                   if isinstance(s, BranchSegment))
        costs = branch_costs(residual_net, seg, profiles)
        empty = [c for c in costs if not c.layers]
        assert empty and empty[0].cpu_s == 0.0

    def test_assignments_for_graph_keys_by_join(self, branch_net):
        profiles = self._profiles_for(branch_net)
        result = assignments_for_graph(branch_net, profiles, RATE)
        assert set(result) == {"concat"}
