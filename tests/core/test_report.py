"""Inference report records and helpers."""

import pytest

from repro.core.plan import Assignment
from repro.core.report import (
    InferenceReport,
    LayerResult,
    improvement,
    speedup,
)
from repro.errors import ReproError
from repro.hardware.power import EnergyReport
from repro.sim.trace import Trace


def layer(name, cls="conv", cpu=0.0, gpu=1e-3, copy=0.0, start=0.0, end=1e-3,
          assignment=Assignment.GPU, p=0.0):
    return LayerResult(
        name=name, kernel_class=cls, assignment=assignment, cpu_fraction=p,
        start_s=start, end_s=end, kernel_cpu_s=cpu, kernel_gpu_s=gpu,
        copy_s=copy, overhead_s=0.0,
    )


def report(layers, total=1.0, copy=0.1):
    energy = EnergyReport(
        duration_s=total, cpu_utilization=0.5, gpu_utilization=0.5,
        average_power_w=5.0, energy_j=5.0 * total,
    )
    return InferenceReport(
        network="net", device="jetson-agx-xavier", total_s=total,
        layers=layers, copy_s_total=copy, cpu_busy_s=0.5, gpu_busy_s=0.5,
        energy=energy, trace=Trace(),
    )


class TestLayerResult:
    def test_wall_is_span(self):
        lr = layer("a", start=1.0, end=3.0)
        assert lr.wall_s == pytest.approx(2.0)

    def test_kernel_is_slower_side(self):
        lr = layer("a", cpu=2e-3, gpu=1e-3, assignment=Assignment.SPLIT, p=0.5)
        assert lr.kernel_s == pytest.approx(2e-3)

    def test_attributed_adds_copies(self):
        lr = layer("a", gpu=1e-3, copy=5e-4)
        assert lr.attributed_s == pytest.approx(1.5e-3)


class TestInferenceReport:
    def test_layer_lookup(self):
        rep = report([layer("a"), layer("b")])
        assert rep.layer("b").name == "b"

    def test_layer_lookup_missing(self):
        with pytest.raises(ReproError):
            report([layer("a")]).layer("ghost")

    def test_copy_share(self):
        rep = report([layer("a")], total=2.0, copy=0.5)
        assert rep.copy_share == pytest.approx(0.25)

    def test_copy_share_zero_total(self):
        rep = report([], total=1.0, copy=0.0)
        object.__setattr__  # no-op; dataclass not frozen
        rep.total_s = 0.0
        assert rep.copy_share == 0.0

    def test_time_by_class(self):
        rep = report([
            layer("a", cls="conv", start=0.0, end=1.0),
            layer("b", cls="conv", start=1.0, end=1.5),
            layer("c", cls="dense", start=1.5, end=3.0),
        ])
        by_class = rep.time_by_class()
        assert by_class["conv"] == pytest.approx(1.5)
        assert by_class["dense"] == pytest.approx(1.5)

    def test_layers_of_class(self):
        rep = report([layer("a", cls="conv"), layer("b", cls="dense")])
        assert [lr.name for lr in rep.layers_of_class("dense")] == ["b"]

    def test_to_dict_round_numbers(self):
        d = report([layer("a")], total=0.25, copy=0.05).to_dict()
        assert d["total_ms"] == pytest.approx(250.0)
        assert d["copy_share"] == pytest.approx(0.2)
        assert d["network"] == "net"


class TestHelpers:
    def test_improvement(self):
        assert improvement(2.0, 1.5) == pytest.approx(0.25)
        assert improvement(2.0, 2.5) == pytest.approx(-0.25)

    def test_improvement_bad_baseline(self):
        with pytest.raises(ReproError):
            improvement(0.0, 1.0)

    def test_speedup(self):
        assert speedup(4.0, 2.0) == pytest.approx(2.0)

    def test_speedup_bad_improved(self):
        with pytest.raises(ReproError):
            speedup(1.0, 0.0)
