"""Torn-write regression: a writer killed mid-persist never corrupts
the artifact directory (satellite of the crash-safe plan store).

The subprocess patches ``os.fsync`` to SIGKILL itself after the data
reaches the ``*.tmp`` sibling but *before* ``os.replace`` — the widest
torn-write window ``atomic_write_text`` leaves open.  The destination
must stay untouched (absent, or byte-identical old content) and the
only debris must be a ``*.tmp`` file that ``sweep_tmp_files`` collects.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.core.plan_cache import PlanCache, PlanKey
from repro.core.tuner import AdaptiveTuner
from repro.fsutil import TMP_SUFFIX, atomic_write_text, sweep_tmp_files
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build as build_model

SRC = str(Path(__file__).resolve().parents[2] / "src")

KILL_AFTER_FSYNC = """
import os, sys
sys.path.insert(0, {src!r})
real_fsync = os.fsync
def killing_fsync(fd):
    real_fsync(fd)
    os.kill(os.getpid(), 9)
os.fsync = killing_fsync
"""


def make_key(**overrides) -> PlanKey:
    fields = dict(
        network="lenet", device="jetson-agx-xavier", batch_size=1,
        precision="fp32", use_memory_management=True,
        use_hybrid_execution=True, use_inter_kernel=True,
        use_intra_kernel=True, objective="latency",
    )
    fields.update(overrides)
    return PlanKey(**fields)


def tune_lenet():
    tuner = AdaptiveTuner(build_model("lenet"), Device(JETSON_AGX_XAVIER))
    return tuner.tune()


def run_killed_writer(body: str) -> subprocess.CompletedProcess:
    script = KILL_AFTER_FSYNC.format(src=SRC) + body
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"writer should die by SIGKILL mid-write, got "
        f"rc={proc.returncode}\nstdout={proc.stdout}\nstderr={proc.stderr}"
    )
    return proc


class TestKilledCachePersist:
    def test_no_torn_artifact_and_clean_recovery(self, tmp_path):
        save_dir = tmp_path / "plans"
        run_killed_writer(f"""
from repro.core.plan_cache import PlanCache, PlanKey
from repro.core.tuner import AdaptiveTuner
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build
key = PlanKey(network="lenet", device="jetson-agx-xavier", batch_size=1,
              precision="fp32", use_memory_management=True,
              use_hybrid_execution=True, use_inter_kernel=True,
              use_intra_kernel=True, objective="latency")
cache = PlanCache(save_dir={str(save_dir)!r})
cache.get_or_tune(
    key,
    lambda: AdaptiveTuner(build("lenet"),
                          Device(JETSON_AGX_XAVIER)).tune(),
)
print("UNREACHABLE")
""")
        # The destination never appeared; only tmp debris is allowed.
        assert list(save_dir.glob("*.json")) == []
        debris = list(save_dir.glob(f"*{TMP_SUFFIX}"))
        assert debris, "the kill window should leave the tmp sibling"

        # Recovery: sweep the corpse, re-tune, persist for real.
        assert sweep_tmp_files(save_dir) == debris
        key = make_key()
        cache = PlanCache(save_dir=save_dir)
        cache.get_or_tune(key, tune_lenet)
        assert (save_dir / f"{key.slug()}.json").exists()
        assert cache.corrupt_loads == 0

        # And a *fresh* process-view cache loads it with zero tuning.
        warm = PlanCache(save_dir=save_dir)
        result = warm.get_or_tune(
            key, lambda: (_ for _ in ()).throw(AssertionError("re-tuned"))
        )
        assert result.source == "artifact"

    def test_killed_overwrite_keeps_old_bytes(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, '{"old": "complete content"}\n')
        before = target.read_bytes()
        run_killed_writer(f"""
from repro.fsutil import atomic_write_text
atomic_write_text({str(target)!r}, '{{"new": "' + "x" * 65536 + '"}}')
""")
        assert target.read_bytes() == before
        assert sweep_tmp_files(tmp_path)
        assert target.read_bytes() == before
