"""PlanCache satellites: disk persistence, thread safety, key validation."""

import threading

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.plan_cache import PlanCache, PlanKey
from repro.core.tuner import AdaptiveTuner
from repro.errors import ReproError
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build as build_model
from repro.obs import Observability


def make_key(**overrides) -> PlanKey:
    fields = dict(
        network="lenet", device="jetson-agx-xavier", batch_size=1,
        precision="fp32", use_memory_management=True,
        use_hybrid_execution=True, use_inter_kernel=True,
        use_intra_kernel=True, objective="latency",
    )
    fields.update(overrides)
    return PlanKey(**fields)


def tune_lenet() -> "object":
    tuner = AdaptiveTuner(build_model("lenet"), Device(JETSON_AGX_XAVIER))
    return tuner.tune()


class TestDiskPersistence:
    def test_tuned_result_written_as_artifact(self, tmp_path):
        cache = PlanCache(save_dir=tmp_path)
        key = make_key()
        cache.get_or_tune(key, tune_lenet)
        path = tmp_path / f"{key.slug()}.json"
        assert path.exists()

    def test_fresh_cache_warm_starts_without_tuning(self, tmp_path):
        key = make_key()
        original = PlanCache(save_dir=tmp_path).get_or_tune(key, tune_lenet)

        def fail():  # pragma: no cover - must not be called
            raise AssertionError("warm start should not tune")

        fresh = PlanCache(save_dir=tmp_path)
        reloaded = fresh.get_or_tune(key, fail)
        assert fresh.hits == 1
        assert fresh.disk_hits == 1
        assert fresh.misses == 0
        assert reloaded.source == "artifact"
        assert reloaded.plan.to_dict() == original.plan.to_dict()

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        key = make_key()
        PlanCache(save_dir=tmp_path).get_or_tune(key, tune_lenet)
        fresh = PlanCache(save_dir=tmp_path)
        fresh.get_or_tune(key, tune_lenet)
        fresh.get_or_tune(key, tune_lenet)
        assert fresh.disk_hits == 1     # second hit came from memory
        assert fresh.hits == 2

    def test_warm_started_engine_runs_zero_tuner_rounds(self, tmp_path):
        key = make_key()
        PlanCache(save_dir=tmp_path).get_or_tune(key, tune_lenet)
        obs = Observability.on()
        engine = EdgeNN(
            "lenet", JETSON_AGX_XAVIER,
            plan_cache=PlanCache(save_dir=tmp_path), obs=obs,
        )
        engine.run()
        if "repro_tuner_feedback_rounds_total" in obs.metrics:
            fam = obs.metrics.family("repro_tuner_feedback_rounds_total")
            assert sum(inst.value for _, inst in fam.children()) == 0.0

    def test_key_mismatch_on_disk_raises(self, tmp_path):
        key = make_key()
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(key, tune_lenet)
        other = make_key(objective="energy")
        artifact = (tmp_path / f"{key.slug()}.json").read_text()
        (tmp_path / f"{other.slug()}.json").write_text(artifact)
        with pytest.raises(ReproError, match="different key"):
            PlanCache(save_dir=tmp_path).get_or_tune(other, tune_lenet)

    def test_clear_keeps_disk_artifacts(self, tmp_path):
        cache = PlanCache(save_dir=tmp_path)
        key = make_key()
        cache.get_or_tune(key, tune_lenet)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        assert (tmp_path / f"{key.slug()}.json").exists()
        cache.get_or_tune(key, tune_lenet)
        assert cache.disk_hits == 1

    def test_sentinel_values_not_persisted(self, tmp_path):
        cache = PlanCache(save_dir=tmp_path)
        cache.get_or_tune(make_key(), lambda: "sentinel")
        assert list(tmp_path.iterdir()) == []


class TestThreadSafety:
    def test_racing_threads_tune_once(self):
        cache = PlanCache()
        key = make_key()
        calls = []
        gate = threading.Barrier(8)

        def tune():
            calls.append(1)
            return tune_lenet()

        def worker():
            gate.wait()
            cache.get_or_tune(key, tune)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert cache.misses == 1
        assert cache.hits == 7

    def test_counters_consistent_across_keys(self):
        cache = PlanCache()
        keys = [make_key(batch_size=b) for b in (1, 2, 4, 8)]
        gate = threading.Barrier(8)

        def worker(i):
            gate.wait()
            for key in keys:
                cache.get_or_tune(key, lambda: f"plan-{i}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.misses == len(keys)
        assert cache.hits + cache.misses == 8 * len(keys)


class TestFromConfigValidation:
    def test_valid_config_round_trips(self):
        config = EdgeNNConfig()
        key = PlanKey.from_config("lenet", "jetson-agx-xavier", config)
        assert PlanKey.from_dict(key.to_dict()) == key

    @pytest.mark.parametrize("network", ["", None, 7])
    def test_bad_network(self, network):
        with pytest.raises(ReproError, match="PlanKey.from_config.*network"):
            PlanKey.from_config(network, "jetson-agx-xavier", EdgeNNConfig())

    @pytest.mark.parametrize("device", ["", None])
    def test_bad_device(self, device):
        with pytest.raises(ReproError, match="PlanKey.from_config.*device"):
            PlanKey.from_config("lenet", device, EdgeNNConfig())

    @pytest.mark.parametrize("batch", [0, -1, 1.5, True, None])
    def test_bad_batch_size(self, batch):
        bad = type("Cfg", (), {"batch_size": batch})()
        with pytest.raises(ReproError, match="batch_size must be an int"):
            PlanKey.from_config("lenet", "jetson-agx-xavier", bad)

    def test_missing_precision_named_in_error(self):
        class Cfg:
            batch_size = 1

        with pytest.raises(ReproError, match="precision must be a Precision"):
            PlanKey.from_config("lenet", "jetson-agx-xavier", Cfg())

    def test_missing_objective_named_in_error(self):
        config = EdgeNNConfig()

        class Cfg:
            batch_size = config.batch_size
            precision = config.precision

        with pytest.raises(ReproError, match="objective must be a Tuning"):
            PlanKey.from_config("lenet", "jetson-agx-xavier", Cfg())

    def test_non_bool_flag_named_in_error(self):
        config = EdgeNNConfig()

        class Cfg:
            batch_size = config.batch_size
            precision = config.precision
            objective = config.objective
            use_memory_management = "yes"

        with pytest.raises(
            ReproError, match="use_memory_management must be a bool"
        ):
            PlanKey.from_config("lenet", "jetson-agx-xavier", Cfg())
