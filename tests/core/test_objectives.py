"""Tuning objectives: latency (the paper), energy, and EDP extensions."""

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.tuner import TuningObjective

from ..conftest import make_chain_net


class TestObjectiveScores:
    def test_scores_use_the_right_quantity(self, chain_net):
        report = EdgeNN(make_chain_net("score-net")).run()
        assert TuningObjective.LATENCY.score(report) == report.total_s
        assert TuningObjective.ENERGY.score(report) == report.energy.energy_j
        assert TuningObjective.EDP.score(report) == pytest.approx(
            report.total_s * report.energy.energy_j
        )

    def test_enum_round_trip(self):
        assert TuningObjective("energy") is TuningObjective.ENERGY


class TestObjectiveDrivenTuning:
    def _report(self, objective):
        config = EdgeNNConfig(objective=objective)
        return EdgeNN(make_chain_net(f"obj-{objective.value}"),
                      config=config).run()

    def test_latency_objective_minimizes_time(self):
        latency = self._report(TuningObjective.LATENCY)
        energy = self._report(TuningObjective.ENERGY)
        assert latency.total_s <= energy.total_s * 1.001

    def test_energy_objective_minimizes_joules(self):
        latency = self._report(TuningObjective.LATENCY)
        energy = self._report(TuningObjective.ENERGY)
        assert energy.energy.energy_j <= latency.energy.energy_j * 1.001

    def test_all_objectives_produce_valid_plans(self):
        for objective in TuningObjective:
            report = self._report(objective)
            assert report.total_s > 0
