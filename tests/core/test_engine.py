"""EdgeNN engine facade."""

import numpy as np
import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.memory_manager import MemoryPolicy
from repro.errors import ReproError
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER, RASPBERRY_PI_4, RTX_2080TI_HOST
from repro.workloads import input_for

from ..conftest import make_chain_net


class TestConstruction:
    def test_accepts_network_name(self):
        engine = EdgeNN("lenet")
        assert engine.graph.name == "lenet"

    def test_accepts_graph_object(self, chain_net):
        engine = EdgeNN(chain_net)
        assert engine.graph is chain_net

    def test_defaults_to_jetson(self):
        assert EdgeNN("lenet").device.name == "jetson-agx-xavier"

    def test_accepts_device_spec_or_instance(self):
        assert EdgeNN("lenet", JETSON_AGX_XAVIER).device.name == "jetson-agx-xavier"
        dev = Device(JETSON_AGX_XAVIER)
        assert EdgeNN("lenet", dev).device is dev

    def test_rejects_non_integrated_devices(self):
        with pytest.raises(ReproError, match="integrated"):
            EdgeNN("lenet", RASPBERRY_PI_4)
        with pytest.raises(ReproError, match="integrated"):
            EdgeNN("lenet", RTX_2080TI_HOST)


class TestConfig:
    def test_default_config_enables_everything(self):
        config = EdgeNNConfig()
        assert config.memory_policy() is MemoryPolicy.SEMANTIC
        tc = config.tuner_config()
        assert tc.use_intra_kernel and tc.use_inter_kernel

    def test_memory_management_off(self):
        config = EdgeNNConfig(use_memory_management=False)
        assert config.memory_policy() is MemoryPolicy.ALL_REGULAR

    def test_hybrid_off_disables_both_corun_modes(self):
        tc = EdgeNNConfig(use_hybrid_execution=False).tuner_config()
        assert not tc.use_intra_kernel and not tc.use_inter_kernel

    def test_subflags(self):
        tc = EdgeNNConfig(use_intra_kernel=False).tuner_config()
        assert not tc.use_intra_kernel and tc.use_inter_kernel


class TestRun:
    def test_tune_is_cached(self, chain_net):
        engine = EdgeNN(chain_net)
        first = engine.tune()
        second = engine.tune()
        assert first is second

    def test_tune_force_retunes(self, chain_net):
        engine = EdgeNN(chain_net)
        first = engine.tune()
        second = engine.tune(force=True)
        assert first is not second

    def test_run_returns_report(self, chain_net):
        report = EdgeNN(chain_net).run()
        assert report.total_s > 0
        assert report.device == "jetson-agx-xavier"

    def test_run_is_deterministic(self, chain_net):
        engine = EdgeNN(chain_net)
        assert engine.run().total_s == pytest.approx(engine.run().total_s)

    def test_summary_text(self, chain_net):
        text = EdgeNN(chain_net).summary()
        assert "EdgeNN" in text and "plan[" in text


class TestInfer:
    def test_numeric_inference(self, chain_net):
        engine = EdgeNN(chain_net)
        out = engine.infer(input_for(chain_net))
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_infer_matches_graph_forward(self, chain_net):
        engine = EdgeNN(chain_net)
        x = input_for(chain_net, seed=7)
        expected = chain_net.forward(x)
        np.testing.assert_allclose(engine.infer(x), expected, rtol=1e-5)

    def test_placement_does_not_change_numerics(self, chain_net):
        # The same input through differently-configured engines gives the
        # same mathematical result.
        x = input_for(chain_net, seed=3)
        full = EdgeNN(chain_net).infer(x)
        plain = EdgeNN(
            chain_net,
            config=EdgeNNConfig(use_memory_management=False,
                                use_hybrid_execution=False),
        ).infer(x)
        np.testing.assert_allclose(full, plain, rtol=1e-6)
