"""Buffer role classification by data-processing semantics (§IV-B)."""

from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import ExecutionPlan, gpu_layer, split_layer
from repro.core.semantics import (
    BufferRole,
    classify_buffers,
    input_buffer,
    output_buffer,
    weights_buffer,
)

from ..conftest import make_chain_net


def all_gpu_plan(net):
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    return plan


class TestNaming:
    def test_buffer_names(self):
        assert input_buffer() == "input"
        assert weights_buffer("fc6") == "fc6.weights"
        assert output_buffer("fc6") == "fc6.out"


class TestClassification:
    def test_network_input(self, chain_net):
        roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        assert roles["input"] is BufferRole.NETWORK_INPUT

    def test_weights(self, chain_net):
        roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        assert roles["conv1.weights"] is BufferRole.WEIGHTS
        assert roles["fc1.weights"] is BufferRole.WEIGHTS

    def test_parameter_free_layers_have_no_weights_buffer(self, chain_net):
        roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        assert "relu1.weights" not in roles

    def test_noop_layers_have_no_output_buffer(self, chain_net):
        roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        assert "flatten.out" not in roles
        assert "drop1.out" not in roles

    def test_single_writer_activation(self, chain_net):
        roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        assert roles["conv1.out"] is BufferRole.ACTIVATION

    def test_network_output(self, chain_net):
        roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        assert roles["softmax.out"] is BufferRole.NETWORK_OUTPUT

    def test_split_layer_output_is_cowritten(self, chain_net):
        plan = all_gpu_plan(chain_net)
        plan.set_layer(split_layer("fc1", 0.4))
        roles = classify_buffers(chain_net, plan)
        assert roles["fc1.out"] is BufferRole.COWRITTEN_OUTPUT

    def test_classification_is_plan_dependent(self, chain_net):
        # The same buffer changes role when the plan changes — the reason
        # memory management must cooperate with hybrid execution.
        gpu_roles = classify_buffers(chain_net, all_gpu_plan(chain_net))
        split_plan = all_gpu_plan(chain_net)
        split_plan.set_layer(split_layer("conv1", 0.3))
        split_roles = classify_buffers(chain_net, split_plan)
        assert gpu_roles["conv1.out"] is BufferRole.ACTIVATION
        assert split_roles["conv1.out"] is BufferRole.COWRITTEN_OUTPUT
