"""Cloud-offload model (§V-D)."""

import pytest

from repro.baselines import CloudModel, CloudResult, run_cloud
from repro.errors import SpecError
from repro.hardware.specs import RTX_2080TI_HOST

from ..conftest import make_chain_net


class TestCloudModel:
    def test_paper_defaults(self):
        model = CloudModel()
        # 400 KB at 1 MB/s = 0.4 s transmission.
        assert model.transmission_s == pytest.approx(0.4)
        assert model.cloud_latency_s == pytest.approx(0.1)

    def test_custom_bandwidth(self):
        model = CloudModel(bandwidth=10e6)
        assert model.transmission_s == pytest.approx(0.04)

    def test_validation(self):
        with pytest.raises(SpecError):
            CloudModel(bandwidth=0.0)
        with pytest.raises(SpecError):
            CloudModel(cloud_latency_s=-1.0)


class TestRunCloud:
    def test_total_is_sum_of_terms(self, chain_net):
        result = run_cloud(chain_net)
        assert result.total_s == pytest.approx(
            result.computing_s + result.transmission_s + result.cloud_latency_s
        )

    def test_computing_matches_discrete_gpu_baseline(self, chain_net):
        from repro.baselines import run_gpu_only
        result = run_cloud(chain_net)
        direct = run_gpu_only(make_chain_net(), RTX_2080TI_HOST)
        assert result.computing_s == pytest.approx(direct.total_s, rel=1e-6)

    def test_network_overhead_dominates_small_models(self):
        result = run_cloud("lenet")
        assert result.transmission_s + result.cloud_latency_s > result.computing_s

    def test_faster_network_reduces_total(self, chain_net):
        slow = run_cloud(chain_net, model=CloudModel(bandwidth=1e6))
        fast = run_cloud(chain_net, model=CloudModel(bandwidth=10e6))
        assert fast.total_s < slow.total_s
        assert fast.computing_s == pytest.approx(slow.computing_s)
