"""Inter-kernel-only comparator (§V-F)."""

import pytest

from repro.baselines import run_gpu_only, run_interkernel_only
from repro.core.memory_manager import MemoryPolicy
from repro.core.plan import Assignment
from repro.hardware.specs import JETSON_AGX_XAVIER

from ..conftest import make_branch_net, make_chain_net


class TestInterkernelOnly:
    def test_never_splits_layers(self, branch_net):
        report = run_interkernel_only(branch_net, JETSON_AGX_XAVIER)
        for lr in report.layers:
            assert lr.assignment is not Assignment.SPLIT

    def test_helps_branchy_graphs(self, branch_net):
        base = run_gpu_only(make_branch_net(), JETSON_AGX_XAVIER,
                            policy=MemoryPolicy.ALL_MANAGED).total_s
        inter = run_interkernel_only(branch_net, JETSON_AGX_XAVIER).total_s
        assert inter <= base * 1.001

    def test_cannot_help_pure_chains(self, chain_net):
        # The paper's core §V-F finding: with only inter-kernel co-running,
        # dependent kernels cannot be accelerated at all.
        base = run_gpu_only(make_chain_net(), JETSON_AGX_XAVIER,
                            policy=MemoryPolicy.ALL_MANAGED).total_s
        inter = run_interkernel_only(chain_net, JETSON_AGX_XAVIER).total_s
        assert inter == pytest.approx(base, rel=1e-6)

    def test_uses_both_processors_on_branches(self, branch_net):
        report = run_interkernel_only(branch_net, JETSON_AGX_XAVIER)
        assert report.cpu_busy_s > 0
        assert report.gpu_busy_s > 0
