"""GPU-only baseline ("the original programs")."""

import pytest

from repro.baselines import run_gpu_only
from repro.core.memory_manager import MemoryPolicy
from repro.core.plan import Assignment
from repro.hardware.specs import JETSON_AGX_XAVIER, RTX_2080TI_HOST

from ..conftest import make_chain_net


class TestGpuOnly:
    def test_runs_on_integrated(self, chain_net):
        report = run_gpu_only(chain_net, JETSON_AGX_XAVIER)
        assert report.total_s > 0
        assert report.device == "jetson-agx-xavier"

    def test_runs_on_discrete(self, chain_net):
        report = run_gpu_only(chain_net, RTX_2080TI_HOST)
        assert report.device == "rtx-2080ti-host"
        assert report.copy_s_total > 0

    def test_accepts_network_name(self):
        assert run_gpu_only("lenet", JETSON_AGX_XAVIER).network == "lenet"

    def test_every_layer_on_gpu(self, chain_net):
        report = run_gpu_only(chain_net, JETSON_AGX_XAVIER)
        for lr in report.layers:
            assert lr.assignment is Assignment.GPU
        assert report.cpu_busy_s == 0.0

    def test_regular_policy_has_weight_copies(self, chain_net):
        report = run_gpu_only(chain_net, JETSON_AGX_XAVIER)
        assert report.copy_share > 0

    def test_managed_policy_eliminates_copies(self, chain_net):
        report = run_gpu_only(chain_net, JETSON_AGX_XAVIER,
                              policy=MemoryPolicy.ALL_MANAGED)
        assert report.copy_s_total == 0.0

    def test_discrete_copy_share_exceeds_integrated(self):
        # Fig 9's core comparison: PCIe staging costs more of the total
        # than the integrated copy engine.
        integrated = run_gpu_only("alexnet", JETSON_AGX_XAVIER)
        discrete = run_gpu_only("alexnet", RTX_2080TI_HOST)
        assert discrete.copy_share > integrated.copy_share

    def test_managed_rejected_on_discrete(self, chain_net):
        # plan_allocations silently falls back to REGULAR off-integrated,
        # so the run must succeed with zero managed buffers.
        report = run_gpu_only(chain_net, RTX_2080TI_HOST,
                              policy=MemoryPolicy.ALL_MANAGED)
        assert report.copy_s_total > 0
