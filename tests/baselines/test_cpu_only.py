"""CPU-only baselines (the edge CPUs of Fig 6)."""

import pytest

from repro.baselines import run_cpu_only
from repro.core.plan import Assignment
from repro.hardware.specs import (
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
)

from ..conftest import make_chain_net


class TestCpuOnly:
    @pytest.mark.parametrize(
        "spec", [JETSON_AGX_XAVIER, RASPBERRY_PI_4, DIMENSITY_8100],
        ids=lambda s: s.name,
    )
    def test_runs_on_every_cpu_platform(self, chain_net, spec):
        report = run_cpu_only(chain_net, spec)
        assert report.total_s > 0
        assert report.gpu_busy_s == 0.0

    def test_no_copies_ever(self, chain_net):
        report = run_cpu_only(chain_net, RASPBERRY_PI_4)
        assert report.copy_s_total == 0.0

    def test_every_layer_on_cpu(self, chain_net):
        report = run_cpu_only(chain_net, JETSON_AGX_XAVIER)
        for lr in report.layers:
            assert lr.assignment is Assignment.CPU
            assert lr.kernel_gpu_s == 0.0

    def test_platform_speed_ordering(self):
        # Paper Fig 6 implies: phone CPU > Jetson CPU > Raspberry Pi.
        lenet = "alexnet"
        jetson = run_cpu_only(lenet, JETSON_AGX_XAVIER).total_s
        phone = run_cpu_only(lenet, DIMENSITY_8100).total_s
        rpi = run_cpu_only(lenet, RASPBERRY_PI_4).total_s
        assert phone < jetson < rpi

    def test_power_stays_within_rpi_envelope(self, chain_net):
        report = run_cpu_only(chain_net, RASPBERRY_PI_4)
        assert report.energy.average_power_w <= 6.4 + 1e-9  # paper ref [11]
