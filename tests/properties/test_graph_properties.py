"""Property-based tests on randomly generated network graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.nn.graph import BranchSegment, ChainSegment, NetworkGraph
from repro.nn.layers import (
    Concat,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Softmax,
)

# A random chain-with-fire-modules generator: alternates chain ops and
# optional fork/join blocks, always ending in flatten+fc+softmax.

chain_ops = st.lists(
    st.sampled_from(["conv", "relu", "pool", "fire"]),
    min_size=1, max_size=8,
)


def build_random_net(ops):
    net = NetworkGraph("random-net", (4, 16, 16))
    idx = 0
    last_hw = 16
    for op in ops:
        idx += 1
        if op == "conv":
            net.add(Conv2D(f"conv{idx}", out_channels=4, kernel_size=3,
                           padding=1))
        elif op == "relu":
            net.add(ReLU(f"relu{idx}"))
        elif op == "pool" and last_hw >= 4:
            net.add(MaxPool2D(f"pool{idx}", kernel_size=2))
            last_hw //= 2
        elif op == "fire":
            fork = net.add(Conv2D(f"squeeze{idx}", out_channels=2,
                                  kernel_size=1))
            net.add(Conv2D(f"e1_{idx}", out_channels=4, kernel_size=1),
                    inputs=[fork])
            net.add(Conv2D(f"e3_{idx}", out_channels=4, kernel_size=3,
                           padding=1), inputs=[fork])
            net.add(Concat(f"cat{idx}"), inputs=[f"e1_{idx}", f"e3_{idx}"])
    net.add(Flatten("flatten"))
    net.add(Dense("fc", 10))
    net.add(Softmax("softmax"))
    return net


@given(ops=chain_ops)
@settings(max_examples=80, deadline=None)
def test_segmentation_covers_every_layer_exactly_once(ops):
    net = build_random_net(ops)
    seen = []
    for seg in net.segments():
        if isinstance(seg, ChainSegment):
            seen.extend(seg.layers)
        else:
            for branch in seg.branches:
                seen.extend(branch)
    assert sorted(seen) == sorted(net.topo_order())
    assert len(seen) == len(set(seen))


@given(ops=chain_ops)
@settings(max_examples=80, deadline=None)
def test_branch_segments_join_on_concat(ops):
    net = build_random_net(ops)
    for seg in net.segments():
        if isinstance(seg, BranchSegment):
            assert seg.join.startswith("cat")
            assert len(seg.branches) == 2


@given(ops=chain_ops)
@settings(max_examples=40, deadline=None)
def test_forward_shape_and_probability(ops):
    net = build_random_net(ops)
    x = np.random.default_rng(0).random(net.input_shape, dtype=np.float32)
    out = net.forward(x)
    assert out.shape == (10,)
    assert abs(float(out.sum()) - 1.0) < 1e-3


@given(ops=chain_ops)
@settings(max_examples=40, deadline=None)
def test_work_accounting_consistent(ops):
    net = build_random_net(ops)
    total = sum(net.work(n).flops for n in net.topo_order())
    assert total == net.total_flops()
    for name in net.topo_order():
        work = net.work(name)
        assert work.out_bytes == net.out_bytes(name)
