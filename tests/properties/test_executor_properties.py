"""Property-based tests of the hybrid executor over random plans."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import ExecutionPlan, cpu_layer, gpu_layer, split_layer
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER

from ..conftest import make_chain_net

NET = make_chain_net()
LAYERS = NET.topo_order()

assignments = st.lists(
    st.one_of(
        st.just(("gpu", 0.0)),
        st.just(("cpu", 1.0)),
        st.tuples(st.just("split"),
                  st.floats(min_value=0.1, max_value=0.9, allow_nan=False)),
    ),
    min_size=len(LAYERS), max_size=len(LAYERS),
)

policies = st.sampled_from(list(MemoryPolicy))


def plan_from(assignment_list, policy):
    plan = ExecutionPlan(NET.name)
    for name, (kind, fraction) in zip(LAYERS, assignment_list):
        node = NET.node(name)
        if kind == "gpu" or node.layer.is_noop or not node.layer.partitionable:
            plan.set_layer(gpu_layer(name))
        elif kind == "cpu":
            plan.set_layer(cpu_layer(name))
        else:
            plan.set_layer(split_layer(name, fraction))
    plan_allocations(NET, plan, JETSON_AGX_XAVIER, policy)
    return plan


@given(assignment_list=assignments, policy=policies)
@settings(max_examples=60, deadline=None)
def test_any_valid_plan_executes(assignment_list, policy):
    device = Device(JETSON_AGX_XAVIER)
    plan = plan_from(assignment_list, policy)
    report = HybridExecutor(NET, device, plan).run()
    assert report.total_s > 0
    assert len(report.layers) == len(LAYERS)


@given(assignment_list=assignments, policy=policies)
@settings(max_examples=60, deadline=None)
def test_makespan_covers_every_layer_event(assignment_list, policy):
    device = Device(JETSON_AGX_XAVIER)
    plan = plan_from(assignment_list, policy)
    report = HybridExecutor(NET, device, plan).run()
    for lr in report.layers:
        assert lr.end_s <= report.total_s + 1e-12
        assert lr.start_s >= 0


@given(assignment_list=assignments, policy=policies)
@settings(max_examples=60, deadline=None)
def test_chain_data_dependencies_hold(assignment_list, policy):
    """In a pure chain, each layer's producing events end before any
    consumer's kernel finishes (the consumer must wait for its input)."""
    device = Device(JETSON_AGX_XAVIER)
    plan = plan_from(assignment_list, policy)
    report = HybridExecutor(NET, device, plan).run()
    by_name = {lr.name: lr for lr in report.layers}
    prev = None
    for name in LAYERS:
        lr = by_name[name]
        if lr.attributed_s == 0.0:
            continue  # noop alias layers
        if prev is not None:
            assert lr.end_s >= prev.end_s - 1e-12
        prev = lr


@given(assignment_list=assignments)
@settings(max_examples=40, deadline=None)
def test_busy_times_bounded(assignment_list):
    device = Device(JETSON_AGX_XAVIER)
    plan = plan_from(assignment_list, MemoryPolicy.SEMANTIC)
    report = HybridExecutor(NET, device, plan).run()
    assert report.cpu_busy_s <= report.total_s + 1e-9
    assert report.gpu_busy_s <= report.total_s + 1e-9
