"""Property-based tests of the discrete-event timeline invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.timeline import COPY, CPU, GPU, Timeline

RESOURCES = (CPU, GPU, COPY)

# A random schedule program: each op is (resource_idx, duration,
# dependency back-references).
ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.lists(st.integers(min_value=1, max_value=5), max_size=3),
    ),
    min_size=1,
    max_size=30,
)


def run_program(program):
    tl = Timeline(RESOURCES)
    events = []
    for res_idx, duration, dep_refs in program:
        deps = [events[-ref] for ref in dep_refs if ref <= len(events)]
        events.append(
            tl.schedule(RESOURCES[res_idx], duration, "op", after=deps)
        )
    return tl, events


@given(program=ops)
@settings(max_examples=200)
def test_no_overlap_per_resource(program):
    tl, events = run_program(program)
    for resource in RESOURCES:
        res_events = sorted(
            (e for e in events if e.resource == resource),
            key=lambda e: e.start_s,
        )
        for prev, cur in zip(res_events, res_events[1:]):
            assert cur.start_s >= prev.end_s - 1e-12


@given(program=ops)
@settings(max_examples=200)
def test_dependencies_respected(program):
    tl = Timeline(RESOURCES)
    events = []
    for res_idx, duration, dep_refs in program:
        deps = [events[-ref] for ref in dep_refs if ref <= len(events)]
        ev = tl.schedule(RESOURCES[res_idx], duration, "op", after=deps)
        for dep in deps:
            assert ev.start_s >= dep.end_s - 1e-12
        events.append(ev)


@given(program=ops)
@settings(max_examples=200)
def test_busy_time_never_exceeds_makespan(program):
    tl, _ = run_program(program)
    span = tl.trace.span()
    for resource in RESOURCES:
        assert tl.busy_time(resource) <= span + 1e-9


@given(program=ops)
@settings(max_examples=200)
def test_makespan_bounded_by_total_work(program):
    tl, events = run_program(program)
    total_work = sum(e.duration_s for e in events)
    # With dependencies the makespan can reach (but not exceed) the sum of
    # all durations.
    assert tl.trace.span() <= total_work + 1e-9


@given(program=ops)
@settings(max_examples=100)
def test_events_nonnegative_and_ordered(program):
    _, events = run_program(program)
    for e in events:
        assert e.start_s >= 0
        assert e.end_s >= e.start_s
