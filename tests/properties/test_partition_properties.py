"""Property-based tests of the paper's partitioning equations (Eq. 1-4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import partition

times = st.floats(min_value=1e-6, max_value=10.0,
                  allow_nan=False, allow_infinity=False)
volumes = st.floats(min_value=0.0, max_value=1e9,
                    allow_nan=False, allow_infinity=False)
rates = st.floats(min_value=1e6, max_value=1e12,
                  allow_nan=False, allow_infinity=False)
fractions = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


@given(t_cpu=times, t_gpu=times, p=fractions)
def test_collaboration_bounded_by_solo_times(t_cpu, t_gpu, p):
    co = partition.collaboration_time(t_cpu, t_gpu, p)
    assert co <= max(t_cpu, t_gpu) + 1e-12
    # Never faster than the perfectly parallel bound.
    assert co >= (t_cpu * p + t_gpu * (1 - p)) / 2 - 1e-12


@given(t_cpu=times, t_gpu=times)
def test_collaboration_endpoints(t_cpu, t_gpu):
    assert partition.collaboration_time(t_cpu, t_gpu, 0.0) == t_gpu
    assert partition.collaboration_time(t_cpu, t_gpu, 1.0) == t_cpu


@given(t_cpu=times, t_gpu=times)
def test_balance_point_equalizes_sides(t_cpu, t_gpu):
    p = partition.balance_point(t_cpu, t_gpu)
    assert 0.0 <= p <= 1.0
    assert abs(t_cpu * p - t_gpu * (1 - p)) < 1e-9 * max(t_cpu, t_gpu)


@given(p=fractions, v=volumes, s=rates)
def test_transfer_time_monotone_in_fraction(p, v, s):
    t = partition.data_transfer_time(p, v, s)
    assert t >= 0
    assert t <= partition.data_transfer_time(1.0, v, s) + 1e-12


@given(t_cpu=times, t_gpu=times, v=volumes, s=rates,
       p=st.lists(fractions, min_size=1, max_size=10))
@settings(max_examples=200)
def test_eq4_optimum_minimizes_eq3(t_cpu, t_gpu, v, s, p):
    """The paper's closed-form p_op is a global minimum of Eq. 3."""
    p_op = partition.optimal_cpu_fraction(t_cpu, t_gpu, v, s)
    best = partition.total_time(t_cpu, t_gpu, p_op, v, s)
    for candidate in p:
        alt = partition.total_time(t_cpu, t_gpu, candidate, v, s)
        assert best <= alt + 1e-9 * max(1.0, alt)


@given(t_cpu=times, t_gpu=times, v=volumes, s=rates)
def test_eq4_split_never_worse_than_gpu_only(t_cpu, t_gpu, v, s):
    p_op = partition.optimal_cpu_fraction(t_cpu, t_gpu, v, s)
    total = partition.total_time(t_cpu, t_gpu, p_op, v, s)
    assert total <= t_gpu + 1e-12


@given(t_cpu=times, t_gpu=times, v=volumes, s=rates)
def test_eq4_in_unit_interval(t_cpu, t_gpu, v, s):
    p = partition.optimal_cpu_fraction(t_cpu, t_gpu, v, s)
    assert 0.0 <= p <= 1.0


@given(t_cpu=times, t_gpu=times, s=rates)
def test_eq4_zero_when_transfer_dominates(t_cpu, t_gpu, s):
    # Output so large that v/s >= t_gpu: Eq. 4's first case.
    v = t_gpu * s * 1.5
    assert partition.optimal_cpu_fraction(t_cpu, t_gpu, v, s) == 0.0


@given(t_cpu=times, t_gpu=times, v=volumes, s=rates)
def test_merge_free_optimum_ignores_volume(t_cpu, t_gpu, v, s):
    p_free = partition.optimal_cpu_fraction(t_cpu, t_gpu, v, s,
                                            merge_free=True)
    assert p_free == partition.balance_point(t_cpu, t_gpu)
