"""Property-based tests of the serving pipeline.

Random policies and loads through a synthetic service-time model; every
run must preserve the report invariants: request conservation
(served + shed == offered), percentile ordering (p50 <= p95 <= p99 <=
max), and bit-for-bit determinism under a fixed seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import (
    BatchServiceTime,
    ServingConfig,
    ServingSimulator,
    TenantSpec,
)
from repro.workloads.arrivals import PoissonArrivals, UniformArrivals


class LinearServiceModel:
    def __init__(self, base_s, incr_s):
        self.base_s = base_s
        self.incr_s = incr_s

    def warm(self, network, batch):
        t = self.base_s + self.incr_s * (batch - 1)
        return BatchServiceTime(total_s=t, cpu_busy_s=0.3 * t,
                                gpu_busy_s=0.8 * t)

    def cold(self, network, batch):
        warm = self.warm(network, batch)
        return BatchServiceTime(total_s=2 * warm.total_s,
                                cpu_busy_s=2 * warm.cpu_busy_s,
                                gpu_busy_s=2 * warm.gpu_busy_s)


policies = st.builds(
    BatchPolicy,
    max_batch_size=st.integers(min_value=1, max_value=16),
    max_wait_s=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    max_queue_depth=st.integers(min_value=1, max_value=64),
)
rates = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)
service = st.builds(
    LinearServiceModel,
    base_s=st.floats(min_value=1e-4, max_value=0.05, allow_nan=False),
    incr_s=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def run(policy, rate, model, seed, duration=1.0):
    tenants = [TenantSpec(
        network="lenet",
        arrival=PoissonArrivals(rate, duration, seed=seed),
    )]
    sim = ServingSimulator(
        JETSON_AGX_XAVIER, tenants,
        ServingConfig(policy=policy, seed=seed),
        service_model=model,
    )
    return sim.run()


@settings(max_examples=30, deadline=None)
@given(policy=policies, rate=rates, model=service, seed=seeds)
def test_request_conservation(policy, rate, model, seed):
    report = run(policy, rate, model, seed)
    assert report.served + report.shed == report.offered
    assert report.offered == len(
        PoissonArrivals(rate, 1.0, seed=seed).initial_arrivals())
    for tenant in report.tenants:
        assert tenant.served + tenant.shed == tenant.offered


@settings(max_examples=30, deadline=None)
@given(policy=policies, rate=rates, model=service, seed=seeds)
def test_percentiles_ordered(policy, rate, model, seed):
    report = run(policy, rate, model, seed)
    lat = report.latency
    assert lat.p50_s <= lat.p95_s <= lat.p99_s <= lat.max_s
    if report.served:
        # No served request can be faster than its own batch's service
        # time, which is at least the batch-1 service time.
        assert lat.p50_s >= model.base_s - 1e-12


@settings(max_examples=30, deadline=None)
@given(policy=policies, rate=rates, model=service, seed=seeds)
def test_histogram_accounts_for_every_served_request(policy, rate, model,
                                                     seed):
    report = run(policy, rate, model, seed)
    served_from_hist = sum(size * count for size, count
                           in report.batch_histogram.items())
    assert served_from_hist == report.served
    assert all(1 <= size <= policy.max_batch_size
               for size in report.batch_histogram)


@settings(max_examples=15, deadline=None)
@given(policy=policies, rate=rates, model=service, seed=seeds)
def test_deterministic_replay(policy, rate, model, seed):
    assert run(policy, rate, model, seed).to_dict() == \
        run(policy, rate, model, seed).to_dict()


@settings(max_examples=20, deadline=None)
@given(policy=policies, model=service,
       rate=st.floats(min_value=1.0, max_value=200.0, allow_nan=False))
def test_queue_depth_bounded_by_policy(policy, rate, model):
    report = run(policy, rate, model, seed=0)
    assert report.queue_depth_max <= policy.max_queue_depth
    assert 0.0 <= report.queue_depth_mean <= report.queue_depth_max \
        or report.queue_depth_max == 0


@settings(max_examples=20, deadline=None)
@given(model=service, rate=rates, seed=seeds)
def test_unbounded_queue_sheds_nothing(model, rate, seed):
    policy = BatchPolicy(max_batch_size=8, max_queue_depth=10**6)
    report = run(policy, rate, model, seed)
    assert report.shed == 0
    assert report.served == report.offered


@settings(max_examples=20, deadline=None)
@given(model=service,
       rate=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
       batch=st.integers(min_value=1, max_value=8))
def test_uniform_load_makespan_covers_horizon(model, rate, batch):
    tenants = [TenantSpec(network="lenet",
                          arrival=UniformArrivals(rate, 1.0))]
    sim = ServingSimulator(
        JETSON_AGX_XAVIER, tenants,
        ServingConfig(policy=BatchPolicy(max_batch_size=batch)),
        service_model=model,
    )
    report = sim.run()
    assert report.makespan_s >= report.duration_s
    assert report.throughput_rps >= 0.0
