"""Property-based end-to-end tuner invariants on random networks.

The strongest guarantee the system makes: whatever the network shape, the
tuned plan never loses to the GPU-only plan it starts from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.executor import HybridExecutor
from repro.core.memory_manager import MemoryPolicy, plan_allocations
from repro.core.plan import Assignment, ExecutionPlan, gpu_layer
from repro.core.tuner import AdaptiveTuner, TunerConfig
from repro.hardware.device import Device
from repro.hardware.specs import JETSON_AGX_XAVIER

from .test_graph_properties import build_random_net, chain_ops


def gpu_only_time(net) -> float:
    device = Device(JETSON_AGX_XAVIER)
    plan = ExecutionPlan(net.name)
    for name in net.topo_order():
        plan.set_layer(gpu_layer(name))
    plan_allocations(net, plan, JETSON_AGX_XAVIER, MemoryPolicy.SEMANTIC)
    return HybridExecutor(net, device, plan).run().total_s


@given(ops=chain_ops)
@settings(max_examples=15, deadline=None)
def test_tuned_plan_never_loses_to_gpu_only(ops):
    net = build_random_net(ops)
    tuned = EdgeNN(net).run().total_s
    assert tuned <= gpu_only_time(net) * 1.001


@given(ops=chain_ops)
@settings(max_examples=15, deadline=None)
def test_tuned_plan_covers_graph_and_is_valid(ops):
    net = build_random_net(ops)
    result = AdaptiveTuner(net, Device(JETSON_AGX_XAVIER)).tune()
    for name in net.topo_order():
        lp = result.plan.layer_plan(name)
        if lp.assignment is Assignment.SPLIT:
            assert 0.0 < lp.cpu_fraction < 1.0
        node = net.node(name)
        if node.layer.is_noop or not node.layer.partitionable:
            assert lp.assignment is not Assignment.SPLIT


@given(ops=chain_ops)
@settings(max_examples=10, deadline=None)
def test_ablation_arms_never_beat_full_edgenn_badly(ops):
    """The full system is at least competitive with each single design
    (small scheduling noise tolerated)."""
    net_full = build_random_net(ops)
    full = EdgeNN(net_full).run().total_s
    memory_only = EdgeNN(
        build_random_net(ops),
        config=EdgeNNConfig(use_hybrid_execution=False),
    ).run().total_s
    assert full <= memory_only * 1.05
