"""Property-based tests of the bandwidth-sharing contention model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.contention import StreamJob, corun_finish_times, waterfill

caps = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    min_size=1, max_size=8,
)
bandwidth = st.floats(min_value=1.0, max_value=1e12, allow_nan=False)


def job_strategy():
    return st.builds(
        StreamJob,
        compute_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        bytes_total=st.floats(min_value=1.0, max_value=1e10, allow_nan=False),
        solo_rate=st.floats(min_value=1e3, max_value=1e12, allow_nan=False),
    )


@given(caps=caps, total=bandwidth)
def test_waterfill_never_exceeds_caps(caps, total):
    rates = waterfill(caps, total)
    for rate, cap in zip(rates, caps):
        assert rate <= cap + 1e-6 * max(1.0, cap)


@given(caps=caps, total=bandwidth)
def test_waterfill_conserves_bandwidth(caps, total):
    rates = waterfill(caps, total)
    expected = min(sum(caps), total)
    assert abs(sum(rates) - expected) <= 1e-6 * max(1.0, expected)


@given(caps=caps, total=bandwidth)
def test_waterfill_nonnegative(caps, total):
    assert all(r >= 0 for r in waterfill(caps, total))


@given(jobs=st.lists(job_strategy(), min_size=1, max_size=4),
       total=bandwidth)
@settings(max_examples=150, deadline=None)
def test_corun_never_faster_than_solo(jobs, total):
    times = corun_finish_times(jobs, total)
    for t, job in zip(times, jobs):
        assert t >= job.solo_time - 1e-9 * max(1.0, job.solo_time)


@given(jobs=st.lists(job_strategy(), min_size=1, max_size=4),
       total=bandwidth)
@settings(max_examples=150, deadline=None)
def test_corun_bounded_by_serial_execution(jobs, total):
    """Co-running can never be slower than running everything serially at
    the shared-bandwidth floor."""
    times = corun_finish_times(jobs, total)
    serial_bound = sum(
        max(j.compute_s, j.bytes_total / min(j.solo_rate, total))
        for j in jobs
    )
    assert max(times) <= serial_bound + 1e-6 * max(1.0, serial_bound)


@given(job=job_strategy(), total=bandwidth)
@settings(max_examples=100, deadline=None)
def test_single_job_matches_solo_time_at_full_bandwidth(job, total):
    times = corun_finish_times([job], max(total, job.solo_rate))
    assert abs(times[0] - job.solo_time) <= 1e-9 * max(1.0, job.solo_time)


@given(jobs=st.lists(job_strategy(), min_size=2, max_size=4))
@settings(max_examples=100, deadline=None)
def test_more_bandwidth_never_hurts(jobs):
    tight = corun_finish_times(jobs, 1e8)
    loose = corun_finish_times(jobs, 1e10)
    for t_tight, t_loose in zip(tight, loose):
        assert t_loose <= t_tight + 1e-9 * max(1.0, t_tight)
