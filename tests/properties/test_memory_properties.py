"""Stateful property test of the buffer validity protocol.

Drives a REGULAR buffer through random read/write/merge/stage sequences
and checks the coherence invariants after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import AllocKind, MemoryModel
from repro.hardware.specs import JETSON_AGX_XAVIER, ProcessorKind

CPU = ProcessorKind.CPU
GPU = ProcessorKind.GPU

operations = st.lists(
    st.sampled_from(
        ["read_cpu", "read_gpu", "write_cpu", "write_gpu", "merge", "stage",
         "settle"]
    ),
    min_size=1,
    max_size=40,
)


@given(ops=operations)
@settings(max_examples=200)
def test_regular_buffer_coherence_invariants(ops):
    mem = MemoryModel(JETSON_AGX_XAVIER)
    buf = mem.allocate("b", 1e6, AllocKind.REGULAR)
    for op in ops:
        if op == "read_cpu":
            cost = mem.read_cost(buf, CPU, "conv")
            assert buf.host_valid  # a read must leave the copy valid
            assert len(cost.transfers) <= 1
        elif op == "read_gpu":
            cost = mem.read_cost(buf, GPU, "conv")
            assert buf.device_valid
            assert len(cost.transfers) <= 1
        elif op == "write_cpu":
            mem.write_cost(buf, CPU, "conv")
            assert buf.host_valid
        elif op == "write_gpu":
            mem.write_cost(buf, GPU, "conv")
            assert buf.device_valid
        elif op == "merge":
            transfer = mem.merge_transfer(buf, 0.5)
            if transfer is not None:
                assert buf.device_valid
        elif op == "stage":
            mem.stage_out(buf)
            assert buf.host_valid and not buf.device_valid
        elif op == "settle":
            assert mem.cowrite_penalty(buf) == 0.0  # REGULAR never pays
        # Global invariant: at least one copy always holds the data.
        assert buf.host_valid or buf.device_valid


@given(ops=operations)
@settings(max_examples=200)
def test_managed_buffer_never_produces_transfers(ops):
    mem = MemoryModel(JETSON_AGX_XAVIER)
    buf = mem.allocate("b", 1e6, AllocKind.MANAGED)
    writers_since_settle = set()
    for op in ops:
        if op == "read_cpu":
            assert mem.read_cost(buf, CPU, "pool").transfers == ()
        elif op == "read_gpu":
            assert mem.read_cost(buf, GPU, "pool").transfers == ()
        elif op == "write_cpu":
            mem.write_cost(buf, CPU, "pool")
            writers_since_settle.add(CPU)
        elif op == "write_gpu":
            mem.write_cost(buf, GPU, "pool")
            writers_since_settle.add(GPU)
        elif op == "merge":
            assert mem.merge_transfer(buf, 0.5) is None
        elif op == "stage":
            assert mem.stage_out(buf) is None
        elif op == "settle":
            penalty = mem.cowrite_penalty(buf)
            if len(writers_since_settle) > 1:
                assert penalty > 0
            else:
                assert penalty == 0.0
            writers_since_settle = set()


@given(ops=operations)
@settings(max_examples=100)
def test_first_touch_charged_at_most_once(ops):
    mem = MemoryModel(JETSON_AGX_XAVIER)
    buf = mem.allocate("b", 1e6, AllocKind.MANAGED)
    touches = 0
    for op in ops:
        if op in ("read_gpu", "write_gpu"):
            cost = (
                mem.read_cost(buf, GPU, "conv")
                if op == "read_gpu"
                else mem.write_cost(buf, GPU, "conv")
            )
            if cost.overhead_s > 0:
                touches += 1
    assert touches <= 1
