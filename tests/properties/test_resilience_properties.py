"""Property-based tests: backoff schedule law and batcher deadline math.

The backoff laws (monotone, jitter-bounded, capped) and the _EPS
boundary behaviour of queue expiry are exactly the invariants the
serving loop's fault driver depends on — a violated cap would stretch
virtual timelines unboundedly, a wrong _EPS comparison would abandon
requests that are still viable at their exact deadline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import RetryPolicy
from repro.serving.batcher import _EPS, BatchPolicy, TenantQueue
from repro.serving.request import Request

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=0.0, max_value=0.1,
                           allow_nan=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_delay_s=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestBackoffProperties:
    @given(policy=policies, attempt=st.integers(0, 16))
    def test_nominal_is_monotone_nondecreasing(self, policy, attempt):
        assert policy.nominal_delay(attempt + 1) >= policy.nominal_delay(
            attempt
        )

    @given(policy=policies, attempt=st.integers(0, 16),
           token=st.text(max_size=8))
    def test_jitter_is_bounded(self, policy, attempt, token):
        nominal = policy.nominal_delay(attempt)
        delay = policy.delay(attempt, token=token)
        lo = nominal * (1.0 - policy.jitter)
        hi = nominal * (1.0 + policy.jitter)
        assert lo - 1e-12 <= delay <= hi + 1e-12

    @given(policy=policies, attempt=st.integers(0, 64),
           token=st.text(max_size=8))
    def test_cap_is_a_true_upper_bound(self, policy, attempt, token):
        assert policy.delay(attempt, token=token) <= policy.max_delay_s
        assert policy.nominal_delay(attempt) <= policy.max_delay_s

    @given(policy=policies, attempt=st.integers(0, 16),
           token=st.text(max_size=8))
    def test_delay_is_deterministic(self, policy, attempt, token):
        assert policy.delay(attempt, token=token) == policy.delay(
            attempt, token=token
        )

    @given(policy=policies, token=st.text(max_size=8))
    def test_schedule_shape(self, policy, token):
        schedule = policy.schedule(token=token)
        assert len(schedule) == policy.max_attempts - 1
        assert all(d >= 0.0 for d in schedule)


def _queue_with(deadline_s, arrivals):
    queue = TenantQueue(
        "t", BatchPolicy(deadline_s=deadline_s, max_queue_depth=4096)
    )
    for i, arrival in enumerate(arrivals):
        queue.offer(Request(request_id=i, tenant="t", arrival_s=arrival))
    return queue


arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=32,
).map(sorted)

budgets = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
nows = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)


class TestDeadlineMathProperties:
    @given(arrivals=arrival_lists, budget=budgets, now=nows)
    @settings(max_examples=200)
    def test_expire_splits_exactly_at_deadline_plus_eps(
        self, arrivals, budget, now
    ):
        queue = _queue_with(budget, arrivals)
        expired = queue.expire(now)
        # Exactly the requests with deadline + _EPS < now are gone...
        assert len(expired) == sum(
            1 for a in arrivals if now > a + budget + _EPS
        )
        # ...and every survivor is still viable.
        assert all(
            not r.expired(now, _EPS) for r in queue._pending
        )

    @given(arrivals=arrival_lists, budget=budgets)
    def test_request_viable_at_exact_deadline(self, arrivals, budget):
        queue = _queue_with(budget, arrivals)
        deadline = arrivals[0] + budget
        assert not queue._pending[0].expired(deadline, _EPS)
        assert not queue._pending[0].expired(deadline + _EPS, _EPS)

    @given(arrivals=arrival_lists, budget=budgets, now=nows)
    def test_expiry_conserves_requests(self, arrivals, budget, now):
        queue = _queue_with(budget, arrivals)
        expired = queue.expire(now)
        assert len(expired) + len(queue) == len(arrivals)
        assert queue.timed_out == len(expired)

    @given(arrivals=arrival_lists, budget=budgets, now=nows)
    def test_expiry_is_idempotent(self, arrivals, budget, now):
        queue = _queue_with(budget, arrivals)
        queue.expire(now)
        assert queue.expire(now) == []

    @given(arrivals=arrival_lists, wait=st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False
    ))
    def test_ready_at_exact_wait_deadline(self, arrivals, wait):
        queue = TenantQueue(
            "t", BatchPolicy(max_wait_s=wait, max_queue_depth=4096,
                             max_batch_size=4096)
        )
        for i, arrival in enumerate(arrivals):
            queue.offer(
                Request(request_id=i, tenant="t", arrival_s=arrival)
            )
        # The timer fires at exactly the wait deadline; _EPS guarantees
        # readiness despite float round-off.
        assert queue.ready(queue.wait_deadline_s())
