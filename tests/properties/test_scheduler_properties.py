"""Property-based tests of the inter-kernel branch scheduler."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    BranchCosts,
    choose_assignment,
    predict_assignment_time,
)
from repro.hardware.specs import ProcessorKind

times = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)
volumes = st.floats(min_value=0.0, max_value=1e8, allow_nan=False)

branch_costs = st.builds(
    BranchCosts,
    layers=st.just(("layer",)),
    cpu_s=times,
    gpu_s=times,
    out_bytes=volumes,
)

cost_lists = st.lists(branch_costs, min_size=1, max_size=4)
rates = st.floats(min_value=1e6, max_value=1e12, allow_nan=False)
handoff = st.booleans()


@given(costs=cost_lists, rate=rates, free=handoff)
@settings(max_examples=200)
def test_choice_is_globally_optimal(costs, rate, free):
    """The enumerated choice matches an exhaustive search."""
    best = choose_assignment(costs, rate, handoff_free=free)
    options = [(ProcessorKind.GPU, ProcessorKind.CPU)] * len(costs)
    exhaustive = min(
        predict_assignment_time(costs, combo, rate, handoff_free=free)
        for combo in itertools.product(*options)
    )
    assert best.predicted_s <= exhaustive + 1e-12


@given(costs=cost_lists, rate=rates, free=handoff)
@settings(max_examples=200)
def test_choice_never_worse_than_all_gpu(costs, rate, free):
    best = choose_assignment(costs, rate, handoff_free=free)
    all_gpu = predict_assignment_time(
        costs, [ProcessorKind.GPU] * len(costs), rate, handoff_free=free
    )
    assert best.predicted_s <= all_gpu + 1e-12


@given(costs=cost_lists, rate=rates)
@settings(max_examples=200)
def test_free_handoff_never_hurts(costs, rate):
    with_copy = choose_assignment(costs, rate, handoff_free=False)
    free = choose_assignment(costs, rate, handoff_free=True)
    assert free.predicted_s <= with_copy.predicted_s + 1e-12


@given(costs=cost_lists, rate=rates, free=handoff)
@settings(max_examples=200)
def test_prediction_lower_bound(costs, rate, free):
    """No assignment beats the heaviest branch's best-side time."""
    best = choose_assignment(costs, rate, handoff_free=free)
    bound = max(min(c.cpu_s, c.gpu_s) for c in costs)
    assert best.predicted_s >= bound - 1e-12


@given(costs=cost_lists, rate=rates)
@settings(max_examples=100)
def test_allow_cpu_false_is_all_gpu(costs, rate):
    best = choose_assignment(costs, rate, allow_cpu=False)
    assert all(p is ProcessorKind.GPU for p in best.processors)
    assert best.predicted_s == sum(c.gpu_s for c in costs)