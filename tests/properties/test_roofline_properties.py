"""Property-based tests of KernelWork scaling and roofline costs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.roofline import KernelWork, kernel_cost
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.hardware import calibration as cal

SPEC = JETSON_AGX_XAVIER

work_strategy = st.builds(
    KernelWork,
    kernel_class=st.sampled_from(cal.KERNEL_CLASSES),
    flops=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    act_in_bytes=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    weight_bytes=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    out_bytes=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    out_elements=st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
)

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(work=work_strategy, f=fractions)
def test_split_conserves_divisible_work(work, f):
    """CPU part + GPU part must add back up to the whole layer for the
    divisible terms (flops, weights, outputs)."""
    cpu = work.scaled(f)
    gpu = work.scaled(1.0 - f)
    tol = 1e-9
    assert abs(cpu.flops + gpu.flops - work.flops) <= tol * max(1.0, work.flops)
    assert abs(cpu.weight_bytes + gpu.weight_bytes - work.weight_bytes) <= (
        tol * max(1.0, work.weight_bytes)
    )
    assert abs(cpu.out_bytes + gpu.out_bytes - work.out_bytes) <= (
        tol * max(1.0, work.out_bytes)
    )


@given(work=work_strategy, f=fractions)
def test_split_duplicates_activation_reads(work, f):
    assert work.scaled(f).act_in_bytes == work.act_in_bytes


@given(work=work_strategy)
@settings(max_examples=150)
def test_cost_positive_and_finite(work):
    for proc in (SPEC.cpu, SPEC.gpu):
        cost = kernel_cost(SPEC, proc, work)
        assert cost.total_s > 0
        assert cost.total_s < 1e6


@given(work=work_strategy)
@settings(max_examples=150)
def test_body_is_roofline_max(work):
    cost = kernel_cost(SPEC, SPEC.gpu, work)
    assert cost.body_s == max(cost.compute_s, cost.memory_s)


@given(work=work_strategy, f=st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=150)
def test_partial_work_never_costs_more_than_whole(work, f):
    whole = kernel_cost(SPEC, SPEC.cpu, work, include_launch=False)
    part = kernel_cost(SPEC, SPEC.cpu, work.scaled(f), include_launch=False)
    assert part.total_s <= whole.total_s + 1e-12


@given(work=work_strategy,
       factor=st.floats(min_value=0.1, max_value=1.0, allow_nan=False))
@settings(max_examples=150)
def test_bandwidth_derating_monotone(work, factor):
    base = kernel_cost(SPEC, SPEC.gpu, work)
    derated = kernel_cost(SPEC, SPEC.gpu, work, mem_bw_factor=factor)
    assert derated.memory_s >= base.memory_s - 1e-15
    assert derated.total_s >= base.total_s - 1e-15


@given(work=work_strategy)
@settings(max_examples=150)
def test_gpu_occupancy_monotone_in_output_size(work):
    from dataclasses import replace
    small = replace(work, out_elements=max(1.0, work.out_elements / 10))
    c_small = kernel_cost(SPEC, SPEC.gpu, small, include_launch=False)
    c_big = kernel_cost(SPEC, SPEC.gpu, work, include_launch=False)
    # Same byte/flop volume at lower occupancy can only be slower.
    assert c_small.total_s >= c_big.total_s - 1e-15
