"""Property-based tests of the plan_cost router's argmin claim.

The two-heap construction in :class:`repro.cluster.router.PlanCostRouter`
promises an *exact* argmin over predicted completion delay, not an
approximation: whatever sequence of state changes the fleet goes
through, the chosen replica is never strictly dominated — no other
routable replica has both a strictly smaller predicted wait and a
strictly smaller (or equal) service time.  These tests drive the router
through randomized replica states and verify that claim, plus exact
argmin against a brute-force scan, and the same for the energy
objective.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.fleet import Pool, Replica
from repro.cluster.router import ENERGY, PlanCostRouter
from repro.hardware.variants import full_catalog
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import BatchServiceTime


class FixedModel:
    """Service model with directly prescribed costs."""

    def __init__(self, svc1_s, unit_s, energy_j):
        self.svc1_s = svc1_s
        self.unit_s = unit_s
        self.energy_j = energy_j

    def service(self, network, batch, **kwargs):
        total = self.svc1_s if batch == 1 else self.unit_s * batch
        return BatchServiceTime(
            total_s=total, cpu_busy_s=0.0, gpu_busy_s=total,
            energy_j=self.energy_j * batch,
        )

    def warm(self, network, batch):
        return self.service(network, batch)


replica_costs = st.tuples(
    st.floats(min_value=1e-3, max_value=1.0),    # svc1_s
    st.floats(min_value=1e-4, max_value=0.5),    # unit_s
    st.floats(min_value=1e-3, max_value=10.0),   # unit energy
)

#: A state step the harness applies to one replica between choices:
#: (replica index selector, queued requests added, busy extension).
state_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0.0, max_value=0.5),
    ),
    min_size=0, max_size=30,
)


def build_pool(costs):
    spec = full_catalog()["jetson-agx-xavier"]
    pool = Pool("net", "net", BatchPolicy(max_wait_s=0.0))
    for i, (svc1, unit, energy) in enumerate(costs):
        pool.replicas.append(
            Replica(
                f"net#{i}", spec, "net", "net",
                FixedModel(svc1, min(unit, svc1), energy),
                idx=i + 1, max_batch=4,
            )
        )
    pool.replicas_start = len(pool.replicas)
    return pool


def dispatch(replica, t):
    """The simulator's continuous batching: a free device with queued
    work starts a batch immediately."""
    if replica.busy_until <= t and replica.queue:
        batch = min(len(replica.queue), 4)
        for _ in range(batch):
            replica.queue.popleft()
        replica.busy_until = t + replica.model.warm("net", batch).total_s


def drive(router, pool, steps):
    """Apply randomized state mutations under the simulator's contract
    — every busy horizon gets a completion event that re-dispatches and
    notes the replica (the invariant the busy heap's keys rely on) —
    and yield (now, chosen) pairs."""
    import heapq

    now = 0.0
    pending = []                      # (busy_until, idx, replica)

    def schedule(replica):
        if replica.busy_until > now:
            heapq.heappush(
                pending, (replica.busy_until, replica.idx, replica)
            )

    for selector, enqueue, busy_extra in steps:
        next_now = now + 0.05
        while pending and pending[0][0] <= next_now:
            t, _, done = heapq.heappop(pending)
            if done.busy_until != t:
                continue              # stale: the horizon moved on
            now = t
            dispatch(done, t)
            done.version += 1
            router.note(done, t)
            schedule(done)
        now = next_now
        replica = pool.replicas[selector % len(pool.replicas)]
        for _ in range(enqueue):
            replica.queue.append(now)
        if busy_extra > 0.0:
            # A fault-stretched batch: the busy horizon extends.
            replica.busy_until = max(replica.busy_until, now) + busy_extra
        dispatch(replica, now)
        replica.version += 1
        router.note(replica, now)
        schedule(replica)
        chosen = router.choose(now, "tenant")
        yield now, chosen


@settings(max_examples=60, deadline=None)
@given(
    costs=st.lists(replica_costs, min_size=2, max_size=6),
    steps=state_steps,
)
def test_plan_cost_never_picks_a_dominated_replica(costs, steps):
    pool = build_pool(costs)
    router = PlanCostRouter(pool)
    for now, chosen in drive(router, pool, steps):
        assert chosen is not None
        wait = chosen.predicted_wait_s(now)
        svc = chosen.svc1_s
        for other in pool.replicas:
            if other is chosen or not other.routable:
                continue
            dominated = (
                other.predicted_wait_s(now) < wait
                and other.svc1_s <= svc
            )
            assert not dominated, (
                f"{chosen.name} (wait {wait:.4f}, svc {svc:.4f}) is "
                f"dominated by {other.name} "
                f"(wait {other.predicted_wait_s(now):.4f}, "
                f"svc {other.svc1_s:.4f}) at t={now:.2f}"
            )


@settings(max_examples=60, deadline=None)
@given(
    costs=st.lists(replica_costs, min_size=2, max_size=6),
    steps=state_steps,
)
def test_plan_cost_is_exact_argmin_on_predicted_latency(costs, steps):
    pool = build_pool(costs)
    router = PlanCostRouter(pool)
    for now, chosen in drive(router, pool, steps):
        best = min(
            r.predicted_latency_s(now)
            for r in pool.replicas if r.routable
        )
        assert chosen.predicted_latency_s(now) <= best + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    costs=st.lists(replica_costs, min_size=2, max_size=6),
    steps=state_steps,
)
def test_energy_objective_is_exact_argmin_on_unit_energy(costs, steps):
    pool = build_pool(costs)
    router = PlanCostRouter(pool, objective=ENERGY)
    for _, chosen in drive(router, pool, steps):
        best = min(
            r.unit_energy_j for r in pool.replicas if r.routable
        )
        assert chosen.unit_energy_j <= best + 1e-12
