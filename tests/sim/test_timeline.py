"""Discrete-event timeline."""

import pytest

from repro.errors import SimulationError
from repro.sim.timeline import COPY, CPU, GPU, Timeline


class TestScheduling:
    def test_serial_on_one_resource(self):
        tl = Timeline()
        a = tl.schedule(CPU, 1.0, "a")
        b = tl.schedule(CPU, 2.0, "b")
        assert a.start_s == 0.0 and a.end_s == 1.0
        assert b.start_s == 1.0 and b.end_s == 3.0

    def test_parallel_across_resources(self):
        tl = Timeline()
        a = tl.schedule(CPU, 1.0, "a")
        b = tl.schedule(GPU, 1.0, "b")
        assert a.start_s == 0.0 and b.start_s == 0.0

    def test_dependency_ordering(self):
        tl = Timeline()
        a = tl.schedule(GPU, 1.0, "a")
        b = tl.schedule(CPU, 0.5, "b", after=[a])
        assert b.start_s == a.end_s

    def test_dependency_and_resource_both_respected(self):
        tl = Timeline()
        long_cpu = tl.schedule(CPU, 5.0, "long")
        gpu = tl.schedule(GPU, 1.0, "gpu")
        dep = tl.schedule(CPU, 1.0, "dep", after=[gpu])
        assert dep.start_s == long_cpu.end_s  # resource is the binding limit

    def test_not_before(self):
        tl = Timeline()
        ev = tl.schedule(CPU, 1.0, "a", not_before=2.5)
        assert ev.start_s == 2.5

    def test_zero_duration_event(self):
        tl = Timeline()
        ev = tl.schedule(GPU, 0.0, "sync")
        assert ev.duration_s == 0.0

    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(SimulationError):
            tl.schedule(CPU, -1.0, "bad")

    def test_unknown_resource_rejected(self):
        tl = Timeline()
        with pytest.raises(SimulationError):
            tl.schedule("tpu", 1.0, "bad")

    def test_empty_resource_set_rejected(self):
        with pytest.raises(SimulationError):
            Timeline(())


class TestBarrierAndStats:
    def test_barrier_aligns_all_resources(self):
        tl = Timeline()
        tl.schedule(CPU, 1.0, "a")
        tl.schedule(GPU, 3.0, "b")
        tl.barrier()
        c = tl.schedule(CPU, 1.0, "c")
        assert c.start_s == 3.0

    def test_busy_time_per_resource(self):
        tl = Timeline()
        tl.schedule(CPU, 1.0, "a")
        tl.schedule(CPU, 2.0, "b")
        tl.schedule(GPU, 4.0, "c")
        assert tl.busy_time(CPU) == pytest.approx(3.0)
        assert tl.busy_time(GPU) == pytest.approx(4.0)

    def test_utilization(self):
        tl = Timeline()
        tl.schedule(CPU, 1.0, "a")
        tl.schedule(GPU, 4.0, "b")
        assert tl.utilization(CPU) == pytest.approx(0.25)
        assert tl.utilization(GPU) == pytest.approx(1.0)

    def test_utilization_of_empty_timeline(self):
        tl = Timeline()
        assert tl.utilization(CPU) == 0.0

    def test_now_is_makespan(self):
        tl = Timeline()
        tl.schedule(COPY, 2.0, "x")
        tl.schedule(GPU, 1.0, "y")
        assert tl.now() == 2.0

    def test_free_at_tracks_resource(self):
        tl = Timeline()
        tl.schedule(CPU, 1.5, "a")
        assert tl.free_at(CPU) == 1.5
        assert tl.free_at(GPU) == 0.0

    def test_trace_records_events(self):
        tl = Timeline()
        tl.schedule(CPU, 1.0, "a", category="kernel")
        tl.schedule(COPY, 0.5, "m", category="copy")
        assert len(tl.trace) == 2
        assert tl.trace.busy_time(COPY, category="copy") == pytest.approx(0.5)
