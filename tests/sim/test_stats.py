"""Trace statistics: utilization, gaps, co-run share."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import (
    ResourceStats,
    corun_share,
    resource_stats,
    utilization_profile,
)
from repro.sim.trace import Trace, TraceEvent


def trace_from(events):
    trace = Trace()
    for resource, start, end in events:
        trace.add(TraceEvent(resource, f"{resource}@{start}", start, end))
    return trace


class TestResourceStats:
    def test_busy_and_utilization(self):
        trace = trace_from([("cpu", 0.0, 1.0), ("cpu", 2.0, 3.0),
                            ("gpu", 0.0, 4.0)])
        stats = resource_stats(trace, "cpu")
        assert stats.busy_s == pytest.approx(2.0)
        assert stats.utilization == pytest.approx(0.5)
        assert stats.event_count == 2

    def test_longest_idle_gap(self):
        trace = trace_from([("cpu", 0.0, 1.0), ("cpu", 3.0, 4.0),
                            ("gpu", 0.0, 6.0)])
        stats = resource_stats(trace, "cpu")
        assert stats.longest_idle_gap_s == pytest.approx(2.0)

    def test_trailing_gap_counts(self):
        trace = trace_from([("cpu", 0.0, 1.0), ("gpu", 0.0, 10.0)])
        assert resource_stats(trace, "cpu").longest_idle_gap_s == pytest.approx(9.0)

    def test_overlapping_events_merged(self):
        trace = trace_from([("cpu", 0.0, 2.0), ("cpu", 1.0, 3.0)])
        assert resource_stats(trace, "cpu").busy_s == pytest.approx(3.0)

    def test_empty_trace(self):
        stats = resource_stats(Trace(), "cpu")
        assert stats.busy_s == 0.0 and stats.utilization == 0.0


class TestCorunShare:
    def test_full_overlap(self):
        trace = trace_from([("cpu", 0.0, 4.0), ("gpu", 0.0, 4.0)])
        assert corun_share(trace) == pytest.approx(1.0)

    def test_no_overlap(self):
        trace = trace_from([("cpu", 0.0, 2.0), ("gpu", 2.0, 4.0)])
        assert corun_share(trace) == pytest.approx(0.0)

    def test_partial_overlap(self):
        trace = trace_from([("cpu", 0.0, 3.0), ("gpu", 2.0, 4.0)])
        assert corun_share(trace) == pytest.approx(0.25)

    def test_empty(self):
        assert corun_share(Trace()) == 0.0


class TestUtilizationProfile:
    def test_constant_busy_resource(self):
        trace = trace_from([("gpu", 0.0, 10.0)])
        profile = utilization_profile(trace, ["gpu"], bins=5)
        assert profile["gpu"] == pytest.approx([1.0] * 5)

    def test_half_busy(self):
        trace = trace_from([("cpu", 0.0, 5.0), ("gpu", 0.0, 10.0)])
        profile = utilization_profile(trace, ["cpu"], bins=2)
        assert profile["cpu"][0] == pytest.approx(1.0)
        assert profile["cpu"][1] == pytest.approx(0.0)

    def test_bins_validated(self):
        with pytest.raises(SimulationError):
            utilization_profile(Trace(), ["cpu"], bins=0)


class TestOnRealSchedules:
    def test_gpu_only_has_zero_corun_share(self):
        from repro.eval.experiments import gpu_only_report
        report = gpu_only_report("alexnet")
        assert corun_share(report.trace) == pytest.approx(0.0, abs=1e-9)

    def test_edgenn_achieves_corun(self):
        from repro.eval.experiments import edgenn_report
        report = edgenn_report("alexnet")
        # Hybrid execution must actually overlap the processors (the split
        # fc layers co-run).
        assert corun_share(report.trace) > 0.2

    def test_interkernel_corun_on_branchy_network(self):
        from repro.baselines import run_interkernel_only
        from repro.hardware.specs import JETSON_AGX_XAVIER
        report = run_interkernel_only("squeezenet", JETSON_AGX_XAVIER)
        assert corun_share(report.trace) > 0.05
