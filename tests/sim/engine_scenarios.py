"""Shared scenario matrix pinning the event-engine refactor.

Each scenario builds and runs a simulator through the *public* entry
points and returns the digests the golden file records: the report
digest, and the timeline digest when the scenario records one.  The
golden file (``tests/golden/engine_parity.json``) was generated from
the pre-refactor per-request event loops; the vectorized engine must
reproduce every digest bit-for-bit.

Scenarios deliberately cover every structurally distinct code path:
the saturated knee (bulk admission under a busy device), deadlines
and shed, multi-tenant weighted fair share, fault injection with
resilience on and off, closed-loop tenants (dynamic arrivals), an
observability-enabled run, and cluster routing/autoscaling/flash
crowds over the merged-arrival loop.
"""

from typing import Callable, Dict, Optional, Tuple

from repro.cluster import (
    AutoscalerPolicy,
    ClusterConfig,
    ClusterSimulator,
    ClusterTenant,
    DeviceMix,
)
from repro.faults import load_scenario, scale_to_horizon
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import (
    ServingConfig,
    ServingSimulator,
    TenantSpec,
    poisson_tenant,
)
from repro.workloads.arrivals import (
    ClosedLoopArrivals,
    DiurnalPoissonArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)

#: scenario name -> zero-arg callable returning
#: (report_digest, timeline_digest_or_None)
ScenarioFn = Callable[[], Tuple[str, Optional[str]]]


def _finish(sim, report) -> Tuple[str, Optional[str]]:
    timeline = sim.timeline.digest() if sim.timeline is not None else None
    return report.digest(), timeline


def serving_knee() -> Tuple[str, Optional[str]]:
    """Overloaded single tenant: bulk admission, sheds, full batches."""
    sim = ServingSimulator(
        None,
        [poisson_tenant("lenet", 400.0, 2.0, seed=7)],
        ServingConfig(
            policy=BatchPolicy(max_batch_size=4, max_queue_depth=32),
            seed=7,
        ),
    )
    return _finish(sim, sim.run())


def serving_deadline() -> Tuple[str, Optional[str]]:
    """Tight deadlines: expiry sweeps, timeouts, and a timeline."""
    sim = ServingSimulator(
        None,
        [poisson_tenant("lenet", 200.0, 1.5, seed=11)],
        ServingConfig(
            policy=BatchPolicy(
                max_batch_size=4, max_queue_depth=16, deadline_s=0.003
            ),
            seed=11,
            timeline_window_s=0.25,
        ),
    )
    return _finish(sim, sim.run())


def serving_multitenant() -> Tuple[str, Optional[str]]:
    """Weighted fair share across three tenants, one with its own policy."""
    tenants = [
        poisson_tenant("lenet", 120.0, 2.0, seed=5, weight=3.0),
        poisson_tenant("fcnn", 60.0, 2.0, seed=6, weight=1.0),
        TenantSpec(
            network="lenet",
            arrival=PoissonArrivals(40.0, 2.0, seed=9),
            weight=1.0,
            name="lenet-b",
            policy=BatchPolicy(max_batch_size=2, max_queue_depth=8),
        ),
    ]
    sim = ServingSimulator(
        None, tenants, ServingConfig(policy=BatchPolicy(max_batch_size=8))
    )
    return _finish(sim, sim.run())


def serving_faults() -> Tuple[str, Optional[str]]:
    """edge-storm with the resilience layer on, timeline recorded."""
    sim = ServingSimulator(
        None,
        [poisson_tenant("lenet", 40.0, 3.0, seed=7)],
        ServingConfig(
            policy=BatchPolicy(max_batch_size=4, deadline_s=0.5),
            seed=7,
            faults=scale_to_horizon(load_scenario("edge-storm"), 3.0),
            timeline_window_s=0.5,
        ),
    )
    return _finish(sim, sim.run())


def serving_faults_naive() -> Tuple[str, Optional[str]]:
    """The same storm without resilience (stale plans, no retries)."""
    sim = ServingSimulator(
        None,
        [poisson_tenant("lenet", 40.0, 3.0, seed=7)],
        ServingConfig(
            policy=BatchPolicy(max_batch_size=4, deadline_s=0.5),
            seed=7,
            faults=scale_to_horizon(load_scenario("edge-storm"), 3.0),
            resilience=False,
        ),
    )
    return _finish(sim, sim.run())


def serving_closed_loop() -> Tuple[str, Optional[str]]:
    """Closed-loop clients: arrivals depend on completions."""
    tenants = [
        TenantSpec(
            network="lenet",
            arrival=ClosedLoopArrivals(
                clients=6, think_s=0.005, duration_s=1.5
            ),
        ),
        poisson_tenant("lenet", 50.0, 1.5, seed=3, name="open"),
    ]
    sim = ServingSimulator(
        None, tenants, ServingConfig(policy=BatchPolicy(max_batch_size=4))
    )
    return _finish(sim, sim.run())


def serving_obs() -> Tuple[str, Optional[str]]:
    """Observability on: per-request spans must not perturb the report."""
    from repro.obs import Observability

    sim = ServingSimulator(
        None,
        [poisson_tenant("lenet", 150.0, 0.5, seed=3)],
        ServingConfig(policy=BatchPolicy(max_batch_size=4)),
        obs=Observability.on(),
    )
    return _finish(sim, sim.run())


def serving_cold_start() -> Tuple[str, Optional[str]]:
    """Cold-start premium charged to each tenant's first batch."""
    sim = ServingSimulator(
        None,
        [poisson_tenant("lenet", 80.0, 1.0, seed=2)],
        ServingConfig(
            policy=BatchPolicy(max_batch_size=4), cold_start=True, seed=2
        ),
    )
    return _finish(sim, sim.run())


def cluster_routing() -> Tuple[str, Optional[str]]:
    """Heterogeneous fleet, plan_cost router, rolling thermal faults."""
    sim = ClusterSimulator(
        [ClusterTenant("lenet", PoissonArrivals(200.0, 4.0, seed=7))],
        DeviceMix.parse(
            "jetson-agx-xavier:2,raspberry-pi-4", throttled_share=0.34
        ),
        6,
        ClusterConfig(
            router="plan_cost",
            seed=7,
            policy=BatchPolicy(max_wait_s=0.0, deadline_s=2.0),
            faults=scale_to_horizon(load_scenario("thermal-soak"), 4.0),
            fault_share=0.5,
            fault_stagger_s=0.5,
            timeline_window_s=1.0,
        ),
    )
    return _finish(sim, sim.run())


def cluster_scale() -> Tuple[str, Optional[str]]:
    """Diurnal load with the autoscaler growing and shrinking the pool."""
    sim = ClusterSimulator(
        [
            ClusterTenant(
                "squeezenet",
                DiurnalPoissonArrivals(30.0, 4.0, period_s=2.0, seed=5),
            )
        ],
        DeviceMix.parse("jetson-agx-xavier"),
        2,
        ClusterConfig(
            router="least_queue",
            seed=5,
            policy=BatchPolicy(max_wait_s=0.0, deadline_s=2.0),
            autoscaler=AutoscalerPolicy(
                interval_s=0.5,
                high_depth=2.0,
                low_depth=0.25,
                cooldown_s=0.5,
                min_replicas=1,
                max_replicas=6,
            ),
        ),
    )
    return _finish(sim, sim.run())


def cluster_flash_crowd() -> Tuple[str, Optional[str]]:
    """Two pools, flash-crowd burst, round-robin, timeline recorded."""
    sim = ClusterSimulator(
        [
            ClusterTenant(
                "lenet",
                FlashCrowdArrivals(
                    60.0, 3.0, spike_start_s=1.0, spike_duration_s=0.5,
                    spike_factor=4.0, seed=4,
                ),
            ),
            ClusterTenant("fcnn", PoissonArrivals(40.0, 3.0, seed=8)),
        ],
        DeviceMix.parse("jetson-agx-xavier:2,raspberry-pi-4"),
        4,
        ClusterConfig(
            router="round_robin",
            seed=4,
            policy=BatchPolicy(max_wait_s=0.0, deadline_s=1.0),
            timeline_window_s=0.5,
        ),
    )
    return _finish(sim, sim.run())


def _hermetic(fn: ScenarioFn) -> ScenarioFn:
    """Isolate a scenario from process-global state.

    Plan-cache hits/misses are part of the report digest, and the
    default plan cache is process-global — without a reset, digests
    would depend on which scenarios (or other tests) ran earlier in
    the same process."""

    def run() -> Tuple[str, Optional[str]]:
        from repro.core.plan_cache import default_plan_cache

        default_plan_cache().clear()
        return fn()

    return run


SCENARIOS: Dict[str, ScenarioFn] = {
    "serving_knee": _hermetic(serving_knee),
    "serving_deadline": _hermetic(serving_deadline),
    "serving_multitenant": _hermetic(serving_multitenant),
    "serving_faults": _hermetic(serving_faults),
    "serving_faults_naive": _hermetic(serving_faults_naive),
    "serving_closed_loop": _hermetic(serving_closed_loop),
    "serving_obs": _hermetic(serving_obs),
    "serving_cold_start": _hermetic(serving_cold_start),
    "cluster_routing": _hermetic(cluster_routing),
    "cluster_scale": _hermetic(cluster_scale),
    "cluster_flash_crowd": _hermetic(cluster_flash_crowd),
}
