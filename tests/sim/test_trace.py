"""Trace records and Chrome-trace export."""

import json

import pytest

from repro.sim.trace import Trace, TraceEvent


def make_trace():
    trace = Trace()
    trace.add(TraceEvent("cpu", "a", 0.0, 1.0, "kernel"))
    trace.add(TraceEvent("gpu", "b", 0.5, 2.5, "kernel"))
    trace.add(TraceEvent("copy", "m", 2.5, 3.0, "copy"))
    return trace


class TestTrace:
    def test_len_and_iter(self):
        trace = make_trace()
        assert len(trace) == 3
        assert [e.label for e in trace] == ["a", "b", "m"]

    def test_events_for_resource(self):
        trace = make_trace()
        assert [e.label for e in trace.events_for("gpu")] == ["b"]

    def test_busy_time(self):
        trace = make_trace()
        assert trace.busy_time("gpu") == pytest.approx(2.0)
        assert trace.busy_time("copy", category="copy") == pytest.approx(0.5)
        assert trace.busy_time("copy", category="kernel") == 0.0

    def test_span(self):
        assert make_trace().span() == pytest.approx(3.0)

    def test_span_empty(self):
        assert Trace().span() == 0.0

    def test_event_duration(self):
        ev = TraceEvent("cpu", "a", 1.0, 3.5)
        assert ev.duration_s == pytest.approx(2.5)


class TestChromeExport:
    def test_valid_json(self):
        doc = json.loads(make_trace().to_chrome_trace())
        assert "traceEvents" in doc

    def test_records_have_required_fields(self):
        doc = json.loads(make_trace().to_chrome_trace())
        slices = [r for r in doc["traceEvents"] if r.get("ph") == "X"]
        assert len(slices) == 3
        for record in slices:
            assert {"name", "ts", "dur", "pid", "tid"} <= set(record)

    def test_thread_names_metadata(self):
        doc = json.loads(make_trace().to_chrome_trace())
        meta = [r for r in doc["traceEvents"] if r.get("ph") == "M"]
        names = {m["args"]["name"] for m in meta
                 if m["name"] == "thread_name"}
        assert names == {"cpu", "gpu", "copy"}

    def test_process_name_and_sort_index_metadata(self):
        doc = json.loads(make_trace().to_chrome_trace())
        meta = [r for r in doc["traceEvents"] if r.get("ph") == "M"]
        kinds = {m["name"] for m in meta}
        assert {"process_name", "thread_name", "thread_sort_index"} <= kinds
        for m in meta:
            assert "pid" in m and "tid" in m
        sort_indices = [m for m in meta if m["name"] == "thread_sort_index"]
        assert all("sort_index" in m["args"] for m in sort_indices)

    def test_rejects_negative_duration(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="ends\\s+before it starts"):
            TraceEvent("cpu", "bad", 2.0, 1.0)

    def test_zero_duration_event_allowed(self):
        ev = TraceEvent("cpu", "instant", 1.0, 1.0)
        assert ev.duration_s == 0.0

    def test_times_in_microseconds(self):
        doc = json.loads(make_trace().to_chrome_trace())
        slices = {r["name"]: r for r in doc["traceEvents"] if r.get("ph") == "X"}
        assert slices["b"]["ts"] == pytest.approx(0.5e6)
        assert slices["b"]["dur"] == pytest.approx(2.0e6)
