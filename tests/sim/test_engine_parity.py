"""Golden parity gate for the vectorized event engine.

The refactor that moved both simulators onto ``repro.sim.engine`` is
pinned by pre-refactor goldens: every scenario's report digest (and
timeline-artifact digest, where recording is on) must stay bit-identical
to the legacy per-request loops that generated
``tests/golden/engine_parity.json``.  Regenerate — only for a
deliberate, reviewed semantic change — with::

    PYTHONPATH=src:tests python tests/golden/generate_engine_goldens.py

Alongside the goldens, property tests pin the engine's core invariant:
the event heap never pops out of virtual-time order, and same-instant
events keep (kind, push-order) priority.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sim.engine import EventHeap

from .engine_scenarios import SCENARIOS

GOLDEN = Path(__file__).parent.parent / "golden" / "engine_parity.json"


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN.read_text())


def test_golden_covers_every_scenario(goldens):
    assert sorted(goldens) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_engine_parity(name, goldens):
    report_digest, timeline_digest = SCENARIOS[name]()
    pinned = goldens[name]
    assert report_digest == pinned["report_digest"], (
        f"{name}: report digest drifted from the pre-refactor golden"
    )
    assert timeline_digest == pinned["timeline_digest"], (
        f"{name}: timeline digest drifted from the pre-refactor golden"
    )


# -- event-heap ordering properties ----------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=64,
    )
)
def test_heap_pops_in_virtual_time_order(events):
    """Pops come out sorted by (time, kind, push order) — never a step
    back in virtual time, no matter the push order."""
    heap = EventHeap()
    for i, (t, kind) in enumerate(events):
        heap.push(t, kind, payload=i)
    popped = [heap.pop() for _ in range(len(events))]
    assert not heap
    times = [p[0] for p in popped]
    assert times == sorted(times)
    # Full priority: (time, kind, seq) strictly increases.
    triples = [(t, kind, seq) for t, kind, seq, _ in popped]
    assert triples == sorted(triples)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(
            min_value=0.0,
            max_value=100.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=32,
    ),
    st.data(),
)
def test_heap_interleaved_pushes_stay_monotone(times, data):
    """Pushing at-or-after the current virtual instant (what the
    simulators do) keeps pops monotone even when pushes interleave."""
    heap = EventHeap()
    heap.push(times[0], 0)
    now = 0.0
    remaining = times[1:]
    while heap:
        t, _, _, _ = heap.pop()
        assert t >= now
        now = t
        # Simulators only schedule completions/timers at >= now.
        for _ in range(min(len(remaining), data.draw(st.integers(0, 2)))):
            dt = remaining.pop()
            heap.push(now + dt, 1)


def test_heap_flags_out_of_order_pop():
    """The always-on monotonicity guard trips if someone schedules an
    event in the popped past."""
    heap = EventHeap()
    heap.push(5.0, 0)
    heap.pop()
    heap.push(1.0, 0)
    with pytest.raises(ReproError):
        heap.pop()


def test_heap_peek_matches_pop():
    heap = EventHeap()
    heap.push(2.0, 1, payload="b")
    heap.push(2.0, 0, payload="a")
    assert heap.peek_time() == 2.0
    assert heap.peek_kind() == 0
    assert heap.pop()[3] == "a"  # kind breaks the same-instant tie
    assert heap.pop()[3] == "b"
    assert heap.peek_time() == float("inf")
