"""RetryPolicy and CircuitBreaker unit behaviour."""

import pytest

from repro.errors import ReproError
from repro.faults import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ReproError, match="non-negative"):
            RetryPolicy(base_delay_s=-0.001)

    def test_nominal_is_exponential_then_capped(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.03
        )
        assert policy.nominal_delay(0) == pytest.approx(0.01)
        assert policy.nominal_delay(1) == pytest.approx(0.02)
        assert policy.nominal_delay(2) == pytest.approx(0.03)  # capped
        assert policy.nominal_delay(10) == pytest.approx(0.03)

    def test_delay_is_deterministic_per_token(self):
        policy = RetryPolicy(seed=3)
        assert policy.delay(0, token="a") == policy.delay(0, token="a")
        assert policy.delay(0, token="a") != policy.delay(0, token="b")

    def test_schedule_length(self):
        assert len(RetryPolicy(max_attempts=4).schedule()) == 3
        assert RetryPolicy(max_attempts=1).schedule() == []

    def test_negative_attempt_rejected(self):
        with pytest.raises(ReproError, match="attempt"):
            RetryPolicy().nominal_delay(-1)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ReproError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=0.0)

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        for t in (0.0, 0.1, 0.2):
            assert breaker.allow(t)
            breaker.record_failure(t)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.stats.opens == 1
        assert not breaker.allow(0.3)
        assert breaker.stats.short_circuits == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.5)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(0.4)
        assert breaker.allow(0.5)  # probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success(0.5)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.5)
        breaker.record_failure(0.0)
        assert breaker.allow(0.6)
        breaker.record_failure(0.6)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.stats.opens == 2
        assert not breaker.allow(1.0)
        assert breaker.allow(1.2)

    def test_transitions_are_logged(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.5)
        breaker.record_failure(0.0)
        breaker.allow(1.0)
        breaker.record_success(1.0)
        states = [(t["from"], t["to"]) for t in breaker.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
