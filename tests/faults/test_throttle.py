"""apply_throttle: DVFS-scaled device specs for thermal windows."""

import pytest

from repro.errors import SpecError
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.hardware.throttle import ThrottleFactors, apply_throttle


class TestThrottleFactors:
    def test_validation(self):
        with pytest.raises(SpecError, match="cpu"):
            ThrottleFactors(cpu=0.0)
        with pytest.raises(SpecError, match="gpu"):
            ThrottleFactors(gpu=1.5)
        with pytest.raises(SpecError, match="bandwidth"):
            ThrottleFactors(bandwidth=-0.1)

    def test_noop_detection(self):
        assert ThrottleFactors().is_noop
        assert not ThrottleFactors(gpu=0.5).is_noop

    def test_slug_is_stable(self):
        f = ThrottleFactors(cpu=0.85, gpu=0.45, bandwidth=0.70)
        assert f.slug() == "thr-c0.850-g0.450-b0.700"


class TestApplyThrottle:
    def test_noop_returns_same_object(self):
        spec = JETSON_AGX_XAVIER
        assert apply_throttle(spec, ThrottleFactors()) is spec

    def test_rates_scale(self):
        spec = JETSON_AGX_XAVIER
        factors = ThrottleFactors(cpu=0.8, gpu=0.5, bandwidth=0.7)
        throttled = apply_throttle(spec, factors)
        assert throttled.cpu.clock_hz == pytest.approx(
            spec.cpu.clock_hz * 0.8
        )
        assert throttled.gpu.clock_hz == pytest.approx(
            spec.gpu.clock_hz * 0.5
        )
        assert throttled.memory.bandwidth == pytest.approx(
            spec.memory.bandwidth * 0.7
        )
        assert throttled.cpu.max_stream_bw == pytest.approx(
            spec.cpu.max_stream_bw * 0.7
        )

    def test_power_tracks_clock_cuts(self):
        spec = JETSON_AGX_XAVIER
        throttled = apply_throttle(
            spec, ThrottleFactors(cpu=0.5, gpu=0.25)
        )
        assert throttled.power.idle_w == spec.power.idle_w
        assert throttled.power.cpu_dynamic_w == pytest.approx(
            spec.power.cpu_dynamic_w * 0.5
        )
        assert throttled.power.gpu_dynamic_w == pytest.approx(
            spec.power.gpu_dynamic_w * 0.25
        )

    def test_name_carries_slug(self):
        throttled = apply_throttle(
            JETSON_AGX_XAVIER, ThrottleFactors(gpu=0.45)
        )
        assert "@thr-" in throttled.name
        assert throttled.name != JETSON_AGX_XAVIER.name

    def test_original_spec_unmodified(self):
        before = JETSON_AGX_XAVIER.gpu.clock_hz
        apply_throttle(JETSON_AGX_XAVIER, ThrottleFactors(gpu=0.5))
        assert JETSON_AGX_XAVIER.gpu.clock_hz == before
