"""Fault-scenario data model: validation, catalog, JSON round-trip."""

import pytest

from repro.errors import ReproError
from repro.faults import (
    EDGE_STORM,
    FaultScenario,
    MemoryPressureWindow,
    SCENARIO_CATALOG,
    THERMAL_SOAK,
    ThermalWindow,
    load_scenario,
    scale_to_horizon,
)
from repro.hardware.throttle import ThrottleFactors


class TestWindows:
    def test_thermal_window_bounds(self):
        w = ThermalWindow(start_s=2.0, duration_s=6.0)
        assert w.end_s == 8.0
        assert not w.active(1.999)
        assert w.active(2.0)
        assert w.active(7.999)
        assert not w.active(8.0)

    def test_thermal_window_rejects_bad_interval(self):
        with pytest.raises(ReproError, match="duration"):
            ThermalWindow(start_s=0.0, duration_s=0.0)
        with pytest.raises(ReproError, match="start"):
            ThermalWindow(start_s=-1.0, duration_s=1.0)

    def test_memory_pressure_window(self):
        w = MemoryPressureWindow(start_s=1.0, duration_s=3.0)
        assert w.active(1.0) and w.active(3.999) and not w.active(4.0)
        with pytest.raises(ReproError):
            MemoryPressureWindow(start_s=1.0, duration_s=-1.0)


class TestScenario:
    def test_requires_name(self):
        with pytest.raises(ReproError, match="name"):
            FaultScenario(name="")

    def test_probabilities_validated(self):
        with pytest.raises(ReproError, match="kernel_failure_p"):
            FaultScenario(name="x", kernel_failure_p=1.5)
        with pytest.raises(ReproError, match="payload_corrupt_p"):
            FaultScenario(name="x", payload_corrupt_p=-0.1)

    def test_quiet_detection(self):
        assert FaultScenario(name="quiet").is_quiet
        assert not THERMAL_SOAK.is_quiet
        assert not EDGE_STORM.is_quiet

    def test_window_queries(self):
        assert THERMAL_SOAK.thermal_at(5.0) is not None
        assert THERMAL_SOAK.thermal_at(9.0) is None
        assert THERMAL_SOAK.memory_pressure_at(5.0) is None

    def test_json_round_trip(self):
        for scenario in SCENARIO_CATALOG.values():
            again = FaultScenario.from_json(scenario.to_json())
            assert again == scenario

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReproError, match="not valid JSON"):
            FaultScenario.from_json("{truncated")
        with pytest.raises(ReproError, match="must be an object"):
            FaultScenario.from_json("[1, 2]")
        with pytest.raises(ReproError, match="schema"):
            FaultScenario.from_json('{"schema": "wrong"}')

    def test_from_dict_rejects_bad_version(self):
        data = THERMAL_SOAK.to_dict()
        data["version"] = 99
        with pytest.raises(ReproError, match="version"):
            FaultScenario.from_dict(data)

    def test_describe_mentions_every_fault_class(self):
        text = EDGE_STORM.describe()
        assert "thermal" in text
        assert "mem pressure" in text
        assert "kernel faults" in text
        assert "bad payloads" in text


class TestLoadScenario:
    def test_catalog_name(self):
        assert load_scenario("thermal-soak") is THERMAL_SOAK

    def test_file_path(self, tmp_path):
        path = tmp_path / "custom.json"
        EDGE_STORM.save(path)
        assert load_scenario(path) == EDGE_STORM

    def test_unknown_raises_with_catalog_listing(self):
        with pytest.raises(ReproError, match="thermal-soak"):
            load_scenario("no-such-scenario")


class TestScaleToHorizon:
    def test_windows_stretch_proportionally(self):
        scaled = scale_to_horizon(EDGE_STORM, 20.0)
        assert scaled.thermal[0].start_s == pytest.approx(6.0)
        assert scaled.thermal[0].duration_s == pytest.approx(8.0)
        assert scaled.memory_pressure[0].start_s == pytest.approx(15.0)
        # Probabilities are per-event and do not scale.
        assert scaled.kernel_failure_p == EDGE_STORM.kernel_failure_p

    def test_identity_at_reference(self):
        assert scale_to_horizon(EDGE_STORM, 10.0) is EDGE_STORM

    def test_factors_preserved(self):
        scaled = scale_to_horizon(THERMAL_SOAK, 30.0)
        assert scaled.thermal[0].factors == ThrottleFactors(
            cpu=0.85, gpu=0.45, bandwidth=0.70
        )

    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ReproError, match="positive"):
            scale_to_horizon(EDGE_STORM, 0.0)
