"""DegradationManager: drift-triggered re-tune, hybrid fallback, records."""

import pytest

from repro.errors import ReproError
from repro.faults import (
    DegradationManager,
    DegradationPolicy,
    MODE_NO_HYBRID,
    MODE_NORMAL,
)
from repro.obs import Observability


class TestPolicyValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ReproError, match="drift_threshold"):
            DegradationPolicy(drift_threshold=1.0)
        with pytest.raises(ReproError, match="drift_sustain"):
            DegradationPolicy(drift_sustain=0)
        with pytest.raises(ReproError, match="hybrid_failure_threshold"):
            DegradationPolicy(hybrid_failure_threshold=0)


class TestLatencyDrift:
    def _manager(self, sustain=3):
        return DegradationManager(
            DegradationPolicy(drift_threshold=1.15, drift_sustain=sustain)
        )

    def test_sustained_drift_fires_retune(self):
        mgr = self._manager()
        fired = [
            mgr.observe_latency(
                "t", "lenet", now=float(i),
                observed_s=0.02, predicted_s=0.01,
            )
            for i in range(3)
        ]
        assert fired == [False, False, True]
        assert mgr.retuned("t")
        assert mgr.records[-1].action == "retune_throttled"
        assert mgr.records[-1].trigger == "latency_drift"

    def test_streak_resets_on_healthy_batch(self):
        mgr = self._manager()
        mgr.observe_latency("t", "lenet", now=0.0,
                            observed_s=0.02, predicted_s=0.01)
        mgr.observe_latency("t", "lenet", now=1.0,
                            observed_s=0.01, predicted_s=0.01)
        fired = [
            mgr.observe_latency("t", "lenet", now=2.0 + i,
                                observed_s=0.02, predicted_s=0.01)
            for i in range(3)
        ]
        assert fired == [False, False, True]

    def test_below_threshold_never_fires(self):
        mgr = self._manager()
        for i in range(10):
            assert not mgr.observe_latency(
                "t", "lenet", now=float(i),
                observed_s=0.0114, predicted_s=0.01,  # 1.14x < 1.15x
            )
        assert not mgr.retuned("t")

    def test_clear_drift_restores_nominal(self):
        mgr = self._manager(sustain=1)
        mgr.observe_latency("t", "lenet", now=0.0,
                            observed_s=0.02, predicted_s=0.01)
        assert mgr.retuned("t")
        mgr.clear_drift("t", "lenet", now=5.0)
        assert not mgr.retuned("t")
        assert mgr.records[-1].action == "restore_nominal"

    def test_tenants_are_independent(self):
        mgr = self._manager(sustain=1)
        mgr.observe_latency("a", "lenet", now=0.0,
                            observed_s=0.02, predicted_s=0.01)
        assert mgr.retuned("a")
        assert not mgr.retuned("b")


class TestHybridFallback:
    def test_fallback_engages_at_threshold(self):
        mgr = DegradationManager(
            DegradationPolicy(hybrid_failure_threshold=2)
        )
        assert mgr.mode("t") == MODE_NORMAL
        assert not mgr.note_hybrid_exhausted("t", "lenet", now=0.0)
        assert mgr.note_hybrid_exhausted("t", "lenet", now=1.0)
        assert mgr.mode("t") == MODE_NO_HYBRID
        # Sticky: further exhaustions do not re-fire.
        assert not mgr.note_hybrid_exhausted("t", "lenet", now=2.0)
        assert mgr.records[-1].action == "fallback_no_hybrid"


class TestRecordsAndObs:
    def test_decisions_reach_provenance(self):
        obs = Observability.on()
        mgr = DegradationManager(
            DegradationPolicy(drift_sustain=1), obs=obs
        )
        mgr.observe_latency("t", "lenet", now=0.0,
                            observed_s=0.02, predicted_s=0.01)
        mgr.note_memory_demotion("t", "lenet", now=1.0)
        mgr.note_artifact_discarded("lenet", "plan.json", now=2.0)
        actions = [r.action for r in obs.provenance.degradations()]
        assert actions == [
            "retune_throttled", "demote_zero_copy", "retune_from_scratch",
        ]
