"""FaultInjector determinism: same seed => same timeline, cross-stream
independence, and artifact corruption helper."""

import json

from repro.compile.artifact import PlanArtifact
from repro.core.plan_cache import PlanCache, PlanKey
from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.faults import (
    BAD_PAYLOADS,
    CORRUPT_ARTIFACTS,
    EDGE_STORM,
    FLAKY_KERNELS,
    FaultInjector,
    FaultScenario,
    corrupt_artifacts,
)
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.obs import Observability


def _drain(injector, n=64):
    """Consume n draws from every stream and return the event list."""
    for i in range(n):
        injector.kernel_fails(i * 0.1, detail=f"batch-{i}")
        injector.payload_corrupt(i * 0.1, request_id=i)
        injector.artifact_corrupt(path=f"plan-{i}.json", now=i * 0.1)
    return injector.events


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        a = FaultInjector(EDGE_STORM, seed=42)
        b = FaultInjector(EDGE_STORM, seed=42)
        assert _drain(a) == _drain(b)
        assert a.timeline_digest() == b.timeline_digest()

    def test_different_seed_differs(self):
        a = FaultInjector(FLAKY_KERNELS, seed=1)
        b = FaultInjector(FLAKY_KERNELS, seed=2)
        _drain(a), _drain(b)
        assert a.timeline_digest() != b.timeline_digest()

    def test_digest_is_stable_hex(self):
        injector = FaultInjector(FLAKY_KERNELS, seed=0)
        _drain(injector)
        digest = injector.timeline_digest()
        assert len(digest) == 64
        int(digest, 16)  # valid hex
        # Digest is over the events, not the object identity.
        assert digest == injector.timeline_digest()

    def test_streams_are_independent(self):
        """Consuming payload draws must not perturb kernel draws."""
        plain = FaultInjector(EDGE_STORM, seed=7)
        kernel_only = [
            plain.kernel_fails(i * 0.1) for i in range(32)
        ]
        mixed = FaultInjector(EDGE_STORM, seed=7)
        interleaved = []
        for i in range(32):
            mixed.payload_corrupt(i * 0.1, request_id=i)
            interleaved.append(mixed.kernel_fails(i * 0.1))
        assert kernel_only == interleaved

    def test_fault_rate_tracks_probability(self):
        injector = FaultInjector(FLAKY_KERNELS, seed=0)
        fails = sum(injector.kernel_fails(0.0) for _ in range(2000))
        assert 0.15 < fails / 2000 < 0.35  # p = 0.25

    def test_quiet_scenario_never_fires(self):
        injector = FaultInjector(FaultScenario(name="quiet"), seed=0)
        assert not any(
            injector.kernel_fails(0.0) for _ in range(100)
        )
        assert injector.events == []


class TestWindows:
    def test_throttle_and_pressure_queries(self):
        injector = FaultInjector(EDGE_STORM, seed=0)
        assert injector.throttle_at(5.0) is not None
        assert injector.throttle_at(0.5) is None
        assert injector.memory_pressure_at(8.0)
        assert not injector.memory_pressure_at(1.0)

    def test_window_edge_events_recorded(self):
        injector = FaultInjector(EDGE_STORM, seed=0)
        window = EDGE_STORM.thermal[0]
        injector.note_thermal_enter(window.start_s, window)
        injector.note_thermal_exit(window.end_s, window)
        kinds = [e["kind"] for e in injector.events]
        assert kinds == ["thermal_enter", "thermal_exit"]


class TestObsMirror:
    def test_events_recorded_to_obs(self):
        obs = Observability.on()
        injector = FaultInjector(BAD_PAYLOADS, seed=0, obs=obs)
        for i in range(200):
            injector.payload_corrupt(0.0, request_id=i)
        assert injector.events  # p=0.08 over 200 draws fires w.h.p.
        spans = [
            s for s in obs.tracer.iter_spans() if s.category == "fault"
        ]
        assert len(spans) == len(injector.events)


class TestCorruptArtifacts:
    def _write_artifact(self, directory):
        engine = EdgeNN("lenet", JETSON_AGX_XAVIER, EdgeNNConfig())
        result = engine.tune()
        key = PlanKey.from_config(
            "lenet", JETSON_AGX_XAVIER.name, engine.config
        )
        path = directory / f"{key.slug()}.json"
        PlanArtifact.from_tuning(key, result).save(path)
        return key, path

    def test_truncates_files_and_cache_survives(self, tmp_path):
        key, path = self._write_artifact(tmp_path)
        victims = corrupt_artifacts(
            tmp_path, scenario=CORRUPT_ARTIFACTS, seed=0
        )
        assert victims == [path]
        # The file is now torn JSON...
        try:
            json.loads(path.read_text())
            torn = False
        except json.JSONDecodeError:
            torn = True
        assert torn
        # ...and the hardened cache treats it as a miss, not a crash.
        cache = PlanCache(save_dir=tmp_path)
        sentinel = object()
        out = cache.get_or_tune(key, lambda: sentinel)
        assert out is sentinel
        assert cache.corrupt_loads == 1
        assert cache.misses == 1

    def test_zero_probability_leaves_files_alone(self, tmp_path):
        _, path = self._write_artifact(tmp_path)
        before = path.read_text()
        victims = corrupt_artifacts(
            tmp_path, scenario=FaultScenario(name="quiet"), seed=0
        )
        assert victims == []
        assert path.read_text() == before
