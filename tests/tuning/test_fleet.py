"""TuneFleet: fault-tolerant drain of a catalog into a plan store."""

import pytest

from repro.faults import FLAKY_FLEET, FaultScenario
from repro.store.plan_store import PlanStore
from repro.tuning import fleet_catalog, run_fleet

JETSON_SUBSET = dict(
    networks=["lenet", "squeezenet"],
    devices=["jetson-agx-xavier", "raspberry-pi-4"],
    batch_sizes=(1, 2),
)


def subset_jobs():
    return fleet_catalog(**JETSON_SUBSET)


class TestQuietFleet:
    def test_all_plans_land_exactly_once(self, tmp_path):
        jobs = subset_jobs()
        report = run_fleet(tmp_path / "store", jobs, workers=2, seed=0)
        assert report.completed == len(jobs)
        assert report.poisoned == 0
        assert report.attempts == len(jobs)

        store = PlanStore(tmp_path / "store")
        for job in jobs:
            assert store.contains(job.key)
        assert len(list(store.objects_dir.glob("*.json"))) == len(jobs)

    def test_warm_rerun_is_noop(self, tmp_path):
        jobs = subset_jobs()
        run_fleet(tmp_path / "store", jobs, workers=2, seed=0)
        again = run_fleet(tmp_path / "store", jobs, workers=2, seed=0)
        assert again.completed == len(jobs)
        assert again.attempts == 0

    def test_store_round_trips_artifacts(self, tmp_path):
        jobs = subset_jobs()
        run_fleet(tmp_path / "store", jobs, workers=2, seed=0)
        store = PlanStore(tmp_path / "store")
        for job in jobs:
            artifact = store.get(job.key)
            assert artifact is not None
            result = artifact.to_tuning_result()
            assert result.source == "artifact"
            assert result.rounds == []  # zero tuner rounds on reload


class TestFlakyFleet:
    def test_crashes_and_corruption_recovered(self, tmp_path):
        jobs = subset_jobs()
        report = run_fleet(
            tmp_path / "store", jobs, workers=4, seed=3,
            scenario=FLAKY_FLEET,
        )
        assert report.completed == len(jobs)
        assert report.poisoned == 0
        # seed 3 on this subset provokes real faults; every one must
        # have been retried into a good final state.
        assert report.attempts > len(jobs)
        assert report.worker_crashes + report.corrupt_ingests > 0

        store = PlanStore(tmp_path / "store")
        for job in jobs:
            assert store.get(job.key) is not None

    def test_same_seed_same_manifest(self, tmp_path):
        jobs = subset_jobs()
        digests = []
        for run in ("a", "b"):
            report = run_fleet(
                tmp_path / run, jobs, workers=4, seed=0,
                scenario=FLAKY_FLEET,
            )
            digests.append(report.manifest_digest)
        assert digests[0] == digests[1]
        text_a = (tmp_path / "a" / "manifest.json").read_bytes()
        text_b = (tmp_path / "b" / "manifest.json").read_bytes()
        assert text_a == text_b

    def test_different_seed_different_fault_history(self, tmp_path):
        jobs = subset_jobs()
        reports = [
            run_fleet(
                tmp_path / str(seed), jobs, workers=2, seed=seed,
                scenario=FLAKY_FLEET,
            )
            for seed in (0, 1)
        ]
        # Manifests agree (content-addressed plans are seed-free) even
        # though the fault history differs.
        assert reports[0].manifest_digest == reports[1].manifest_digest

    def test_always_crash_poisons_everything(self, tmp_path):
        jobs = fleet_catalog(
            networks=["lenet"], devices=["raspberry-pi-4"], batch_sizes=(1,)
        )
        doomed = FaultScenario(name="doomed", worker_crash_p=1.0)
        report = run_fleet(
            tmp_path / "store", jobs, workers=1, seed=0, scenario=doomed,
        )
        assert report.completed == 0
        assert report.poisoned == len(jobs)
        assert report.poisoned_jobs[0]["failures"]
        # No torn tmp files survive the run.
        store = PlanStore(tmp_path / "store")
        assert list(store.objects_dir.glob("*.tmp")) == []
