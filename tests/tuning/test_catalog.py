"""fleet_catalog: coverage, modes, priorities, validation."""

import pytest

from repro.errors import ReproError
from repro.hardware.variants import full_catalog
from repro.nn.models import MODEL_BUILDERS
from repro.tuning import DEFAULT_BATCH_SIZES, fleet_catalog, key_for, mode_for


class TestDefaultCatalog:
    def test_covers_every_network_device_batch(self):
        jobs = fleet_catalog()
        expected = (
            len(MODEL_BUILDERS) * len(full_catalog()) * len(DEFAULT_BATCH_SIZES)
        )
        assert len(jobs) == expected
        assert len(jobs) >= 200  # the CI cold-start floor
        assert len({j.job_id for j in jobs}) == len(jobs)

    def test_modes_follow_device_shape(self):
        jobs = fleet_catalog()
        by_mode = {}
        for job in jobs:
            by_mode.setdefault(job.mode, set()).add(job.key.device)
        assert "raspberry-pi-4" in by_mode["fixed:cpu"]
        assert "rtx-2080ti-host" in by_mode["fixed:gpu"]
        assert "jetson-agx-xavier" in by_mode["adaptive"]

    def test_adaptive_keys_enable_all_flags(self):
        for job in fleet_catalog():
            flags = (
                job.key.use_memory_management,
                job.key.use_hybrid_execution,
                job.key.use_inter_kernel,
                job.key.use_intra_kernel,
            )
            if job.mode == "adaptive":
                assert all(flags)
            else:
                assert not any(flags)

    def test_batch_one_is_hot(self):
        for job in fleet_catalog():
            if job.key.batch_size == 1:
                assert job.priority == 0
            else:
                assert job.priority == 1

    def test_sorted_hot_first(self):
        jobs = fleet_catalog()
        priorities = [j.priority for j in jobs]
        assert priorities == sorted(priorities)


class TestFilters:
    def test_subset(self):
        jobs = fleet_catalog(
            networks=["lenet"], devices=["raspberry-pi-4"], batch_sizes=(1, 2)
        )
        assert len(jobs) == 2
        assert all(j.mode == "fixed:cpu" for j in jobs)

    def test_hot_networks_promoted(self):
        jobs = fleet_catalog(
            networks=["lenet", "alexnet"],
            devices=["raspberry-pi-4"],
            batch_sizes=(4,),
            hot=("alexnet",),
        )
        by_net = {j.key.network: j.priority for j in jobs}
        assert by_net == {"alexnet": 0, "lenet": 1}

    def test_unknown_network_rejected(self):
        with pytest.raises(ReproError):
            fleet_catalog(networks=["not-a-net"])

    def test_unknown_device_rejected(self):
        with pytest.raises(ReproError):
            fleet_catalog(devices=["not-a-device"])

    def test_bad_batch_rejected(self):
        with pytest.raises(ReproError):
            fleet_catalog(batch_sizes=(0,))


class TestKeyFor:
    def test_mode_for_matches_key_flags(self):
        for name, spec in full_catalog().items():
            mode = mode_for(spec)
            key = key_for("lenet", spec, 1)
            assert key.device == name
            if mode == "adaptive":
                assert key.use_hybrid_execution
            else:
                assert not key.use_hybrid_execution
