"""JobQueue: lease protocol, retries, poison, persistence.

Everything runs against an explicit clock (``now`` parameters) — no
wall time — so lease expiry and backoff windows are exact.
"""

import pytest

from repro.core.plan_cache import PlanKey
from repro.errors import ReproError
from repro.faults.resilience import RetryPolicy
from repro.tuning import (
    DONE,
    JobQueue,
    LEASED,
    PENDING,
    POISONED,
    TuneJob,
)


def make_key(network="lenet", batch_size=1):
    return PlanKey(
        network=network, device="jetson-agx-xavier",
        batch_size=batch_size, precision="fp32",
        use_memory_management=True, use_hybrid_execution=True,
        use_inter_kernel=True, use_intra_kernel=True,
        objective="latency",
    )


def make_job(network="lenet", batch_size=1, priority=1):
    return TuneJob(key=make_key(network, batch_size), priority=priority)


SHA = "0" * 64


@pytest.fixture
def queue(tmp_path):
    return JobQueue(
        tmp_path / "queue.json",
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.25
        ),
        lease_timeout_s=10.0,
    )


class TestClaimOrdering:
    def test_priority_then_job_id(self, queue):
        low = make_job("squeezenet", priority=1)
        hot = make_job("alexnet", priority=0)
        queue.add_all([low, hot])
        first = queue.claim("w0", now=0.0)
        assert first.job_id == hot.job_id
        second = queue.claim("w1", now=0.0)
        assert second.job_id == low.job_id
        assert queue.claim("w2", now=0.0) is None

    def test_claim_sets_lease(self, queue):
        queue.add(make_job())
        job = queue.claim("w0", now=5.0)
        assert job.state == LEASED
        assert job.worker == "w0"
        assert job.lease_deadline_s == 15.0

    def test_backoff_defers_claim(self, queue):
        queue.add(make_job())
        job = queue.claim("w0", now=0.0)
        queue.fail(job.job_id, "boom", now=1.0)
        (pending,) = queue.jobs(PENDING)
        assert pending.not_before_s > 1.0
        assert queue.claim("w0", now=1.0) is None
        assert queue.next_ready_at(1.0) == pending.not_before_s
        assert queue.claim("w0", now=pending.not_before_s) is not None


class TestLeaseExpiry:
    def test_expired_lease_requeues_and_counts_attempt(self, queue):
        queue.add(make_job())
        job = queue.claim("w0", now=0.0)
        assert queue.expire_leases(now=9.9) == []
        expired = queue.expire_leases(now=10.1)
        assert expired == [job.job_id]
        assert queue.lease_expirations == 1
        (requeued,) = queue.jobs(PENDING)
        assert requeued.attempts == 1
        assert "lease expired" in requeued.failures[-1]

    def test_completion_beats_expiry(self, queue):
        queue.add(make_job())
        job = queue.claim("w0", now=0.0)
        queue.complete(job.job_id, SHA, now=3.0)
        assert queue.expire_leases(now=100.0) == []
        (done,) = queue.jobs(DONE)
        assert done.sha256 == SHA


class TestRetriesAndPoison:
    def test_poison_after_max_attempts(self, queue):
        queue.add(make_job())
        for i in range(3):
            job = queue.claim("w0", now=float(i * 100))
            assert job is not None, f"attempt {i} should be claimable"
            queue.fail(job.job_id, f"boom {i}", now=float(i * 100) + 1)
        (poisoned,) = queue.jobs(POISONED)
        assert poisoned.attempts == 3
        assert len(poisoned.failures) == 3
        assert queue.claim("w0", now=1e9) is None
        assert queue.outstanding() == 0

    def test_backoff_is_deterministic_per_job(self, tmp_path):
        delays = []
        for run in range(2):
            queue = JobQueue(
                tmp_path / f"q{run}.json",
                retry_policy=RetryPolicy(
                    max_attempts=4, base_delay_s=0.01, max_delay_s=0.25
                ),
            )
            queue.add(make_job())
            job = queue.claim("w0", now=0.0)
            queue.fail(job.job_id, "boom", now=0.0)
            (pending,) = queue.jobs(PENDING)
            delays.append(pending.not_before_s)
        assert delays[0] == delays[1]

    def test_retry_counter(self, queue):
        queue.add(make_job())
        job = queue.claim("w0", now=0.0)
        queue.fail(job.job_id, "boom", now=0.0)
        assert queue.retries == 1

    def test_unknown_job_rejected(self, queue):
        with pytest.raises(ReproError):
            queue.fail("nope", "boom", now=0.0)

    def test_duplicate_add_ignored(self, queue):
        job = make_job()
        assert queue.add(job) is True
        assert queue.add(job) is False
        assert len(queue) == 1


class TestPersistence:
    def test_reload_round_trip(self, tmp_path):
        path = tmp_path / "queue.json"
        queue = JobQueue(path)
        queue.add_all([make_job(), make_job("alexnet", priority=0)])
        claimed = queue.claim("w0", now=0.0)
        queue.complete(claimed.job_id, SHA, now=1.0)

        reloaded = JobQueue.load(path)
        assert reloaded.counts() == queue.counts()
        by_id = {j.job_id: j for j in reloaded.jobs()}
        assert by_id[claimed.job_id].state == DONE
        assert by_id[claimed.job_id].sha256 == SHA

    def test_reload_rejects_garbage(self, tmp_path):
        path = tmp_path / "queue.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ReproError):
            JobQueue.load(path)

    def test_counts_shape(self, queue):
        queue.add(make_job())
        counts = queue.counts()
        assert counts == {
            PENDING: 1, LEASED: 0, DONE: 0, POISONED: 0,
        }
