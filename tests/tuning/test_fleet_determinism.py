"""Satellite gate: two same-seed `repro tune-fleet` runs in fresh
processes produce byte-identical store manifests.

This is the subprocess version of the in-process determinism tests —
it additionally proves that nothing about interpreter startup, hash
randomization, process-pool scheduling, or CLI plumbing leaks into the
manifest bytes.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

FLEET_ARGS = [
    "tune-fleet",
    "--networks", "lenet,squeezenet",
    "--devices", "jetson-agx-xavier,raspberry-pi-4",
    "--batches", "1,2",
    "--workers", "4",
    "--seed", "0",
    "--faults", "flaky-fleet",
]


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=300,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def test_double_run_manifests_are_byte_identical(tmp_path):
    manifests = []
    for run in ("a", "b"):
        store = tmp_path / run
        proc = run_cli(*FLEET_ARGS, "--store", str(store))
        assert proc.returncode == 0, proc.stderr
        manifests.append((store / "manifest.json").read_bytes())
        # The injected faults really fired in each fresh process.
        assert "tune-fleet:" in proc.stdout
    assert manifests[0] == manifests[1]


def test_warm_rerun_reports_zero_attempts(tmp_path):
    store = tmp_path / "store"
    cold = run_cli(*FLEET_ARGS, "--store", str(store))
    assert cold.returncode == 0, cold.stderr
    warm = run_cli(*FLEET_ARGS, "--store", str(store), "--json")
    assert warm.returncode == 0, warm.stderr
    import json

    report = json.loads(warm.stdout)
    assert report["attempts"] == 0
    assert report["completed"] == report["planned"]


def test_check_plan_passes_on_fleet_store(tmp_path):
    store = tmp_path / "store"
    proc = run_cli(*FLEET_ARGS, "--store", str(store))
    assert proc.returncode == 0, proc.stderr
    check = run_cli("check-plan", str(store))
    assert check.returncode == 0, check.stderr
    assert "OK" in check.stdout
