"""REPRO310-313: static verification of plan-store directories."""

import json

import pytest

from repro.analysis import verify_artifact_file, verify_plan_store
from repro.compile.pipeline import compile_fixed
from repro.hardware.variants import spec_by_name
from repro.store.plan_store import MANIFEST_NAME, PlanStore


def make_store(tmp_path, networks=("lenet",)):
    store = PlanStore(tmp_path / "store")
    for network in networks:
        compiled = compile_fixed(
            network, spec_by_name("raspberry-pi-4"), placement="cpu"
        )
        store.put(compiled.artifact)
    return store


def rules(findings):
    return sorted({f.rule for f in findings})


class TestCleanStore:
    def test_no_findings(self, tmp_path):
        store = make_store(tmp_path)
        assert verify_plan_store(store.root) == []

    def test_dispatch_from_directory(self, tmp_path):
        store = make_store(tmp_path)
        assert verify_artifact_file(store.root) == []

    def test_dispatch_from_manifest_file(self, tmp_path):
        store = make_store(tmp_path)
        assert verify_artifact_file(store.root / MANIFEST_NAME) == []


class TestRepro310Schema:
    def test_missing_manifest(self, tmp_path):
        findings = verify_plan_store(tmp_path)
        assert rules(findings) == ["REPRO310"]

    def test_unreadable_manifest(self, tmp_path):
        store = make_store(tmp_path)
        (store.root / MANIFEST_NAME).write_text('{"torn')
        assert rules(verify_plan_store(store.root)) == ["REPRO310"]

    def test_wrong_schema(self, tmp_path):
        store = make_store(tmp_path)
        (store.root / MANIFEST_NAME).write_text('{"schema": "nope"}')
        assert rules(verify_plan_store(store.root)) == ["REPRO310"]

    def test_malformed_entry(self, tmp_path):
        store = make_store(tmp_path)
        manifest = store.root / MANIFEST_NAME
        doc = json.loads(manifest.read_text())
        slug = next(iter(doc["entries"]))
        doc["entries"][slug]["sha256"] = "short"
        manifest.write_text(json.dumps(doc))
        findings = verify_plan_store(store.root)
        # Bad sha -> structural error; its object is now unreferenced.
        assert "REPRO310" in rules(findings)
        assert all(f.severity == "error" for f in findings
                   if f.rule == "REPRO310")


class TestRepro311Objects:
    def test_missing_object(self, tmp_path):
        store = make_store(tmp_path)
        for path in store.objects_dir.glob("*.json"):
            path.unlink()
        findings = verify_plan_store(store.root)
        assert rules(findings) == ["REPRO311"]
        assert all(f.severity == "error" for f in findings)

    def test_checksum_mismatch(self, tmp_path):
        store = make_store(tmp_path)
        (path,) = store.objects_dir.glob("*.json")
        path.write_text(path.read_text()[:60])
        findings = verify_plan_store(store.root)
        assert rules(findings) == ["REPRO311"]


class TestRepro312Orphans:
    def test_unreferenced_object_is_warning(self, tmp_path):
        store = make_store(tmp_path)
        extra = compile_fixed(
            "squeezenet", spec_by_name("raspberry-pi-4"), placement="cpu"
        ).artifact
        store.write_object(extra)  # objects/ only, no manifest entry
        findings = verify_plan_store(store.root)
        assert rules(findings) == ["REPRO312"]
        assert all(f.severity == "warning" for f in findings)

    def test_torn_tmp_is_warning(self, tmp_path):
        store = make_store(tmp_path)
        (store.objects_dir / "deadbeef.json.tmp").write_text('{"torn')
        findings = verify_plan_store(store.root)
        assert rules(findings) == ["REPRO312"]


class TestRepro313Staleness:
    @pytest.mark.parametrize("field", ["device", "cost_model"])
    def test_fingerprint_drift_is_warning(self, tmp_path, field):
        store = make_store(tmp_path)
        manifest = store.root / MANIFEST_NAME
        doc = json.loads(manifest.read_text())
        slug = next(iter(doc["entries"]))
        doc["entries"][slug]["fingerprints"][field] = "f" * 64
        manifest.write_text(json.dumps(doc))
        findings = verify_plan_store(store.root)
        assert rules(findings) == ["REPRO313"]
        assert all(f.severity == "warning" for f in findings)

    def test_blank_fingerprints_not_flagged(self, tmp_path):
        store = make_store(tmp_path)
        manifest = store.root / MANIFEST_NAME
        doc = json.loads(manifest.read_text())
        slug = next(iter(doc["entries"]))
        doc["entries"][slug]["fingerprints"] = {
            "device": "", "cost_model": "",
        }
        manifest.write_text(json.dumps(doc))
        assert verify_plan_store(store.root) == []
