"""PlanStore: content addressing, quarantine, staleness, rebuild."""

import json

import pytest

from repro.compile.pipeline import compile_fixed
from repro.core.plan_cache import PlanKey
from repro.errors import ReproError
from repro.fsutil import sha256_text
from repro.hardware.variants import spec_by_name
from repro.store.plan_store import (
    MANIFEST_NAME,
    PlanStore,
    QUARANTINE_SCHEMA,
    STORE_SCHEMA,
    STORE_VERSION,
)


def make_artifact(network="lenet", device="raspberry-pi-4", batch_size=1):
    compiled = compile_fixed(
        network, spec_by_name(device), placement="cpu",
        batch_size=batch_size,
    )
    return compiled.artifact


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "store")


class TestContentAddressing:
    def test_put_get_round_trip(self, store):
        artifact = make_artifact()
        sha = store.put(artifact).sha256
        loaded = store.get(artifact.key)
        assert loaded is not None
        assert loaded.key == artifact.key
        assert loaded.to_json() == artifact.to_json()
        assert store.hits == 1

    def test_object_filename_is_content_hash(self, store):
        artifact = make_artifact()
        sha = store.put(artifact).sha256
        path = store.object_path(sha)
        assert path.exists()
        assert sha256_text(path.read_text()) == sha

    def test_put_is_idempotent(self, store):
        artifact = make_artifact()
        assert store.put(artifact).sha256 == store.put(artifact).sha256
        objects = list(store.objects_dir.glob("*.json"))
        assert len(objects) == 1

    def test_contains_and_miss(self, store):
        artifact = make_artifact()
        assert not store.contains(artifact.key)
        assert store.get(artifact.key) is None
        assert store.misses == 1
        store.put(artifact)
        assert store.contains(artifact.key)

    def test_manifest_shape(self, store):
        store.put(make_artifact())
        doc = json.loads((store.root / MANIFEST_NAME).read_text())
        assert doc["schema"] == STORE_SCHEMA
        assert doc["version"] == STORE_VERSION
        (entry,) = doc["entries"].values()
        assert set(entry) >= {"key", "sha256", "fingerprints"}
        assert set(entry["fingerprints"]) == {"device", "cost_model"}


class TestQuarantine:
    def test_corrupt_object_quarantined_on_get(self, store):
        artifact = make_artifact()
        sha = store.put(artifact).sha256
        path = store.object_path(sha)
        path.write_text(path.read_text()[:40])

        assert store.get(artifact.key) is None
        assert store.quarantined == 1
        assert not path.exists()
        assert not store.contains(artifact.key)
        quarantined = list(store.quarantine_dir.glob("*.json"))
        assert len(quarantined) == 1

    def test_quarantine_record_provenance(self, store):
        artifact = make_artifact()
        sha = store.put(artifact).sha256
        store.object_path(sha).write_text("not json at all")
        store.get(artifact.key)

        (record,) = store.quarantine_records()
        assert record["schema"] == QUARANTINE_SCHEMA
        assert record["expected_sha256"] == sha
        assert record["label"] == artifact.key.slug()
        assert record["reason"]

    def test_register_rejects_wrong_hash(self, store, tmp_path):
        artifact = make_artifact()
        text = store.artifact_text(artifact)
        bogus_sha = "0" * 64
        store.object_path(bogus_sha).parent.mkdir(
            parents=True, exist_ok=True
        )
        store.object_path(bogus_sha).write_text(text)
        with pytest.raises(ReproError):
            store.register(artifact.key, bogus_sha)
        assert store.quarantined == 1
        assert not store.contains(artifact.key)

    def test_register_rejects_key_mismatch(self, store):
        artifact = make_artifact()
        sha = store.write_object(artifact)
        other = make_artifact(network="squeezenet")
        with pytest.raises(ReproError):
            store.register(other.key, sha)

    def test_corrupt_manifest_quarantined_and_rebuilt(self, store):
        artifact = make_artifact()
        store.put(artifact)
        (store.root / MANIFEST_NAME).write_text('{"torn')

        reopened = PlanStore(store.root)
        assert reopened.contains(artifact.key)
        assert reopened.get(artifact.key) is not None
        records = reopened.quarantine_records()
        assert any("manifest" in str(r["reason"]) for r in records)


class TestStaleness:
    def test_doctored_fingerprint_is_stale_miss(self, store):
        artifact = make_artifact()
        store.put(artifact)
        slug = artifact.key.slug()
        entry = store._entries[slug]
        store._entries[slug] = type(entry)(
            key=entry.key, sha256=entry.sha256, size=entry.size,
            device_fingerprint="f" * 64,
            cost_model_fingerprint=entry.cost_model_fingerprint,
        )
        assert store.get(artifact.key) is None
        assert store.stale_misses == 1
        # The entry survives (sweep_stale is the explicit eviction).
        assert slug in store.stale_entries()
        assert store.sweep_stale() == [slug]
        assert not store.contains(artifact.key)

    def test_check_fingerprints_off_serves_stale(self, tmp_path):
        store = PlanStore(tmp_path / "store", check_fingerprints=False)
        artifact = make_artifact()
        store.put(artifact)
        slug = artifact.key.slug()
        entry = store._entries[slug]
        store._entries[slug] = type(entry)(
            key=entry.key, sha256=entry.sha256, size=entry.size,
            device_fingerprint="f" * 64,
            cost_model_fingerprint="e" * 64,
        )
        assert store.get(artifact.key) is not None


class TestMaintenance:
    def test_digest_is_stable_across_reopen(self, store):
        store.put(make_artifact())
        store.put(make_artifact(network="squeezenet"))
        digest = store.digest()
        assert PlanStore(store.root).digest() == digest

    def test_digest_insensitive_to_insertion_order(self, tmp_path):
        a = make_artifact()
        b = make_artifact(network="squeezenet")
        first = PlanStore(tmp_path / "ab")
        first.put(a)
        first.put(b)
        second = PlanStore(tmp_path / "ba")
        second.put(b)
        second.put(a)
        assert first.digest() == second.digest()

    def test_remove_returns_dropped_paths(self, store):
        artifact = make_artifact()
        sha = store.put(artifact).sha256
        removed = store.remove(artifact.key)
        assert store.object_path(sha) in removed
        assert not store.contains(artifact.key)
        assert store.remove(artifact.key) == []

    def test_remove_collects_quarantined_siblings(self, store):
        artifact = make_artifact()
        sha = store.put(artifact).sha256
        store.object_path(sha).write_text("garbage")
        store.get(artifact.key)  # quarantines
        store.put(artifact)  # healthy replacement
        removed = store.remove(artifact.key)
        slug = artifact.key.slug()
        assert any(slug in p.name for p in removed)
        assert not list(store.quarantine_dir.glob(f"{slug}.*"))

    def test_sweep_tmp_collects_torn_writes(self, store):
        store.put(make_artifact())
        torn = store.objects_dir / "deadbeef.json.tmp"
        torn.write_text('{"torn')
        assert store.sweep_tmp() == [torn]
        assert not torn.exists()

    def test_rebuild_reindexes_orphans(self, store):
        artifact = make_artifact()
        sha = store.write_object(artifact)  # object without manifest entry
        assert not store.contains(artifact.key)
        assert store.rebuild() >= 1
        assert store.contains(artifact.key)
        assert store.get(artifact.key) is not None
