"""Baseline-suppression machinery: fingerprints, round-trip, staleness."""

import json

import pytest

from repro.analysis.baseline import Baseline, find_default_baseline
from repro.analysis.findings import Finding
from repro.errors import ReproError


def make_finding(line=10, message="shared attribute self.x mutated"):
    return Finding(
        rule="REPRO201",
        path="src/repro/core/plan_cache.py",
        line=line,
        symbol="PlanCache._store",
        message=message,
    )


class TestFingerprint:
    def test_line_number_does_not_change_fingerprint(self):
        assert make_finding(line=10).fingerprint() == \
            make_finding(line=99).fingerprint()

    def test_message_change_invalidates_fingerprint(self):
        assert make_finding().fingerprint() != \
            make_finding(message="something else").fingerprint()


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        baseline = Baseline.from_findings(
            [make_finding()], justification="documented lock-held helper"
        )
        path = baseline.save(tmp_path / "baseline.json")
        loaded = Baseline.load(path)
        assert len(loaded.entries) == 1
        entry = loaded.entries[0]
        assert entry.fingerprint == make_finding().fingerprint()
        assert entry.justification == "documented lock-held helper"

    def test_from_findings_dedupes_same_fingerprint(self):
        baseline = Baseline.from_findings([
            make_finding(line=10), make_finding(line=12),
        ])
        assert len(baseline.entries) == 1

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "nope", "version": 1}))
        with pytest.raises(ReproError, match="not an analysis baseline"):
            Baseline.load(path)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{")
        with pytest.raises(ReproError, match="not valid JSON"):
            Baseline.load(path)


class TestSplit:
    def test_partitions_new_baselined_stale(self):
        known = make_finding()
        other = Finding(
            rule="REPRO101", path="src/repro/sim/x.py", line=3,
            symbol="f", message="wall clock",
        )
        baseline = Baseline.from_findings([known, other])
        fresh = Finding(
            rule="REPRO106", path="src/repro/hw/y.py", line=8,
            symbol="g", message="bare magnitude",
        )
        new, baselined, stale = baseline.split([known, fresh])
        assert [f.fingerprint() for f in new] == [fresh.fingerprint()]
        assert [f.fingerprint() for f in baselined] == [known.fingerprint()]
        assert [e.fingerprint for e in stale] == [other.fingerprint()]

    def test_empty_baseline_marks_everything_new(self):
        new, baselined, stale = Baseline.empty().split([make_finding()])
        assert len(new) == 1 and not baselined and not stale


class TestDiscovery:
    def test_walks_up_to_find_baseline(self, tmp_path):
        (tmp_path / "analysis-baseline.json").write_text("{}")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        found = find_default_baseline(nested)
        assert found == tmp_path / "analysis-baseline.json"

    def test_none_when_absent(self, tmp_path):
        assert find_default_baseline(tmp_path / "only" ) is None
