"""The repo must stay clean under its own analyzer.

This is the in-process equivalent of the CI `analyze` job: every
finding in ``src/`` is either fixed or carried in the committed
baseline with a justification — and the baseline carries no dead
entries.
"""

import subprocess

from repro.analysis import Baseline, analyze_paths
from repro.analysis.baseline import BaselineEntry

from .conftest import REPO_ROOT


def test_repo_is_clean_under_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    report = analyze_paths(
        [str(REPO_ROOT / "src")], baseline=baseline, root=REPO_ROOT,
    )
    assert report.clean, "\n".join(f.render() for f in report.new)
    assert not report.stale_baseline, [
        e.fingerprint for e in report.stale_baseline
    ]


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    assert baseline.entries, "baseline should document the known findings"
    for entry in baseline.entries:
        assert entry.justification
        assert "TODO" not in entry.justification, entry.fingerprint


def test_baseline_carries_no_repro201_entries():
    """Escape analysis proves the lock-held helpers instead of
    baselining them — the REPRO201 entries PR 5 carried must be gone."""
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    assert not [e for e in baseline.entries if e.rule == "REPRO201"]


def test_stale_entry_detection_fires():
    """A fingerprint that matches nothing (here: a REPRO201 entry that
    escape analysis obsoleted) must surface as stale, not vanish."""
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    ghost = BaselineEntry(
        fingerprint="cc39168bb776d9e5",
        rule="REPRO201",
        path="src/repro/core/plan_cache.py",
        symbol="PlanCache._load",
        justification="obsoleted by the escape-analysis proof",
    )
    padded = Baseline(entries=[*baseline.entries, ghost])
    report = analyze_paths(
        [str(REPO_ROOT / "src")], baseline=padded, root=REPO_ROOT,
    )
    assert report.clean
    assert [e.fingerprint for e in report.stale_baseline] == [ghost.fingerprint]


def test_no_tracked_bytecode():
    """``git ls-files '*.pyc'`` must stay empty (and __pycache__ dirs
    untracked) — bytecode in the index breaks clean checkouts."""
    tracked = subprocess.run(
        ["git", "ls-files", "*.pyc", "**/__pycache__/*"],
        capture_output=True, text=True, cwd=REPO_ROOT, check=True,
    )
    assert tracked.stdout.strip() == "", tracked.stdout
