"""The repo must stay clean under its own analyzer.

This is the in-process equivalent of the CI `analyze` job: every
finding in ``src/`` is either fixed or carried in the committed
baseline with a justification — and the baseline carries no dead
entries.
"""

from repro.analysis import Baseline, analyze_paths

from .conftest import REPO_ROOT


def test_repo_is_clean_under_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    report = analyze_paths(
        [str(REPO_ROOT / "src")], baseline=baseline, root=REPO_ROOT,
    )
    assert report.clean, "\n".join(f.render() for f in report.new)
    assert not report.stale_baseline, [
        e.fingerprint for e in report.stale_baseline
    ]


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    assert baseline.entries, "baseline should document the known findings"
    for entry in baseline.entries:
        assert entry.justification
        assert "TODO" not in entry.justification, entry.fingerprint
