"""Fixture: disciplined exception handling (clean)."""


class EngineError(Exception):
    pass


def load(path, log):
    try:
        return open(path).read()
    except OSError as exc:
        log.append(str(exc))
        return None


def convert(raw):
    try:
        return float(raw)
    except ValueError as exc:
        raise EngineError(f"bad value {raw!r}") from exc
