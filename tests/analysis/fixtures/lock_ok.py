"""Fixture: every shared mutation under the lock (clean)."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self.misses = 0

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def note_miss(self):
        with self._lock:
            self.misses += 1

    def get(self, key):
        with self._lock:
            try:
                return self._items[key]
            except KeyError:
                self.misses += 1        # handler body, still locked
                return None


class Plain:
    """No lock attribute: the heuristic does not apply."""

    def __init__(self):
        self.items = []

    def add(self, x):
        self.items.append(x)
