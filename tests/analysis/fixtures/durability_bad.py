"""Fixture: every way to write a durable file wrongly.

``save`` / ``save_handle`` are raw sinks (REPRO230 x3: write_text,
open-for-write, json.dump); ``fake_atomic`` hand-rolls tmp+replace
without fsync (REPRO230 for the write + REPRO231 for the rename).
"""

import json
import os


class ManifestWriter:
    def save(self, path, doc):
        path.write_text(json.dumps(doc))

    def save_handle(self, path, doc):
        with open(path, "w") as handle:
            json.dump(doc, handle)

    def fake_atomic(self, path, doc):
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc))
        os.replace(tmp, path)
