"""Fixture: explicitly seeded randomness only (clean)."""

import random

import numpy as np


def make_rng(seed):
    return random.Random(seed)


def make_generator(seed):
    return np.random.default_rng(seed)


def noise(rng, n):
    return rng.standard_normal(n)
