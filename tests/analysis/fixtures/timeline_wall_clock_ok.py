"""Fixture: virtual-clock-only timeline telemetry (clean for REPRO110)."""

import time


def roll_window(win_end, now, window_s):
    while now >= win_end:
        win_end += window_s
    return win_end


def stamp_meta(meta, seed):
    meta["seed"] = str(seed)
    return meta


def debug_only():
    # Suppressed: a profiling aid that never reaches an artifact.
    return time.perf_counter()  # repro-analysis: ignore[REPRO110]
