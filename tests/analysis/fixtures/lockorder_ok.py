"""Fixture: two locks always taken in one global order (a then b).

Both the nested ``with`` and the helper call acquire ``_b_lock`` while
holding ``_a_lock`` — edges exist, but no cycle, so REPRO220 is silent.
"""

import threading


class Pair:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def both(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def again(self):
        with self._a_lock:
            self._tail()

    def _tail(self):
        with self._b_lock:
            pass
