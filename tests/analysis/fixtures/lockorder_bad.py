"""Fixture: two classes acquiring each other's locks in opposite order.

``Right.poke`` holds right_lock then (via ``Left.prod``) takes
left_lock; ``Left.poke`` holds left_lock then takes right_lock — a
classic AB/BA deadlock, reported by REPRO220.  The annotated
``__init__`` parameters are what let the call graph resolve the
cross-class ``self.left.prod()`` edges.
"""

import threading


class Right:
    def __init__(self, left: "Left"):
        self._right_lock = threading.Lock()
        self.left = left

    def poke(self):
        with self._right_lock:
            self.left.prod()

    def prod_inner(self):
        with self._right_lock:
            pass


class Left:
    def __init__(self, right: Right):
        self._left_lock = threading.Lock()
        self.right = right

    def poke(self):
        with self._left_lock:
            self.right.prod_inner()

    def prod(self):
        with self._left_lock:
            pass
