"""Fixture: deliberately broken JobQueue variants for REPRO240.

Each subclass re-introduces one lease-protocol bug the model checker
must catch when injected via the ``REPRO_ANALYSIS_QUEUE_CLASS`` seam
(``buggy_queue:DoubleGrantQueue`` etc., with this directory on
``PYTHONPATH``).
"""

from dataclasses import replace

from repro.tuning.queue import LEASED, PENDING, JobQueue


class DoubleGrantQueue(JobQueue):
    """claim() ignores the LEASED state: hands one job to two workers."""

    def claim(self, worker, now):
        with self._lock:
            best = None
            for job in self._jobs.values():
                if job.state not in (PENDING, LEASED):
                    continue
                if job.worker == worker:
                    continue
                if best is None or job.job_id < best.job_id:
                    best = job
            if best is None:
                return None
            leased = replace(
                best, state=LEASED, worker=worker,
                lease_deadline_s=now + self.lease_timeout_s,
            )
            self._jobs[leased.job_id] = leased
            return leased


class ForgetfulFailQueue(JobQueue):
    """fail() requeues without counting the attempt: jobs retry forever
    and the poison path never triggers (breaks retry monotonicity's
    exact-increment contract)."""

    def _fail_locked(self, job, reason, now):
        updated = replace(
            job, state=PENDING, lease_deadline_s=0.0, worker="",
            not_before_s=0.0,
        )
        self._jobs[job.job_id] = updated
        return updated


class ReorderQueue(JobQueue):
    """complete() releases the lease but forgets to record DONE: the
    job drops back to PENDING, so finished work re-runs (lost
    completion / lease-release reorder)."""

    def complete(self, job_id, sha256, now):
        with self._lock:
            job = self._require(job_id)
            undone = replace(
                job, state=PENDING, worker="", lease_deadline_s=0.0
            )
            self._jobs[job_id] = undone
            return undone
