"""Fixture: decision branches that record provenance (clean).

Copied as ``degradation.py`` in tests so decision-module scoping applies.
"""


class Chooser:
    def __init__(self, provenance):
        self.mode = "latency"
        self.provenance = provenance

    def pick(self, measured, budget):
        if measured > budget:
            self.mode = "energy"
        else:
            self.mode = "latency"
        self.provenance.append(("pick", self.mode, measured, budget))
        return self.mode

    def reset(self, reason):
        self.mode = "latency"
        self._emit(reason)

    def _emit(self, reason):
        self.provenance.append(("reset", reason))
