"""Fixture: durable writes done right — every sink is the atomic one.

Reads are fine, ``atomic_write_text`` is fine, and a write + rename
pair *with* an ``os.fsync`` between them does not trip REPRO231.
"""

import json
import os

from repro.fsutil import atomic_write_text


class ManifestWriter:
    def save(self, path, doc):
        atomic_write_text(path, json.dumps(doc) + "\n")

    def load(self, path):
        with open(path) as handle:
            return json.load(handle)

    def careful_swap(self, path, doc):
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:  # repro-analysis: ignore[REPRO230]
            handle.write(json.dumps(doc))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
