"""Fixture: RNG constructions whose seeds all trace to taint sources.

Every construction is reachable from a seed parameter, a sha256
digest, a pinned literal, or a seed-ish attribute — REPRO21x stays
silent.
"""

import hashlib
import random

import numpy as np


def derived_seed(name: str) -> int:
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:8], "big")


def make_rng(seed):
    return np.random.default_rng(seed)


def spawn(material):
    # "material" is not a seed-ish name: this is only clean because
    # *every* call site below passes a provably tainted value.
    return np.random.default_rng(material)


class Harness:
    def __init__(self, seed: int):
        self.seed = seed

    def fresh(self):
        return np.random.default_rng(self.seed)


def run(seed: int):
    chained = make_rng(seed)
    hashed = random.Random(derived_seed("run"))
    pinned = np.random.default_rng(12345)
    forked = spawn(seed + 1)
    pinned_fork = spawn(derived_seed("fork"))
    return chained, hashed, pinned, forked, pinned_fork
