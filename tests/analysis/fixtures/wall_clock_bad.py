"""Fixture: wall-clock reads in virtual-clock code (REPRO101 x3)."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp_event(event):
    event["t"] = time.time()
    return event


def label_run():
    return datetime.now().isoformat()


def measure():
    return pc()
