"""Fixture: RNG constructions that violate the seed-taint discipline.

``unseeded`` trips REPRO210 (no seed at all); ``untainted`` trips
REPRO211 because one of its call sites feeds the parameter from an
unresolvable call, so taint cannot be proven at every site.
"""

import numpy as np


def unseeded():
    return np.random.default_rng()


def untainted(count):
    rng = np.random.default_rng(count)
    return rng


def run():
    untainted(41)
    untainted(load_config())


def load_config():
    return object()
