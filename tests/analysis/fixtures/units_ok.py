"""Fixture: magnitudes spelled through repro.units (clean)."""

from repro import units

CAPACITY_BYTES = 16 * units.GB
RATE = 2.5 * units.MEGA
SCRATCH = 4 * units.GIB
SMALL = 512          # plain counts are fine
HALF_K = 1 << 9      # small shifts are fine
DENOM = 1 << 24  # repro-analysis: ignore[REPRO106]
