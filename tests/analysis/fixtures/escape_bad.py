"""Fixture: a lock-held proof that must FAIL.

``put`` calls ``_helper`` without the lock, so escape analysis cannot
prove the helper safe and REPRO201 flags its unlocked mutation.
"""

import threading


class Shared:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        self._helper(key, value)

    def _helper(self, key, value):
        self._items[key] = value
