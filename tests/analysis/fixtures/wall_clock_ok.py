"""Fixture: clock-explicit code, no wall-clock reads (clean)."""

import time


def stamp_event(event, now):
    event["t"] = now
    return event


def drift(now, started_at):
    return now - started_at


def bootstrap_only():
    # Suppressed: a one-off read outside the simulated timeline.
    return time.time()  # repro-analysis: ignore[REPRO101]
