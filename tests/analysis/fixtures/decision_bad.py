"""Fixture: decision branch with no provenance record (REPRO105 x1).

Copied as ``tuner.py`` in tests so the decision-module scoping applies.
"""


class Chooser:
    def __init__(self):
        self.mode = "latency"
        self._rounds = 0

    def pick(self, measured, budget):
        if measured > budget:
            self.mode = "energy"
        else:
            self.mode = "latency"
        return self.mode

    def _advance(self, measured):
        # Private helpers are exempt: the public caller records.
        if measured > 0:
            self._rounds += 1
