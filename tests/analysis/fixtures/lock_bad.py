"""Fixture: shared-state mutation outside the lock (REPRO201 x3)."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self.misses = 0       # __init__ mutations are exempt

    def put(self, key, value):
        self._items[key] = value          # subscript store, no lock

    def note_miss(self):
        self.misses += 1                  # augmented assign, no lock

    def drain(self, out):
        with self._lock:
            out.extend(self._items)
            self._items.clear()           # inside the lock: fine
        self._items = {}                  # re-bind after release: flagged

    def peek(self):
        return dict(self._items)          # reads are not flagged
