"""Fixture: bare magnitude literals (REPRO106 x4)."""

CAPACITY_BYTES = 16 * 1e9
RATE = 2.5 * 1e6
SCRATCH = 4 * 1024 ** 3
WINDOW = 1 << 30
