"""Fixture: hidden-global-state randomness (REPRO102 x4)."""

import random

import numpy as np


def jitter():
    return random.random()


def make_rng():
    return random.Random()


def noise(n):
    return np.random.rand(n)


def make_generator():
    return np.random.default_rng()
