"""Fixture: helpers that mutate without a lexical lock — but safely.

Every internal call site of ``_helper`` / ``_clear`` holds the lock
(directly, or through a proven caller), so escape analysis proves them
lock-held and REPRO201 stays silent without a baseline entry.
"""

import threading


class Shared:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._helper(key, value)

    def drain(self):
        with self._lock:
            out = dict(self._items)
            self._reset()
            return out

    def _helper(self, key, value):
        self._items[key] = value

    def _reset(self):
        self._clear()

    def _clear(self):
        self._items.clear()
