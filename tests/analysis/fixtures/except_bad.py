"""Fixture: bare and swallowed excepts (REPRO103 x1, REPRO104 x2)."""


def load(path):
    try:
        return open(path).read()
    except:  # noqa: E722
        return None


def probe(fn):
    try:
        fn()
    except ValueError:
        pass


def maybe(fn):
    try:
        fn()
    except OSError:
        ...
