"""Shared helpers for the analysis test suite.

Fixture modules live flat under ``fixtures/`` as data; tests copy them
into a temp tree whose directory names trigger the analyzer's path
scoping (``sim/`` -> virtual clock, ``core/`` -> engine, ``serving/``
-> threaded, a ``tuner.py`` file name -> decision module).  They are
copied rather than linted in place because the real fixture path
contains an ``analysis`` component, which would exempt them from
REPRO106 and skew scoping tests.
"""

from __future__ import annotations

import json
import pathlib

import pytest

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
GOLDEN_ARTIFACTS = REPO_ROOT / "tests" / "golden" / "artifacts"
GOLDEN_SCENARIOS = REPO_ROOT / "tests" / "golden" / "scenarios"


def plant_fixture(tmp_path: pathlib.Path, fixture: str, dest: str) -> pathlib.Path:
    """Copy ``fixtures/<fixture>`` to ``tmp_path/<dest>`` and return it."""
    target = tmp_path / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / fixture).read_text())
    return target


def build_graph(tmp_path: pathlib.Path, plants):
    """Plant ``(fixture, dest)`` pairs and build a call graph over them.

    Display paths are the relative ``dest`` strings, so module names in
    the graph mirror the planted tree (``sim/rng.py`` -> ``sim.rng``),
    exactly as repo files get ``repro.*`` names from ``src/repro/...``.
    """
    from repro.analysis.callgraph import build_call_graph
    from repro.analysis.lint import LintContext

    contexts = []
    for fixture, dest in plants:
        target = plant_fixture(tmp_path, fixture, dest)
        contexts.append(LintContext.for_file(target, dest))
    return build_call_graph(contexts)


@pytest.fixture
def golden_plan() -> dict:
    """A fresh parsed copy of the known-good lenet plan artifact."""
    return json.loads((GOLDEN_ARTIFACTS / "lenet.plan.json").read_text())


@pytest.fixture
def golden_scenario() -> dict:
    """A fresh parsed copy of the known-good edge-storm scenario."""
    return json.loads((GOLDEN_SCENARIOS / "edge_storm.json").read_text())
