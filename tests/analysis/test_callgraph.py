"""Tests for the module-qualified project call graph."""

import json

from repro.analysis.callgraph import build_call_graph, module_name_for
from repro.analysis.lint import LintContext

from .conftest import REPO_ROOT, build_graph


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name_for("src/repro/tuning/queue.py") == "repro.tuning.queue"

    def test_fixture_trees_keep_their_shape(self):
        assert module_name_for("sim/rng.py") == "sim.rng"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/analysis/__init__.py") == "repro.analysis"


class TestResolution:
    def test_self_method_calls_resolve(self, tmp_path):
        graph = build_graph(tmp_path, [("escape_bad.py", "store/shared.py")])
        assert "store.shared.Shared._helper" in graph.callees_of(
            "store.shared.Shared.put"
        )

    def test_attr_typed_cross_class_calls_resolve(self, tmp_path):
        graph = build_graph(tmp_path, [("lockorder_bad.py", "tuning/order.py")])
        # self.left.prod() resolves through the annotated __init__ param.
        assert "tuning.order.Left.prod" in graph.callees_of(
            "tuning.order.Right.poke"
        )
        assert "tuning.order.Right.poke" in graph.callers_of(
            "tuning.order.Left.prod"
        )

    def test_plain_function_calls_resolve(self, tmp_path):
        graph = build_graph(tmp_path, [("taint_bad.py", "sim/rng.py")])
        sites = graph.call_sites_of("sim.rng.untainted")
        assert len(sites) == 2
        assert {s.caller for s in sites} == {"sim.rng.run"}

    def test_dynamic_calls_produce_no_edge(self, tmp_path):
        target = tmp_path / "sim" / "dyn.py"
        target.parent.mkdir()
        target.write_text(
            "def run(callback):\n"
            "    callback()\n"
            "    getattr(run, '__call__')()\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "sim/dyn.py")]
        )
        assert graph.callees_of("sim.dyn.run") == set()


class TestDump:
    def test_to_dict_is_deterministic_json(self, tmp_path):
        plants = [
            ("taint_bad.py", "sim/rng.py"),
            ("escape_bad.py", "store/shared.py"),
        ]
        one = build_graph(tmp_path / "a", plants).to_dict()
        two = build_graph(tmp_path / "b", plants).to_dict()
        assert one["schema"] == "repro.analysis-callgraph"
        assert one["version"] == 1
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)

    def test_repo_graph_resolves_the_lease_failure_path(self):
        """The real tree's expire_leases -> _fail_locked edge exists —
        the edge REPRO220/REPRO240 reasoning leans on."""
        queue_py = REPO_ROOT / "src" / "repro" / "tuning" / "queue.py"
        ctx = LintContext.for_file(queue_py, "src/repro/tuning/queue.py")
        graph = build_call_graph([ctx])
        callees = graph.callees_of("repro.tuning.queue.JobQueue.expire_leases")
        assert "repro.tuning.queue.JobQueue._fail_locked" in callees
