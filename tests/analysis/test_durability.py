"""Tests for the REPRO23x durability-discipline pass."""

from repro.analysis.callgraph import build_call_graph
from repro.analysis.durability import check_durability
from repro.analysis.lint import LintContext

from .conftest import build_graph


def findings_for(tmp_path, plants):
    return check_durability(build_graph(tmp_path, plants))


class TestRawWrites:
    def test_every_raw_sink_is_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path, [("durability_bad.py", "store/writer.py")]
        )
        raw = [f for f in findings if f.rule == "REPRO230"]
        # write_text in save, open-w + json.dump in save_handle,
        # write_text in fake_atomic.
        assert len(raw) == 4
        messages = " ".join(f.message for f in raw)
        assert "atomic_write_text" in messages
        assert {f.symbol for f in raw} == {
            "ManifestWriter.save",
            "ManifestWriter.save_handle",
            "ManifestWriter.fake_atomic",
        }

    def test_rename_without_fsync_is_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path, [("durability_bad.py", "store/writer.py")]
        )
        renames = [f for f in findings if f.rule == "REPRO231"]
        assert len(renames) == 1
        assert renames[0].symbol == "ManifestWriter.fake_atomic"


class TestCleanCode:
    def test_atomic_sink_and_fsynced_swap_pass(self, tmp_path):
        assert findings_for(
            tmp_path, [("durability_ok.py", "store/writer.py")]
        ) == []

    def test_out_of_scope_modules_are_ignored(self, tmp_path):
        assert findings_for(
            tmp_path, [("durability_bad.py", "docs/writer.py")]
        ) == []

    def test_named_durable_files_are_in_scope_anywhere(self, tmp_path):
        findings = findings_for(
            tmp_path, [("durability_bad.py", "core/plan_cache.py")]
        )
        assert any(f.rule == "REPRO230" for f in findings)

    def test_fsutil_itself_is_exempt(self, tmp_path):
        findings = findings_for(
            tmp_path, [("durability_bad.py", "store/fsutil.py")]
        )
        assert findings == []

    def test_str_replace_is_not_a_rename(self, tmp_path):
        target = tmp_path / "store" / "munge.py"
        target.parent.mkdir()
        target.write_text(
            "def save(path, text):\n"
            "    cleaned = text.replace('a', 'b')\n"
            "    path.write_text(cleaned)"
            "  # repro-analysis: ignore[REPRO230]\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "store/munge.py")]
        )
        assert check_durability(graph) == []


class TestSuppression:
    def test_multi_rule_pragma_on_one_line(self, tmp_path):
        target = tmp_path / "store" / "quiet.py"
        target.parent.mkdir()
        target.write_text(
            "import os\n"
            "def swap(path, tmp, text):\n"
            "    tmp.write_text(text)"
            "  # repro-analysis: ignore[REPRO230,REPRO231]\n"
            "    os.replace(tmp, path)"
            "  # repro-analysis: ignore[REPRO231]\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "store/quiet.py")]
        )
        assert check_durability(graph) == []
