"""End-to-end CLI contract: exit codes of `repro analyze` and
`repro check-plan` as subprocesses, the way CI invokes them."""

import json
import os
import subprocess
import sys

from .conftest import FIXTURES, GOLDEN_ARTIFACTS, GOLDEN_SCENARIOS, REPO_ROOT


def run_cli(*args, cwd=None, env_extra=None, pythonpath_extra=()):
    env = dict(os.environ)
    path = [str(REPO_ROOT / "src"), *map(str, pythonpath_extra)]
    env["PYTHONPATH"] = os.pathsep.join(path)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd or REPO_ROOT,
    )


class TestCheckPlan:
    def test_golden_artifacts_exit_zero(self):
        result = run_cli(
            "check-plan",
            str(GOLDEN_ARTIFACTS / "lenet.plan.json"),
            str(GOLDEN_ARTIFACTS / "alexnet.plan.json"),
            str(GOLDEN_SCENARIOS / "edge_storm.json"),
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_corrupt_artifact_exits_two(self, tmp_path):
        data = json.loads((GOLDEN_ARTIFACTS / "lenet.plan.json").read_text())
        data["checksum"] = "0" * 64
        corrupt = tmp_path / "corrupt.plan.json"
        corrupt.write_text(json.dumps(data))
        result = run_cli("check-plan", str(corrupt))
        assert result.returncode == 2
        assert "REPRO302" in result.stdout

    def test_json_format(self, tmp_path):
        result = run_cli(
            "check-plan", "--format", "json",
            str(GOLDEN_ARTIFACTS / "lenet.plan.json"),
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["clean"] is True

    def test_missing_file_exits_two(self, tmp_path):
        result = run_cli("check-plan", str(tmp_path / "nope.json"))
        assert result.returncode == 2


class TestAnalyze:
    def test_violation_without_baseline_exits_one(self, tmp_path):
        bad = tmp_path / "sim" / "timeline.py"
        bad.parent.mkdir()
        bad.write_text((FIXTURES / "wall_clock_bad.py").read_text())
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
        )
        assert result.returncode == 1
        assert "REPRO101" in result.stdout

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "sim" / "timeline.py"
        bad.parent.mkdir()
        bad.write_text((FIXTURES / "wall_clock_bad.py").read_text())
        baseline = tmp_path / "baseline.json"
        first = run_cli(
            "analyze", str(tmp_path), "--no-catalogs",
            "--baseline", str(baseline), "--write-baseline",
        )
        assert first.returncode == 0, first.stderr
        second = run_cli(
            "analyze", str(tmp_path), "--no-catalogs",
            "--baseline", str(baseline),
        )
        assert second.returncode == 0, second.stdout
        assert "0 new finding(s)" in second.stdout

    def test_rule_selection(self, tmp_path):
        bad = tmp_path / "sim" / "timeline.py"
        bad.parent.mkdir()
        bad.write_text((FIXTURES / "wall_clock_bad.py").read_text())
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO106",
        )
        assert result.returncode == 0, result.stdout

    def test_unknown_rule_exits_two(self, tmp_path):
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO999",
        )
        assert result.returncode == 2

    def test_json_format(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--format", "json",
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["clean"] is True
        assert payload["files_analyzed"] == 1


class TestDataflowFamilies:
    """Each new rule family catches its deliberate violation with exit 1,
    exactly as CI runs it."""

    def plant(self, tmp_path, fixture, dest):
        target = tmp_path / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((FIXTURES / fixture).read_text())
        return target

    def test_unseeded_rng_exits_one(self, tmp_path):
        self.plant(tmp_path, "taint_bad.py", "sim/rng.py")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO21x",
        )
        assert result.returncode == 1
        assert "REPRO210" in result.stdout
        assert "REPRO211" in result.stdout

    def test_out_of_lock_helper_mutation_exits_one(self, tmp_path):
        self.plant(tmp_path, "escape_bad.py", "store/shared.py")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO201,REPRO22x",
        )
        assert result.returncode == 1
        assert "REPRO201" in result.stdout

    def test_lock_order_cycle_exits_one(self, tmp_path):
        self.plant(tmp_path, "lockorder_bad.py", "tuning/order.py")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO22x",
        )
        assert result.returncode == 1
        assert "REPRO220" in result.stdout

    def test_raw_manifest_write_exits_one(self, tmp_path):
        self.plant(tmp_path, "durability_bad.py", "store/writer.py")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO23x",
        )
        assert result.returncode == 1
        assert "REPRO230" in result.stdout
        assert "REPRO231" in result.stdout

    def test_lease_release_reorder_exits_one(self, tmp_path):
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO24x",
            env_extra={
                "REPRO_ANALYSIS_QUEUE_CLASS": "buggy_queue:ReorderQueue",
            },
            pythonpath_extra=[FIXTURES],
        )
        assert result.returncode == 1
        assert "REPRO240" in result.stdout
        assert "complete-postcondition" in result.stdout

    def test_real_queue_model_check_exits_zero(self, tmp_path):
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO24x",
        )
        assert result.returncode == 0, result.stdout

    def test_all_families_on_clean_tree_exit_zero(self, tmp_path):
        self.plant(tmp_path, "taint_ok.py", "sim/rng.py")
        self.plant(tmp_path, "escape_ok.py", "store/shared.py")
        self.plant(tmp_path, "lockorder_ok.py", "tuning/pair.py")
        self.plant(tmp_path, "durability_ok.py", "store/writer.py")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO21x,REPRO22x,REPRO23x,REPRO24x,REPRO201",
        )
        assert result.returncode == 0, result.stdout

    def test_graph_dump_is_written(self, tmp_path):
        self.plant(tmp_path, "taint_ok.py", "sim/rng.py")
        graph_file = tmp_path / "callgraph.json"
        result = run_cli(
            "analyze", str(tmp_path / "sim"), "--no-baseline",
            "--no-catalogs", "--graph", str(graph_file),
        )
        assert result.returncode == 0, result.stdout
        assert f"call graph written to {graph_file}" in result.stderr
        payload = json.loads(graph_file.read_text())
        assert payload["schema"] == "repro.analysis-callgraph"
        # Module names derive from paths relative to the repo root, so
        # the tmp tree gets absolute-path-shaped names; the graph's
        # content (functions and edges) is what matters here.
        assert any(
            fn["qualname"].endswith(".rng.spawn")
            for fn in payload["functions"]
        )
        assert payload["edges"]
