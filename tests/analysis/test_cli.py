"""End-to-end CLI contract: exit codes of `repro analyze` and
`repro check-plan` as subprocesses, the way CI invokes them."""

import json
import os
import subprocess
import sys

from .conftest import FIXTURES, GOLDEN_ARTIFACTS, GOLDEN_SCENARIOS, REPO_ROOT


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd or REPO_ROOT,
    )


class TestCheckPlan:
    def test_golden_artifacts_exit_zero(self):
        result = run_cli(
            "check-plan",
            str(GOLDEN_ARTIFACTS / "lenet.plan.json"),
            str(GOLDEN_ARTIFACTS / "alexnet.plan.json"),
            str(GOLDEN_SCENARIOS / "edge_storm.json"),
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_corrupt_artifact_exits_two(self, tmp_path):
        data = json.loads((GOLDEN_ARTIFACTS / "lenet.plan.json").read_text())
        data["checksum"] = "0" * 64
        corrupt = tmp_path / "corrupt.plan.json"
        corrupt.write_text(json.dumps(data))
        result = run_cli("check-plan", str(corrupt))
        assert result.returncode == 2
        assert "REPRO302" in result.stdout

    def test_json_format(self, tmp_path):
        result = run_cli(
            "check-plan", "--format", "json",
            str(GOLDEN_ARTIFACTS / "lenet.plan.json"),
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["clean"] is True

    def test_missing_file_exits_two(self, tmp_path):
        result = run_cli("check-plan", str(tmp_path / "nope.json"))
        assert result.returncode == 2


class TestAnalyze:
    def test_violation_without_baseline_exits_one(self, tmp_path):
        bad = tmp_path / "sim" / "timeline.py"
        bad.parent.mkdir()
        bad.write_text((FIXTURES / "wall_clock_bad.py").read_text())
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
        )
        assert result.returncode == 1
        assert "REPRO101" in result.stdout

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "sim" / "timeline.py"
        bad.parent.mkdir()
        bad.write_text((FIXTURES / "wall_clock_bad.py").read_text())
        baseline = tmp_path / "baseline.json"
        first = run_cli(
            "analyze", str(tmp_path), "--no-catalogs",
            "--baseline", str(baseline), "--write-baseline",
        )
        assert first.returncode == 0, first.stderr
        second = run_cli(
            "analyze", str(tmp_path), "--no-catalogs",
            "--baseline", str(baseline),
        )
        assert second.returncode == 0, second.stdout
        assert "0 new finding(s)" in second.stdout

    def test_rule_selection(self, tmp_path):
        bad = tmp_path / "sim" / "timeline.py"
        bad.parent.mkdir()
        bad.write_text((FIXTURES / "wall_clock_bad.py").read_text())
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO106",
        )
        assert result.returncode == 0, result.stdout

    def test_unknown_rule_exits_two(self, tmp_path):
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--rules", "REPRO999",
        )
        assert result.returncode == 2

    def test_json_format(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        result = run_cli(
            "analyze", str(tmp_path), "--no-baseline", "--no-catalogs",
            "--format", "json",
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["clean"] is True
        assert payload["files_analyzed"] == 1
