"""Per-rule positive and negative tests for the AST lint pass."""

import pytest

from repro.analysis.lint import lint_file, rules_by_id
from repro.errors import ReproError

from .conftest import plant_fixture


def rules_of(findings):
    return [f.rule for f in findings]


class TestWallClock:
    def test_flags_wall_clock_calls_in_virtual_clock_code(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "sim/timeline.py")
        findings = lint_file(target)
        assert rules_of(findings) == ["REPRO101"] * 3
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "datetime.datetime.now" in messages
        assert "time.perf_counter" in messages

    def test_clean_file_and_suppression(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_ok.py", "serving/queue.py")
        assert lint_file(target) == []

    def test_out_of_scope_path_not_linted(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "nn/helpers.py")
        assert "REPRO101" not in rules_of(lint_file(target))

    def test_tuner_filename_is_in_scope_anywhere(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "misc/tuner.py")
        assert "REPRO101" in rules_of(lint_file(target))


class TestUnseededRandom:
    def test_flags_global_rng_draws(self, tmp_path):
        target = plant_fixture(tmp_path, "random_bad.py", "faults/inject.py")
        findings = lint_file(target, rules_by_id(["REPRO102"]))
        assert rules_of(findings) == ["REPRO102"] * 4
        symbols = {f.symbol for f in findings}
        assert symbols == {"jitter", "make_rng", "noise", "make_generator"}

    def test_seeded_constructors_are_clean(self, tmp_path):
        target = plant_fixture(tmp_path, "random_ok.py", "faults/inject.py")
        assert lint_file(target) == []


class TestExceptDiscipline:
    def test_flags_bare_and_swallowed(self, tmp_path):
        target = plant_fixture(tmp_path, "except_bad.py", "core/loader.py")
        findings = lint_file(target)
        assert sorted(rules_of(findings)) == ["REPRO103", "REPRO104", "REPRO104"]

    def test_handled_exceptions_are_clean(self, tmp_path):
        target = plant_fixture(tmp_path, "except_ok.py", "compile/loader.py")
        assert lint_file(target) == []

    def test_engine_scope_only(self, tmp_path):
        target = plant_fixture(tmp_path, "except_bad.py", "nn/loader.py")
        assert lint_file(target) == []


class TestProvenance:
    def test_flags_unrecorded_decision(self, tmp_path):
        target = plant_fixture(tmp_path, "decision_bad.py", "core/tuner.py")
        findings = lint_file(target, rules_by_id(["REPRO105"]))
        assert rules_of(findings) == ["REPRO105"]
        assert findings[0].symbol == "Chooser.pick"

    def test_recording_decision_is_clean(self, tmp_path):
        target = plant_fixture(tmp_path, "decision_ok.py", "faults/degradation.py")
        assert lint_file(target, rules_by_id(["REPRO105"])) == []

    def test_non_decision_file_is_out_of_scope(self, tmp_path):
        target = plant_fixture(tmp_path, "decision_bad.py", "core/chooser.py")
        assert lint_file(target, rules_by_id(["REPRO105"])) == []


class TestUnitLiterals:
    def test_flags_bare_magnitudes(self, tmp_path):
        target = plant_fixture(tmp_path, "units_bad.py", "hw/calib.py")
        findings = lint_file(target, rules_by_id(["REPRO106"]))
        assert rules_of(findings) == ["REPRO106"] * 4

    def test_units_spelled_magnitudes_are_clean(self, tmp_path):
        target = plant_fixture(tmp_path, "units_ok.py", "hw/calib.py")
        assert lint_file(target) == []

    def test_units_module_itself_is_exempt(self, tmp_path):
        target = plant_fixture(tmp_path, "units_bad.py", "hw/units.py")
        assert lint_file(target) == []


class TestTimelineWallClock:
    def test_flags_wall_clock_calls_in_timeline_module(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "obs/timeline.py")
        findings = lint_file(target)
        # obs/ is outside REPRO101's virtual-clock scope; only the
        # dedicated timeline rule fires.
        assert rules_of(findings) == ["REPRO110"] * 3
        messages = " ".join(f.message for f in findings)
        assert "digest-gated" in messages
        assert "time.time" in messages

    def test_other_obs_modules_are_out_of_scope(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "obs/export.py")
        assert "REPRO110" not in rules_of(lint_file(target))

    def test_timeline_filename_outside_obs_is_out_of_scope(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "nn/timeline.py")
        assert "REPRO110" not in rules_of(lint_file(target))

    def test_clean_timeline_with_suppression(self, tmp_path):
        target = plant_fixture(
            tmp_path, "timeline_wall_clock_ok.py", "obs/timeline.py"
        )
        assert lint_file(target) == []

    def test_real_timeline_module_is_clean(self):
        from .conftest import REPO_ROOT

        real = REPO_ROOT / "src" / "repro" / "obs" / "timeline.py"
        findings = lint_file(real, rules_by_id(["REPRO110"]))
        assert findings == []


class TestRuleSelection:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(ReproError, match="unknown lint rules"):
            rules_by_id(["REPRO999"])

    def test_selection_restricts_output(self, tmp_path):
        target = plant_fixture(tmp_path, "wall_clock_bad.py", "sim/timeline.py")
        assert lint_file(target, rules_by_id(["REPRO102"])) == []

    def test_syntax_error_is_a_repro_error(self, tmp_path):
        bad = tmp_path / "sim" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        with pytest.raises(ReproError, match="cannot parse"):
            lint_file(bad)
