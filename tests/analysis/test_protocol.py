"""Tests for the REPRO240 lease-protocol model check."""

import pytest

from repro.analysis.protocol import (
    QUEUE_CLASS_ENV,
    LeaseModelChecker,
    check_lease_protocol,
)

from .conftest import FIXTURES


@pytest.fixture
def buggy_queues(monkeypatch):
    """Make the buggy_queue fixture importable via the env seam."""
    monkeypatch.syspath_prepend(str(FIXTURES))

    def select(cls_name: str) -> None:
        monkeypatch.setenv(QUEUE_CLASS_ENV, f"buggy_queue:{cls_name}")

    return select


class TestRealQueue:
    def test_exhaustive_exploration_passes(self):
        result = LeaseModelChecker().explore()
        assert result.ok, [v.render() for v in result.violations]
        # Two workers x two jobs x three attempts: a real state space,
        # not a smoke test.
        assert result.states > 100
        assert result.transitions > result.states

    def test_finding_surface_is_empty(self):
        assert check_lease_protocol() == []


class TestBuggyQueues:
    def test_double_grant_is_caught(self, buggy_queues):
        buggy_queues("DoubleGrantQueue")
        result = LeaseModelChecker().explore()
        assert not result.ok
        assert {v.invariant for v in result.violations} == {"no-double-grant"}

    def test_forgotten_retry_count_is_caught(self, buggy_queues):
        buggy_queues("ForgetfulFailQueue")
        result = LeaseModelChecker().explore()
        assert not result.ok
        assert {v.invariant for v in result.violations} == {
            "retry-monotonicity"
        }

    def test_lease_release_reorder_is_caught(self, buggy_queues):
        buggy_queues("ReorderQueue")
        result = LeaseModelChecker().explore()
        assert not result.ok
        assert {v.invariant for v in result.violations} == {
            "complete-postcondition"
        }

    def test_findings_carry_the_counterexample_trace(self, buggy_queues):
        buggy_queues("DoubleGrantQueue")
        findings = check_lease_protocol()
        assert findings
        assert all(f.rule == "REPRO240" for f in findings)
        assert any("trace" in f.message for f in findings)
