"""Tests for the REPRO21x interprocedural seed-taint pass."""

from repro.analysis.callgraph import build_call_graph
from repro.analysis.dataflow import check_seed_taint, is_seedish_name
from repro.analysis.lint import LintContext

from .conftest import build_graph


def findings_for(tmp_path, plants):
    return check_seed_taint(build_graph(tmp_path, plants))


class TestSeedishNames:
    def test_positives(self):
        for name in ("seed", "base_seed", "seed_value", "rng", "entropy"):
            assert is_seedish_name(name), name

    def test_negatives(self):
        for name in ("count", "index", "speedup", "arranger"):
            assert not is_seedish_name(name), name


class TestViolations:
    def test_unseeded_rng_flagged(self, tmp_path):
        findings = findings_for(tmp_path, [("taint_bad.py", "sim/rng.py")])
        assert "REPRO210" in {f.rule for f in findings}
        unseeded = [f for f in findings if f.rule == "REPRO210"]
        assert unseeded[0].symbol == "unseeded"

    def test_untainted_call_site_flagged(self, tmp_path):
        findings = findings_for(tmp_path, [("taint_bad.py", "sim/rng.py")])
        untainted = [f for f in findings if f.rule == "REPRO211"]
        # One call site passes load_config() (unresolvable), so the
        # parameter cannot be proven tainted.
        assert len(untainted) == 1
        assert untainted[0].symbol == "untainted"

    def test_uncalled_function_param_is_unproven(self, tmp_path):
        target = tmp_path / "sim" / "orphan.py"
        target.parent.mkdir()
        target.write_text(
            "import numpy as np\n"
            "def forge(material):\n"
            "    return np.random.default_rng(material)\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "sim/orphan.py")]
        )
        findings = check_seed_taint(graph)
        assert [f.rule for f in findings] == ["REPRO211"]


class TestCleanCode:
    def test_tainted_constructions_pass(self, tmp_path):
        assert findings_for(tmp_path, [("taint_ok.py", "sim/rng.py")]) == []

    def test_out_of_scope_modules_are_ignored(self, tmp_path):
        # Same violating file, planted outside the deterministic parts.
        assert findings_for(tmp_path, [("taint_bad.py", "docs/rng.py")]) == []

    def test_cross_module_taint_chase(self, tmp_path):
        maker = tmp_path / "sim" / "maker.py"
        maker.parent.mkdir()
        maker.write_text(
            "import numpy as np\n"
            "def forge(material):\n"
            "    return np.random.default_rng(material)\n"
        )
        user = tmp_path / "sim" / "user.py"
        user.write_text(
            "from sim.maker import forge\n"
            "def run(seed):\n"
            "    return forge(seed)\n"
        )
        graph = build_call_graph([
            LintContext.for_file(maker, "sim/maker.py"),
            LintContext.for_file(user, "sim/user.py"),
        ])
        assert check_seed_taint(graph) == []


class TestSuppression:
    def test_pragma_silences_each_rule(self, tmp_path):
        target = tmp_path / "sim" / "quiet.py"
        target.parent.mkdir()
        target.write_text(
            "import numpy as np\n"
            "def a():\n"
            "    return np.random.default_rng()"
            "  # repro-analysis: ignore[REPRO210]\n"
            "def b(material):\n"
            "    return np.random.default_rng(material)"
            "  # repro-analysis: ignore[REPRO211]\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "sim/quiet.py")]
        )
        assert check_seed_taint(graph) == []

    def test_multi_rule_pragma_on_one_line(self, tmp_path):
        target = tmp_path / "sim" / "multi.py"
        target.parent.mkdir()
        target.write_text(
            "import numpy as np\n"
            "def a():\n"
            "    return np.random.default_rng()"
            "  # repro-analysis: ignore[REPRO210,REPRO211]\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "sim/multi.py")]
        )
        assert check_seed_taint(graph) == []
