"""Tests for the REPRO201 lock-discipline heuristic."""

import pathlib

from repro.analysis.concurrency import check_file, is_threaded_module

from .conftest import plant_fixture


class TestLockHeuristic:
    def test_flags_unlocked_mutations(self, tmp_path):
        target = plant_fixture(tmp_path, "lock_bad.py", "serving/registry.py")
        findings = check_file(target)
        assert [f.rule for f in findings] == ["REPRO201"] * 3
        symbols = sorted(f.symbol for f in findings)
        assert symbols == [
            "Registry.drain", "Registry.note_miss", "Registry.put",
        ]

    def test_init_is_exempt(self, tmp_path):
        target = plant_fixture(tmp_path, "lock_bad.py", "serving/registry.py")
        assert all("__init__" not in f.symbol for f in check_file(target))

    def test_locked_mutations_are_clean(self, tmp_path):
        target = plant_fixture(tmp_path, "lock_ok.py", "serving/registry.py")
        assert check_file(target) == []

    def test_suppression_pragma(self, tmp_path):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1  # repro-analysis: ignore[REPRO201]\n"
        )
        target = tmp_path / "serving" / "c.py"
        target.parent.mkdir()
        target.write_text(src)
        assert check_file(target) == []


class TestScoping:
    def test_threaded_module_paths(self):
        assert is_threaded_module(pathlib.Path("src/repro/serving/queue.py"))
        assert is_threaded_module(pathlib.Path("src/repro/core/plan_cache.py"))
        assert not is_threaded_module(pathlib.Path("src/repro/core/engine.py"))
