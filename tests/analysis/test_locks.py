"""Tests for lock escape analysis and the REPRO220 lock-order pass."""

import ast

from repro.analysis.callgraph import build_call_graph
from repro.analysis.concurrency import check_file
from repro.analysis.lint import LintContext
from repro.analysis.locks import (
    LockOrderAnalysis,
    analyze_class_escapes,
    check_lock_order,
    proven_lock_held,
)

from .conftest import FIXTURES, build_graph, plant_fixture


def class_from(fixture: str) -> ast.ClassDef:
    tree = ast.parse((FIXTURES / fixture).read_text())
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            return node
    raise AssertionError(f"no class in {fixture}")


class TestEscapeAnalysis:
    def test_lock_held_helpers_are_proven(self):
        cls = class_from("escape_ok.py")
        proof = analyze_class_escapes(cls, {"_lock"})
        assert set(proof.proven) == {"_helper", "_reset", "_clear"}
        assert proof.unproven == {}

    def test_transitive_proof_through_proven_caller(self):
        # _clear is only called from _reset, which is itself proven:
        # the fixed point must chain the proof.
        cls = class_from("escape_ok.py")
        assert "_clear" in proven_lock_held(cls)

    def test_unlocked_call_site_blocks_the_proof(self):
        cls = class_from("escape_bad.py")
        proof = analyze_class_escapes(cls, {"_lock"})
        assert proof.proven == {}
        assert "called without the lock from put" in proof.unproven["_helper"]

    def test_escaped_value_reference_blocks_the_proof(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def run(self, pool):\n"
            "        with self._lock:\n"
            "            pool.submit(self._work)\n"
            "    def _work(self):\n"
            "        pass\n"
        )
        cls = ast.parse(src).body[1]
        assert isinstance(cls, ast.ClassDef)
        proof = analyze_class_escapes(cls, {"_lock"})
        assert "escapes as a value" in proof.unproven["_work"]


class TestRepro201Integration:
    def test_proven_helper_no_longer_flags(self, tmp_path):
        target = plant_fixture(tmp_path, "escape_ok.py", "store/shared.py")
        assert check_file(target) == []

    def test_unproven_helper_still_flags(self, tmp_path):
        target = plant_fixture(tmp_path, "escape_bad.py", "store/shared.py")
        findings = check_file(target)
        assert [f.rule for f in findings] == ["REPRO201"]
        assert findings[0].symbol == "Shared._helper"


class TestLockOrder:
    def test_opposite_order_is_a_cycle(self, tmp_path):
        graph = build_graph(tmp_path, [("lockorder_bad.py", "tuning/order.py")])
        analysis = LockOrderAnalysis(graph).build()
        assert analysis.cycles() == [(
            "tuning.order.Left._left_lock",
            "tuning.order.Right._right_lock",
        )]
        findings = analysis.check()
        assert [f.rule for f in findings] == ["REPRO220"]
        assert "potential deadlock" in findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        graph = build_graph(tmp_path, [("lockorder_ok.py", "tuning/pair.py")])
        analysis = LockOrderAnalysis(graph).build()
        # Edges exist (a held while b is taken) but no cycle.
        assert ("tuning.pair.Pair._a_lock", "tuning.pair.Pair._b_lock") in (
            analysis.edges
        )
        assert analysis.cycles() == []
        assert analysis.check() == []

    def test_reentrant_self_acquisition_is_not_an_edge(self, tmp_path):
        target = tmp_path / "tuning" / "reent.py"
        target.parent.mkdir()
        target.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        graph = build_call_graph(
            [LintContext.for_file(target, "tuning/reent.py")]
        )
        analysis = LockOrderAnalysis(graph).build()
        assert analysis.edges == {}

    def test_pragma_suppresses_the_cycle(self, tmp_path):
        # The finding anchors at the lexically smallest edge — the
        # Left._left_lock -> Right._right_lock acquisition in Left.poke.
        text = (FIXTURES / "lockorder_bad.py").read_text().replace(
            "self.right.prod_inner()",
            "self.right.prod_inner()  # repro-analysis: ignore[REPRO220]",
        )
        target = tmp_path / "tuning" / "order.py"
        target.parent.mkdir()
        target.write_text(text)
        graph = build_call_graph(
            [LintContext.for_file(target, "tuning/order.py")]
        )
        assert check_lock_order(graph) == []
