"""Verifier tests: golden artifacts pass, hand-corrupted copies fail
with the precise rule that names the corruption."""

import json

import pytest

from repro.analysis.verifiers import (
    verify_artifact_file,
    verify_catalogs,
    verify_device_spec,
    verify_fault_scenario_data,
    verify_network_graph,
    verify_plan_artifact_data,
)
from repro.compile import payload_checksum
from repro.errors import ReproError
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import build


def reseal(data):
    """Recompute the content checksum after a hand edit, so tests hit the
    semantic check they target instead of REPRO302."""
    data["checksum"] = payload_checksum(data)
    return data


def rules_of(findings):
    return {f.rule for f in findings}


class TestPlanArtifact:
    def test_golden_is_clean(self, golden_plan):
        assert verify_plan_artifact_data(golden_plan) == []

    def test_checksum_flip(self, golden_plan):
        golden_plan["checksum"] = "0" * 64
        assert rules_of(verify_plan_artifact_data(golden_plan)) == {"REPRO302"}

    def test_wrong_schema(self, golden_plan):
        golden_plan["schema"] = "bogus"
        assert rules_of(verify_plan_artifact_data(golden_plan)) == {"REPRO301"}

    def test_wrong_version(self, golden_plan):
        golden_plan["version"] = 999
        reseal(golden_plan)
        assert "REPRO301" in rules_of(verify_plan_artifact_data(golden_plan))

    def test_fraction_out_of_range(self, golden_plan):
        golden_plan["plan"]["layers"][0]["cpu_fraction"] = 1.5
        reseal(golden_plan)
        assert rules_of(verify_plan_artifact_data(golden_plan)) == {"REPRO303"}

    def test_fraction_contradicts_assignment(self, golden_plan):
        record = golden_plan["plan"]["layers"][0]
        assert record["assignment"] == "gpu"
        record["cpu_fraction"] = 0.5
        reseal(golden_plan)
        assert rules_of(verify_plan_artifact_data(golden_plan)) == {"REPRO303"}

    def test_managed_alloc_on_discrete_device(self, golden_plan):
        golden_plan["key"]["device"] = "rtx-2080ti-host"
        reseal(golden_plan)
        assert "REPRO305" in rules_of(verify_plan_artifact_data(golden_plan))

    def test_missing_allocation(self, golden_plan):
        removed = next(iter(golden_plan["plan"]["alloc"]))
        del golden_plan["plan"]["alloc"][removed]
        reseal(golden_plan)
        findings = verify_plan_artifact_data(golden_plan)
        assert rules_of(findings) == {"REPRO304"}
        assert removed in findings[0].message

    def test_unknown_buffer_in_alloc(self, golden_plan):
        golden_plan["plan"]["alloc"]["ghost.out"] = "managed"
        reseal(golden_plan)
        assert "REPRO304" in rules_of(verify_plan_artifact_data(golden_plan))

    def test_unknown_device_is_a_warning_not_error(self, golden_plan):
        golden_plan["key"]["device"] = "imaginary-soc"
        reseal(golden_plan)
        findings = verify_plan_artifact_data(golden_plan)
        assert all(f.severity == "warning" for f in findings)


class TestFaultScenario:
    def test_golden_is_clean(self, golden_scenario):
        assert verify_fault_scenario_data(golden_scenario) == []

    def test_probability_out_of_range(self, golden_scenario):
        golden_scenario["kernel_failure_p"] = 1.5
        findings = verify_fault_scenario_data(golden_scenario)
        assert rules_of(findings) == {"REPRO307"}

    def test_non_numeric_probability(self, golden_scenario):
        golden_scenario["payload_corrupt_p"] = "often"
        assert rules_of(
            verify_fault_scenario_data(golden_scenario)
        ) == {"REPRO307"}

    def test_overlapping_thermal_windows(self, golden_scenario):
        first = dict(golden_scenario["thermal"][0])
        second = dict(first)
        second["start_s"] = first["start_s"] + first["duration_s"] / 2
        golden_scenario["thermal"] = [first, second]
        findings = verify_fault_scenario_data(golden_scenario)
        assert rules_of(findings) == {"REPRO306"}

    def test_wrong_schema(self, golden_scenario):
        golden_scenario["schema"] = "bogus"
        assert rules_of(
            verify_fault_scenario_data(golden_scenario)
        ) == {"REPRO301"}


class TestFileDispatch:
    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        findings = verify_artifact_file(path)
        assert rules_of(findings) == {"REPRO301"}

    def test_unknown_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        findings = verify_artifact_file(path)
        assert rules_of(findings) == {"REPRO301"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            verify_artifact_file(tmp_path / "nope.json")

    def test_dispatches_to_scenario(self, tmp_path, golden_scenario):
        golden_scenario["artifact_corrupt_p"] = -0.5
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(golden_scenario))
        assert rules_of(verify_artifact_file(path)) == {"REPRO307"}


class TestShippedCatalogs:
    def test_catalogs_are_clean(self):
        assert verify_catalogs() == []

    def test_device_spec_positive(self):
        assert verify_device_spec(JETSON_AGX_XAVIER) == []

    def test_network_graph_positive(self):
        assert verify_network_graph(build("lenet")) == []

    def test_network_graph_detects_corruption(self):
        net = build("lenet")
        node = net.node(net.topo_order()[1])
        object.__setattr__(node, "out_shape", (1, 2, 3))
        findings = verify_network_graph(net)
        assert findings
        assert rules_of(findings) == {"REPRO309"}
