"""ClusterReport invariants, serialization, and digest stability."""

import json

import pytest

from repro.cluster import (
    CLUSTER_REPORT_SCHEMA,
    CLUSTER_REPORT_VERSION,
    ClusterReport,
    PoolStats,
    ReplicaStats,
)
from repro.cluster.report import utilization_histogram
from repro.errors import ReproError
from repro.serving.report import LatencyStats


def latencies(values=(0.1, 0.2, 0.3)):
    return LatencyStats.from_latencies(list(values))


def pool_stats(**overrides):
    kw = dict(
        name="lenet", network="lenet",
        replicas_start=2, replicas_end=2, replicas_peak=2,
        offered=10, served=7, shed=1, timed_out=1, late=1, failed=1,
        latency=latencies(), batch_histogram={1: 5, 2: 1},
        energy_j=3.0,
    )
    kw.update(overrides)
    return PoolStats(**kw)


def cluster_report(**overrides):
    pool = pool_stats()
    kw = dict(
        router="plan_cost", mix="jetson-agx-xavier:1",
        duration_s=10.0, makespan_s=10.0,
        offered=10, served=7, shed=1, timed_out=1, late=1, failed=1,
        latency=latencies(), energy_j=3.0,
        replicas_start=2, replicas_end=2, replicas_peak=2,
        device_utilization={"jetson-agx-xavier": [0] * 9 + [2]},
        device_utilization_mean={"jetson-agx-xavier": 0.95},
        pools=(pool,),
        replicas=(
            ReplicaStats(
                name="lenet#0", device="jetson-agx-xavier",
                served=4, failed=1, batches=5, busy_s=9.0,
                energy_j=1.5, utilization=0.9, created_s=0.0,
            ),
        ),
        seed=3,
    )
    kw.update(overrides)
    return ClusterReport(**kw)


class TestUtilizationHistogram:
    def test_bins_equal_width(self):
        assert utilization_histogram([0.0, 0.05, 0.55, 0.99]) == [
            2, 0, 0, 0, 0, 1, 0, 0, 0, 1,
        ]

    def test_full_utilization_lands_in_last_bin(self):
        assert utilization_histogram([1.0]) == [0] * 9 + [1]

    def test_empty(self):
        assert utilization_histogram([]) == [0] * 10


class TestConservation:
    def test_pool_conservation_enforced(self):
        with pytest.raises(ReproError, match="conservation"):
            pool_stats(served=5)

    def test_fleet_conservation_enforced(self):
        with pytest.raises(ReproError, match="conservation"):
            cluster_report(served=5)

    def test_late_bounded_by_timeouts(self):
        with pytest.raises(ReproError, match="late"):
            cluster_report(late=2)

    def test_pool_totals_must_match_fleet(self):
        with pytest.raises(ReproError, match="pool totals"):
            cluster_report(
                offered=12, served=9,
                device_utilization={}, device_utilization_mean={},
            )


class TestDerived:
    def test_rates(self):
        report = cluster_report()
        assert report.goodput_rps == pytest.approx(0.7)
        assert report.throughput_rps == pytest.approx(0.8)
        assert report.shed_rate == pytest.approx(0.1)
        assert report.miss_rate == pytest.approx(0.1)
        assert report.energy_per_request_j == pytest.approx(3.0 / 7)

    def test_pool_lookup(self):
        report = cluster_report()
        assert report.pool("lenet").network == "lenet"
        with pytest.raises(ReproError, match="no pool"):
            report.pool("vgg16")


class TestSerialization:
    def test_schema_header(self):
        doc = cluster_report().to_dict()
        assert doc["schema"] == CLUSTER_REPORT_SCHEMA
        assert doc["version"] == CLUSTER_REPORT_VERSION
        assert "replicas" not in doc

    def test_include_replicas(self):
        doc = cluster_report().to_dict(include_replicas=True)
        assert doc["replicas"][0]["name"] == "lenet#0"
        assert doc["replicas"][0]["retired_s"] == -1.0

    def test_to_json_round_trips(self):
        doc = json.loads(cluster_report().to_json())
        assert doc["router"] == "plan_cost"
        assert doc["pools"][0]["batch_histogram"] == {"1": 5, "2": 1}

    def test_digest_stable_and_ignores_extra(self):
        a, b = cluster_report(), cluster_report()
        assert a.digest() == b.digest()
        b.extra["plan_cache_hits"] = 99.0
        assert a.digest() == b.digest()
        # But any accounted field changes it.
        c = cluster_report(seed=4)
        assert a.digest() != c.digest()

    def test_describe_mentions_key_numbers(self):
        text = cluster_report().describe()
        assert "router=plan_cost" in text
        assert "offered 10" in text
        assert "jetson-agx-xavier" in text
