"""Routing policies: selection logic, lazy-heap hygiene, affinity."""

import pytest

from repro.cluster.router import (
    ENERGY,
    LeastQueueRouter,
    PlanCostRouter,
    RoundRobinRouter,
    make_router,
)
from repro.errors import ReproError

from ._helpers import make_pool


class TestRoundRobin:
    def test_cycles_in_creation_order(self):
        pool = make_pool([{}, {}, {}])
        router = RoundRobinRouter(pool)
        picks = [router.choose(0.0, "t").name for _ in range(4)]
        assert picks == ["lenet#0", "lenet#1", "lenet#2", "lenet#0"]

    def test_skips_draining_replicas(self):
        pool = make_pool([{}, {}, {}])
        pool.replicas[1].draining = True
        router = RoundRobinRouter(pool)
        picks = [router.choose(0.0, "t").name for _ in range(4)]
        assert "lenet#1" not in picks

    def test_empty_pool_returns_none(self):
        pool = make_pool([{}])
        pool.replicas[0].active = False
        router = RoundRobinRouter(pool)
        assert router.choose(0.0, "t") is None


class TestLeastQueue:
    def test_picks_shallowest_queue(self):
        pool = make_pool([{}, {}, {}])
        router = LeastQueueRouter(pool)
        for replica, depth in zip(pool.replicas, (2, 0, 1)):
            for _ in range(depth):
                replica.queue.append(0.0)
            replica.version += 1
            router.note(replica, 0.0)
        assert router.choose(0.0, "t").name == "lenet#1"

    def test_stale_entries_discarded(self):
        pool = make_pool([{}, {}])
        router = LeastQueueRouter(pool)
        shallow = pool.replicas[0]
        # Deepen the previously-shallowest replica; its old heap entry
        # is now stale and must not win.
        for _ in range(5):
            shallow.queue.append(0.0)
        shallow.version += 1
        router.note(shallow, 0.0)
        assert router.choose(0.0, "t").name == "lenet#1"

    def test_ties_break_by_creation_index(self):
        pool = make_pool([{}, {}])
        router = LeastQueueRouter(pool)
        assert router.choose(0.0, "t").name == "lenet#0"


class TestPlanCost:
    def test_picks_fastest_idle_replica(self):
        pool = make_pool([{"svc1_s": 0.3}, {"svc1_s": 0.1}, {"svc1_s": 0.2}])
        router = PlanCostRouter(pool)
        assert router.choose(0.0, "t").name == "lenet#1"

    def test_busy_fast_replica_can_beat_idle_slow_one(self):
        # Fast-but-busy: 0.05 remaining busy + svc1 0.01 = 0.06 beats
        # the idle replica's 0.5.
        pool = make_pool([{"svc1_s": 0.5}, {"svc1_s": 0.01}])
        router = PlanCostRouter(pool)
        fast = pool.replicas[1]
        fast.busy_until = 1.05
        fast.version += 1
        router.note(fast, 1.0)
        assert router.choose(1.0, "t").name == "lenet#1"

    def test_idle_slow_replica_wins_when_fast_is_swamped(self):
        pool = make_pool(
            [{"svc1_s": 0.5}, {"svc1_s": 0.01, "unit_s": 0.01}]
        )
        router = PlanCostRouter(pool)
        fast = pool.replicas[1]
        fast.busy_until = 2.0
        for _ in range(10):
            fast.queue.append(0.0)
        fast.version += 1
        router.note(fast, 0.0)
        assert router.choose(0.0, "t").name == "lenet#0"

    def test_replica_going_idle_is_refiled_exactly(self):
        # A replica that was busy must be re-ranked as idle after its
        # completion re-files it — the two-heap construction's point.
        pool = make_pool([{"svc1_s": 0.2}, {"svc1_s": 0.1}])
        router = PlanCostRouter(pool)
        fast = pool.replicas[1]
        fast.busy_until = 5.0
        fast.version += 1
        router.note(fast, 0.0)
        assert router.choose(0.0, "t").name == "lenet#0"
        # Completion at t=5: busy horizon reached, queue empty.
        fast.version += 1
        router.note(fast, 5.0)
        assert router.choose(5.0, "t").name == "lenet#1"

    def test_energy_objective_picks_lowest_energy(self):
        pool = make_pool([
            {"svc1_s": 0.01, "energy_j": 5.0},
            {"svc1_s": 0.5, "energy_j": 0.2},
        ])
        router = PlanCostRouter(pool, objective=ENERGY)
        assert router.choose(0.0, "t").name == "lenet#1"

    def test_affinity_reuses_previous_replica_within_slack(self):
        pool = make_pool([{"svc1_s": 0.10}, {"svc1_s": 0.11}])
        router = PlanCostRouter(pool, affinity_slack=0.5)
        first = router.choose(0.0, "tenant")
        assert first.name == "lenet#0"
        # Make #0 slightly worse but within 50% slack of the optimum.
        first.busy_until = 0.02
        first.version += 1
        router.note(first, 0.0)
        assert router.choose(0.0, "tenant").name == "lenet#0"
        # A different tenant has no affinity and takes the true argmin.
        assert router.choose(0.0, "other").name == "lenet#1"

    def test_affinity_abandons_replica_beyond_slack(self):
        pool = make_pool([{"svc1_s": 0.10}, {"svc1_s": 0.11}])
        router = PlanCostRouter(pool, affinity_slack=0.1)
        sticky = router.choose(0.0, "tenant")
        sticky.busy_until = 1.0
        sticky.version += 1
        router.note(sticky, 0.0)
        assert router.choose(0.0, "tenant").name == "lenet#1"

    def test_validation(self):
        pool = make_pool([{}])
        with pytest.raises(ReproError, match="objective"):
            PlanCostRouter(pool, objective="carbon")
        with pytest.raises(ReproError, match="affinity_slack"):
            PlanCostRouter(pool, affinity_slack=-0.1)


class TestMakeRouter:
    def test_known_names(self):
        pool = make_pool([{}])
        assert make_router("round_robin", pool).name == "round_robin"
        assert make_router("least_queue", pool).name == "least_queue"
        router = make_router(
            "plan_cost", pool, objective=ENERGY, affinity_slack=0.2
        )
        assert router.objective == ENERGY
        assert router.affinity_slack == 0.2

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown router"):
            make_router("random", make_pool([{}]))
