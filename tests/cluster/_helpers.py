"""Shared fixtures: synthetic replicas with exact, cheap service times.

Router and autoscaler logic is independent of the real engine, so these
tests drive it with a duck-typed service model (the same pattern the
serving property tests use) — no plan compilation, and costs chosen to
make argmin decisions unambiguous.
"""

from repro.cluster.fleet import Pool, Replica
from repro.hardware.variants import full_catalog
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import BatchServiceTime


class FakeModel:
    """Linear batched service: svc1 for batch 1, unit_s per request."""

    def __init__(self, svc1_s, unit_s=None, energy_j=1.0):
        self.svc1_s = svc1_s
        self.unit_s = unit_s if unit_s is not None else svc1_s
        self.energy_j = energy_j

    def service(self, network, batch, **kwargs):
        total = self.svc1_s if batch == 1 else self.unit_s * batch
        return BatchServiceTime(
            total_s=total, cpu_busy_s=0.2 * total, gpu_busy_s=0.8 * total,
            energy_j=self.energy_j * batch,
        )

    def warm(self, network, batch):
        return self.service(network, batch)


def make_replica(
    name, idx, *, svc1_s=0.1, unit_s=None, energy_j=1.0,
    pool_name="lenet", max_batch=8,
):
    spec = full_catalog()["jetson-agx-xavier"]
    return Replica(
        name, spec, pool_name, pool_name,
        FakeModel(svc1_s, unit_s, energy_j),
        idx=idx, max_batch=max_batch,
    )


def make_pool(replica_specs, *, policy=None, pool_name="lenet"):
    """Pool of fake replicas; ``replica_specs`` is a list of kwargs for
    :func:`make_replica` (name/idx filled in automatically)."""
    pool = Pool(pool_name, pool_name, policy or BatchPolicy(max_wait_s=0.0))
    for i, kw in enumerate(replica_specs):
        pool.replicas.append(
            make_replica(f"{pool_name}#{i}", i + 1, pool_name=pool_name, **kw)
        )
    pool.replicas_start = len(pool.replicas)
    return pool
