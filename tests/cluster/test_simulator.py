"""End-to-end fleet simulation: accounting, faults, scaling, determinism."""

import os
import subprocess
import sys

import pytest

from repro.cluster import (
    AutoscalerPolicy,
    ClusterConfig,
    ClusterSimulator,
    ClusterTenant,
    DeviceMix,
    simulate_cluster,
)
from repro.errors import ReproError
from repro.faults import load_scenario, scale_to_horizon
from repro.serving.batcher import BatchPolicy
from repro.workloads.arrivals import ClosedLoopArrivals, PoissonArrivals

MIX = "jetson-agx-xavier:2,raspberry-pi-4"


def run(
    *, rate=50.0, duration=2.0, replicas=3, router="plan_cost",
    mix=MIX, networks=("lenet",), seed=0, **config_kw,
):
    tenants = [
        ClusterTenant(
            network, PoissonArrivals(rate, duration, seed=seed + i)
        )
        for i, network in enumerate(networks)
    ]
    config_kw.setdefault(
        "policy",
        BatchPolicy(max_wait_s=0.0, max_batch_size=4, deadline_s=2.0),
    )
    config = ClusterConfig(router=router, seed=seed, **config_kw)
    return simulate_cluster(
        tenants, DeviceMix.parse(mix), replicas, config
    )


class TestAccounting:
    @pytest.mark.parametrize(
        "router", ["round_robin", "least_queue", "plan_cost"]
    )
    def test_conservation_every_router(self, router):
        report = run(router=router)
        assert report.offered > 0
        assert (
            report.served + report.shed + report.timed_out + report.failed
            == report.offered
        )

    def test_sane_run_serves_everything(self):
        # 3 replicas of a sub-millisecond model at 50 req/s: no sheds,
        # no deadline misses, latencies near the service time.
        report = run()
        assert report.shed == 0
        assert report.timed_out == 0
        assert report.served == report.offered
        assert report.latency.p99_s < 0.1
        assert report.energy_j > 0.0

    def test_multiple_pools_route_independently(self):
        report = run(networks=("lenet", "fcnn"), rate=20.0)
        assert len(report.pools) == 2
        assert {p.network for p in report.pools} == {"lenet", "fcnn"}
        assert all(p.offered > 0 for p in report.pools)

    def test_makespan_covers_trailing_completions(self):
        report = run()
        assert report.makespan_s >= report.duration_s


class TestValidation:
    def test_closed_loop_tenants_rejected(self):
        with pytest.raises(ReproError, match="open-loop"):
            ClusterTenant(
                "lenet",
                ClosedLoopArrivals(clients=2, think_s=0.1, duration_s=1.0),
            )

    def test_duplicate_tenant_names_rejected(self):
        tenants = [
            ClusterTenant("lenet", PoissonArrivals(10, 1.0)),
            ClusterTenant("lenet", PoissonArrivals(10, 1.0)),
        ]
        with pytest.raises(ReproError, match="duplicate tenant"):
            ClusterSimulator(tenants, DeviceMix.parse(MIX), 1)

    def test_no_tenants_rejected(self):
        with pytest.raises(ReproError, match="at least one tenant"):
            ClusterSimulator([], DeviceMix.parse(MIX), 1)


class TestFaults:
    def test_faulted_run_still_conserves(self):
        report = run(
            faults=scale_to_horizon(load_scenario("thermal-soak"), 2.0),
            fault_share=1.0,
            fault_stagger_s=0.5,
        )
        assert (
            report.served + report.shed + report.timed_out + report.failed
            == report.offered
        )

    def test_kernel_failures_surface_as_failed(self):
        report = run(
            faults=scale_to_horizon(load_scenario("flaky-kernels"), 2.0),
            fault_share=1.0,
            rate=200.0,
        )
        assert report.failed > 0

    def test_thermal_soak_slows_faulted_fleet(self):
        healthy = run(rate=150.0)
        soaked = run(
            rate=150.0,
            faults=scale_to_horizon(load_scenario("thermal-soak"), 2.0),
            fault_share=1.0,
        )
        assert soaked.latency.mean_s > healthy.latency.mean_s


class TestAutoscaling:
    def test_overload_triggers_scale_up(self):
        report = run(
            mix="jetson-agx-xavier",
            networks=("squeezenet",),
            rate=30.0,
            duration=4.0,
            replicas=2,
            autoscaler=AutoscalerPolicy(
                interval_s=0.5, high_depth=2.0, cooldown_s=0.5,
                max_replicas=8,
            ),
        )
        assert report.replicas_peak > report.replicas_start
        assert report.scaling_events > 0

    def test_quiet_fleet_scales_down_and_retires(self):
        report = run(
            mix="jetson-agx-xavier",
            rate=5.0,
            duration=4.0,
            replicas=4,
            autoscaler=AutoscalerPolicy(
                interval_s=0.5, low_depth=0.5, low_miss_rate=0.01,
                cooldown_s=0.5, min_replicas=1,
            ),
        )
        assert report.replicas_end < report.replicas_start
        retired = [r for r in report.replicas if r.retired_s >= 0.0]
        assert retired


class TestDeterminism:
    def test_same_seed_same_digest_in_process(self):
        kw = dict(
            networks=("lenet", "fcnn"),
            faults=scale_to_horizon(load_scenario("edge-storm"), 2.0),
            fault_share=0.5,
            fault_stagger_s=0.5,
        )
        assert run(**kw).digest() == run(**kw).digest()

    def test_seed_changes_digest(self):
        assert run(seed=1).digest() != run(seed=2).digest()

    def test_same_seed_same_digest_across_processes(self):
        """The acceptance gate: a fresh interpreter reproduces the
        digest bit-for-bit (no wall clock, id(), or hash-order leaks)."""
        snippet = (
            "from repro.cluster import ClusterConfig, ClusterTenant, "
            "DeviceMix, simulate_cluster\n"
            "from repro.faults import load_scenario, scale_to_horizon\n"
            "from repro.serving.batcher import BatchPolicy\n"
            "from repro.workloads.arrivals import DiurnalPoissonArrivals\n"
            "tenants = [ClusterTenant('lenet', DiurnalPoissonArrivals("
            "80.0, 2.0, period_s=2.0, seed=5))]\n"
            "config = ClusterConfig(router='plan_cost', seed=5, "
            "policy=BatchPolicy(max_wait_s=0.0, deadline_s=2.0), "
            "faults=scale_to_horizon(load_scenario('thermal-soak'), 2.0), "
            "fault_share=0.5, fault_stagger_s=0.5)\n"
            "report = simulate_cluster(tenants, "
            "DeviceMix.parse('jetson-agx-xavier:2,raspberry-pi-4', "
            "throttled_share=0.34), 3, config)\n"
            "print(report.digest())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        digests = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.append(proc.stdout.strip().splitlines()[-1])
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64

    def test_report_extra_records_plan_cache_traffic(self):
        report = run()
        assert "plan_cache_hits" in report.extra
        assert "plan_cache_misses" in report.extra
