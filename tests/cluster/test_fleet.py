"""Device mixes, replicas, and fleet construction."""

import pytest

from repro.cluster import DeviceMix, Fleet
from repro.cluster.fleet import base_device_name, stable_hash, unit_fraction
from repro.errors import ReproError
from repro.faults import load_scenario
from repro.hardware.throttle import ThrottleFactors
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServiceTimeModel


class TestDeviceMix:
    def test_parse_names_and_weights(self):
        mix = DeviceMix.parse("jetson-agx-xavier:2,raspberry-pi-4")
        assert mix.entries == (
            ("jetson-agx-xavier", 2), ("raspberry-pi-4", 1),
        )

    def test_parse_rejects_unknown_device(self):
        with pytest.raises(ReproError, match="unknown device"):
            DeviceMix.parse("no-such-board")

    def test_parse_rejects_bad_weight(self):
        with pytest.raises(ReproError, match="weight"):
            DeviceMix.parse("jetson-agx-xavier:two")
        with pytest.raises(ReproError, match="weight"):
            DeviceMix.parse("jetson-agx-xavier:0")

    def test_parse_rejects_empty(self):
        with pytest.raises(ReproError, match="empty"):
            DeviceMix.parse(" , ")

    def test_throttled_share_bounds(self):
        with pytest.raises(ReproError, match="throttled_share"):
            DeviceMix.parse("jetson-agx-xavier", throttled_share=1.5)

    def test_spec_for_cycles_weighted(self):
        mix = DeviceMix.parse("jetson-agx-xavier:2,raspberry-pi-4")
        names = [mix.spec_for(i).name for i in range(6)]
        assert names == [
            "jetson-agx-xavier", "jetson-agx-xavier", "raspberry-pi-4",
        ] * 2

    def test_spec_for_rejects_negative_index(self):
        mix = DeviceMix.parse("jetson-agx-xavier")
        with pytest.raises(ReproError):
            mix.spec_for(-1)

    def test_throttled_share_spread_evenly(self):
        mix = DeviceMix.parse("jetson-agx-xavier", throttled_share=0.25)
        throttled = [
            "@thr-" in mix.spec_for(i).name for i in range(20)
        ]
        # Exactly one quarter of any aligned prefix, spread out — not
        # all bunched at the front.
        assert sum(throttled) == 5
        assert sum(throttled[:8]) == 2

    def test_throttle_is_a_first_class_spec(self):
        mix = DeviceMix.parse(
            "jetson-agx-xavier",
            throttled_share=1.0,
            throttle=ThrottleFactors(cpu=0.5, gpu=0.5, bandwidth=1.0),
        )
        spec = mix.spec_for(0)
        base = DeviceMix.parse("jetson-agx-xavier").spec_for(0)
        assert spec.name != base.name
        assert spec.cpu.clock_hz < base.cpu.clock_hz

    def test_describe_mentions_throttle(self):
        mix = DeviceMix.parse("jetson-agx-xavier:3", throttled_share=0.5)
        text = mix.describe()
        assert "jetson-agx-xavier:3" in text
        assert "50%" in text

    def test_base_device_name_strips_suffix(self):
        assert base_device_name("jetson-agx-xavier@thr-c0.8") == (
            "jetson-agx-xavier"
        )
        assert base_device_name("raspberry-pi-4") == "raspberry-pi-4"


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_unit_fraction_in_range(self):
        draws = [unit_fraction("seed", i) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Not degenerate.
        assert len(set(draws)) == 100


class TestFleet:
    def _fleet(self, **kw):
        mix = DeviceMix.parse("jetson-agx-xavier:2,raspberry-pi-4")
        kw.setdefault("policy", BatchPolicy(max_wait_s=0.0))
        return Fleet(mix, [("lenet", 3)], **kw)

    def test_builds_requested_replicas(self):
        fleet = self._fleet()
        assert fleet.replica_count() == 3
        assert fleet.pools[0].replicas_start == 3
        names = [r.name for r in fleet.pools[0].replicas]
        assert names == ["lenet#0", "lenet#1", "lenet#2"]

    def test_replica_idx_is_fleet_wide_and_unique(self):
        mix = DeviceMix.parse("jetson-agx-xavier")
        fleet = Fleet(
            mix, [("lenet", 2), ("fcnn", 2)],
            policy=BatchPolicy(max_wait_s=0.0),
        )
        idxs = [r.idx for p in fleet.pools for r in p.replicas]
        assert len(set(idxs)) == 4

    def test_models_shared_per_spec(self):
        fleet = self._fleet()
        jetsons = [
            r for r in fleet.pools[0].replicas
            if r.spec.name == "jetson-agx-xavier"
        ]
        assert len(jetsons) == 2
        assert jetsons[0].model is jetsons[1].model

    def test_non_integrated_devices_get_baseline_model(self):
        fleet = self._fleet()
        by_device = {r.spec.name: r for r in fleet.pools[0].replicas}
        assert isinstance(
            by_device["jetson-agx-xavier"].model, ServiceTimeModel
        )
        # The Pi is CPU-only: EdgeNN's integrated engine cannot run
        # there, so it gets the paper's baseline path.
        assert not isinstance(
            by_device["raspberry-pi-4"].model, ServiceTimeModel
        )

    def test_plan_costs_precomputed(self):
        fleet = self._fleet()
        for replica in fleet.pools[0].replicas:
            assert replica.svc1_s > 0.0
            assert replica.unit_s > 0.0
            assert replica.unit_s <= replica.svc1_s + 1e-12

    def test_fault_assignment_deterministic_and_partial(self):
        scenario = load_scenario("thermal-soak")
        make = lambda: self._fleet(  # noqa: E731
            seed=3, faults=scenario, fault_share=0.5, fault_stagger_s=2.0
        )
        a, b = make(), make()
        flags_a = [r.injector is not None for r in a.pools[0].replicas]
        flags_b = [r.injector is not None for r in b.pools[0].replicas]
        assert flags_a == flags_b
        assert any(flags_a) or True  # share is probabilistic per name
        # fault_share=0 means nobody is faulted.
        clean = self._fleet(seed=3, faults=scenario, fault_share=0.0)
        assert all(
            r.injector is None for r in clean.pools[0].replicas
        )

    def test_add_replica_extends_pool(self):
        fleet = self._fleet()
        pool = fleet.pools[0]
        replica = fleet.add_replica(pool, now=4.0)
        assert replica.name == "lenet#3"
        assert replica.created_s == 4.0
        assert fleet.replica_count() == 4
        assert pool.replicas_start == 3

    def test_duplicate_pool_rejected(self):
        mix = DeviceMix.parse("jetson-agx-xavier")
        with pytest.raises(ReproError, match="duplicate pool"):
            Fleet(mix, [("lenet", 1), ("lenet", 1)])

    def test_empty_pool_rejected(self):
        mix = DeviceMix.parse("jetson-agx-xavier")
        with pytest.raises(ReproError, match="at least one replica"):
            Fleet(mix, [("lenet", 0)])
        with pytest.raises(ReproError, match="at least one model pool"):
            Fleet(mix, [])

    def test_device_counts_use_base_names(self):
        mix = DeviceMix.parse("jetson-agx-xavier", throttled_share=0.5)
        fleet = Fleet(
            mix, [("lenet", 4)], policy=BatchPolicy(max_wait_s=0.0)
        )
        assert fleet.device_counts() == {"jetson-agx-xavier": 4}


class TestReplicaPredictions:
    def test_predicted_wait_counts_busy_and_queue(self):
        fleet = Fleet(
            DeviceMix.parse("jetson-agx-xavier"), [("lenet", 1)],
            policy=BatchPolicy(max_wait_s=0.0),
        )
        replica = fleet.pools[0].replicas[0]
        assert replica.predicted_wait_s(0.0) == 0.0
        replica.busy_until = 2.0
        replica.queue.append(0.0)
        expected = 1.0 + replica.unit_s
        assert replica.predicted_wait_s(1.0) == pytest.approx(expected)
        assert replica.predicted_latency_s(1.0) == pytest.approx(
            expected + replica.svc1_s
        )

    def test_utilization_bounded(self):
        fleet = Fleet(
            DeviceMix.parse("jetson-agx-xavier"), [("lenet", 1)],
            policy=BatchPolicy(max_wait_s=0.0),
        )
        replica = fleet.pools[0].replicas[0]
        replica.busy_s = 50.0
        assert replica.utilization(10.0) == 1.0
        replica.busy_s = 5.0
        assert replica.utilization(10.0) == pytest.approx(0.5)
        assert replica.utilization(0.0) == 0.0
