"""Autoscaler thresholds, cooldown, bounds, and provenance trail."""

import pytest

from repro.cluster import Autoscaler, AutoscalerPolicy, DeviceMix, Fleet
from repro.errors import ReproError
from repro.obs import NOOP_OBS, Observability
from repro.serving.batcher import BatchPolicy


def make_fleet(replicas=2):
    return Fleet(
        DeviceMix.parse("jetson-agx-xavier"),
        [("lenet", replicas)],
        policy=BatchPolicy(max_wait_s=0.0),
    )


def make_scaler(fleet, obs=NOOP_OBS, **policy_kw):
    policy_kw.setdefault("interval_s", 1.0)
    policy_kw.setdefault("cooldown_s", 0.0)
    return Autoscaler(fleet, AutoscalerPolicy(**policy_kw), obs)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0.0},
        {"low_depth": 5.0, "high_depth": 4.0},
        {"low_miss_rate": 0.2, "high_miss_rate": 0.1},
        {"min_replicas": 0},
        {"min_replicas": 5, "max_replicas": 4},
        {"step": 0},
    ])
    def test_rejects_inverted_or_degenerate(self, kwargs):
        with pytest.raises(ReproError):
            AutoscalerPolicy(**kwargs)


class TestScaleUp:
    def test_on_high_queue_depth(self):
        fleet = make_fleet()
        scaler = make_scaler(fleet, high_depth=4.0)
        pool = fleet.pools[0]
        for _ in range(3):
            scaler.observe_admit(pool, depth=10)
        added = scaler.tick(1.0)
        assert len(added) == 1
        assert added[0].created_s == 1.0
        assert pool.scale_ups == 1
        assert fleet.replica_count() == 3

    def test_on_high_miss_rate(self):
        fleet = make_fleet()
        scaler = make_scaler(fleet, high_miss_rate=0.05)
        pool = fleet.pools[0]
        for _ in range(10):
            scaler.observe_admit(pool, depth=0)
        scaler.observe_miss(pool)   # 10% >= 5%
        assert len(scaler.tick(1.0)) == 1

    def test_respects_max_replicas(self):
        fleet = make_fleet(replicas=2)
        scaler = make_scaler(fleet, high_depth=1.0, max_replicas=2)
        pool = fleet.pools[0]
        scaler.observe_admit(pool, depth=10)
        assert scaler.tick(1.0) == []

    def test_step_adds_multiple(self):
        fleet = make_fleet()
        scaler = make_scaler(fleet, high_depth=1.0, step=3)
        scaler.observe_admit(fleet.pools[0], depth=10)
        assert len(scaler.tick(1.0)) == 3


class TestScaleDown:
    def test_drains_newest_replica_when_quiet(self):
        fleet = make_fleet(replicas=3)
        scaler = make_scaler(fleet, low_depth=0.5, low_miss_rate=0.01)
        added = scaler.tick(1.0)      # quiet window: scales down
        assert added == []
        pool = fleet.pools[0]
        assert pool.scale_downs == 1
        draining = [r for r in pool.replicas if r.draining]
        assert [r.name for r in draining] == ["lenet#2"]
        # Draining replicas are not routable but still active.
        assert not draining[0].routable
        assert draining[0].active

    def test_respects_min_replicas(self):
        fleet = make_fleet(replicas=1)
        scaler = make_scaler(fleet, min_replicas=1)
        scaler.tick(1.0)
        assert fleet.pools[0].scale_downs == 0


class TestCooldown:
    def test_blocks_consecutive_changes(self):
        fleet = make_fleet()
        scaler = make_scaler(fleet, high_depth=1.0, cooldown_s=5.0)
        pool = fleet.pools[0]
        scaler.observe_admit(pool, depth=10)
        assert len(scaler.tick(1.0)) == 1
        scaler.observe_admit(pool, depth=10)
        assert scaler.tick(2.0) == []        # still cooling down
        scaler.observe_admit(pool, depth=10)
        assert len(scaler.tick(6.5)) == 1    # cooldown elapsed


class TestWindowing:
    def test_signals_reset_each_tick(self):
        fleet = make_fleet()
        scaler = make_scaler(fleet, high_depth=4.0)
        pool = fleet.pools[0]
        scaler.observe_admit(pool, depth=10)
        scaler.tick(1.0)
        # New window is empty: no further scaling without new signals.
        assert scaler.tick(2.0) == []
        assert fleet.replica_count() == 3


class TestProvenance:
    def test_decisions_recorded(self):
        obs = Observability.on()
        fleet = make_fleet()
        scaler = make_scaler(fleet, high_depth=1.0, obs=obs)
        scaler.observe_admit(fleet.pools[0], depth=10)
        scaler.tick(1.0)
        records = obs.provenance.scalings(pool="lenet")
        assert len(records) == 1
        record = records[0]
        assert record.action == "scale_up"
        assert record.replica == "lenet#2"
        assert record.t_s == 1.0
        assert record.queue_depth_mean == pytest.approx(10.0)
        assert "depth" in record.reason
        assert obs.provenance.scalings(action="scale_down") == []
