"""Weighted fair-share scheduler invariants."""

import pytest

from repro.errors import ReproError
from repro.serving.scheduler import WeightedFairScheduler


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ReproError):
            WeightedFairScheduler({})

    @pytest.mark.parametrize("weight", [0.0, -1.0])
    def test_rejects_nonpositive_weight(self, weight):
        with pytest.raises(ReproError):
            WeightedFairScheduler({"a": weight})

    def test_unknown_tenant_rejected(self):
        sched = WeightedFairScheduler({"a": 1.0})
        with pytest.raises(ReproError):
            sched.charge("b", 1.0)
        with pytest.raises(ReproError):
            sched.pick(["b"])

    def test_negative_charge_rejected(self):
        sched = WeightedFairScheduler({"a": 1.0})
        with pytest.raises(ReproError):
            sched.charge("a", -0.1)


class TestPick:
    def test_none_when_nothing_ready(self):
        sched = WeightedFairScheduler({"a": 1.0, "b": 1.0})
        assert sched.pick([]) is None

    def test_only_ready_considered(self):
        sched = WeightedFairScheduler({"a": 1.0, "b": 1.0})
        sched.charge("b", 5.0)
        # a is owed more service but only b is ready.
        assert sched.pick(["b"]) == "b"

    def test_tie_breaks_by_registration_order(self):
        sched = WeightedFairScheduler({"x": 1.0, "y": 1.0})
        assert sched.pick(["y", "x"]) == "x"

    def test_least_attained_wins(self):
        sched = WeightedFairScheduler({"a": 1.0, "b": 1.0})
        sched.charge("a", 2.0)
        assert sched.pick(["a", "b"]) == "b"
        sched.charge("b", 3.0)
        assert sched.pick(["a", "b"]) == "a"

    def test_weights_scale_entitlement(self):
        # Equal attained service: the heavier tenant is less "caught up"
        # relative to its share, so it goes next.
        sched = WeightedFairScheduler({"heavy": 2.0, "light": 1.0})
        sched.charge("heavy", 1.0)
        sched.charge("light", 1.0)
        assert sched.pick(["heavy", "light"]) == "heavy"
        # heavy only yields once it has consumed ~2x light's service.
        sched.charge("heavy", 1.1)
        assert sched.pick(["heavy", "light"]) == "light"


class TestLongRunShares:
    def test_backlogged_tenants_converge_to_weights(self):
        # Emulate a saturated device: both tenants always ready, unit
        # batches.  Grant counts must approach the 3:1 weight ratio.
        sched = WeightedFairScheduler({"a": 3.0, "b": 1.0})
        grants = {"a": 0, "b": 0}
        for _ in range(400):
            winner = sched.pick(["a", "b"])
            grants[winner] += 1
            sched.charge(winner, 1.0)
        assert grants["a"] == pytest.approx(300, abs=2)
        assert grants["b"] == pytest.approx(100, abs=2)

    def test_work_conserving_when_one_idle(self):
        sched = WeightedFairScheduler({"a": 1.0, "b": 10.0})
        # b idle: a gets every grant regardless of weights.
        for _ in range(5):
            assert sched.pick(["a"]) == "a"
            sched.charge("a", 1.0)
        assert sched.attained_s("a") == 5.0