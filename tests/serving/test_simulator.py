"""End-to-end serving-simulator behaviour.

Most tests inject a synthetic :class:`ServiceTimeModel` with exact,
hand-checkable batch costs so assertions are about the *serving* logic
(queueing, batching, shedding, fairness), not the engine's cost model.
A few integration tests at the bottom run the real engine on lenet.
"""

import pytest

from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.serving.batcher import BatchPolicy
from repro.serving.report import ServingReport
from repro.serving.simulator import (
    BatchServiceTime,
    ServingConfig,
    ServingSimulator,
    TenantSpec,
    poisson_tenant,
    simulate,
    simulate_poisson,
)
from repro.workloads.arrivals import (
    ClosedLoopArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from repro.errors import ReproError


class FixedServiceModel:
    """Batch of size b costs ``base + incr * (b - 1)`` seconds."""

    def __init__(self, base_s=0.010, incr_s=0.002, cold_factor=3.0):
        self.base_s = base_s
        self.incr_s = incr_s
        self.cold_factor = cold_factor

    def _time(self, batch):
        return self.base_s + self.incr_s * (batch - 1)

    def warm(self, network, batch):
        t = self._time(batch)
        return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                gpu_busy_s=0.9 * t)

    def cold(self, network, batch):
        t = self._time(batch) * self.cold_factor
        return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                gpu_busy_s=0.9 * t)


def run_sim(tenants, policy=None, config=None, model=None):
    cfg = config or ServingConfig(policy=policy or BatchPolicy())
    sim = ServingSimulator(
        JETSON_AGX_XAVIER, tenants, cfg,
        service_model=model or FixedServiceModel(),
    )
    return sim.run()


def uniform_tenant(rate, duration, **kwargs):
    return TenantSpec(network="lenet",
                      arrival=UniformArrivals(rate, duration), **kwargs)


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ReproError):
            ServingSimulator(JETSON_AGX_XAVIER, [], ServingConfig())

    def test_duplicate_tenant_names(self):
        tenants = [uniform_tenant(10, 1.0), uniform_tenant(10, 1.0)]
        with pytest.raises(ReproError):
            ServingSimulator(JETSON_AGX_XAVIER, tenants, ServingConfig())


class TestConservation:
    @pytest.mark.parametrize("rate", [5, 50, 500])
    def test_served_plus_shed_is_offered(self, rate):
        report = run_sim(
            [uniform_tenant(rate, 2.0)],
            policy=BatchPolicy(max_batch_size=4, max_queue_depth=8),
        )
        assert report.served + report.shed == report.offered
        assert report.offered == len(UniformArrivals(rate, 2.0)
                                     .initial_arrivals())

    def test_everything_drains_under_light_load(self):
        report = run_sim([uniform_tenant(10, 1.0)])
        assert report.shed == 0
        assert report.served == report.offered


class TestLatencyInvariants:
    @pytest.mark.parametrize("rate", [20, 200])
    def test_percentiles_ordered(self, rate):
        report = run_sim([uniform_tenant(rate, 2.0)])
        lat = report.latency
        assert lat.p50_s <= lat.p95_s <= lat.p99_s <= lat.max_s
        # Latency can never be below one batch-1 service time.
        assert lat.p50_s >= FixedServiceModel().base_s - 1e-12

    def test_max_wait_bounds_idle_queueing(self):
        # One lone request: dispatched exactly when its wait budget
        # expires, so latency = max_wait + service.
        policy = BatchPolicy(max_batch_size=8, max_wait_s=0.005)
        tenant = TenantSpec(network="lenet",
                            arrival=UniformArrivals(1.0, 0.5))
        report = run_sim([tenant], policy=policy)
        assert report.served == 1
        assert report.latency.max_s == pytest.approx(0.005 + 0.010)

    def test_zero_wait_single_request_immediate(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_s=0.0)
        report = run_sim([uniform_tenant(1.0, 0.5)], policy=policy)
        assert report.latency.max_s == pytest.approx(0.010)


class TestBatching:
    def test_batches_form_under_backlog(self):
        report = run_sim(
            [uniform_tenant(1000, 0.5)],
            policy=BatchPolicy(max_batch_size=8, max_queue_depth=1000),
        )
        assert report.mean_batch_size > 4
        assert max(report.batch_histogram) == 8

    def test_batch_one_never_batches(self):
        report = run_sim(
            [uniform_tenant(1000, 0.2)],
            policy=BatchPolicy(max_batch_size=1, max_queue_depth=1000),
        )
        assert set(report.batch_histogram) == {1}

    def test_batching_raises_peak_throughput(self):
        # Sub-linear batch cost => batching must beat per-request
        # dispatch under overload.
        batched = run_sim(
            [uniform_tenant(2000, 0.5)],
            policy=BatchPolicy(max_batch_size=8, max_queue_depth=64),
        )
        single = run_sim(
            [uniform_tenant(2000, 0.5)],
            policy=BatchPolicy(max_batch_size=1, max_queue_depth=64),
        )
        assert batched.throughput_rps > single.throughput_rps


class TestAdmissionControl:
    def test_overload_sheds(self):
        report = run_sim(
            [uniform_tenant(2000, 0.5)],
            policy=BatchPolicy(max_batch_size=1, max_queue_depth=4),
        )
        assert report.shed > 0
        assert 0.0 < report.shed_rate < 1.0
        assert report.queue_depth_max <= 4

    def test_bounded_queue_bounds_latency(self):
        # With depth D and batch=1, a request waits at most D services.
        policy = BatchPolicy(max_batch_size=1, max_queue_depth=4)
        report = run_sim([uniform_tenant(2000, 0.5)], policy=policy)
        assert report.latency.max_s <= (4 + 1) * 0.010 + 1e-9


class TestFairness:
    def test_weights_shape_service_shares(self):
        # Two identical overloaded tenants, weights 3:1 — the heavy one
        # must serve roughly 3x the requests.
        policy = BatchPolicy(max_batch_size=1, max_queue_depth=16)
        tenants = [
            uniform_tenant(500, 1.0, weight=3.0, name="heavy"),
            uniform_tenant(500, 1.0, weight=1.0, name="light"),
        ]
        report = run_sim(tenants, policy=policy)
        heavy = report.tenant("heavy")
        light = report.tenant("light")
        assert heavy.served > 2.0 * light.served
        assert heavy.latency.p99_s < light.latency.p99_s

    def test_idle_tenant_share_redistributes(self):
        # The second tenant offers nothing after t=0.1; the first must
        # then get the whole device (work conservation).
        tenants = [
            uniform_tenant(500, 1.0, name="busy"),
            uniform_tenant(10, 0.1, weight=5.0, name="brief"),
        ]
        report = run_sim(
            tenants, policy=BatchPolicy(max_batch_size=1,
                                        max_queue_depth=2000),
        )
        assert report.tenant("busy").served == 500


class TestDeterminism:
    def test_same_seed_identical_report(self):
        def one():
            tenants = [TenantSpec(
                network="lenet",
                arrival=PoissonArrivals(300, 2.0, seed=42),
            )]
            return run_sim(
                tenants,
                policy=BatchPolicy(max_batch_size=4, max_queue_depth=16),
            )

        a, b = one(), one()
        assert a.to_dict() == b.to_dict()
        assert [t.batch_histogram for t in a.tenants] == \
               [t.batch_histogram for t in b.tenants]

    def test_different_seed_differs(self):
        def one(seed):
            tenants = [TenantSpec(
                network="lenet",
                arrival=PoissonArrivals(300, 2.0, seed=seed),
            )]
            return run_sim(tenants)

        assert one(1).to_dict() != one(2).to_dict()


class TestColdStart:
    def test_cold_first_batch_slows_only_once(self):
        tenant = [uniform_tenant(1.0, 3.0)]  # 3 well-separated requests
        policy = BatchPolicy(max_batch_size=1)
        warm = run_sim(tenant, config=ServingConfig(policy=policy))
        cold = run_sim(
            tenant,
            config=ServingConfig(policy=policy, cold_start=True),
        )
        # First request pays 3x service; the rest are warm.
        assert cold.latency.max_s == pytest.approx(0.030)
        assert warm.latency.max_s == pytest.approx(0.010)
        assert cold.latency.p50_s == pytest.approx(0.010)


class TestClosedLoop:
    def test_population_limits_backlog(self):
        tenant = TenantSpec(
            network="lenet",
            arrival=ClosedLoopArrivals(clients=4, think_s=0.01,
                                       duration_s=2.0),
        )
        report = run_sim([tenant])
        assert report.shed == 0
        assert report.queue_depth_max <= 4
        assert report.served == report.offered
        assert report.served > 50


class TestQueueDepthAccounting:
    def test_depth_metrics_present(self):
        report = run_sim(
            [uniform_tenant(2000, 0.3)],
            policy=BatchPolicy(max_batch_size=8, max_queue_depth=32),
        )
        assert report.queue_depth_max >= 1
        assert 0.0 < report.queue_depth_mean <= report.queue_depth_max


class TestRealEngineIntegration:
    """Slower tests through the real tuner + warm executor (lenet)."""

    def test_simulate_poisson_end_to_end(self):
        report = simulate_poisson("lenet", rate_rps=100, duration_s=1.0,
                                  seed=3)
        assert isinstance(report, ServingReport)
        assert report.served + report.shed == report.offered
        assert report.served > 0
        assert report.latency.p50_s <= report.latency.p99_s
        assert report.device == "jetson-agx-xavier"
        assert 0.0 < report.gpu_utilization <= 1.0

    def test_real_engine_deterministic(self):
        a = simulate_poisson("lenet", rate_rps=200, duration_s=1.0, seed=9)
        b = simulate_poisson("lenet", rate_rps=200, duration_s=1.0, seed=9)
        assert a.to_dict() == b.to_dict()

    def test_multi_tenant_real_engine(self):
        tenants = [
            poisson_tenant("lenet", 100, 1.0, seed=1, weight=2.0,
                           name="cam-a"),
            poisson_tenant("fcnn", 100, 1.0, seed=2, weight=1.0,
                           name="cam-b"),
        ]
        report = simulate(tenants)
        assert {t.name for t in report.tenants} == {"cam-a", "cam-b"}
        assert report.served + report.shed == report.offered