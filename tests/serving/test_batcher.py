"""Dynamic-batcher policy edge cases and admission control."""

import pytest

from repro.errors import ReproError
from repro.serving.batcher import BatchPolicy, TenantQueue
from repro.serving.request import Request, RequestStatus


def req(i, t=0.0):
    return Request(request_id=i, tenant="m", arrival_s=t)


class TestBatchPolicy:
    def test_defaults_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch_size >= 1
        assert policy.max_wait_s >= 0
        assert policy.max_queue_depth >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_batch_size": 0},
        {"max_batch_size": -3},
        {"max_wait_s": -0.001},
        {"max_queue_depth": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            BatchPolicy(**kwargs)


class TestEmptyQueue:
    def test_not_ready(self):
        q = TenantQueue("m")
        assert not q.ready(now=100.0)

    def test_no_deadline(self):
        q = TenantQueue("m")
        assert q.wait_deadline_s() is None
        assert q.oldest_arrival_s is None

    def test_take_batch_raises(self):
        q = TenantQueue("m")
        with pytest.raises(ReproError):
            q.take_batch(now=0.0)


class TestMaxWaitExpiry:
    def test_not_ready_before_deadline(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=4, max_wait_s=0.01))
        q.offer(req(0, t=1.0))
        assert not q.ready(now=1.0)
        assert not q.ready(now=1.0099)

    def test_ready_exactly_at_deadline(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=4, max_wait_s=0.01))
        q.offer(req(0, t=1.0))
        assert q.wait_deadline_s() == pytest.approx(1.01)
        assert q.ready(now=1.01)

    def test_deadline_follows_oldest(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=4, max_wait_s=0.01))
        q.offer(req(0, t=1.0))
        q.offer(req(1, t=1.005))
        # The *oldest* request's budget governs.
        assert q.wait_deadline_s() == pytest.approx(1.01)

    def test_zero_wait_dispatches_immediately(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=4, max_wait_s=0.0))
        q.offer(req(0, t=2.0))
        assert q.ready(now=2.0)


class TestBatchFormation:
    def test_full_batch_ready_regardless_of_wait(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=2, max_wait_s=10.0))
        q.offer(req(0))
        assert not q.ready(now=0.0)
        q.offer(req(1))
        assert q.ready(now=0.0)

    def test_batch_one_degenerate(self):
        # max_batch_size=1 is per-request dispatch: ready the instant
        # anything is queued, batches always size 1.
        q = TenantQueue("m", BatchPolicy(max_batch_size=1, max_wait_s=5.0))
        q.offer(req(0, t=3.0))
        assert q.ready(now=3.0)
        batch = q.take_batch(now=3.0)
        assert [r.request_id for r in batch] == [0]
        assert batch[0].batch_size == 1

    def test_take_batch_caps_at_max_and_preserves_fifo(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=3))
        for i in range(5):
            q.offer(req(i, t=0.1 * i))
        batch = q.take_batch(now=1.0)
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert len(q) == 2
        for r in batch:
            assert r.status is RequestStatus.RUNNING
            assert r.dispatch_s == 1.0
            assert r.batch_size == 3

    def test_partial_batch_size_stamped(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=8))
        q.offer(req(0))
        q.offer(req(1))
        batch = q.take_batch(now=0.5)
        assert [r.batch_size for r in batch] == [2, 2]


class TestAdmissionControl:
    def test_sheds_past_queue_depth(self):
        q = TenantQueue("m", BatchPolicy(max_queue_depth=2))
        assert q.offer(req(0))
        assert q.offer(req(1))
        rejected = req(2)
        assert not q.offer(rejected)
        assert rejected.status is RequestStatus.SHED
        assert q.offered == 3
        assert q.shed == 1
        assert len(q) == 2

    def test_depth_frees_after_dispatch(self):
        q = TenantQueue("m", BatchPolicy(max_batch_size=2, max_queue_depth=2))
        q.offer(req(0))
        q.offer(req(1))
        q.take_batch(now=0.0)
        assert q.offer(req(2))
        assert q.shed == 0

    def test_counters_conserve(self):
        q = TenantQueue("m", BatchPolicy(max_queue_depth=3))
        admitted = sum(q.offer(req(i)) for i in range(10))
        assert q.offered == 10
        assert admitted + q.shed == q.offered