"""Fault scenarios through the serving loop: resilience on vs off.

A synthetic fault-capable service model keeps the assertions about the
*serving-layer* fault driver (variant selection, retries, fail-fast,
degradation) rather than the engine's cost model: degraded variants are
1.5x slower, a stale plan on the throttled device is 2x slower, and a
re-tuned plan recovers most of that (1.2x).
"""

import pytest

from repro.faults import (
    BAD_PAYLOADS,
    FLAKY_KERNELS,
    MEMORY_PRESSURE,
    THERMAL_SOAK,
    FaultScenario,
)
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import (
    BatchServiceTime,
    ServingConfig,
    ServingSimulator,
    TenantSpec,
)
from repro.workloads.arrivals import UniformArrivals


class FaultableServiceModel:
    """Synthetic model implementing the fault-aware service() contract."""

    def __init__(self, base_s=0.010, incr_s=0.002):
        self.base_s = base_s
        self.incr_s = incr_s

    def service(self, network, batch, *, kind="normal", factors=None,
                retuned=False):
        t = self.base_s + self.incr_s * (batch - 1)
        if kind != "normal":
            t *= 1.5
        if factors is not None:
            t *= 1.2 if retuned else 2.0
        return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                gpu_busy_s=0.9 * t)

    def warm(self, network, batch):
        return self.service(network, batch)

    def cold(self, network, batch):
        svc = self.service(network, batch)
        return BatchServiceTime(
            total_s=svc.total_s * 3,
            cpu_busy_s=svc.cpu_busy_s * 3,
            gpu_busy_s=svc.gpu_busy_s * 3,
        )

    def plan_key(self, network, batch, kind="normal"):
        return (network, batch, kind)


def run_faulted(scenario, *, resilience, rate=40, duration=10.0,
                policy=None, seed=0):
    cfg = ServingConfig(
        policy=policy or BatchPolicy(max_batch_size=1, max_wait_s=0.0),
        seed=seed,
        faults=scenario,
        resilience=resilience,
    )
    tenant = TenantSpec(
        network="lenet", arrival=UniformArrivals(rate, duration)
    )
    sim = ServingSimulator(
        JETSON_AGX_XAVIER, [tenant], cfg,
        service_model=FaultableServiceModel(),
    )
    report = sim.run()
    return sim, report


class TestFlakyKernels:
    def test_naive_service_loses_batches(self):
        _, report = run_faulted(FLAKY_KERNELS, resilience=False)
        assert report.failed > 0
        # The device time was consumed anyway: failures are not free.
        assert report.served + report.failed + report.shed == report.offered

    def test_resilient_service_retries_through(self):
        sim, report = run_faulted(FLAKY_KERNELS, resilience=True)
        assert report.failed == 0
        assert report.extra["retries"] > 0
        assert report.served == report.offered - report.shed

    def test_resilience_beats_naive_on_goodput(self):
        _, naive = run_faulted(FLAKY_KERNELS, resilience=False)
        _, resilient = run_faulted(FLAKY_KERNELS, resilience=True)
        assert resilient.goodput_rps > naive.goodput_rps


class TestMemoryPressure:
    def test_naive_allocation_failure_is_fail_fast(self):
        _, report = run_faulted(MEMORY_PRESSURE, resilience=False)
        assert report.failed > 0
        # Fail-fast batches consume no device time, so utilization is
        # below a clean run's.
        assert report.served + report.failed + report.shed == report.offered

    def test_resilient_service_demotes_zero_copy(self):
        sim, report = run_faulted(MEMORY_PRESSURE, resilience=True)
        assert report.failed == 0
        actions = [r.action for r in sim.degradation.records]
        assert "demote_zero_copy" in actions
        assert report.extra["degradations"] >= 1

    def test_resilience_beats_naive_on_goodput(self):
        _, naive = run_faulted(MEMORY_PRESSURE, resilience=False)
        _, resilient = run_faulted(MEMORY_PRESSURE, resilience=True)
        assert resilient.goodput_rps > naive.goodput_rps


class TestBadPayloads:
    BATCHING = BatchPolicy(max_batch_size=4, max_wait_s=0.05)

    def test_naive_service_poisons_whole_batches(self):
        _, report = run_faulted(
            BAD_PAYLOADS, resilience=False, policy=self.BATCHING
        )
        # One corrupt request takes its batchmates down with it.
        assert report.failed > 0
        assert report.rejected == 0

    def test_resilient_service_rejects_at_the_door(self):
        _, report = run_faulted(
            BAD_PAYLOADS, resilience=True, policy=self.BATCHING
        )
        assert report.rejected > 0
        assert report.failed == 0
        assert report.served + report.shed + report.rejected \
            == report.offered

    def test_resilience_beats_naive_on_goodput(self):
        _, naive = run_faulted(
            BAD_PAYLOADS, resilience=False, policy=self.BATCHING
        )
        _, resilient = run_faulted(
            BAD_PAYLOADS, resilience=True, policy=self.BATCHING
        )
        assert resilient.goodput_rps > naive.goodput_rps


class TestThermalThrottle:
    def test_drift_triggers_retune(self):
        sim, report = run_faulted(THERMAL_SOAK, resilience=True)
        actions = [r.action for r in sim.degradation.records]
        assert "retune_throttled" in actions
        # The window ends before the run does, so the nominal plan is
        # reinstated afterwards.
        assert "restore_nominal" in actions

    def test_retuned_plan_beats_stale_plan(self):
        _, naive = run_faulted(THERMAL_SOAK, resilience=False)
        _, resilient = run_faulted(THERMAL_SOAK, resilience=True)
        assert resilient.latency.mean_s < naive.latency.mean_s

    def test_window_edges_recorded(self):
        sim, _ = run_faulted(THERMAL_SOAK, resilience=True)
        kinds = [e["kind"] for e in sim.injector.events]
        assert "thermal_enter" in kinds
        assert "thermal_exit" in kinds


class TestDeterminism:
    @pytest.mark.parametrize("scenario", [
        FLAKY_KERNELS, MEMORY_PRESSURE, BAD_PAYLOADS, THERMAL_SOAK,
    ], ids=lambda s: s.name)
    def test_same_seed_same_digests(self, scenario):
        sim_a, rep_a = run_faulted(scenario, resilience=True, seed=11)
        sim_b, rep_b = run_faulted(scenario, resilience=True, seed=11)
        assert sim_a.injector.timeline_digest() \
            == sim_b.injector.timeline_digest()
        assert rep_a.digest() == rep_b.digest()

    def test_different_seed_changes_probabilistic_faults(self):
        sim_a, _ = run_faulted(FLAKY_KERNELS, resilience=True, seed=1)
        sim_b, _ = run_faulted(FLAKY_KERNELS, resilience=True, seed=2)
        assert sim_a.injector.timeline_digest() \
            != sim_b.injector.timeline_digest()


class TestQuietScenario:
    def test_quiet_faults_change_nothing_observable(self):
        quiet = FaultScenario(name="quiet")
        _, faulted = run_faulted(quiet, resilience=True)
        assert faulted.failed == 0
        assert faulted.rejected == 0
        assert faulted.extra["fault_events"] == 0.0
        assert faulted.extra["retries"] == 0.0
