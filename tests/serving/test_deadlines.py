"""Deadlines, timeout abandonment, and the goodput/throughput split."""

import pytest

from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.serving.batcher import BatchPolicy, TenantQueue, _EPS
from repro.serving.request import Request, RequestStatus
from repro.serving.simulator import (
    BatchServiceTime,
    ServingConfig,
    ServingSimulator,
    TenantSpec,
)
from repro.workloads.arrivals import UniformArrivals


class FixedServiceModel:
    """Batch of size b costs ``base + incr * (b - 1)`` seconds."""

    def __init__(self, base_s=0.010, incr_s=0.002, cold_factor=3.0):
        self.base_s = base_s
        self.incr_s = incr_s
        self.cold_factor = cold_factor

    def _time(self, batch):
        return self.base_s + self.incr_s * (batch - 1)

    def warm(self, network, batch):
        t = self._time(batch)
        return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                gpu_busy_s=0.9 * t)

    def cold(self, network, batch):
        t = self._time(batch) * self.cold_factor
        return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                gpu_busy_s=0.9 * t)


def run_sim(tenants, policy=None, config=None, model=None):
    cfg = config or ServingConfig(policy=policy or BatchPolicy())
    sim = ServingSimulator(
        JETSON_AGX_XAVIER, tenants, cfg,
        service_model=model or FixedServiceModel(),
    )
    return sim.run()


def uniform_tenant(rate, duration, **kwargs):
    return TenantSpec(network="lenet",
                      arrival=UniformArrivals(rate, duration), **kwargs)


class TestQueueDeadlines:
    def test_offer_stamps_absolute_deadline(self):
        queue = TenantQueue("t", BatchPolicy(deadline_s=0.5))
        request = Request(request_id=0, tenant="t", arrival_s=1.25)
        assert queue.offer(request)
        assert request.deadline_s == pytest.approx(1.75)

    def test_preset_deadline_wins(self):
        queue = TenantQueue("t", BatchPolicy(deadline_s=0.5))
        request = Request(
            request_id=0, tenant="t", arrival_s=1.0, deadline_s=1.1
        )
        queue.offer(request)
        assert request.deadline_s == pytest.approx(1.1)

    def test_no_policy_deadline_means_none(self):
        queue = TenantQueue("t", BatchPolicy())
        request = Request(request_id=0, tenant="t", arrival_s=0.0)
        queue.offer(request)
        assert request.deadline_s is None
        assert not request.expired(1e9)

    def test_expire_pops_only_expired_fifo_prefix(self):
        queue = TenantQueue("t", BatchPolicy(deadline_s=1.0))
        for i in range(3):
            queue.offer(
                Request(request_id=i, tenant="t", arrival_s=float(i))
            )
        expired = queue.expire(1.5)  # only request 0 (deadline 1.0) is past
        assert [r.request_id for r in expired] == [0]
        assert expired[0].status is RequestStatus.TIMED_OUT
        assert expired[0].finish_s == pytest.approx(1.5)
        assert queue.timed_out == 1
        assert len(queue) == 2

    def test_expiry_boundary_uses_eps(self):
        queue = TenantQueue("t", BatchPolicy(deadline_s=1.0))
        queue.offer(Request(request_id=0, tenant="t", arrival_s=0.0))
        # At exactly the deadline the request is still viable.
        assert queue.expire(1.0) == []
        assert queue.expire(1.0 + _EPS) == []
        assert len(queue.expire(1.0 + 1e-9)) == 1

    def test_policy_validates_deadline(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="deadline_s"):
            BatchPolicy(deadline_s=0.0)


class TestServingDeadlines:
    def test_overload_times_out_instead_of_queueing_forever(self):
        # Capacity is 100 rps (10 ms serial batches of 1); offering
        # 500 rps with a 30 ms budget must abandon most requests.
        report = run_sim(
            [uniform_tenant(500, 0.5)],
            policy=BatchPolicy(
                max_batch_size=1, max_wait_s=0.0,
                max_queue_depth=1024, deadline_s=0.03,
            ),
        )
        assert report.timed_out > 0
        assert report.served + report.shed + report.timed_out \
            + report.failed + report.rejected == report.offered
        # Served requests all met the budget.
        assert report.latency.max_s <= 0.03 + 1e-9
        assert report.goodput_rps < report.throughput_rps or \
            report.late == 0

    def test_late_completion_counts_as_timed_out(self):
        # Service takes 10 ms but the budget is 5 ms: every dispatched
        # request completes late and is counted timed_out + late.
        report = run_sim(
            [uniform_tenant(10, 0.5)],
            policy=BatchPolicy(
                max_batch_size=1, max_wait_s=0.0, deadline_s=0.005,
            ),
        )
        assert report.served == 0
        assert report.timed_out == report.offered
        assert report.late == report.timed_out
        assert report.goodput_rps == 0.0
        assert report.throughput_rps > 0.0

    def test_abandoned_latency_tracks_time_in_system(self):
        report = run_sim(
            [uniform_tenant(500, 0.5)],
            policy=BatchPolicy(
                max_batch_size=1, max_wait_s=0.0,
                max_queue_depth=1024, deadline_s=0.03,
            ),
        )
        assert report.abandoned_latency.count == report.timed_out
        # Abandonment happens at/after the deadline.
        assert report.abandoned_latency.mean_s >= 0.03 - 1e-9

    def test_no_deadline_preserves_seed_behaviour(self):
        report = run_sim(
            [uniform_tenant(50, 1.0)],
            policy=BatchPolicy(max_batch_size=4),
        )
        assert report.timed_out == 0
        assert report.late == 0
        assert report.rejected == 0
        assert report.failed == 0
        assert report.served + report.shed == report.offered
        assert report.goodput_rps == pytest.approx(report.throughput_rps)

    def test_goodput_excludes_late_responses(self):
        report = run_sim(
            [uniform_tenant(500, 0.5)],
            policy=BatchPolicy(
                max_batch_size=1, max_wait_s=0.0,
                max_queue_depth=1024, deadline_s=0.03,
            ),
        )
        assert report.goodput_rps == pytest.approx(
            report.served / report.makespan_s
        )
        assert report.throughput_rps == pytest.approx(
            (report.served + report.late) / report.makespan_s
        )

    def test_per_tenant_timeout_accounting(self):
        report = run_sim(
            [
                uniform_tenant(300, 0.5, name="tight",
                               policy=BatchPolicy(
                                   max_batch_size=1, max_wait_s=0.0,
                                   max_queue_depth=1024, deadline_s=0.02,
                               )),
                uniform_tenant(5, 0.5, name="loose",
                               policy=BatchPolicy(
                                   max_batch_size=1, max_wait_s=0.0,
                               )),
            ],
            policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0),
        )
        by_name = {t.name: t for t in report.tenants}
        assert by_name["tight"].timed_out > 0
        assert by_name["loose"].timed_out == 0
        assert report.timed_out == by_name["tight"].timed_out

    def test_report_digest_is_deterministic(self):
        policy = BatchPolicy(
            max_batch_size=2, max_wait_s=0.001, deadline_s=0.05
        )
        a = run_sim([uniform_tenant(200, 0.5)], policy=policy)
        b = run_sim([uniform_tenant(200, 0.5)], policy=policy)
        assert a.digest() == b.digest()
