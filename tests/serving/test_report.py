"""ServingReport metrics: percentiles, conservation, histograms."""

import pytest

from repro.errors import ReproError
from repro.serving.report import (
    LatencyStats,
    ServingReport,
    TenantServingStats,
    merge_histograms,
    percentile,
)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)

    @pytest.mark.parametrize("q", [-0.1, 1.1])
    def test_rank_out_of_range(self, q):
        with pytest.raises(ReproError):
            percentile([1.0], q)

    def test_single_value(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.00) == 100

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_monotone_in_rank(self):
        values = [0.3, 12.0, 1.5, 0.7, 4.4, 2.2]
        qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0]
        ps = [percentile(values, q) for q in qs]
        assert ps == sorted(ps)


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.from_latencies([])
        assert stats.count == 0
        assert stats.p99_s == 0.0

    def test_ordering_invariant(self):
        stats = LatencyStats.from_latencies([0.1, 0.5, 0.2, 0.9, 0.3])
        assert stats.p50_s <= stats.p95_s <= stats.p99_s <= stats.max_s
        assert stats.count == 5
        assert stats.mean_s == pytest.approx(0.4)


def _tenant(name="m", offered=10, served=8, shed=2, hist=None):
    return TenantServingStats(
        name=name, network="lenet", weight=1.0,
        offered=offered, served=served, shed=shed,
        latency=LatencyStats.from_latencies([0.01] * served),
        batch_histogram=hist if hist is not None else {1: served},
    )


def _report(offered=10, served=8, shed=2, **kwargs):
    defaults = dict(
        device="jetson-agx-xavier",
        duration_s=1.0,
        makespan_s=1.2,
        offered=offered,
        served=served,
        shed=shed,
        latency=LatencyStats.from_latencies([0.01] * served),
        batch_histogram={1: served},
        queue_depth_mean=0.5,
        queue_depth_max=3,
        cpu_utilization=0.2,
        gpu_utilization=0.6,
        tenants=(_tenant(offered=offered, served=served, shed=shed),),
    )
    defaults.update(kwargs)
    return ServingReport(**defaults)


class TestServingReport:
    def test_conservation_enforced(self):
        with pytest.raises(ReproError):
            _report(offered=10, served=5, shed=2)

    def test_rates(self):
        report = _report()
        assert report.shed_rate == pytest.approx(0.2)
        assert report.throughput_rps == pytest.approx(8 / 1.2)

    def test_mean_batch_size(self):
        report = _report(batch_histogram={1: 2, 4: 3})
        assert report.mean_batch_size == pytest.approx((2 + 12) / 5)

    def test_tenant_lookup(self):
        report = _report()
        assert report.tenant("m").network == "lenet"
        with pytest.raises(ReproError):
            report.tenant("nope")

    def test_to_dict_keys(self):
        d = _report().to_dict()
        for key in ("p50_ms", "p95_ms", "p99_ms", "throughput_rps",
                    "shed_rate", "batch_histogram", "queue_depth_mean"):
            assert key in d

    def test_describe_mentions_everything(self):
        text = _report().describe()
        for token in ("p50", "p99", "shed", "throughput", "histogram",
                      "gpu util"):
            assert token in text

    def test_tenant_shed_rate_empty(self):
        t = _tenant(offered=0, served=0, shed=0, hist={})
        assert t.shed_rate == 0.0
        assert t.mean_batch_size == 0.0


def test_merge_histograms():
    merged = merge_histograms([{1: 2, 4: 1}, {4: 3, 8: 5}, {}])
    assert merged == {1: 2, 4: 4, 8: 5}