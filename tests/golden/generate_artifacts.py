"""Regenerate the golden plan artifacts and fault scenarios.

These files are the known-good inputs for ``repro check-plan`` tests:
the CLI must exit 0 on them and 2 on hand-corrupted copies.  Regenerate
after any intentional change to the artifact schema::

    PYTHONPATH=src python tests/golden/generate_artifacts.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.compile import compile_plan                      # noqa: E402
from repro.faults import SCENARIO_CATALOG                   # noqa: E402
from repro.hardware.specs import JETSON_AGX_XAVIER          # noqa: E402

HERE = pathlib.Path(__file__).parent
ARTIFACTS = HERE / "artifacts"
SCENARIOS = HERE / "scenarios"

MODELS = ("lenet", "alexnet")
SCENARIO = "edge-storm"


def main() -> None:
    ARTIFACTS.mkdir(exist_ok=True)
    SCENARIOS.mkdir(exist_ok=True)
    for model in MODELS:
        compiled = compile_plan(model, JETSON_AGX_XAVIER)
        out = ARTIFACTS / f"{model}.plan.json"
        compiled.artifact.save(out)
        print(f"wrote {out}")
    scenario_out = SCENARIOS / f"{SCENARIO.replace('-', '_')}.json"
    SCENARIO_CATALOG[SCENARIO].save(scenario_out)
    print(f"wrote {scenario_out}")


if __name__ == "__main__":
    main()
