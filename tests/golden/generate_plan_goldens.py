"""Regenerate the plan-parity golden file from the *pre-refactor* paths.

Run once at the seed commit (before the staged compilation pipeline
landed) to freeze the behaviour the refactor must preserve::

    PYTHONPATH=src python tests/golden/generate_plan_goldens.py

The file it writes — ``tests/golden/plan_parity.json`` — pins, for every
catalog model:

* the full :class:`~repro.core.report.InferenceReport` scalar surface of
  ``EdgeNN(...).run()`` on the Jetson AGX Xavier under all four ablation
  flag combinations (memory management x hybrid execution);
* the same surface for the discrete RTX 2080 Ti host via the gpu-only
  baseline (the only derive-and-execute path a non-integrated device
  has), again under all four flag combinations;
* a digest of the NumPy forward pass on a seeded input, so the numeric
  backend can be checked for drift.

Analytic numbers are pure-Python float arithmetic and round-trip JSON
exactly, so the parity tests compare them with ``==``.  NumPy logits go
through BLAS, whose summation order may differ across builds, so the
goldens keep both an exact digest and a sampled-value summary compared
with a tolerance.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.core.engine import EdgeNN, EdgeNNConfig          # noqa: E402
from repro.core.memory_manager import MemoryPolicy           # noqa: E402
from repro.core.plan_cache import PlanCache                  # noqa: E402
from repro.baselines.gpu_only import run_gpu_only            # noqa: E402
from repro.hardware.specs import (                           # noqa: E402
    JETSON_AGX_XAVIER,
    RTX_2080TI_HOST,
)
from repro.nn.models import MODEL_BUILDERS, build            # noqa: E402

OUT = pathlib.Path(__file__).parent / "plan_parity.json"

FLAG_COMBOS = ((True, True), (True, False), (False, True), (False, False))


def combo_key(model: str, mm: bool, he: bool) -> str:
    return f"{model}|mm={int(mm)}|he={int(he)}"


def report_scalars(report) -> dict:
    return {
        "total_s": report.total_s,
        "copy_s_total": report.copy_s_total,
        "cpu_busy_s": report.cpu_busy_s,
        "gpu_busy_s": report.gpu_busy_s,
        "energy_j": report.energy.energy_j,
        "average_power_w": report.energy.average_power_w,
        "plan_summary": report.plan_summary,
        "n_layers": len(report.layers),
    }


def integrated_goldens() -> dict:
    out = {}
    for model in MODEL_BUILDERS:
        for mm, he in FLAG_COMBOS:
            config = EdgeNNConfig(
                use_memory_management=mm, use_hybrid_execution=he
            )
            engine = EdgeNN(
                model, JETSON_AGX_XAVIER, config, plan_cache=PlanCache()
            )
            out[combo_key(model, mm, he)] = report_scalars(engine.run())
    return out


def discrete_goldens() -> dict:
    out = {}
    for model in MODEL_BUILDERS:
        for mm, he in FLAG_COMBOS:
            policy = MemoryPolicy.SEMANTIC if mm else MemoryPolicy.ALL_REGULAR
            report = run_gpu_only(model, RTX_2080TI_HOST, policy=policy)
            out[combo_key(model, mm, he)] = report_scalars(report)
    return out


def logits_goldens() -> dict:
    out = {}
    for model in MODEL_BUILDERS:
        graph = build(model)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(graph.input_shape).astype(np.float32)
        logits = graph.forward(x)
        flat = logits.astype(np.float32).ravel()
        out[model] = {
            "shape": list(logits.shape),
            "sha256": hashlib.sha256(
                flat.tobytes() + str(logits.shape).encode()
            ).hexdigest(),
            "sample": [float(v) for v in flat[:8]],
            "sum": float(flat.sum()),
        }
    return out


def main() -> None:
    goldens = {
        "note": (
            "Frozen pre-refactor behaviour (seed commit). Regenerate only "
            "if the cost model itself changes intentionally."
        ),
        "integrated_device": JETSON_AGX_XAVIER.name,
        "discrete_device": RTX_2080TI_HOST.name,
        "integrated": integrated_goldens(),
        "discrete": discrete_goldens(),
        "logits": logits_goldens(),
    }
    OUT.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT} "
          f"({len(goldens['integrated'])} integrated, "
          f"{len(goldens['discrete'])} discrete, "
          f"{len(goldens['logits'])} logits entries)")


if __name__ == "__main__":
    main()
