"""Regenerate tests/golden/engine_parity.json.

Run from the repo root::

    PYTHONPATH=src:tests python tests/golden/generate_engine_goldens.py

The file pins the vectorized event engine to the pre-refactor
per-request loops: every scenario's ServingReport / ClusterReport
digest — and TimelineArtifact digest where recorded — must stay
bit-identical.  Only regenerate when a scenario is *intentionally*
added or its workload changed, never to paper over a digest drift.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from sim.engine_scenarios import SCENARIOS  # noqa: E402

OUT = pathlib.Path(__file__).resolve().parent / "engine_parity.json"


def main() -> None:
    goldens = {}
    for name, fn in SCENARIOS.items():
        report_digest, timeline_digest = fn()
        goldens[name] = {
            "report_digest": report_digest,
            "timeline_digest": timeline_digest,
        }
        print(f"{name}: report={report_digest[:12]} "
              f"timeline={(timeline_digest or 'none')[:12]}")
    OUT.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
