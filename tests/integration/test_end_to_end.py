"""End-to-end integration: the full pipeline on the real paper networks."""

import numpy as np
import pytest

from repro import EdgeNN, EdgeNNConfig
from repro.baselines import run_cpu_only, run_gpu_only
from repro.eval import experiments as ex
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.nn.models import benchmark_names, build
from repro.workloads import input_for


@pytest.mark.parametrize("name", benchmark_names())
class TestAllBenchmarks:
    def test_edgenn_not_slower_than_gpu_baseline(self, name):
        edgenn = ex.edgenn_report(name)
        baseline = ex.gpu_only_report(name)
        assert edgenn.total_s <= baseline.total_s * 1.001

    def test_edgenn_not_slower_than_zero_copy_gpu(self, name):
        edgenn = ex.edgenn_report(name)
        managed = ex.gpu_only_report(name, managed=True)
        assert edgenn.total_s <= managed.total_s * 1.001

    def test_report_layer_coverage(self, name):
        report = ex.edgenn_report(name)
        net = build(name)
        assert {lr.name for lr in report.layers} == set(net.topo_order())

    def test_energy_within_jetson_envelope(self, name):
        report = ex.edgenn_report(name)
        power = report.energy.average_power_w
        spec = JETSON_AGX_XAVIER.power
        assert spec.idle_w <= power <= (
            spec.idle_w + spec.cpu_dynamic_w + spec.gpu_dynamic_w
        )


class TestNumericConsistency:
    @pytest.mark.parametrize("name", ["fcnn", "lenet"])
    def test_infer_output_is_probability_vector(self, name):
        engine = EdgeNN(name)
        out = engine.infer(input_for(name))
        assert out.shape[-1] in (10, 1000)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)
        assert (out >= 0).all()

    def test_squeezenet_numeric_forward(self):
        engine = EdgeNN("squeezenet")
        out = engine.infer(input_for("squeezenet"))
        assert out.shape == (1000,)
        assert np.isfinite(out).all()

    def test_resnet_numeric_forward(self):
        engine = EdgeNN("resnet18")
        out = engine.infer(input_for("resnet18"))
        assert out.shape == (1000,)
        assert np.isfinite(out).all()

    @pytest.mark.slow
    def test_alexnet_numeric_forward(self):
        out = EdgeNN("alexnet").infer(input_for("alexnet"))
        assert out.shape == (1000,)
        assert out.sum() == pytest.approx(1.0, rel=1e-3)


class TestCrossConfigConsistency:
    def test_ablation_arms_are_distinct_runs(self):
        full = ex.edgenn_report("lenet")
        no_mem = ex.edgenn_report("lenet", use_memory_management=False)
        no_hybrid = ex.edgenn_report("lenet", use_hybrid_execution=False)
        assert full.plan_summary != no_hybrid.plan_summary or (
            full.total_s != no_hybrid.total_s
        )
        assert no_mem.copy_s_total >= full.copy_s_total

    def test_trace_chrome_export_end_to_end(self, tmp_path):
        import json
        report = ex.edgenn_report("lenet")
        path = tmp_path / "trace.json"
        path.write_text(report.trace.to_chrome_trace())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) > 10

    def test_device_instances_are_isolated(self):
        # Two engines on separate Device instances never share buffers.
        a = EdgeNN("lenet")
        b = EdgeNN("lenet")
        ra, rb = a.run(), b.run()
        assert ra.total_s == pytest.approx(rb.total_s)
