"""CLI error contract: ReproError => exit code 2, one-line message.

And the fault determinism gate: the same seeded serve in two *fresh*
interpreter processes must print identical fault-timeline and report
digests (CI replays exactly this check).
"""

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    ),
}


def repro(*args, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=ENV, timeout=timeout,
    )


SERVE_FAST = (
    "serve", "--network", "lenet", "--arrival-rate", "20",
    "--duration", "1.0", "--max-batch", "2", "--seed", "7",
)


class TestExitCodes:
    def test_unknown_fault_scenario_exits_2(self):
        result = repro(*SERVE_FAST, "--faults", "no-such-scenario")
        assert result.returncode == 2
        lines = [ln for ln in result.stderr.splitlines() if ln]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert "no-such-scenario" in lines[0]
        assert "Traceback" not in result.stderr

    def test_corrupt_plan_artifact_exits_2(self, tmp_path):
        bad = tmp_path / "artifact.json"
        bad.write_text('{"schema": "repro.plan-artifact", "version"')
        result = repro("plan", "show", str(bad))
        assert result.returncode == 2
        lines = [ln for ln in result.stderr.splitlines() if ln]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        assert "Traceback" not in result.stderr

    def test_faults_show_unknown_exits_2(self):
        result = repro("faults", "show", "bogus")
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")

    def test_success_paths_exit_0(self):
        assert repro("faults", "list").returncode == 0
        assert repro("devices").returncode == 0

    def test_faults_list_names_catalog(self):
        result = repro("faults", "list")
        for name in ("thermal-soak", "flaky-kernels", "memory-pressure",
                     "bad-payloads", "edge-storm"):
            assert name in result.stdout


def _digest_lines(stdout):
    return sorted(
        ln.strip() for ln in stdout.splitlines() if "digest" in ln
    )


class TestFaultDeterminismGate:
    def test_same_seed_identical_digests_across_processes(self):
        args = SERVE_FAST + ("--faults", "edge-storm",
                             "--deadline-ms", "500")
        first = repro(*args)
        second = repro(*args)
        assert first.returncode == 0, first.stderr
        assert second.returncode == 0, second.stderr
        digests = _digest_lines(first.stdout)
        assert digests  # the CLI prints fault + report digests
        assert digests == _digest_lines(second.stdout)

    def test_different_seed_changes_the_fault_digest(self):
        base = (
            "serve", "--network", "lenet", "--arrival-rate", "20",
            "--duration", "1.0", "--max-batch", "2",
            "--faults", "flaky-kernels",
        )
        a = repro(*base, "--seed", "1")
        b = repro(*base, "--seed", "2")
        assert a.returncode == 0 and b.returncode == 0
        assert _digest_lines(a.stdout) != _digest_lines(b.stdout)
