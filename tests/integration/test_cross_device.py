"""EdgeNN across every integrated platform (paper device + variants)."""

import pytest

from repro.baselines import run_gpu_only
from repro.core.engine import EdgeNN
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.hardware.variants import VARIANT_CATALOG

INTEGRATED = [JETSON_AGX_XAVIER] + [
    spec for spec in VARIANT_CATALOG.values() if spec.is_integrated
]


@pytest.mark.parametrize("spec", INTEGRATED, ids=lambda s: s.name)
@pytest.mark.parametrize("network", ["lenet", "squeezenet"])
class TestEveryIntegratedPlatform:
    def test_edgenn_never_loses_to_the_original_program(self, spec, network):
        edgenn = EdgeNN(network, spec).run()
        baseline = run_gpu_only(network, spec)
        assert edgenn.total_s <= baseline.total_s * 1.001

    def test_power_within_device_envelope(self, spec, network):
        report = EdgeNN(network, spec).run()
        peak = spec.power.power(1.0, 1.0)
        assert spec.power.idle_w <= report.energy.average_power_w <= peak


def test_devices_rank_plausibly_on_squeezenet():
    """Cross-device ordering sanity: the desktop APU and the M1-class SoC
    outrun the Jetson (more capable memory systems / clocks), and every
    capped Jetson mode is slower than the full-power Jetson."""
    times = {
        spec.name: EdgeNN("squeezenet", spec).run().total_s
        for spec in INTEGRATED
    }
    assert times["jetson-agx-xavier-10w"] > times["jetson-agx-xavier-15w"]
    assert times["jetson-agx-xavier-15w"] > times["jetson-agx-xavier"]
