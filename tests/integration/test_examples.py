"""Every shipped example must run clean end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    # The README documents exactly these seven scenarios.
    assert EXAMPLES == [
        "custom_network.py",
        "deployment_planner.py",
        "device_comparison.py",
        "multi_model_camera.py",
        "quickstart.py",
        "smart_camera.py",
        "tuning_exploration.py",
    ]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # any files the example writes land in tmp
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate their results"


def test_quickstart_takes_network_argument(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "lenet"],
        capture_output=True, text=True, timeout=300, cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "lenet" in result.stdout
