"""Every shipped example must run clean end-to-end."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

# The example subprocess must find `repro` even when the package is not
# installed: prepend the repo's src/ to whatever PYTHONPATH exists.
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    ),
}


def test_example_inventory():
    # The README documents exactly these eight scenarios.
    assert EXAMPLES == [
        "custom_network.py",
        "deployment_planner.py",
        "device_comparison.py",
        "multi_model_camera.py",
        "quickstart.py",
        "request_stream.py",
        "smart_camera.py",
        "tuning_exploration.py",
    ]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # any files the example writes land in tmp
        env=ENV,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate their results"


def test_quickstart_takes_network_argument(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "lenet"],
        capture_output=True, text=True, timeout=300, cwd=tmp_path, env=ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "lenet" in result.stdout


def test_request_stream_takes_network_argument(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "request_stream.py"), "lenet"],
        capture_output=True, text=True, timeout=300, cwd=tmp_path, env=ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "lenet" in result.stdout
    assert "knee" in result.stdout