"""The headline paper-shape assertions: every table/figure's qualitative
result must hold in the reproduction.

Tolerances are deliberately loose — we assert *who wins, by roughly what
factor, and where the crossovers fall* (see DESIGN.md §1), not the authors'
absolute milliseconds.
"""

import pytest

from repro.eval import experiments as ex


@pytest.fixture(scope="module")
def fig06():
    return ex.fig06_edge_cpu_speedups()


@pytest.fixture(scope="module")
def fig08():
    return ex.fig08_ablation()


@pytest.fixture(scope="module")
def fig09():
    return ex.fig09_memcpy_share()


@pytest.fixture(scope="module")
def table1():
    return ex.table1_layer_improvements()


class TestFig06Shapes:
    """Paper: averages 3.97x (Jetson CPU), 3.12x (phone), 8.80x (RPi)."""

    def test_average_magnitudes(self, fig06):
        assert 2.5 <= fig06.mean_jetson_cpu <= 5.5
        assert 2.0 <= fig06.mean_mobile_cpu <= 4.5
        assert 6.0 <= fig06.mean_raspberry_pi <= 12.0

    def test_platform_ordering(self, fig06):
        # RPi is slowest, the phone CPU is faster than the Jetson CPU.
        assert fig06.mean_raspberry_pi > fig06.mean_jetson_cpu
        assert fig06.mean_jetson_cpu > fig06.mean_mobile_cpu

    def test_edgenn_beats_every_cpu_on_conv_networks(self, fig06):
        for row in fig06.rows:
            if row.network in ("alexnet", "vgg16", "squeezenet", "resnet18"):
                assert row.jetson_cpu_speedup > 2.0
                assert row.raspberry_pi_speedup > 5.0


class TestFig08Shapes:
    """Paper: memory avg 9.93%, hybrid avg 10.76%, EdgeNN avg 22.02%,
    per-network total from 16.29% (VGG) to 27.22% (AlexNet)."""

    def test_memory_average(self, fig08):
        assert 5.0 <= fig08.mean_memory <= 15.0

    def test_edgenn_average(self, fig08):
        assert 15.0 <= fig08.mean_edgenn <= 40.0

    def test_every_design_is_beneficial_on_average(self, fig08):
        assert fig08.mean_memory > 0
        assert fig08.mean_hybrid > 0
        assert fig08.mean_edgenn > max(fig08.mean_memory, 0)

    def test_alexnet_near_paper_value(self, fig08):
        row = next(r for r in fig08.rows if r.network == "alexnet")
        # Paper: 27.22% total for AlexNet.
        assert 18.0 <= row.edgenn_improvement_pct <= 35.0

    def test_improvements_never_catastrophically_negative(self, fig08):
        for row in fig08.rows:
            assert row.edgenn_improvement_pct > -1.0


class TestFig09Shapes:
    """Paper: copy share avg 11.46% integrated vs 23.34% discrete
    (max "even reaching 36%")."""

    def test_integrated_average(self, fig09):
        assert 7.0 <= fig09.mean_integrated <= 16.0

    def test_discrete_average(self, fig09):
        assert 15.0 <= fig09.mean_discrete <= 30.0

    def test_discrete_exceeds_integrated_on_average(self, fig09):
        assert fig09.mean_discrete > fig09.mean_integrated

    def test_discrete_max_reaches_paper_extreme(self, fig09):
        assert fig09.max_discrete >= 30.0

    def test_improvement_always_below_copy_share(self, fig08, fig09):
        # §V-C2 third observation: zero-copy's benefit never exceeds the
        # copy share it eliminates (managed-access penalties eat into it).
        for imp_row, share_row in zip(fig08.rows, fig09.rows):
            assert imp_row.memory_improvement_pct <= share_row.integrated_share_pct + 1.0


class TestFig10Shapes:
    """Paper: with zero-copy, pooling kernels get slower; compute-bound
    convolutions barely change."""

    def test_pool_layers_slow_down(self):
        result = ex.fig10_alexnet_zero_copy_layers()
        pools = result.rows_of_class("pool")
        assert pools, "pool layers should be visible in Fig 10"
        for row in pools:
            assert row.with_ms > row.without_ms

    def test_conv_layers_barely_change(self):
        result = ex.fig10_alexnet_zero_copy_layers()
        for row in result.rows_of_class("conv"):
            assert abs(row.improvement_pct) < 8.0


class TestFig11AndTable1Shapes:
    """Paper Table I: AlexNet conv improvement = 0; AlexNet fc avg 53.81%
    with zero-copy (31.71% without); LeNet conv up to 36%."""

    def test_alexnet_conv_zero(self, table1):
        cell = table1.cell("alexnet", "conv")
        assert cell.max_pct <= 3.0

    def test_vgg_conv_negligible(self, table1):
        assert table1.cell("vgg16", "conv").avg_pct <= 8.0

    def test_alexnet_fc_strong(self, table1):
        cell = table1.cell("alexnet", "dense")
        assert 40.0 <= cell.avg_pct <= 70.0

    def test_lenet_conv_benefits(self, table1):
        cell = table1.cell("lenet", "conv")
        assert cell.max_pct >= 10.0

    def test_lenet_fc_benefits(self, table1):
        assert table1.cell("lenet", "dense").avg_pct >= 25.0

    def test_zero_copy_amplifies_fc_gains(self):
        # Paper: 31.71% without vs 53.80% with zero-copy on AlexNet fc.
        with_zc = ex.fig11_alexnet_hybrid_layers(zero_copy=True)
        without = ex.fig11_alexnet_hybrid_layers(zero_copy=False)
        fc_with = [r.improvement_pct for r in with_zc.rows_of_class("dense")]
        fc_without = [r.improvement_pct for r in without.rows_of_class("dense")]
        assert sum(fc_with) / len(fc_with) > sum(fc_without) / len(fc_without)


class TestFig12Shapes:
    """Paper: EdgeNN beats the cloud on average; compute-heavy VGG is the
    one loss."""

    def test_vgg_loses_to_cloud(self):
        result = ex.fig12_cloud_comparison()
        vgg = next(r for r in result.rows if r.network == "vgg16")
        assert not vgg.edgenn_wins

    def test_everything_else_wins(self):
        result = ex.fig12_cloud_comparison()
        for row in result.rows:
            if row.network != "vgg16":
                assert row.edgenn_wins

    def test_positive_average_improvement(self):
        assert ex.fig12_cloud_comparison().mean_improvement > 0


class TestFig7And13Shapes:
    """Paper: massively better energy efficiency than both comparisons;
    cost-effectiveness below the RPi (geomean 0.61) but above the discrete
    GPU (1.25x)."""

    def test_power_efficiency_beats_rpi(self):
        result = ex.fig07_efficiency_vs_edge_cpu()
        assert result.geomean_power > 2.0

    def test_rpi_wins_cost_effectiveness(self):
        result = ex.fig07_efficiency_vs_edge_cpu()
        assert result.geomean_price < 1.0

    def test_power_efficiency_beats_discrete_gpu(self):
        result = ex.fig13_efficiency_vs_discrete_gpu()
        assert result.geomean_power > 3.0

    def test_cost_effectiveness_beats_discrete_gpu(self):
        result = ex.fig13_efficiency_vs_discrete_gpu()
        assert 0.9 <= result.geomean_price <= 2.0


class TestSec5FShapes:
    """Paper: inter-kernel-only helps SqueezeNet (+8.27%) and nothing
    else; EdgeNN is needed for the rest."""

    def test_squeezenet_gains(self):
        result = ex.sec5f_interkernel_only()
        assert result.row("squeezenet").interkernel_improvement_pct >= 3.0

    def test_chains_gain_nothing(self):
        result = ex.sec5f_interkernel_only()
        for name in ("fcnn", "lenet", "alexnet", "vgg16"):
            assert abs(result.row(name).interkernel_improvement_pct) < 1.0

    def test_edgenn_dominates_interkernel_only(self):
        result = ex.sec5f_interkernel_only()
        for row in result.rows:
            assert row.edgenn_improvement_pct >= row.interkernel_improvement_pct - 0.5


class TestSec5B2Shapes:
    """Paper: EdgeNN's Jetson power draws 5.5-7.9 W; both processors kept
    busy (avg CPU 75%, GPU 62%)."""

    def test_power_window(self):
        result = ex.sec5b2_utilization()
        for row in result.rows:
            assert 4.0 <= row.power_w <= 8.0

    def test_both_processors_utilized(self):
        result = ex.sec5b2_utilization()
        assert result.mean_cpu_util >= 50.0
        assert result.mean_gpu_util >= 50.0
