"""Explicit copy engine (cudaMemcpy model)."""

import pytest

from repro.errors import MemoryModelError
from repro.hardware.copy_engine import CopyDirection, CopyEngine, Transfer
from repro.hardware.specs import InterconnectSpec

LINK = InterconnectSpec(name="test-link", rate=1e9, latency_s=10e-6)


class TestTransfer:
    def test_rejects_negative_size(self):
        with pytest.raises(MemoryModelError):
            Transfer("buf", -1.0, CopyDirection.H2D)

    def test_directions(self):
        assert CopyDirection.H2D.value == "h2d"
        assert CopyDirection.D2H.value == "d2h"


class TestCopyEngine:
    def test_transfer_time_is_latency_plus_bandwidth(self):
        engine = CopyEngine(LINK)
        assert engine.transfer_time(1e9) == pytest.approx(10e-6 + 1.0)

    def test_zero_byte_transfer_is_free(self):
        engine = CopyEngine(LINK)
        assert engine.transfer_time(0) == 0.0

    def test_negative_size_rejected(self):
        engine = CopyEngine(LINK)
        with pytest.raises(MemoryModelError):
            engine.transfer_time(-5)

    def test_record_accumulates_stats(self):
        engine = CopyEngine(LINK)
        t1 = engine.record(Transfer("a", 1e6, CopyDirection.H2D))
        t2 = engine.record(Transfer("b", 2e6, CopyDirection.D2H))
        assert engine.total_bytes == 3e6
        assert engine.transfer_count == 2
        assert engine.total_time_s == pytest.approx(t1 + t2)

    def test_zero_byte_record_not_counted(self):
        engine = CopyEngine(LINK)
        engine.record(Transfer("a", 0, CopyDirection.H2D))
        assert engine.transfer_count == 0
        assert engine.total_bytes == 0.0

    def test_reset(self):
        engine = CopyEngine(LINK)
        engine.record(Transfer("a", 1e6, CopyDirection.H2D))
        engine.reset()
        assert engine.total_bytes == 0.0
        assert engine.total_time_s == 0.0
        assert engine.transfer_count == 0

    def test_rate_and_latency_exposed(self):
        engine = CopyEngine(LINK)
        assert engine.rate == 1e9
        assert engine.latency_s == 10e-6
