"""Shared-bandwidth contention model."""

import pytest

from repro.errors import SimulationError
from repro.hardware.contention import (
    StreamJob,
    corun_finish_times,
    corun_pair,
    waterfill,
)


class TestWaterfill:
    def test_under_subscribed_keeps_caps(self):
        assert waterfill([10.0, 20.0], total=100.0) == [10.0, 20.0]

    def test_oversubscribed_fair_share(self):
        rates = waterfill([100.0, 100.0], total=100.0)
        assert rates == [50.0, 50.0]

    def test_bounded_stream_releases_slack(self):
        rates = waterfill([10.0, 1000.0], total=100.0)
        assert rates[0] == 10.0
        assert rates[1] == pytest.approx(90.0)

    def test_three_way_mixed(self):
        rates = waterfill([5.0, 50.0, 50.0], total=65.0)
        assert rates[0] == 5.0
        assert rates[1] == pytest.approx(30.0)
        assert rates[2] == pytest.approx(30.0)

    def test_conservation(self):
        caps = [30.0, 80.0, 200.0]
        rates = waterfill(caps, total=120.0)
        assert sum(rates) == pytest.approx(min(sum(caps), 120.0))

    def test_zero_cap_gets_nothing(self):
        rates = waterfill([0.0, 50.0], total=40.0)
        assert rates[0] == 0.0
        assert rates[1] == 40.0

    def test_negative_total_rejected(self):
        with pytest.raises(SimulationError):
            waterfill([1.0], total=-1.0)


class TestStreamJob:
    def test_solo_time_memory_bound(self):
        job = StreamJob(compute_s=0.1, bytes_total=1e9, solo_rate=1e9)
        assert job.solo_time == pytest.approx(1.0)

    def test_solo_time_compute_bound(self):
        job = StreamJob(compute_s=2.0, bytes_total=1e9, solo_rate=1e9)
        assert job.solo_time == pytest.approx(2.0)

    def test_pure_compute_job(self):
        job = StreamJob(compute_s=0.5, bytes_total=0.0, solo_rate=0.0)
        assert job.solo_time == 0.5

    def test_rejects_negative_demands(self):
        with pytest.raises(SimulationError):
            StreamJob(compute_s=-1.0, bytes_total=0.0, solo_rate=1.0)

    def test_rejects_memory_without_rate(self):
        with pytest.raises(SimulationError):
            StreamJob(compute_s=0.0, bytes_total=1.0, solo_rate=0.0)


class TestCorun:
    def test_no_contention_when_bandwidth_plentiful(self):
        a = StreamJob(compute_s=0.0, bytes_total=1e9, solo_rate=1e9)
        b = StreamJob(compute_s=0.0, bytes_total=1e9, solo_rate=1e9)
        times = corun_finish_times([a, b], total_bw=10e9)
        assert times[0] == pytest.approx(a.solo_time)
        assert times[1] == pytest.approx(b.solo_time)

    def test_equal_jobs_share_bandwidth(self):
        a = StreamJob(compute_s=0.0, bytes_total=1e9, solo_rate=2e9)
        b = StreamJob(compute_s=0.0, bytes_total=1e9, solo_rate=2e9)
        times = corun_finish_times([a, b], total_bw=2e9)
        # Each gets half of 2 GB/s => 1 s each instead of 0.5 s solo.
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(1.0)

    def test_early_finisher_releases_bandwidth(self):
        small = StreamJob(compute_s=0.0, bytes_total=1e8, solo_rate=2e9)
        big = StreamJob(compute_s=0.0, bytes_total=2e9, solo_rate=2e9)
        times = corun_finish_times([small, big], total_bw=2e9)
        # Phase 1: both at 1 GB/s until small finishes at t=0.1 s.
        assert times[0] == pytest.approx(0.1)
        # Big moved 0.1 GB in phase 1, then 1.9 GB at full 2 GB/s.
        assert times[1] == pytest.approx(0.1 + 1.9 / 2.0)

    def test_compute_floor_dominates(self):
        job = StreamJob(compute_s=5.0, bytes_total=1e6, solo_rate=1e9)
        times = corun_finish_times([job], total_bw=1e9)
        assert times[0] == 5.0

    def test_corun_never_faster_than_solo(self):
        a = StreamJob(compute_s=0.01, bytes_total=5e8, solo_rate=3e9)
        b = StreamJob(compute_s=0.02, bytes_total=9e8, solo_rate=4e9)
        times = corun_finish_times([a, b], total_bw=5e9)
        assert times[0] >= a.solo_time - 1e-12
        assert times[1] >= b.solo_time - 1e-12

    def test_pair_applies_corun_efficiency(self):
        a = StreamJob(compute_s=0.0, bytes_total=1e9, solo_rate=2e9)
        b = StreamJob(compute_s=0.0, bytes_total=1e9, solo_rate=2e9)
        full = corun_pair(a, b, dram_bw=2e9, corun_efficiency=1.0)
        derated = corun_pair(a, b, dram_bw=2e9, corun_efficiency=0.5)
        assert derated[0] > full[0]
        assert derated[1] > full[1]

    def test_pair_rejects_bad_efficiency(self):
        a = StreamJob(compute_s=0.0, bytes_total=1.0, solo_rate=1.0)
        with pytest.raises(SimulationError):
            corun_pair(a, a, dram_bw=1.0, corun_efficiency=0.0)

    def test_rejects_nonpositive_bandwidth(self):
        a = StreamJob(compute_s=0.0, bytes_total=1.0, solo_rate=1.0)
        with pytest.raises(SimulationError):
            corun_finish_times([a], total_bw=0.0)
