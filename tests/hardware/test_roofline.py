"""Roofline kernel cost model."""

import pytest

from repro.errors import SpecError
from repro.hardware.roofline import KernelCost, KernelWork, kernel_cost, occupancy_factor
from repro.hardware.specs import JETSON_AGX_XAVIER, ProcessorKind

SPEC = JETSON_AGX_XAVIER


def conv_work(flops=1e9, out_elements=1e6):
    return KernelWork(
        kernel_class="conv",
        flops=flops,
        act_in_bytes=1e6,
        weight_bytes=2e6,
        out_bytes=4e6,
        out_elements=out_elements,
    )


class TestKernelWork:
    def test_total_bytes(self):
        w = conv_work()
        assert w.total_bytes == 7e6

    def test_arithmetic_intensity(self):
        w = conv_work(flops=7e6)
        assert w.arithmetic_intensity == pytest.approx(1.0)

    def test_zero_byte_intensity_is_infinite(self):
        w = KernelWork("conv", flops=10, act_in_bytes=0, weight_bytes=0,
                       out_bytes=0, out_elements=1)
        assert w.arithmetic_intensity == float("inf")

    def test_rejects_negative_terms(self):
        with pytest.raises(SpecError):
            KernelWork("conv", flops=-1, act_in_bytes=0, weight_bytes=0,
                       out_bytes=0)
        with pytest.raises(SpecError):
            KernelWork("conv", flops=0, act_in_bytes=0, weight_bytes=0,
                       out_bytes=0, out_elements=0)

    def test_scaled_divides_flops_weights_outputs(self):
        w = conv_work()
        half = w.scaled(0.5)
        assert half.flops == w.flops * 0.5
        assert half.weight_bytes == w.weight_bytes * 0.5
        assert half.out_bytes == w.out_bytes * 0.5
        assert half.out_elements == w.out_elements * 0.5

    def test_scaled_keeps_full_activation_reads(self):
        # Both sides of a split read the whole input feature map.
        w = conv_work()
        assert w.scaled(0.3).act_in_bytes == w.act_in_bytes

    def test_scaled_rejects_out_of_range(self):
        with pytest.raises(SpecError):
            conv_work().scaled(1.5)

    def test_scaled_zero_keeps_positive_elements(self):
        assert conv_work().scaled(0.0).out_elements >= 1.0


class TestOccupancy:
    def test_cpu_has_no_ramp(self):
        assert occupancy_factor(SPEC.cpu, conv_work(out_elements=1)) == 1.0

    def test_gpu_saturated_at_large_outputs(self):
        assert occupancy_factor(SPEC.gpu, conv_work(out_elements=1e7)) == 1.0

    def test_gpu_ramp_below_saturation(self):
        sat = SPEC.gpu.saturation_elements["conv"]
        factor = occupancy_factor(SPEC.gpu, conv_work(out_elements=sat / 2))
        assert factor == pytest.approx(0.5)

    def test_gpu_ramp_floor(self):
        factor = occupancy_factor(SPEC.gpu, conv_work(out_elements=1))
        assert factor == pytest.approx(0.01)

    def test_unknown_class_has_no_ramp(self):
        work = KernelWork("conv", 1, 1, 1, 1, out_elements=1)
        object.__setattr__(work, "kernel_class", "conv")
        # classes absent from the saturation table pass through unscaled;
        # simulate by a processor without a table:
        assert occupancy_factor(SPEC.cpu, work) == 1.0


class TestKernelCost:
    def test_compute_bound_kernel(self):
        # Enormous FLOPs, tiny bytes => compute bound.
        w = conv_work(flops=1e12)
        cost = kernel_cost(SPEC, SPEC.gpu, w)
        assert not cost.is_memory_bound
        assert cost.body_s == cost.compute_s

    def test_memory_bound_kernel(self):
        w = KernelWork("pool", flops=1e3, act_in_bytes=1e8, weight_bytes=0,
                       out_bytes=1e8, out_elements=1e8)
        cost = kernel_cost(SPEC, SPEC.gpu, w)
        assert cost.is_memory_bound
        assert cost.body_s == cost.memory_s

    def test_launch_overhead_included_by_default(self):
        w = conv_work()
        with_launch = kernel_cost(SPEC, SPEC.gpu, w)
        without = kernel_cost(SPEC, SPEC.gpu, w, include_launch=False)
        assert with_launch.total_s == pytest.approx(
            without.total_s + SPEC.gpu.launch_overhead_s
        )

    def test_mem_bw_factor_slows_memory_time(self):
        w = KernelWork("pool", flops=0, act_in_bytes=1e8, weight_bytes=0,
                       out_bytes=0, out_elements=1e8)
        fast = kernel_cost(SPEC, SPEC.gpu, w)
        slow = kernel_cost(SPEC, SPEC.gpu, w, mem_bw_factor=0.5)
        assert slow.memory_s == pytest.approx(fast.memory_s * 2.0)

    def test_rejects_nonpositive_bw_factor(self):
        with pytest.raises(SpecError):
            kernel_cost(SPEC, SPEC.gpu, conv_work(), mem_bw_factor=0.0)

    def test_demand_bw(self):
        w = KernelWork("pool", flops=0, act_in_bytes=1e8, weight_bytes=0,
                       out_bytes=0, out_elements=1e8)
        cost = kernel_cost(SPEC, SPEC.gpu, w, include_launch=False)
        assert cost.demand_bw == pytest.approx(w.total_bytes / cost.body_s)

    def test_zero_work_kernel(self):
        cost = KernelCost(compute_s=0.0, memory_s=0.0, launch_s=0.0,
                          bytes_moved=0.0)
        assert cost.total_s == 0.0
        assert cost.demand_bw == 0.0

    def test_gpu_faster_than_cpu_on_big_conv(self):
        w = conv_work(flops=1e10, out_elements=1e6)
        gpu = kernel_cost(SPEC, SPEC.gpu, w)
        cpu = kernel_cost(SPEC, SPEC.cpu, w)
        assert gpu.total_s < cpu.total_s

    def test_cpu_competitive_on_small_kernels(self):
        # Tiny conv: the GPU occupancy ramp + launch overhead hand the
        # advantage to the CPU (the LeNet regime of Table I).
        w = conv_work(flops=3e5, out_elements=500)
        gpu = kernel_cost(SPEC, SPEC.gpu, w)
        cpu = kernel_cost(SPEC, SPEC.cpu, w)
        assert cpu.total_s < gpu.total_s
