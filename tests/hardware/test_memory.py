"""Buffer and allocation model: regular vs managed (zero-copy)."""

import pytest

from repro.errors import AllocationError, MemoryModelError
from repro.hardware import calibration as cal
from repro.hardware.copy_engine import CopyDirection
from repro.hardware.memory import AllocKind, MemoryModel
from repro.hardware.specs import (
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    ProcessorKind,
)

CPU = ProcessorKind.CPU
GPU = ProcessorKind.GPU


@pytest.fixture
def mem():
    return MemoryModel(JETSON_AGX_XAVIER)


class TestAllocation:
    def test_regular_counts_twice(self, mem):
        mem.allocate("a", 100.0, AllocKind.REGULAR)
        assert mem.allocated_bytes == 200.0

    def test_managed_counts_once(self, mem):
        mem.allocate("a", 100.0, AllocKind.MANAGED)
        assert mem.allocated_bytes == 100.0

    def test_duplicate_name_rejected(self, mem):
        mem.allocate("a", 1.0, AllocKind.MANAGED)
        with pytest.raises(AllocationError):
            mem.allocate("a", 1.0, AllocKind.MANAGED)

    def test_capacity_enforced(self, mem):
        with pytest.raises(AllocationError, match="capacity"):
            mem.allocate("big", 64e9, AllocKind.MANAGED)

    def test_managed_rejected_on_non_integrated(self):
        rpi = MemoryModel(RASPBERRY_PI_4)
        with pytest.raises(MemoryModelError, match="non-integrated"):
            rpi.allocate("a", 1.0, AllocKind.MANAGED)

    def test_unknown_buffer(self, mem):
        with pytest.raises(MemoryModelError):
            mem.get("nope")


class TestRegularBufferProtocol:
    def test_fresh_buffer_is_host_valid(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        assert buf.host_valid and not buf.device_valid

    def test_gpu_read_triggers_h2d(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        cost = mem.read_cost(buf, GPU, "conv")
        assert len(cost.transfers) == 1
        assert cost.transfers[0].direction is CopyDirection.H2D
        assert cost.bw_factor == 1.0

    def test_second_gpu_read_is_free(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        mem.read_cost(buf, GPU, "conv")
        cost = mem.read_cost(buf, GPU, "conv")
        assert cost.transfers == ()

    def test_cpu_read_of_host_valid_is_free(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        assert mem.read_cost(buf, CPU, "conv").transfers == ()

    def test_gpu_write_invalidates_host(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        mem.write_cost(buf, GPU, "conv")
        assert buf.device_valid and not buf.host_valid
        cost = mem.read_cost(buf, CPU, "conv")
        assert len(cost.transfers) == 1
        assert cost.transfers[0].direction is CopyDirection.D2H

    def test_cowrite_keeps_both_copies(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        mem.write_cost(buf, GPU, "conv")
        mem.write_cost(buf, CPU, "conv")
        assert buf.device_valid and buf.host_valid

    def test_regular_cowrite_has_no_consistency_penalty(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        mem.write_cost(buf, GPU, "conv")
        mem.write_cost(buf, CPU, "conv")
        assert mem.cowrite_penalty(buf) == 0.0


class TestManagedBufferProtocol:
    def test_no_transfers_either_way(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        assert mem.read_cost(buf, GPU, "conv").transfers == ()
        assert mem.read_cost(buf, CPU, "conv").transfers == ()

    def test_gpu_first_touch_cost_once(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        first = mem.read_cost(buf, GPU, "conv")
        second = mem.read_cost(buf, GPU, "conv")
        assert first.overhead_s > 0
        assert second.overhead_s == 0.0

    def test_cpu_touch_has_no_page_cost(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        assert mem.read_cost(buf, CPU, "conv").overhead_s == 0.0

    def test_gpu_bandwidth_factor_per_kernel_class(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        pool = mem.read_cost(buf, GPU, "pool").bw_factor
        conv = mem.read_cost(buf, GPU, "conv").bw_factor
        assert pool == cal.MANAGED_GPU_BW_FACTORS["pool"]
        assert conv == cal.MANAGED_GPU_BW_FACTORS["conv"]
        # Scattered pooling access suffers more than streaming convolution
        # (this is what makes AlexNet's pools slower with zero-copy, Fig 10).
        assert pool < conv

    def test_cpu_bandwidth_factor(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        assert mem.read_cost(buf, CPU, "pool").bw_factor == cal.MANAGED_CPU_BW_FACTOR

    def test_managed_cowrite_penalty(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        mem.write_cost(buf, GPU, "conv")
        mem.write_cost(buf, CPU, "conv")
        penalty = mem.cowrite_penalty(buf)
        assert penalty == pytest.approx(
            1e6 * cal.MANAGED_COWRITE_PENALTY_S_PER_BYTE
        )

    def test_single_writer_has_no_penalty(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        mem.write_cost(buf, GPU, "conv")
        assert mem.cowrite_penalty(buf) == 0.0

    def test_penalty_resets_writer_set(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        mem.write_cost(buf, GPU, "conv")
        mem.write_cost(buf, CPU, "conv")
        mem.cowrite_penalty(buf)
        mem.write_cost(buf, GPU, "conv")
        assert mem.cowrite_penalty(buf) == 0.0

    def test_managed_cowrite_dearer_than_explicit_merge(self, mem):
        """The paper's §IV-B claim: two REGULAR copies + merge are
        substantially cheaper than zero-copy consistency on co-written
        arrays."""
        nbytes = 1e6
        buf = mem.allocate("a", nbytes, AllocKind.MANAGED)
        mem.write_cost(buf, GPU, "conv")
        mem.write_cost(buf, CPU, "conv")
        penalty = mem.cowrite_penalty(buf)
        merge_cost = (
            cal.INTEGRATED_COPY_LATENCY_S + nbytes / cal.INTEGRATED_COPY_RATE
        )
        assert penalty > merge_cost


class TestMergeAndStaging:
    def test_merge_transfer_copies_cpu_slice(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        transfer = mem.merge_transfer(buf, 0.25)
        assert transfer is not None
        assert transfer.nbytes == pytest.approx(2.5e5)
        assert transfer.direction is CopyDirection.H2D
        assert buf.device_valid

    def test_merge_noop_for_managed(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        assert mem.merge_transfer(buf, 0.5) is None

    def test_merge_noop_for_zero_fraction(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        assert mem.merge_transfer(buf, 0.0) is None

    def test_merge_rejects_bad_fraction(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        with pytest.raises(MemoryModelError):
            mem.merge_transfer(buf, 1.5)

    def test_stage_out_invalidates_device_copy(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.REGULAR)
        mem.write_cost(buf, GPU, "conv")
        transfer = mem.stage_out(buf)
        assert transfer is not None
        assert transfer.direction is CopyDirection.D2H
        assert buf.host_valid and not buf.device_valid

    def test_stage_out_noop_for_managed(self, mem):
        buf = mem.allocate("a", 1e6, AllocKind.MANAGED)
        assert mem.stage_out(buf) is None
