"""Platform variants: Jetson power modes and other integrated SoCs."""

import pytest

from repro.baselines import run_gpu_only
from repro.core.engine import EdgeNN
from repro.errors import SpecError
from repro.hardware.specs import JETSON_AGX_XAVIER
from repro.hardware.variants import (
    AMD_RYZEN_APU,
    APPLE_M1_STYLE,
    JETSON_POWER_MODES,
    VARIANT_CATALOG,
    jetson_power_mode,
)

from ..conftest import make_chain_net


class TestJetsonPowerModes:
    def test_30w_is_the_catalog_device(self):
        assert jetson_power_mode("30W") is JETSON_AGX_XAVIER

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecError, match="power mode"):
            jetson_power_mode("50W")

    @pytest.mark.parametrize("mode", ["10W", "15W"])
    def test_capped_modes_scale_down(self, mode):
        capped = jetson_power_mode(mode)
        assert capped.cpu.clock_hz < JETSON_AGX_XAVIER.cpu.clock_hz
        assert capped.gpu.clock_hz < JETSON_AGX_XAVIER.gpu.clock_hz
        assert capped.memory.bandwidth < JETSON_AGX_XAVIER.memory.bandwidth
        assert capped.is_integrated

    def test_mode_ordering(self):
        ten = jetson_power_mode("10W")
        fifteen = jetson_power_mode("15W")
        assert ten.gpu.clock_hz < fifteen.gpu.clock_hz
        assert ten.memory.bandwidth < fifteen.memory.bandwidth

    def test_peak_power_respects_budget(self):
        for mode, (_, _, _, budget) in JETSON_POWER_MODES.items():
            spec = jetson_power_mode(mode)
            peak = spec.power.power(1.0, 1.0)
            assert peak <= budget + 1e-9

    def test_lower_mode_is_slower_but_frugal(self, chain_net):
        full = run_gpu_only(make_chain_net("f"), JETSON_AGX_XAVIER)
        capped = run_gpu_only(make_chain_net("c"), jetson_power_mode("10W"))
        assert capped.total_s > full.total_s
        assert capped.energy.average_power_w < full.energy.average_power_w

    def test_edgenn_runs_on_capped_modes(self, chain_net):
        report = EdgeNN(chain_net, jetson_power_mode("15W")).run()
        assert report.total_s > 0
        assert report.device == "jetson-agx-xavier-15w"


class TestOtherIntegratedPlatforms:
    @pytest.mark.parametrize("spec", [AMD_RYZEN_APU, APPLE_M1_STYLE],
                             ids=lambda s: s.name)
    def test_are_integrated_devices(self, spec):
        assert spec.is_integrated

    @pytest.mark.parametrize("spec", [AMD_RYZEN_APU, APPLE_M1_STYLE],
                             ids=lambda s: s.name)
    def test_edgenn_beats_gpu_only_baseline(self, spec):
        # §V-G: "the idea behind EdgeNN is applicable to similar
        # platforms, such as AMD's APU and Apple Silicon".
        net = make_chain_net()
        baseline = run_gpu_only(make_chain_net("b"), spec)
        edgenn = EdgeNN(net, spec).run()
        assert edgenn.total_s <= baseline.total_s * 1.001

    def test_variant_catalog_contents(self):
        assert set(VARIANT_CATALOG) == {
            "jetson-agx-xavier-10w",
            "jetson-agx-xavier-15w",
            "amd-ryzen-apu",
            "apple-m1-style",
        }

    def test_variants_disjoint_from_paper_catalog(self):
        from repro.hardware.specs import DEVICE_CATALOG
        assert not set(VARIANT_CATALOG) & set(DEVICE_CATALOG)
