"""Power and energy accounting."""

import pytest

from repro.errors import SpecError
from repro.hardware.power import energy_for_run, performance_per_dollar
from repro.hardware.specs import JETSON_AGX_XAVIER, RASPBERRY_PI_4


class TestEnergyForRun:
    def test_idle_run(self):
        rep = energy_for_run(JETSON_AGX_XAVIER, 1.0, 0.0, 0.0)
        assert rep.average_power_w == JETSON_AGX_XAVIER.power.idle_w
        assert rep.energy_j == pytest.approx(rep.average_power_w)

    def test_full_utilization(self):
        rep = energy_for_run(JETSON_AGX_XAVIER, 2.0, 2.0, 2.0)
        p = JETSON_AGX_XAVIER.power
        assert rep.average_power_w == pytest.approx(
            p.idle_w + p.cpu_dynamic_w + p.gpu_dynamic_w
        )
        assert rep.energy_j == pytest.approx(rep.average_power_w * 2.0)

    def test_utilizations_computed(self):
        rep = energy_for_run(JETSON_AGX_XAVIER, 4.0, 1.0, 2.0)
        assert rep.cpu_utilization == pytest.approx(0.25)
        assert rep.gpu_utilization == pytest.approx(0.5)

    def test_busy_clamped_to_duration(self):
        rep = energy_for_run(JETSON_AGX_XAVIER, 1.0, 5.0, 0.0)
        assert rep.cpu_utilization == 1.0

    def test_rejects_gpu_busy_on_cpu_only_device(self):
        with pytest.raises(SpecError):
            energy_for_run(RASPBERRY_PI_4, 1.0, 0.5, gpu_busy_s=0.5)

    def test_cpu_only_device_energy(self):
        rep = energy_for_run(RASPBERRY_PI_4, 1.0, 0.52)
        p = RASPBERRY_PI_4.power
        assert rep.average_power_w == pytest.approx(
            p.idle_w + 0.52 * p.cpu_dynamic_w
        )

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(SpecError):
            energy_for_run(JETSON_AGX_XAVIER, 0.0, 0.0)

    def test_rejects_negative_busy(self):
        with pytest.raises(SpecError):
            energy_for_run(JETSON_AGX_XAVIER, 1.0, -0.1)

    def test_performance_per_watt(self):
        rep = energy_for_run(JETSON_AGX_XAVIER, 2.0, 1.0, 1.0)
        assert rep.performance_per_watt == pytest.approx(
            1.0 / (2.0 * rep.average_power_w)
        )

    def test_rpi_max_power_matches_paper_reference(self):
        # Paper ref [11]: Raspberry Pi 4 maximum draw ~6.4 W.
        p = RASPBERRY_PI_4.power
        assert p.idle_w + p.cpu_dynamic_w == pytest.approx(6.4, abs=0.01)


class TestPerformancePerDollar:
    def test_basic(self):
        assert performance_per_dollar(2.0, 100.0) == pytest.approx(0.005)

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            performance_per_dollar(0.0, 100.0)
        with pytest.raises(SpecError):
            performance_per_dollar(1.0, 0.0)
