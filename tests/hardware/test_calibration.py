"""Sanity checks on the calibration tables themselves."""

import pytest

from repro.hardware import calibration as cal


ALL_TABLES = {
    "jetson-gpu": cal.JETSON_GPU_EFFICIENCY,
    "jetson-cpu": cal.JETSON_CPU_EFFICIENCY,
    "mobile-cpu": cal.MOBILE_CPU_EFFICIENCY,
    "rpi-cpu": cal.RPI_CPU_EFFICIENCY,
    "discrete-gpu": cal.DISCRETE_GPU_EFFICIENCY,
}


@pytest.mark.parametrize("name,table", ALL_TABLES.items())
def test_every_kernel_class_covered(name, table):
    assert set(table) == set(cal.KERNEL_CLASSES)


@pytest.mark.parametrize("name,table", ALL_TABLES.items())
def test_efficiencies_in_range(name, table):
    for eff in table.values():
        assert 0 < eff.compute <= 1
        assert 0 < eff.memory <= 1


def test_efficiency_validation():
    with pytest.raises(ValueError):
        cal.KernelEfficiency(compute=0.0, memory=0.5)
    with pytest.raises(ValueError):
        cal.KernelEfficiency(compute=0.5, memory=1.5)


def test_saturation_table_covers_all_classes():
    assert set(cal.GPU_SATURATION_ELEMENTS) == set(cal.KERNEL_CLASSES)
    assert all(v > 0 for v in cal.GPU_SATURATION_ELEMENTS.values())


def test_managed_factor_table_covers_all_classes():
    assert set(cal.MANAGED_GPU_BW_FACTORS) == set(cal.KERNEL_CLASSES)
    assert all(0 < v <= 1 for v in cal.MANAGED_GPU_BW_FACTORS.values())


def test_pool_penalized_more_than_conv():
    # The Fig 10 mechanism: pools suffer most from the coherent path.
    factors = cal.MANAGED_GPU_BW_FACTORS
    assert factors["pool"] < factors["conv"]


def test_corun_slowdowns_above_one():
    assert cal.CORUN_CPU_SLOWDOWN >= 1.0
    assert cal.CORUN_GPU_SLOWDOWN >= 1.0


def test_corun_dram_efficiency_in_range():
    assert 0 < cal.CORUN_DRAM_EFFICIENCY <= 1


def test_spin_utilization_in_range():
    assert 0 <= cal.OMP_SPIN_UTILIZATION <= 1


def test_cloud_parameters_match_paper():
    # §V-D: ~400 KB input, ~1 MB/s uplink, ~100 ms cloud latency.
    assert cal.CLOUD_INPUT_BYTES == pytest.approx(400e3)
    assert cal.CLOUD_BANDWIDTH == pytest.approx(1e6)
    assert cal.CLOUD_LATENCY_S == pytest.approx(0.1)


def test_overheads_are_positive_and_small():
    for overhead in (
        cal.GPU_LAUNCH_OVERHEAD_S,
        cal.CPU_LAUNCH_OVERHEAD_S,
        cal.DISCRETE_GPU_LAUNCH_OVERHEAD_S,
        cal.PARTITION_OVERHEAD_S,
        cal.JOIN_SYNC_OVERHEAD_S,
    ):
        assert 0 < overhead < 1e-3


def test_gpu_beats_cpu_on_conv_throughput():
    # Effective conv throughput: Jetson GPU must exceed Jetson CPU (the
    # reason large convs stay on the GPU).
    gpu = cal.JETSON_GPU_EFFICIENCY["conv"].compute * 1.41e12
    cpu = cal.JETSON_CPU_EFFICIENCY["conv"].compute * 289e9
    assert gpu > 3 * cpu


def test_cpu_beats_gpu_on_dense_bandwidth():
    # Effective GEMV streaming: the CPU's cache-friendly rows beat the
    # GPU's uncoalesced naive GEMV — the source of Table I's fc gains.
    gpu = cal.JETSON_GPU_EFFICIENCY["dense"].memory * 110e9
    cpu = cal.JETSON_CPU_EFFICIENCY["dense"].memory * 60e9
    assert cpu > gpu
