"""Power-mode advisor."""

import pytest

from repro.errors import ReproError
from repro.hardware.advisor import (
    ModeProfile,
    Recommendation,
    choose_power_mode,
    profile_power_modes,
)


@pytest.fixture(scope="module")
def profiles():
    return profile_power_modes("lenet")


class TestProfiles:
    def test_three_modes_lowest_budget_first(self, profiles):
        assert [p.mode for p in profiles] == ["10W", "15W", "30W"]

    def test_latency_improves_with_budget(self, profiles):
        latencies = [p.latency_s for p in profiles]
        assert latencies == sorted(latencies, reverse=True)

    def test_power_rises_with_budget(self, profiles):
        powers = [p.power_w for p in profiles]
        assert powers == sorted(powers)


class TestChoice:
    def test_loose_slo_picks_lowest_power(self, profiles):
        rec = choose_power_mode("lenet", slo_s=10.0)
        assert rec.feasible
        assert rec.chosen.mode == "10W"

    def test_tight_slo_escalates(self, profiles):
        # An SLO only the full-power mode can meet.
        slo = profiles[2].latency_s * 1.05
        if profiles[1].latency_s <= slo:
            pytest.skip("15W already meets this SLO at current calibration")
        rec = choose_power_mode("lenet", slo_s=slo)
        assert rec.feasible and rec.chosen.mode == "30W"

    def test_impossible_slo(self):
        rec = choose_power_mode("lenet", slo_s=1e-9)
        assert not rec.feasible
        assert rec.chosen is None
        assert "no mode meets" in rec.describe()

    def test_invalid_slo_rejected(self):
        with pytest.raises(ReproError):
            choose_power_mode("lenet", slo_s=0.0)

    def test_describe_lists_all_modes(self):
        rec = choose_power_mode("lenet", slo_s=1.0)
        text = rec.describe()
        for mode in ("10W", "15W", "30W"):
            assert mode in text

    def test_mode_profile_meets(self):
        p = ModeProfile("10W", latency_s=0.1, power_w=5.0, energy_j=0.5)
        assert p.meets(0.2) and not p.meets(0.05)
