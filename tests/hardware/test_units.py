"""Unit conversion helpers."""

import pytest

from repro import units


def test_decimal_byte_units():
    assert units.kilobytes(1) == 1e3
    assert units.megabytes(2) == 2e6
    assert units.gigabytes(0.5) == 5e8


def test_binary_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3


def test_bandwidth_units():
    assert units.gigabytes_per_second(137) == 137e9
    assert units.megabytes_per_second(1) == 1e6


def test_compute_units():
    assert units.gigaflops(3) == 3e9
    assert units.teraflops(1.41) == pytest.approx(1.41e12)
    assert units.gigahertz(2.26) == pytest.approx(2.26e9)


def test_time_units_roundtrip():
    assert units.microseconds(18) == pytest.approx(18e-6)
    assert units.milliseconds(100) == pytest.approx(0.1)
    assert units.to_milliseconds(0.25) == pytest.approx(250.0)
    assert units.to_microseconds(1e-3) == pytest.approx(1000.0)


def test_to_from_inverse():
    for value in (1e-6, 3.7e-3, 2.0):
        assert units.milliseconds(units.to_milliseconds(value)) == pytest.approx(value)
        assert units.microseconds(units.to_microseconds(value)) == pytest.approx(value)
