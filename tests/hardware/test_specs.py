"""Hardware specification records and the platform catalog."""

import pytest

from repro import units
from repro.errors import SpecError
from repro.hardware import calibration as cal
from repro.hardware.specs import (
    DEVICE_CATALOG,
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
    DeviceSpec,
    InterconnectSpec,
    MemoryKind,
    MemorySpec,
    PowerSpec,
    ProcessorKind,
    ProcessorSpec,
    device,
)


def _cpu(name="cpu", **overrides):
    kwargs = dict(
        name=name,
        kind=ProcessorKind.CPU,
        cores=4,
        clock_hz=units.gigahertz(2.0),
        flops_per_cycle=8.0,
        max_stream_bw=units.gigabytes_per_second(10.0),
        launch_overhead_s=1e-6,
        efficiency=cal.JETSON_CPU_EFFICIENCY,
    )
    kwargs.update(overrides)
    return ProcessorSpec(**kwargs)


class TestProcessorSpec:
    def test_peak_flops_derived(self):
        proc = _cpu()
        assert proc.peak_flops == pytest.approx(4 * 2.0e9 * 8.0)

    def test_peak_flops_override(self):
        proc = _cpu(peak_flops_override=123e9)
        assert proc.peak_flops == 123e9

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(SpecError):
            _cpu(cores=0)

    def test_rejects_negative_launch_overhead(self):
        with pytest.raises(SpecError):
            _cpu(launch_overhead_s=-1.0)

    def test_rejects_missing_kernel_class(self):
        with pytest.raises(SpecError, match="missing efficiency"):
            _cpu(efficiency={"conv": cal.KernelEfficiency(0.1, 0.1)})

    def test_efficiency_for_unknown_class(self):
        with pytest.raises(SpecError, match="unknown kernel class"):
            _cpu().efficiency_for("fft")

    def test_efficiency_for_known_class(self):
        eff = _cpu().efficiency_for("conv")
        assert 0 < eff.compute <= 1
        assert 0 < eff.memory <= 1


class TestMemoryAndInterconnect:
    def test_memory_spec_validation(self):
        with pytest.raises(SpecError):
            MemorySpec("m", MemoryKind.UNIFIED, capacity_bytes=0, bandwidth=1)
        with pytest.raises(SpecError):
            MemorySpec("m", MemoryKind.UNIFIED, capacity_bytes=1, bandwidth=0)

    def test_interconnect_validation(self):
        with pytest.raises(SpecError):
            InterconnectSpec("x", rate=0, latency_s=0)
        with pytest.raises(SpecError):
            InterconnectSpec("x", rate=1e9, latency_s=-1)


class TestPowerSpec:
    def test_linear_model(self):
        p = PowerSpec(idle_w=2.0, cpu_dynamic_w=3.0, gpu_dynamic_w=4.0)
        assert p.power(0.0, 0.0) == 2.0
        assert p.power(1.0, 1.0) == 9.0
        assert p.power(0.5, 0.25) == pytest.approx(2.0 + 1.5 + 1.0)

    def test_rejects_out_of_range_utilization(self):
        p = PowerSpec(idle_w=1.0, cpu_dynamic_w=1.0)
        with pytest.raises(SpecError):
            p.power(1.5)
        with pytest.raises(SpecError):
            p.power(0.5, -0.1)

    def test_rejects_negative_terms(self):
        with pytest.raises(SpecError):
            PowerSpec(idle_w=-1.0, cpu_dynamic_w=0.0)


class TestDeviceSpec:
    def test_jetson_is_integrated(self):
        assert JETSON_AGX_XAVIER.is_integrated
        assert JETSON_AGX_XAVIER.has_gpu

    def test_rpi_is_cpu_only(self):
        assert not RASPBERRY_PI_4.is_integrated
        assert not RASPBERRY_PI_4.has_gpu

    def test_discrete_host_is_not_integrated(self):
        assert RTX_2080TI_HOST.has_gpu
        assert not RTX_2080TI_HOST.is_integrated

    def test_gpu_without_interconnect_rejected(self):
        with pytest.raises(SpecError, match="interconnect"):
            DeviceSpec(
                name="bad",
                cpu=JETSON_AGX_XAVIER.cpu,
                gpu=JETSON_AGX_XAVIER.gpu,
                memory=JETSON_AGX_XAVIER.memory,
                power=JETSON_AGX_XAVIER.power,
                price_usd=1.0,
            )

    def test_unified_device_cannot_have_vram(self):
        with pytest.raises(SpecError, match="VRAM"):
            DeviceSpec(
                name="bad",
                cpu=JETSON_AGX_XAVIER.cpu,
                gpu=JETSON_AGX_XAVIER.gpu,
                gpu_memory=RTX_2080TI_HOST.gpu_memory,
                interconnect=JETSON_AGX_XAVIER.interconnect,
                memory=JETSON_AGX_XAVIER.memory,
                power=JETSON_AGX_XAVIER.power,
                price_usd=1.0,
            )

    def test_stream_bandwidth_capped_by_dram(self):
        spec = JETSON_AGX_XAVIER
        bw = spec.stream_bandwidth(spec.gpu)
        assert bw <= spec.memory.bandwidth
        assert bw <= spec.gpu.max_stream_bw

    def test_discrete_gpu_streams_from_vram(self):
        spec = RTX_2080TI_HOST
        assert spec.stream_bandwidth(spec.gpu) <= spec.gpu_memory.bandwidth
        assert spec.stream_bandwidth(spec.cpu) <= spec.memory.bandwidth


class TestCatalog:
    def test_catalog_contains_the_four_paper_platforms(self):
        assert set(DEVICE_CATALOG) == {
            "jetson-agx-xavier",
            "raspberry-pi-4",
            "dimensity-8100",
            "rtx-2080ti-host",
        }

    def test_lookup_by_name(self):
        assert device("jetson-agx-xavier") is JETSON_AGX_XAVIER

    def test_lookup_unknown_raises(self):
        with pytest.raises(SpecError, match="unknown device"):
            device("tpu-v4")

    def test_paper_prices(self):
        assert JETSON_AGX_XAVIER.price_usd == 699.0
        assert RASPBERRY_PI_4.price_usd == 75.0

    def test_paper_memory_bandwidths(self):
        assert JETSON_AGX_XAVIER.memory.bandwidth == units.gigabytes_per_second(137)
        assert RTX_2080TI_HOST.gpu_memory.bandwidth == units.gigabytes_per_second(616)

    def test_jetson_core_counts(self):
        assert JETSON_AGX_XAVIER.cpu.cores == 8
        assert JETSON_AGX_XAVIER.gpu.cores == 512
        assert RTX_2080TI_HOST.gpu.cores == 4352

    def test_dimensity_uses_heterogeneous_peak_override(self):
        assert DIMENSITY_8100.cpu.peak_flops_override is not None
        assert DIMENSITY_8100.cpu.peak_flops < (
            DIMENSITY_8100.cpu.cores
            * DIMENSITY_8100.cpu.clock_hz
            * DIMENSITY_8100.cpu.flops_per_cycle
        )

    def test_gpus_have_saturation_tables(self):
        assert JETSON_AGX_XAVIER.gpu.saturation_elements is not None
        assert RTX_2080TI_HOST.gpu.saturation_elements is not None
        assert JETSON_AGX_XAVIER.cpu.saturation_elements is None

    def test_discrete_needs_more_parallelism(self):
        jetson_sat = JETSON_AGX_XAVIER.gpu.saturation_elements["conv"]
        discrete_sat = RTX_2080TI_HOST.gpu.saturation_elements["conv"]
        assert discrete_sat == jetson_sat * cal.DISCRETE_SATURATION_SCALE
