"""Runtime device wrapper."""

import pytest

from repro.errors import SpecError
from repro.hardware import calibration as cal
from repro.hardware.device import Device
from repro.hardware.memory import AllocKind
from repro.hardware.roofline import KernelWork
from repro.hardware.specs import (
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
    ProcessorKind,
)


def work(kernel_class="conv", flops=1e9, nbytes=1e7, out_elements=1e6):
    return KernelWork(kernel_class, flops, nbytes / 2, nbytes / 4, nbytes / 4,
                      out_elements=out_elements)


class TestDeviceStructure:
    def test_jetson_properties(self, jetson):
        assert jetson.name == "jetson-agx-xavier"
        assert jetson.is_integrated
        assert jetson.has_gpu

    def test_processor_lookup(self, jetson):
        assert jetson.processor(ProcessorKind.CPU).kind is ProcessorKind.CPU
        assert jetson.processor(ProcessorKind.GPU).kind is ProcessorKind.GPU

    def test_cpu_only_device_has_no_gpu(self, rpi):
        with pytest.raises(SpecError):
            rpi.processor(ProcessorKind.GPU)

    def test_cpu_only_device_has_no_copy_engine(self, rpi):
        assert rpi.copy_engine is None
        with pytest.raises(SpecError):
            rpi.copy_rate()

    def test_copy_rate_matches_interconnect(self, jetson):
        assert jetson.copy_rate() == cal.INTEGRATED_COPY_RATE


class TestReset:
    def test_reset_clears_memory_and_copy_stats(self, jetson):
        jetson.memory.allocate("a", 1e6, AllocKind.MANAGED)
        jetson.copy_engine.total_bytes = 123.0
        jetson.reset()
        assert jetson.memory.allocated_bytes == 0.0
        assert jetson.copy_engine.total_bytes == 0.0


class TestKernelCostDelegation:
    def test_gpu_cost_uses_gpu_spec(self, jetson):
        w = work()
        gpu = jetson.kernel_cost(ProcessorKind.GPU, w)
        cpu = jetson.kernel_cost(ProcessorKind.CPU, w)
        assert gpu.total_s != cpu.total_s

    def test_mem_bw_factor_passthrough(self, jetson):
        w = work("pool", flops=0.0, nbytes=1e8, out_elements=1e8)
        fast = jetson.kernel_cost(ProcessorKind.GPU, w)
        slow = jetson.kernel_cost(ProcessorKind.GPU, w, mem_bw_factor=0.5)
        assert slow.memory_s > fast.memory_s


class TestCorun:
    def test_discrete_device_no_contention(self, dgpu_host):
        w = work("pool", flops=0.0, nbytes=1e8, out_elements=1e8)
        cpu_cost = dgpu_host.kernel_cost(ProcessorKind.CPU, w, include_launch=False)
        gpu_cost = dgpu_host.kernel_cost(ProcessorKind.GPU, w, include_launch=False)
        cpu_s, gpu_s = dgpu_host.corun(cpu_cost, gpu_cost)
        assert cpu_s == pytest.approx(cpu_cost.body_s)
        assert gpu_s == pytest.approx(gpu_cost.body_s)

    def test_integrated_corun_slower_than_solo(self, jetson):
        w = work("pool", flops=0.0, nbytes=2e8, out_elements=1e8)
        cpu_cost = jetson.kernel_cost(ProcessorKind.CPU, w, include_launch=False)
        gpu_cost = jetson.kernel_cost(ProcessorKind.GPU, w, include_launch=False)
        cpu_s, gpu_s = jetson.corun(cpu_cost, gpu_cost)
        # Arbitration/interference slowdowns apply on top of sharing.
        assert cpu_s >= cpu_cost.body_s * cal.CORUN_CPU_SLOWDOWN - 1e-12
        assert gpu_s >= gpu_cost.body_s * cal.CORUN_GPU_SLOWDOWN - 1e-12

    def test_corun_slowdown_factors_applied(self, jetson):
        # Compute-bound jobs see exactly the interference factors (no
        # bandwidth pressure).
        w = work("conv", flops=1e10, nbytes=1e3, out_elements=1e6)
        cpu_cost = jetson.kernel_cost(ProcessorKind.CPU, w, include_launch=False)
        gpu_cost = jetson.kernel_cost(ProcessorKind.GPU, w, include_launch=False)
        cpu_s, gpu_s = jetson.corun(cpu_cost, gpu_cost)
        assert cpu_s == pytest.approx(cpu_cost.body_s * cal.CORUN_CPU_SLOWDOWN)
        assert gpu_s == pytest.approx(gpu_cost.body_s * cal.CORUN_GPU_SLOWDOWN)
