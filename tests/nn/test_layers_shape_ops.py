"""Flatten, Dropout, Concat."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Concat, Dropout, Flatten


class TestFlatten:
    def test_shape(self):
        assert Flatten("f").infer_shape([(3, 4, 5)]) == (60,)

    def test_is_noop(self):
        assert Flatten("f").is_noop
        assert Flatten("f").flops([(3, 4, 5)], (60,)) == 0.0

    def test_numerics(self, rng):
        x = rng.normal(size=(2, 3, 3)).astype(np.float32)
        out = Flatten("f").forward([x], {})
        np.testing.assert_array_equal(out, x.reshape(-1))


class TestDropout:
    def test_identity_at_inference(self, rng):
        x = rng.normal(size=(10,)).astype(np.float32)
        out = Dropout("d", rate=0.5).forward([x], {})
        np.testing.assert_array_equal(out, x)

    def test_is_noop(self):
        assert Dropout("d").is_noop

    def test_shape_preserved(self):
        assert Dropout("d").infer_shape([(3, 8, 8)]) == (3, 8, 8)

    def test_rejects_bad_rate(self):
        with pytest.raises(ShapeError):
            Dropout("d", rate=1.0)
        with pytest.raises(ShapeError):
            Dropout("d", rate=-0.1)


class TestConcat:
    def test_channel_concat_shape(self):
        layer = Concat("c")
        assert layer.infer_shape([(64, 55, 55), (64, 55, 55)]) == (128, 55, 55)

    def test_three_way(self):
        layer = Concat("c")
        assert layer.infer_shape([(2, 4, 4), (3, 4, 4), (5, 4, 4)]) == (10, 4, 4)

    def test_rejects_single_input(self):
        with pytest.raises(ShapeError):
            Concat("c").infer_shape([(2, 4, 4)])

    def test_rejects_spatial_mismatch(self):
        with pytest.raises(ShapeError):
            Concat("c").infer_shape([(2, 4, 4), (2, 5, 5)])

    def test_rejects_vectors(self):
        with pytest.raises(ShapeError):
            Concat("c").infer_shape([(4,), (4,)])

    def test_numerics(self, rng):
        a = rng.normal(size=(2, 3, 3)).astype(np.float32)
        b = rng.normal(size=(4, 3, 3)).astype(np.float32)
        out = Concat("c").forward([a, b], {})
        np.testing.assert_array_equal(out[:2], a)
        np.testing.assert_array_equal(out[2:], b)

    def test_not_a_noop(self):
        # Concat moves bytes (memcpy-like); it is scheduled, unlike Flatten.
        assert not Concat("c").is_noop
