"""Config-driven network definition (spec <-> graph round trip)."""

import json

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn.models import build
from repro.nn.spec import (
    layer_from_spec,
    network_from_json,
    network_from_spec,
    network_to_spec,
)

TINY_SPEC = {
    "name": "tiny-cnn",
    "input": [3, 16, 16],
    "layers": [
        {"type": "conv", "name": "c1", "out_channels": 8,
         "kernel_size": 3, "padding": 1},
        {"type": "relu", "name": "r1"},
        {"type": "maxpool", "name": "p1", "kernel_size": 2},
        {"type": "flatten", "name": "f"},
        {"type": "dense", "name": "fc", "out_features": 10},
        {"type": "softmax", "name": "s"},
    ],
}

FIRE_SPEC = {
    "name": "fire-spec",
    "input": [4, 8, 8],
    "layers": [
        {"type": "conv", "name": "squeeze", "out_channels": 2,
         "kernel_size": 1},
        {"type": "conv", "name": "e1", "out_channels": 4, "kernel_size": 1,
         "inputs": ["squeeze"]},
        {"type": "conv", "name": "e3", "out_channels": 4, "kernel_size": 3,
         "padding": 1, "inputs": ["squeeze"]},
        {"type": "concat", "name": "cat", "inputs": ["e1", "e3"]},
        {"type": "globalavgpool", "name": "gap"},
        {"type": "dense", "name": "fc", "out_features": 5},
        {"type": "softmax", "name": "s"},
    ],
}


class TestLayerFromSpec:
    def test_conv(self):
        layer = layer_from_spec(
            {"type": "conv", "name": "c", "out_channels": 4, "kernel_size": 3}
        )
        assert layer.out_channels == 4

    def test_missing_name_rejected(self):
        with pytest.raises(GraphError, match="'type' and 'name'"):
            layer_from_spec({"type": "relu"})

    def test_unknown_type_rejected(self):
        with pytest.raises(GraphError, match="unknown layer type"):
            layer_from_spec({"type": "attention", "name": "a"})

    def test_unexpected_keys_rejected(self):
        with pytest.raises(GraphError, match="unexpected keys"):
            layer_from_spec({"type": "relu", "name": "r", "slope": 0.1})


class TestNetworkFromSpec:
    def test_builds_valid_graph(self):
        net = network_from_spec(TINY_SPEC)
        assert net.name == "tiny-cnn"
        assert net.output_shape == (10,)
        assert len(net) == 6

    def test_forward_pass_works(self, rng):
        net = network_from_spec(TINY_SPEC)
        out = net.forward(rng.random(net.input_shape, dtype=np.float32))
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_fork_join_via_inputs(self):
        net = network_from_spec(FIRE_SPEC)
        from repro.nn.graph import BranchSegment
        assert any(isinstance(s, BranchSegment) for s in net.segments())

    def test_missing_sections_rejected(self):
        with pytest.raises(GraphError):
            network_from_spec({"name": "x", "layers": []})
        with pytest.raises(GraphError, match="no layers"):
            network_from_spec({"name": "x", "input": [4], "layers": []})

    def test_edgenn_accepts_spec_network(self):
        from repro import EdgeNN
        report = EdgeNN(network_from_spec(TINY_SPEC)).run()
        assert report.total_s > 0


class TestJsonAndRoundTrip:
    def test_from_json_file(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(TINY_SPEC))
        net = network_from_json(path)
        assert net.name == "tiny-cnn"

    @pytest.mark.parametrize("spec", [TINY_SPEC, FIRE_SPEC],
                             ids=["chain", "fire"])
    def test_round_trip_preserves_structure(self, spec):
        net = network_from_spec(spec)
        rebuilt = network_from_spec(network_to_spec(net))
        assert rebuilt.topo_order() == net.topo_order()
        assert rebuilt.output_shape == net.output_shape
        for name in net.topo_order():
            assert rebuilt.node(name).input_names == net.node(name).input_names

    @pytest.mark.parametrize("name", ["lenet", "alexnet", "squeezenet",
                                      "resnet18"])
    def test_paper_networks_round_trip(self, name):
        net = build(name)
        rebuilt = network_from_spec(network_to_spec(net))
        assert len(rebuilt) == len(net)
        assert rebuilt.total_flops() == pytest.approx(net.total_flops())
        assert rebuilt.total_param_bytes() == net.total_param_bytes()
