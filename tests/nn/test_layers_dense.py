"""Dense (fully connected) layer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Dense


class TestShapes:
    def test_output_shape(self):
        assert Dense("fc", 32).infer_shape([(100,)]) == (32,)

    def test_rejects_feature_map_input(self):
        with pytest.raises(ShapeError, match="Flatten"):
            Dense("fc", 32).infer_shape([(3, 8, 8)])

    def test_rejects_nonpositive_features(self):
        with pytest.raises(ShapeError):
            Dense("fc", 0)


class TestWork:
    def test_param_shapes(self):
        params = Dense("fc", 32).param_shapes([(100,)])
        assert params["weight"] == (32, 100)
        assert params["bias"] == (32,)

    def test_flops(self):
        layer = Dense("fc", 32)
        assert layer.flops([(100,)], (32,)) == pytest.approx(2 * 100 * 32 + 32)

    def test_work_is_weight_dominated(self):
        # At batch 1 the GEMV moves far more weight bytes than activations —
        # the memory-bound regime the paper's fc observations rest on.
        layer = Dense("fc", 4096)
        work = layer.work([(9216,)], (4096,))
        assert work.weight_bytes > 100 * (work.act_in_bytes + work.out_bytes)
        assert work.kernel_class == "dense"

    def test_partitionable(self):
        assert Dense("fc", 8).partitionable


class TestNumerics:
    def test_matches_matmul(self, rng):
        layer = Dense("fc", 8)
        x = rng.normal(size=(20,)).astype(np.float32)
        weight = rng.normal(size=(8, 20)).astype(np.float32)
        bias = rng.normal(size=(8,)).astype(np.float32)
        out = layer.forward([x], {"weight": weight, "bias": bias})
        np.testing.assert_allclose(out, weight @ x + bias, rtol=1e-5)

    def test_zero_weight_gives_bias(self, rng):
        layer = Dense("fc", 4)
        x = rng.normal(size=(10,)).astype(np.float32)
        bias = np.array([1, 2, 3, 4], dtype=np.float32)
        out = layer.forward([x], {"weight": np.zeros((4, 10), np.float32),
                                  "bias": bias})
        np.testing.assert_array_equal(out, bias)
