"""Deterministic parameter materialization."""

import numpy as np

from repro.nn import weights


class TestInitParam:
    def test_deterministic_across_calls(self):
        a = weights.init_param((4, 8), "net", "layer", "weight")
        b = weights.init_param((4, 8), "net", "layer", "weight")
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = weights.init_param((4, 8), "net", "layer1", "weight")
        b = weights.init_param((4, 8), "net", "layer2", "weight")
        assert not np.array_equal(a, b)

    def test_he_scale(self):
        w = weights.init_param((64, 1000), "n", "l", "w")
        expected = np.sqrt(2.0 / 1000)
        assert abs(w.std() - expected) / expected < 0.1

    def test_dtype_float32(self):
        assert weights.init_param((4,), "n", "l", "w").dtype == np.float32

    def test_explicit_scale(self):
        w = weights.init_param((10000,), "n", "l", "w", scale=0.5)
        assert abs(w.std() - 0.5) < 0.05


class TestMaterialize:
    def test_bias_like_params_zero(self):
        params = weights.materialize("n", "l", {"bias": (8,), "beta": (8,),
                                                "mean": (8,)})
        for name in ("bias", "beta", "mean"):
            np.testing.assert_array_equal(params[name], np.zeros(8))

    def test_variance_and_gamma_ones(self):
        params = weights.materialize("n", "l", {"var": (8,), "gamma": (8,)})
        np.testing.assert_array_equal(params["var"], np.ones(8))
        np.testing.assert_array_equal(params["gamma"], np.ones(8))

    def test_weights_nonzero(self):
        params = weights.materialize("n", "l", {"weight": (8, 8)})
        assert np.abs(params["weight"]).sum() > 0

    def test_empty_spec(self):
        assert weights.materialize("n", "l", {}) == {}

    def test_network_name_affects_values(self):
        a = weights.materialize("net-a", "l", {"weight": (4, 4)})["weight"]
        b = weights.materialize("net-b", "l", {"weight": (4, 4)})["weight"]
        assert not np.array_equal(a, b)
