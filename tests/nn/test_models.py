"""The six paper benchmark networks: structure and published parameter
counts."""

import pytest

from repro.nn.models import (
    MODEL_BUILDERS,
    benchmark_names,
    build,
    build_alexnet,
    build_fcnn,
    build_lenet,
    build_resnet18,
    build_squeezenet,
    build_vgg16,
)


class TestRegistry:
    def test_benchmark_names_in_paper_order(self):
        assert benchmark_names() == [
            "fcnn", "lenet", "alexnet", "vgg16", "squeezenet", "resnet18",
        ]

    def test_build_by_name(self):
        assert build("lenet").name == "lenet"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown network"):
            build("transformer")

    @pytest.mark.parametrize("name", benchmark_names())
    def test_every_builder_yields_valid_graph(self, name):
        net = MODEL_BUILDERS[name]()
        assert net.output_name == "softmax"
        assert len(net.segments()) >= 1


class TestFCNN:
    def test_three_hidden_layers(self):
        # The paper: "The FCNN in this work has three hidden layers."
        net = build_fcnn()
        dense = net.layers_of_class("dense")
        assert len(dense) == 4  # 3 hidden + output
        assert net.output_shape == (10,)

    def test_configurable_geometry(self):
        net = build_fcnn(input_features=100, hidden=32, num_hidden=2, classes=5)
        assert net.input_shape == (100,)
        assert net.output_shape == (5,)
        assert len(net.layers_of_class("dense")) == 3


class TestLeNet:
    def test_structure(self):
        net = build_lenet()
        assert net.input_shape == (1, 28, 28)
        assert len(net.layers_of_class("conv")) == 2
        assert len(net.layers_of_class("dense")) == 3
        assert net.node("conv1").out_shape == (6, 28, 28)
        assert net.node("conv2").out_shape == (16, 10, 10)

    def test_parameter_count(self):
        # Classic LeNet-5: ~61.7k parameters.
        assert build_lenet().total_param_bytes() / 4 == pytest.approx(61706, rel=0.01)


class TestAlexNet:
    def test_structure(self):
        net = build_alexnet()
        assert len(net) == 24  # paper: "AlexNet has 25 layers" (incl. input)
        assert net.node("conv1").out_shape == (96, 55, 55)
        assert net.node("pool5").out_shape == (256, 6, 6)
        assert net.node("fc6").out_shape == (4096,)

    def test_parameter_count(self):
        # Single-tower AlexNet: ~62.37M parameters.
        params = build_alexnet().total_param_bytes() / 4
        assert params == pytest.approx(62.37e6, rel=0.01)

    def test_flops(self):
        # ~2.27 GFLOPs MAC-counted-as-2 forward pass.
        assert build_alexnet().total_flops() == pytest.approx(2.28e9, rel=0.05)


class TestVGG16:
    def test_structure(self):
        net = build_vgg16()
        assert len(net) == 40  # paper: "VGG has 40 layers"
        assert len(net.layers_of_class("conv")) == 13
        assert len(net.layers_of_class("dense")) == 3
        assert net.node("pool5").out_shape == (512, 7, 7)

    def test_parameter_count(self):
        # Published VGG-16: ~138.36M parameters.
        params = build_vgg16().total_param_bytes() / 4
        assert params == pytest.approx(138.36e6, rel=0.01)

    def test_flops(self):
        # ~30.9 GFLOPs forward pass.
        assert build_vgg16().total_flops() == pytest.approx(30.9e9, rel=0.05)


class TestSqueezeNet:
    def test_structure(self):
        net = build_squeezenet()
        assert len(net) > 60  # paper: "more than 60 layers"
        assert len(net.layers_of_class("conv")) == 26  # conv1 + 8 fires x3 + conv10

    def test_parameter_count(self):
        # SqueezeNet v1.0: ~1.25M parameters ("50x fewer than AlexNet").
        squeezenet = build_squeezenet().total_param_bytes() / 4
        alexnet = build_alexnet().total_param_bytes() / 4
        assert squeezenet == pytest.approx(1.25e6, rel=0.02)
        assert alexnet / squeezenet == pytest.approx(50, rel=0.05)

    def test_fire_module_concat_width(self):
        net = build_squeezenet()
        assert net.node("fire2/concat").out_shape[0] == 128
        assert net.node("fire9/concat").out_shape[0] == 512


class TestResNet18:
    def test_structure(self):
        net = build_resnet18()
        assert len(net.layers_of_class("conv")) == 20  # stem + 16 block + 3 proj
        assert net.node("pool1").out_shape == (64, 56, 56)
        assert net.node("gap").out_shape == (512,)

    def test_parameter_count(self):
        # Published ResNet-18: ~11.69M parameters.
        params = build_resnet18().total_param_bytes() / 4
        assert params == pytest.approx(11.69e6, rel=0.01)

    def test_stage_downsampling(self):
        net = build_resnet18()
        assert net.node("layer2.1/add").out_shape == (128, 28, 28)
        assert net.node("layer4.2/add").out_shape == (512, 7, 7)
