"""ReLU, Add, Softmax."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Add, ReLU, Softmax


class TestReLU:
    def test_shape_preserved(self):
        assert ReLU("r").infer_shape([(3, 8, 8)]) == (3, 8, 8)
        assert ReLU("r").infer_shape([(10,)]) == (10,)

    def test_rejects_two_inputs(self):
        with pytest.raises(ShapeError):
            ReLU("r").infer_shape([(3,), (3,)])

    def test_numerics(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(ReLU("r").forward([x], {}), [0, 0, 2])

    def test_flops_one_per_element(self):
        assert ReLU("r").flops([(4, 4, 4)], (4, 4, 4)) == 64


class TestAdd:
    def test_shape(self):
        assert Add("a").infer_shape([(3, 8, 8), (3, 8, 8)]) == (3, 8, 8)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            Add("a").infer_shape([(3, 8, 8), (4, 8, 8)])

    def test_rejects_single_input(self):
        with pytest.raises(ShapeError):
            Add("a").infer_shape([(3, 8, 8)])

    def test_numerics(self, rng):
        a = rng.normal(size=(2, 3, 3)).astype(np.float32)
        b = rng.normal(size=(2, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(Add("x").forward([a, b], {}), a + b)

    def test_not_partitionable(self):
        # Add is a DAG join point, executed after branch synchronization.
        assert not Add("a").partitionable


class TestSoftmax:
    def test_shape(self):
        assert Softmax("s").infer_shape([(10,)]) == (10,)

    def test_rejects_feature_map(self):
        with pytest.raises(ShapeError):
            Softmax("s").infer_shape([(3, 8, 8)])

    def test_sums_to_one(self, rng):
        x = rng.normal(size=(100,)).astype(np.float32)
        out = Softmax("s").forward([x], {})
        assert out.sum() == pytest.approx(1.0, rel=1e-5)
        assert (out >= 0).all()

    def test_numerically_stable_for_large_logits(self):
        x = np.array([1000.0, 1001.0, 999.0], dtype=np.float32)
        out = Softmax("s").forward([x], {})
        assert np.isfinite(out).all()
        assert out.argmax() == 1

    def test_matches_reference(self, rng):
        x = rng.normal(size=(10,)).astype(np.float32)
        out = Softmax("s").forward([x], {})
        e = np.exp(x - x.max())
        np.testing.assert_allclose(out, e / e.sum(), rtol=1e-5)
