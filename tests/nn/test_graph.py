"""NetworkGraph construction, validation, and accounting."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.nn.graph import INPUT, NetworkGraph
from repro.nn.layers import Concat, Conv2D, Dense, Flatten, ReLU, Softmax

from ..conftest import make_branch_net, make_chain_net


class TestConstruction:
    def test_implicit_chaining(self):
        net = make_chain_net()
        node = net.node("relu1")
        assert node.input_names == ("conv1",)

    def test_explicit_inputs(self):
        net = make_branch_net()
        assert net.node("concat").input_names == ("left_relu", "right_relu")

    def test_first_layer_reads_network_input(self):
        net = make_chain_net()
        assert net.node("conv1").input_names == (INPUT,)

    def test_duplicate_name_rejected(self):
        net = NetworkGraph("n", (4,))
        net.add(Dense("fc", 4))
        with pytest.raises(GraphError, match="duplicate"):
            net.add(Dense("fc", 4))

    def test_unknown_dependency_rejected(self):
        net = NetworkGraph("n", (4,))
        with pytest.raises(GraphError, match="unknown layer"):
            net.add(Dense("fc", 4), inputs=["ghost"])

    def test_layer_named_input_rejected(self):
        net = NetworkGraph("n", (4,))
        with pytest.raises(GraphError):
            net.add(Dense(INPUT, 4))

    def test_shape_mismatch_rejected_at_add(self):
        net = NetworkGraph("n", (3, 8, 8))
        with pytest.raises(ShapeError):
            net.add(Dense("fc", 4))  # needs a Flatten first

    def test_empty_network_name_rejected(self):
        with pytest.raises(GraphError):
            NetworkGraph("", (4,))


class TestStructure:
    def test_topo_order_is_insertion_order(self):
        net = make_chain_net()
        order = net.topo_order()
        assert order[0] == "conv1" and order[-1] == "softmax"

    def test_output_name(self):
        assert make_chain_net().output_name == "softmax"

    def test_output_shape(self):
        assert make_chain_net().output_shape == (10,)

    def test_multiple_sinks_rejected(self):
        net = NetworkGraph("n", (4,))
        net.add(Dense("a", 4))
        net.add(Dense("b", 4), inputs=[INPUT])
        with pytest.raises(GraphError, match="exactly one output"):
            net.output_name

    def test_contains_and_len(self):
        net = make_chain_net()
        assert "conv1" in net
        assert "nope" not in net
        assert len(net) == 9

    def test_node_lookup_unknown(self):
        with pytest.raises(GraphError):
            make_chain_net().node("ghost")


class TestAccounting:
    def test_out_bytes(self):
        net = make_chain_net()
        assert net.out_bytes("conv1") == 8 * 16 * 16 * 4

    def test_total_param_bytes(self):
        net = NetworkGraph("n", (4,))
        net.add(Dense("fc", 8))
        assert net.total_param_bytes() == (4 * 8 + 8) * 4

    def test_total_flops_positive(self):
        assert make_chain_net().total_flops() > 0

    def test_layers_of_class(self):
        net = make_chain_net()
        assert net.layers_of_class("conv") == ["conv1"]
        assert net.layers_of_class("dense") == ["fc1", "fc2"]

    def test_work_matches_layer(self):
        net = make_chain_net()
        work = net.work("fc1")
        assert work.kernel_class == "dense"
        assert work.out_bytes == 32 * 4

    def test_summary_mentions_every_layer(self):
        net = make_chain_net()
        text = net.summary()
        for name in net.topo_order():
            assert name in text


class TestForward:
    def test_forward_shape_and_distribution(self, rng):
        net = make_chain_net()
        out = net.forward(rng.random(net.input_shape, dtype=np.float32))
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_forward_rejects_wrong_input_shape(self, rng):
        net = make_chain_net()
        with pytest.raises(ShapeError):
            net.forward(rng.random((3, 8, 8), dtype=np.float32))

    def test_forward_deterministic(self, rng):
        net = make_chain_net()
        x = rng.random(net.input_shape, dtype=np.float32)
        np.testing.assert_array_equal(net.forward(x), net.forward(x))

    def test_forward_branch_graph(self, rng):
        net = make_branch_net()
        out = net.forward(rng.random(net.input_shape, dtype=np.float32))
        assert out.shape == (10,)

    def test_params_can_be_supplied(self, rng):
        net = make_chain_net()
        params = net.materialize_params()
        x = rng.random(net.input_shape, dtype=np.float32)
        np.testing.assert_array_equal(net.forward(x, params), net.forward(x))
