"""Conv2D: shapes, work accounting, and numerics against scipy."""

import numpy as np
import pytest
from scipy import signal

from repro.errors import ShapeError
from repro.nn.layers import Conv2D, im2col


def reference_conv(x, weight, bias, stride, padding):
    """Direct scipy cross-correlation reference."""
    o, c, k, _ = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    h = (x.shape[1] - k) // stride + 1
    w = (x.shape[2] - k) // stride + 1
    out = np.zeros((o, h, w), dtype=np.float64)
    for oc in range(o):
        acc = np.zeros((x.shape[1] - k + 1, x.shape[2] - k + 1))
        for ic in range(c):
            acc += signal.correlate2d(x[ic], weight[oc, ic], mode="valid")
        out[oc] = acc[::stride, ::stride] + bias[oc]
    return out.astype(np.float32)


class TestShapes:
    def test_basic_shape(self):
        layer = Conv2D("c", out_channels=8, kernel_size=3, padding=1)
        assert layer.infer_shape([(3, 16, 16)]) == (8, 16, 16)

    def test_strided_shape(self):
        layer = Conv2D("c", out_channels=96, kernel_size=11, stride=4)
        assert layer.infer_shape([(3, 227, 227)]) == (96, 55, 55)

    def test_rejects_vector_input(self):
        layer = Conv2D("c", out_channels=8, kernel_size=3)
        with pytest.raises(ShapeError):
            layer.infer_shape([(10,)])

    def test_rejects_multiple_inputs(self):
        layer = Conv2D("c", out_channels=8, kernel_size=3)
        with pytest.raises(ShapeError):
            layer.infer_shape([(3, 8, 8), (3, 8, 8)])

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=0, kernel_size=3)
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=8, kernel_size=3, stride=0)


class TestWork:
    def test_param_shapes(self):
        layer = Conv2D("c", out_channels=8, kernel_size=3)
        params = layer.param_shapes([(3, 16, 16)])
        assert params["weight"] == (8, 3, 3, 3)
        assert params["bias"] == (8,)

    def test_flops_formula(self):
        layer = Conv2D("c", out_channels=8, kernel_size=3, padding=1)
        out_shape = layer.infer_shape([(3, 16, 16)])
        flops = layer.flops([(3, 16, 16)], out_shape)
        macs = 8 * 16 * 16 * 3 * 3 * 3
        assert flops == pytest.approx(2 * macs + 8 * 16 * 16)

    def test_work_bytes(self):
        layer = Conv2D("c", out_channels=8, kernel_size=3, padding=1)
        out_shape = layer.infer_shape([(3, 16, 16)])
        work = layer.work([(3, 16, 16)], out_shape)
        assert work.act_in_bytes == 3 * 16 * 16 * 4
        assert work.out_bytes == 8 * 16 * 16 * 4
        assert work.weight_bytes == (8 * 3 * 3 * 3 + 8) * 4
        assert work.out_elements == 8 * 16 * 16
        assert work.kernel_class == "conv"

    def test_partitionable(self):
        assert Conv2D("c", 8, 3).partitionable


class TestNumerics:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 2)])
    def test_matches_scipy(self, rng, stride, padding):
        layer = Conv2D("c", out_channels=4, kernel_size=3,
                       stride=stride, padding=padding)
        x = rng.normal(size=(3, 12, 12)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=(4,)).astype(np.float32)
        out = layer.forward([x], {"weight": weight, "bias": bias})
        ref = reference_conv(x, weight, bias, stride, padding)
        assert out.shape == ref.shape
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_1x1_conv_is_channel_mix(self, rng):
        layer = Conv2D("c", out_channels=2, kernel_size=1)
        x = rng.normal(size=(3, 4, 4)).astype(np.float32)
        weight = rng.normal(size=(2, 3, 1, 1)).astype(np.float32)
        bias = np.zeros(2, dtype=np.float32)
        out = layer.forward([x], {"weight": weight, "bias": bias})
        ref = np.einsum("oc,chw->ohw", weight[:, :, 0, 0], x)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)

    def test_output_dtype_float32(self, rng):
        layer = Conv2D("c", out_channels=2, kernel_size=3)
        x = rng.normal(size=(1, 5, 5)).astype(np.float32)
        params = {
            "weight": rng.normal(size=(2, 1, 3, 3)).astype(np.float32),
            "bias": np.zeros(2, dtype=np.float32),
        }
        assert layer.forward([x], params).dtype == np.float32


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(3, 8, 8)).astype(np.float32)
        cols = im2col(x, kernel=3, stride=1, padding=0)
        assert cols.shape == (3 * 9, 6 * 6)

    def test_identity_kernel1(self, rng):
        x = rng.normal(size=(2, 4, 4)).astype(np.float32)
        cols = im2col(x, kernel=1, stride=1, padding=0)
        np.testing.assert_array_equal(cols, x.reshape(2, 16))
