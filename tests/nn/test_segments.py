"""DAG segmentation: chains and fork-join branch regions (Figure 5)."""

import pytest

from repro.errors import GraphError
from repro.nn.graph import BranchSegment, ChainSegment, NetworkGraph
from repro.nn.layers import Add, Concat, Conv2D, Dense, Flatten, ReLU, Softmax
from repro.nn.models import build

from ..conftest import make_branch_net, make_chain_net, make_residual_net


class TestChainSegmentation:
    def test_pure_chain_is_one_segment(self):
        segments = make_chain_net().segments()
        assert len(segments) == 1
        assert isinstance(segments[0], ChainSegment)
        assert len(segments[0].layers) == 9

    def test_segments_cover_all_layers(self):
        net = make_branch_net()
        segments = net.segments()
        covered = set()
        for seg in segments:
            if isinstance(seg, ChainSegment):
                covered.update(seg.layers)
            else:
                for branch in seg.branches:
                    covered.update(branch)
        assert covered == set(net.topo_order())


class TestForkJoin:
    def test_fire_style_branches(self):
        net = make_branch_net()
        segments = net.segments()
        branch_segs = [s for s in segments if isinstance(s, BranchSegment)]
        assert len(branch_segs) == 1
        seg = branch_segs[0]
        assert seg.join == "concat"
        assert sorted(len(b) for b in seg.branches) == [2, 2]

    def test_identity_shortcut_branch_is_empty(self):
        net = make_residual_net()
        seg = next(
            s for s in net.segments() if isinstance(s, BranchSegment)
        )
        assert seg.join == "add"
        lengths = sorted(len(b) for b in seg.branches)
        assert lengths == [0, 3]  # identity shortcut + 3-layer main path

    def test_fork_layer_stays_in_preceding_chain(self):
        net = make_branch_net()
        segments = net.segments()
        first = segments[0]
        assert isinstance(first, ChainSegment)
        assert first.layers[-1] == "squeeze"

    def test_join_starts_following_chain(self):
        net = make_branch_net()
        segments = net.segments()
        after = segments[2]
        assert isinstance(after, ChainSegment)
        assert after.layers[0] == "concat"


class TestPaperNetworks:
    def test_squeezenet_has_eight_fire_forks(self):
        segments = build("squeezenet").segments()
        branch_segs = [s for s in segments if isinstance(s, BranchSegment)]
        assert len(branch_segs) == 8
        assert all(seg.join.endswith("/concat") for seg in branch_segs)

    def test_resnet_has_eight_block_forks(self):
        segments = build("resnet18").segments()
        branch_segs = [s for s in segments if isinstance(s, BranchSegment)]
        assert len(branch_segs) == 8
        assert all(seg.join.endswith("/add") for seg in branch_segs)

    def test_resnet_mixes_identity_and_projection_shortcuts(self):
        segments = build("resnet18").segments()
        shortcut_lengths = []
        for seg in segments:
            if isinstance(seg, BranchSegment):
                shortcut_lengths.append(min(len(b) for b in seg.branches))
        # layer1 blocks + second blocks of each stage: identity (0);
        # first blocks of stages 2-4: projection conv+bn (2).
        assert shortcut_lengths.count(0) == 5
        assert shortcut_lengths.count(2) == 3

    @pytest.mark.parametrize("name", ["fcnn", "lenet", "alexnet", "vgg16"])
    def test_chain_networks_have_no_branches(self, name):
        segments = build(name).segments()
        assert all(isinstance(s, ChainSegment) for s in segments)
        assert len(segments) == 1


class TestUnsupportedShapes:
    def test_nested_fork_rejected(self):
        net = NetworkGraph("nested", (4, 8, 8))
        fork = net.add(Conv2D("stem", 4, 1))
        # Left branch itself forks — unsupported.
        inner = net.add(Conv2D("left", 4, 1), inputs=[fork])
        net.add(Conv2D("left_a", 4, 1), inputs=[inner])
        net.add(Conv2D("left_b", 4, 1), inputs=[inner])
        net.add(Concat("inner_join"), inputs=["left_a", "left_b"])
        net.add(Conv2D("right", 8, 1), inputs=[fork])
        net.add(Concat("outer_join"), inputs=["inner_join", "right"])
        with pytest.raises(GraphError, match="nested fork|different layers"):
            net.segments()

    def test_branches_must_reconverge_at_same_join(self):
        net = NetworkGraph("diverge", (4,))
        fork = net.add(Dense("stem", 4))
        net.add(Dense("a", 4), inputs=[fork])
        net.add(Dense("b", 4), inputs=[fork])
        net.add(Dense("a2", 4), inputs=["a"])
        net.add(Dense("b2", 4), inputs=["b"])
        # Two sinks: also invalid, but segmentation walks from the fork.
        with pytest.raises(GraphError):
            net.segments()
