"""Depthwise convolutions and MobileNetV1 (extension substrate)."""

import numpy as np
import pytest
from scipy import signal

from repro.errors import ShapeError
from repro.nn.layers import DepthwiseConv2D
from repro.nn.models import build, build_mobilenet_v1


class TestDepthwiseShapes:
    def test_channels_preserved(self):
        layer = DepthwiseConv2D("dw", kernel_size=3, padding=1)
        assert layer.infer_shape([(32, 28, 28)]) == (32, 28, 28)

    def test_stride(self):
        layer = DepthwiseConv2D("dw", kernel_size=3, stride=2, padding=1)
        assert layer.infer_shape([(64, 112, 112)]) == (64, 56, 56)

    def test_rejects_vector(self):
        with pytest.raises(ShapeError):
            DepthwiseConv2D("dw", 3).infer_shape([(10,)])

    def test_rejects_bad_params(self):
        with pytest.raises(ShapeError):
            DepthwiseConv2D("dw", kernel_size=0)


class TestDepthwiseWork:
    def test_param_shapes(self):
        layer = DepthwiseConv2D("dw", kernel_size=3)
        params = layer.param_shapes([(32, 8, 8)])
        assert params["weight"] == (32, 3, 3)
        assert params["bias"] == (32,)

    def test_flops_linear_in_channels(self):
        layer = DepthwiseConv2D("dw", kernel_size=3, padding=1)
        shape = (32, 8, 8)
        flops = layer.flops([shape], layer.infer_shape([shape]))
        assert flops == 2 * 32 * 8 * 8 * 9 + 32 * 8 * 8

    def test_far_cheaper_than_standard_conv(self):
        from repro.nn.layers import Conv2D
        shape = (64, 14, 14)
        dw = DepthwiseConv2D("dw", kernel_size=3, padding=1)
        full = Conv2D("c", out_channels=64, kernel_size=3, padding=1)
        dw_flops = dw.flops([shape], dw.infer_shape([shape]))
        full_flops = full.flops([shape], full.infer_shape([shape]))
        assert full_flops / dw_flops > 30  # ~C_in times cheaper

    def test_low_arithmetic_intensity(self):
        layer = DepthwiseConv2D("dw", kernel_size=3, padding=1)
        shape = (64, 14, 14)
        work = layer.work([shape], layer.infer_shape([shape]))
        assert work.arithmetic_intensity < 5.0  # memory-bound regime


class TestDepthwiseNumerics:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_per_channel_scipy(self, rng, stride, padding):
        layer = DepthwiseConv2D("dw", kernel_size=3, stride=stride,
                                padding=padding)
        x = rng.normal(size=(4, 10, 10)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3)).astype(np.float32)
        bias = rng.normal(size=(4,)).astype(np.float32)
        out = layer.forward([x], {"weight": weight, "bias": bias})
        for c in range(4):
            padded = np.pad(x[c], padding) if padding else x[c]
            ref = signal.correlate2d(padded, weight[c], mode="valid")
            ref = ref[::stride, ::stride] + bias[c]
            np.testing.assert_allclose(out[c], ref, rtol=1e-4, atol=1e-5)


class TestMobileNet:
    def test_published_size(self):
        net = build_mobilenet_v1()
        # MobileNetV1: ~4.2M params, ~1.1 GFLOPs (569M MACs).
        assert net.total_param_bytes() / 4 == pytest.approx(4.23e6, rel=0.03)
        assert net.total_flops() == pytest.approx(1.15e9, rel=0.05)

    def test_width_multiplier_shrinks_model(self):
        full = build_mobilenet_v1()
        half = build_mobilenet_v1(width_multiplier=0.5)
        assert half.total_param_bytes() < full.total_param_bytes() / 2.5

    def test_width_multiplier_validated(self):
        with pytest.raises(ValueError):
            build_mobilenet_v1(width_multiplier=0.0)

    def test_buildable_by_name_but_not_a_paper_benchmark(self):
        from repro.nn.models import benchmark_names
        assert build("mobilenet-v1").name == "mobilenet-v1"
        assert "mobilenet-v1" not in benchmark_names()

    def test_numeric_forward(self, rng):
        net = build_mobilenet_v1(classes=10, width_multiplier=0.25)
        out = net.forward(rng.random(net.input_shape, dtype=np.float32))
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0, rel=1e-3)

    def test_edgenn_tunes_mobilenet(self):
        from repro import EdgeNN
        from repro.baselines import run_gpu_only
        from repro.hardware.specs import JETSON_AGX_XAVIER
        engine = EdgeNN("mobilenet-v1")
        report = engine.run()
        baseline = run_gpu_only("mobilenet-v1", JETSON_AGX_XAVIER)
        assert report.total_s <= baseline.total_s * 1.001

    def test_spec_round_trip(self):
        from repro.nn.spec import network_from_spec, network_to_spec
        net = build_mobilenet_v1(classes=10, width_multiplier=0.25)
        rebuilt = network_from_spec(network_to_spec(net))
        assert rebuilt.total_flops() == pytest.approx(net.total_flops())
