"""Tensor shape helpers."""

import pytest

from repro.errors import ShapeError
from repro.nn import tensor


class TestValidateShape:
    def test_normalizes_to_tuple(self):
        assert tensor.validate_shape([3, 4]) == (3, 4)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            tensor.validate_shape(())

    def test_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            tensor.validate_shape((3, 0, 4))


class TestSizes:
    def test_numel(self):
        assert tensor.numel((3, 4, 5)) == 60

    def test_nbytes_float32(self):
        assert tensor.nbytes((10,)) == 40
        assert tensor.nbytes((3, 224, 224)) == 3 * 224 * 224 * 4


class TestShapePredicates:
    def test_is_chw(self):
        assert tensor.is_chw((3, 8, 8))
        assert not tensor.is_chw((10,))
        assert not tensor.is_chw((1, 2, 3, 4))

    def test_is_vector(self):
        assert tensor.is_vector((10,))
        assert not tensor.is_vector((3, 8, 8))


class TestConvOutputHw:
    def test_basic(self):
        assert tensor.conv_output_hw((28, 28), kernel=5, stride=1, padding=2) == (28, 28)

    def test_stride(self):
        assert tensor.conv_output_hw((227, 227), kernel=11, stride=4, padding=0) == (55, 55)

    def test_floor_semantics(self):
        # SqueezeNet conv1: (224 - 7) // 2 + 1 = 109.
        assert tensor.conv_output_hw((224, 224), kernel=7, stride=2, padding=0) == (109, 109)

    def test_padded_pool(self):
        # ResNet stem pool: (112 + 2 - 3) // 2 + 1 = 56.
        assert tensor.conv_output_hw((112, 112), kernel=3, stride=2, padding=1) == (56, 56)

    def test_window_does_not_fit(self):
        with pytest.raises(ShapeError):
            tensor.conv_output_hw((4, 4), kernel=7, stride=1, padding=0)

    def test_bad_window_params(self):
        with pytest.raises(ShapeError):
            tensor.conv_output_hw((8, 8), kernel=0, stride=1, padding=0)
        with pytest.raises(ShapeError):
            tensor.conv_output_hw((8, 8), kernel=3, stride=1, padding=-1)
