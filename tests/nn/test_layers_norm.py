"""LRN and BatchNorm2D."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import LRN, BatchNorm2D


class TestLRN:
    def test_shape_preserved(self):
        assert LRN("n").infer_shape([(96, 55, 55)]) == (96, 55, 55)

    def test_rejects_vector(self):
        with pytest.raises(ShapeError):
            LRN("n").infer_shape([(10,)])

    def test_rejects_bad_size(self):
        with pytest.raises(ShapeError):
            LRN("n", size=0)

    def test_matches_reference(self, rng):
        layer = LRN("n", size=3, alpha=1e-2, beta=0.5, k=1.0)
        x = rng.normal(size=(5, 4, 4)).astype(np.float32)
        out = layer.forward([x], {})
        # Reference: per channel window sum of squares.
        sq = x * x
        for ch in range(5):
            lo, hi = max(0, ch - 1), min(5, ch + 2)
            denom = (1.0 + (1e-2 / 3) * sq[lo:hi].sum(axis=0)) ** 0.5
            np.testing.assert_allclose(out[ch], x[ch] / denom, rtol=1e-5)

    def test_identity_at_zero_alpha_limit(self, rng):
        layer = LRN("n", size=5, alpha=0.0, beta=0.75, k=1.0)
        x = rng.normal(size=(8, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(layer.forward([x], {}), x, rtol=1e-6)

    def test_kernel_class(self):
        assert LRN("n").kernel_class == "norm"


class TestBatchNorm:
    def test_shape_preserved(self):
        assert BatchNorm2D("bn").infer_shape([(64, 56, 56)]) == (64, 56, 56)

    def test_param_shapes(self):
        params = BatchNorm2D("bn").param_shapes([(64, 56, 56)])
        assert set(params) == {"gamma", "beta", "mean", "var"}
        assert all(shape == (64,) for shape in params.values())

    def test_identity_with_default_stats(self, rng):
        layer = BatchNorm2D("bn", eps=0.0)
        x = rng.normal(size=(4, 3, 3)).astype(np.float32)
        params = {
            "gamma": np.ones(4, np.float32),
            "beta": np.zeros(4, np.float32),
            "mean": np.zeros(4, np.float32),
            "var": np.ones(4, np.float32),
        }
        np.testing.assert_allclose(layer.forward([x], params), x, rtol=1e-6)

    def test_normalizes_with_stats(self, rng):
        layer = BatchNorm2D("bn", eps=0.0)
        x = rng.normal(size=(2, 4, 4)).astype(np.float32)
        params = {
            "gamma": np.array([2.0, 1.0], np.float32),
            "beta": np.array([0.0, 5.0], np.float32),
            "mean": np.array([1.0, -1.0], np.float32),
            "var": np.array([4.0, 1.0], np.float32),
        }
        out = layer.forward([x], params)
        np.testing.assert_allclose(out[0], (x[0] - 1.0) / 2.0 * 2.0, rtol=1e-5)
        np.testing.assert_allclose(out[1], (x[1] + 1.0) + 5.0, rtol=1e-5)

    def test_rejects_vector(self):
        with pytest.raises(ShapeError):
            BatchNorm2D("bn").infer_shape([(10,)])
