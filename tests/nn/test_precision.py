"""Reduced-precision performance modeling."""

import pytest

from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.errors import ReproError
from repro.hardware.roofline import KernelWork
from repro.hardware.specs import ProcessorKind
from repro.nn.precision import Precision, scale_work

from ..conftest import make_chain_net


def work():
    return KernelWork("conv", flops=1e9, act_in_bytes=1e6, weight_bytes=2e6,
                      out_bytes=4e6, out_elements=1e6)


class TestPrecisionEnum:
    def test_byte_widths(self):
        assert Precision.FP32.bytes_per_element == 4
        assert Precision.FP16.bytes_per_element == 2
        assert Precision.INT8.bytes_per_element == 1

    def test_byte_ratio(self):
        assert Precision.INT8.byte_ratio == 0.25

    def test_fp32_speedup_is_identity(self):
        for proc in ProcessorKind:
            assert Precision.FP32.compute_speedup(proc) == 1.0

    def test_narrower_is_faster(self):
        for proc in ProcessorKind:
            assert (Precision.INT8.compute_speedup(proc)
                    > Precision.FP16.compute_speedup(proc)
                    > 1.0)


class TestScaleWork:
    def test_fp32_is_noop(self):
        w = work()
        assert scale_work(w, Precision.FP32) is w

    def test_bytes_shrink_flops_stay(self):
        w = scale_work(work(), Precision.INT8)
        assert w.act_in_bytes == 0.25e6
        assert w.weight_bytes == 0.5e6
        assert w.out_bytes == 1e6
        assert w.flops == 1e9
        assert w.out_elements == 1e6

    def test_rejects_non_precision(self):
        with pytest.raises(ReproError):
            scale_work(work(), "int8")


class TestEndToEnd:
    def _latency(self, precision):
        config = EdgeNNConfig(precision=precision)
        return EdgeNN(make_chain_net(f"prec-{precision.value}"),
                      config=config).run().total_s

    def test_narrower_precision_is_faster(self):
        fp32 = self._latency(Precision.FP32)
        fp16 = self._latency(Precision.FP16)
        int8 = self._latency(Precision.INT8)
        assert int8 < fp16 < fp32

    def test_quantization_does_not_reach_ideal_speedup(self):
        # Launch overheads and copy latencies don't shrink with the data.
        fp32 = self._latency(Precision.FP32)
        int8 = self._latency(Precision.INT8)
        assert fp32 / int8 < 4.0

    def test_numerics_unaffected(self):
        from repro.workloads import input_for
        import numpy as np
        net = make_chain_net("prec-num")
        x = input_for(net, seed=5)
        base = EdgeNN(net).infer(x)
        quant = EdgeNN(net, config=EdgeNNConfig(precision=Precision.INT8))
        np.testing.assert_array_equal(quant.infer(x), base)

    @pytest.mark.parametrize("name", ["alexnet", "squeezenet"])
    def test_paper_networks_speed_up(self, name):
        fp32 = EdgeNN(name).run().total_s
        int8 = EdgeNN(
            name, config=EdgeNNConfig(precision=Precision.INT8)
        ).run().total_s
        assert 1.5 < fp32 / int8 < 4.5
