"""Pooling layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import AvgPool2D, GlobalAvgPool, MaxPool2D


class TestShapes:
    def test_maxpool_default_stride_equals_kernel(self):
        layer = MaxPool2D("p", kernel_size=2)
        assert layer.infer_shape([(8, 16, 16)]) == (8, 8, 8)

    def test_overlapping_pool(self):
        layer = MaxPool2D("p", kernel_size=3, stride=2)
        assert layer.infer_shape([(96, 55, 55)]) == (96, 27, 27)

    def test_padded_pool(self):
        layer = MaxPool2D("p", kernel_size=3, stride=2, padding=1)
        assert layer.infer_shape([(64, 112, 112)]) == (64, 56, 56)

    def test_global_avg_pool_shape(self):
        layer = GlobalAvgPool("gap")
        assert layer.infer_shape([(512, 7, 7)]) == (512,)

    def test_rejects_vector_input(self):
        with pytest.raises(ShapeError):
            MaxPool2D("p", 2).infer_shape([(10,)])
        with pytest.raises(ShapeError):
            GlobalAvgPool("gap").infer_shape([(10,)])

    def test_rejects_bad_params(self):
        with pytest.raises(ShapeError):
            MaxPool2D("p", kernel_size=0)
        with pytest.raises(ShapeError):
            MaxPool2D("p", kernel_size=2, stride=0)


class TestWork:
    def test_pool_has_no_params(self):
        layer = MaxPool2D("p", 2)
        assert layer.param_shapes([(8, 8, 8)]) == {}
        assert layer.param_bytes([(8, 8, 8)]) == 0

    def test_kernel_class(self):
        assert MaxPool2D("p", 2).kernel_class == "pool"
        assert GlobalAvgPool("g").kernel_class == "pool"

    def test_flops_scale_with_window(self):
        small = MaxPool2D("p", kernel_size=2)
        big = MaxPool2D("q", kernel_size=3, stride=2)
        shape = (8, 12, 12)
        f_small = small.flops([shape], small.infer_shape([shape]))
        f_big = big.flops([shape], big.infer_shape([shape]))
        assert f_small > 0 and f_big > 0

    def test_global_pool_not_partitionable(self):
        assert not GlobalAvgPool("g").partitionable
        assert MaxPool2D("p", 2).partitionable


class TestNumerics:
    def test_maxpool_simple(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = MaxPool2D("p", 2).forward([x], {})
        np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])

    def test_avgpool_simple(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = AvgPool2D("p", 2).forward([x], {})
        np.testing.assert_allclose(out[0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_padding_uses_neg_inf(self, rng):
        x = -np.abs(rng.normal(size=(1, 4, 4))).astype(np.float32) - 1.0
        out = MaxPool2D("p", kernel_size=3, stride=2, padding=1).forward([x], {})
        # All values are negative; padding must never win the max.
        assert out.max() < 0

    def test_overlapping_maxpool(self, rng):
        x = rng.normal(size=(2, 5, 5)).astype(np.float32)
        out = MaxPool2D("p", kernel_size=3, stride=2).forward([x], {})
        assert out.shape == (2, 2, 2)
        assert out[0, 0, 0] == pytest.approx(x[0, :3, :3].max())
        assert out[1, 1, 1] == pytest.approx(x[1, 2:5, 2:5].max())

    def test_global_avg_pool_values(self, rng):
        x = rng.normal(size=(3, 4, 4)).astype(np.float32)
        out = GlobalAvgPool("gap").forward([x], {})
        np.testing.assert_allclose(out, x.mean(axis=(1, 2)), rtol=1e-6)
