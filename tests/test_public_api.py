"""Public API surface: everything documented must import and resolve."""

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.baselines",
    "repro.cli",
    "repro.core",
    "repro.core.engine",
    "repro.core.executor",
    "repro.core.memory_manager",
    "repro.core.multitenant",
    "repro.core.partition",
    "repro.core.plan",
    "repro.core.plan_cache",
    "repro.core.profiler",
    "repro.core.report",
    "repro.core.scheduler",
    "repro.core.semantics",
    "repro.core.service",
    "repro.core.tuner",
    "repro.errors",
    "repro.eval",
    "repro.eval.breakdown",
    "repro.eval.experiments",
    "repro.eval.export",
    "repro.eval.formatting",
    "repro.eval.metrics",
    "repro.eval.sensitivity",
    "repro.hardware",
    "repro.hardware.advisor",
    "repro.hardware.calibration",
    "repro.hardware.contention",
    "repro.hardware.copy_engine",
    "repro.hardware.device",
    "repro.hardware.memory",
    "repro.hardware.power",
    "repro.hardware.roofline",
    "repro.hardware.specs",
    "repro.hardware.variants",
    "repro.nn",
    "repro.nn.graph",
    "repro.nn.layer",
    "repro.nn.layers",
    "repro.nn.models",
    "repro.nn.spec",
    "repro.nn.tensor",
    "repro.nn.weights",
    "repro.serving",
    "repro.serving.batcher",
    "repro.serving.report",
    "repro.serving.request",
    "repro.serving.scheduler",
    "repro.serving.simulator",
    "repro.sim",
    "repro.sim.stats",
    "repro.sim.timeline",
    "repro.sim.trace",
    "repro.units",
    "repro.workloads",
    "repro.workloads.arrivals",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize(
    "module_name",
    [m for m in PUBLIC_MODULES if m.count(".") <= 1],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_snippet_runs():
    """The README's quickstart must keep working verbatim."""
    from repro import EdgeNN
    from repro.baselines import run_gpu_only
    from repro.hardware import JETSON_AGX_XAVIER
    from repro.workloads import input_for

    baseline = run_gpu_only("lenet", JETSON_AGX_XAVIER)
    engine = EdgeNN("lenet")
    report = engine.run()
    assert report.total_s <= baseline.total_s
    probs = engine.infer(input_for("lenet"))
    assert probs.shape == (10,)


def test_top_level_convenience_names():
    for name in ("EdgeNN", "EdgeNNConfig", "Device", "NetworkGraph",
                 "JETSON_AGX_XAVIER", "build", "benchmark_names"):
        assert hasattr(repro, name)
