"""Execution backends: registry, analytic/numpy parity, overrides."""

import numpy as np
import pytest

from repro.compile import (
    AnalyticBackend,
    ExecutionBackend,
    NumpyBackend,
    compile_fixed,
    compile_plan,
    get_backend,
)
from repro.core.engine import EdgeNN
from repro.core.plan_cache import PlanCache
from repro.errors import ReproError
from repro.hardware.specs import JETSON_AGX_XAVIER


class TestRegistry:
    def test_known_backends(self):
        assert isinstance(get_backend("analytic"), AnalyticBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_backends_satisfy_protocol(self):
        assert isinstance(AnalyticBackend(), ExecutionBackend)
        assert isinstance(NumpyBackend(), ExecutionBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown execution backend"):
            get_backend("tpu")

    def test_options_forwarded(self):
        backend = get_backend("analytic", warm_weights=True, namespace="t0/")
        assert backend._warm_weights
        assert backend._namespace == "t0/"


class TestAnalyticBackend:
    def test_matches_engine_run(self):
        compiled = compile_plan("lenet", JETSON_AGX_XAVIER)
        via_backend = AnalyticBackend().execute(compiled)
        engine = EdgeNN("lenet", JETSON_AGX_XAVIER, plan_cache=PlanCache())
        assert via_backend.to_dict() == engine.run().to_dict()

    def test_rejects_payload(self):
        compiled = compile_fixed("lenet", JETSON_AGX_XAVIER)
        with pytest.raises(ReproError, match="no input payload"):
            AnalyticBackend().execute(
                compiled, payload=np.zeros((1, 1, 28, 28), np.float32)
            )

    def test_override_beats_lowering(self):
        # The artifact says serialized + host-staged; the backend override
        # restores concurrent zero-copy execution and must change timing.
        compiled = compile_fixed(
            "alexnet", JETSON_AGX_XAVIER, placement="gpu",
            serialize=True, host_staging=True,
        )
        pinned = AnalyticBackend().execute(compiled)
        overridden = AnalyticBackend(
            serialize=False, host_staging=False
        ).execute(compiled)
        assert overridden.total_s < pinned.total_s

    def test_warm_weights_drop_cold_copies(self):
        compiled = compile_fixed("alexnet", JETSON_AGX_XAVIER, placement="gpu")
        cold = AnalyticBackend().execute(compiled)
        warm = AnalyticBackend(warm_weights=True).execute(compiled)
        assert warm.total_s <= cold.total_s
        assert warm.copy_s_total <= cold.copy_s_total


class TestNumpyBackend:
    def test_requires_payload(self):
        compiled = compile_fixed("lenet", JETSON_AGX_XAVIER)
        with pytest.raises(ReproError, match="needs an input"):
            NumpyBackend().execute(compiled)

    def test_matches_reference_forward(self):
        compiled = compile_fixed("lenet", JETSON_AGX_XAVIER)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(compiled.graph.input_shape).astype(np.float32)
        got = NumpyBackend().execute(compiled, payload=x)
        want = compiled.graph.forward(x)
        np.testing.assert_array_equal(got, want)

    def test_params_cached_per_graph(self):
        compiled = compile_fixed("lenet", JETSON_AGX_XAVIER)
        backend = NumpyBackend()
        first = backend.params_for(compiled.graph)
        assert backend.params_for(compiled.graph) is first

    def test_placement_never_changes_math(self):
        x = None
        outputs = []
        for placement in ("cpu", "gpu"):
            compiled = compile_fixed(
                "lenet", JETSON_AGX_XAVIER, placement=placement
            )
            if x is None:
                rng = np.random.default_rng(3)
                x = rng.standard_normal(
                    compiled.graph.input_shape
                ).astype(np.float32)
            outputs.append(NumpyBackend().execute(compiled, payload=x))
        np.testing.assert_array_equal(outputs[0], outputs[1])
