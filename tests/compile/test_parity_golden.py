"""Refactor parity against frozen pre-refactor goldens.

``tests/golden/plan_parity.json`` was generated at the seed commit
(see ``tests/golden/generate_plan_goldens.py``) and pins the full
report-scalar surface of every model under all four ablation-flag
combinations, on both an integrated and a discrete device, plus a
digest of the NumPy forward pass.  The staged compilation pipeline
must reproduce all of it bit-for-bit: analytic numbers are pure-Python
floats and compare with ``==``; logits go through BLAS and compare via
digest first, tolerance as the diagnosable fallback.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.compile import AnalyticBackend, CompiledPlan, PlanArtifact
from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.memory_manager import MemoryPolicy
from repro.core.plan_cache import PlanCache
from repro.baselines.gpu_only import run_gpu_only
from repro.hardware.specs import JETSON_AGX_XAVIER, RTX_2080TI_HOST
from repro.nn.models import MODEL_BUILDERS, build as build_model

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "golden" / "plan_parity.json"
)
GOLDENS = json.loads(GOLDEN_PATH.read_text())

FLAG_COMBOS = ((True, True), (True, False), (False, True), (False, False))

COMBOS = [
    (model, mm, he) for model in MODEL_BUILDERS for mm, he in FLAG_COMBOS
]


def combo_key(model: str, mm: bool, he: bool) -> str:
    return f"{model}|mm={int(mm)}|he={int(he)}"


def report_scalars(report) -> dict:
    return {
        "total_s": report.total_s,
        "copy_s_total": report.copy_s_total,
        "cpu_busy_s": report.cpu_busy_s,
        "gpu_busy_s": report.gpu_busy_s,
        "energy_j": report.energy.energy_j,
        "average_power_w": report.energy.average_power_w,
        "plan_summary": report.plan_summary,
        "n_layers": len(report.layers),
    }


def test_golden_file_covers_every_model():
    assert GOLDENS["integrated_device"] == JETSON_AGX_XAVIER.name
    assert GOLDENS["discrete_device"] == RTX_2080TI_HOST.name
    expected = {combo_key(m, mm, he) for m, mm, he in COMBOS}
    assert set(GOLDENS["integrated"]) == expected
    assert set(GOLDENS["discrete"]) == expected
    assert set(GOLDENS["logits"]) == set(MODEL_BUILDERS)


@pytest.mark.parametrize(
    "model,mm,he", COMBOS, ids=[combo_key(*c) for c in COMBOS]
)
def test_integrated_reports_match_pre_refactor(model, mm, he):
    config = EdgeNNConfig(use_memory_management=mm, use_hybrid_execution=he)
    engine = EdgeNN(model, JETSON_AGX_XAVIER, config, plan_cache=PlanCache())
    assert report_scalars(engine.run()) == GOLDENS["integrated"][
        combo_key(model, mm, he)
    ]


@pytest.mark.parametrize(
    "model,mm,he", COMBOS, ids=[combo_key(*c) for c in COMBOS]
)
def test_discrete_reports_match_pre_refactor(model, mm, he):
    policy = MemoryPolicy.SEMANTIC if mm else MemoryPolicy.ALL_REGULAR
    report = run_gpu_only(model, RTX_2080TI_HOST, policy=policy)
    assert report_scalars(report) == GOLDENS["discrete"][
        combo_key(model, mm, he)
    ]


@pytest.mark.parametrize("model", sorted(MODEL_BUILDERS))
def test_numpy_logits_unchanged(model):
    graph = build_model(model)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(graph.input_shape).astype(np.float32)
    logits = graph.forward(x)
    flat = logits.astype(np.float32).ravel()
    golden = GOLDENS["logits"][model]
    assert list(logits.shape) == golden["shape"]
    digest = hashlib.sha256(
        flat.tobytes() + str(logits.shape).encode()
    ).hexdigest()
    if digest != golden["sha256"]:
        # BLAS summation order can differ across builds; fall back to a
        # tolerance so a drift here is diagnosable, not just a hash diff.
        np.testing.assert_allclose(
            flat[:8], golden["sample"], rtol=1e-5, atol=1e-6
        )
        np.testing.assert_allclose(
            float(flat.sum()), golden["sum"], rtol=1e-4
        )


def test_artifact_round_trip_reproduces_golden_report(tmp_path):
    # Compile once, serialize, reload, re-execute: the report must still
    # equal the frozen pre-refactor numbers — zero tuning on reload.
    engine = EdgeNN("alexnet", JETSON_AGX_XAVIER, plan_cache=PlanCache())
    direct = engine.run()
    path = engine.artifact().save(tmp_path / "alexnet.json")
    reloaded = CompiledPlan.from_artifact(PlanArtifact.load(path))
    replayed = AnalyticBackend().execute(reloaded)
    assert replayed.to_dict() == direct.to_dict()
    assert report_scalars(replayed) == GOLDENS["integrated"][
        combo_key("alexnet", True, True)
    ]
