"""ResilientBackend: retry loop, breaker short-circuit, backoff charging."""

import pytest

from repro.compile import compile_fixed, get_backend
from repro.compile.backends import AnalyticBackend, ResilientBackend
from repro.errors import ReproError
from repro.faults import CircuitBreaker, RetryPolicy
from repro.hardware.specs import JETSON_AGX_XAVIER


@pytest.fixture(scope="module")
def compiled():
    return compile_fixed("lenet", JETSON_AGX_XAVIER)


def _fail_first(n):
    """A fault hook failing the first ``n`` attempts of each execute."""
    def hook(attempt):
        if attempt < n:
            raise ReproError(f"injected launch failure (attempt {attempt})")
    return hook


class TestRegistry:
    def test_registered(self):
        assert isinstance(get_backend("resilient"), ResilientBackend)

    def test_defaults(self):
        backend = ResilientBackend()
        assert isinstance(backend.inner, AnalyticBackend)
        assert backend.retry.max_attempts == 3


class TestRetryLoop:
    def test_clean_execute_passes_through(self, compiled):
        backend = ResilientBackend()
        report = backend.execute(compiled)
        assert report.to_dict() == AnalyticBackend().execute(
            compiled
        ).to_dict()
        assert backend.retries == 0
        assert backend.backoff_spent_s == 0.0

    def test_transient_failure_recovers(self, compiled):
        backend = ResilientBackend(
            retry=RetryPolicy(max_attempts=3),
            fault_hook=_fail_first(2),
        )
        report = backend.execute(compiled)
        assert report is not None
        assert backend.retries == 2
        assert backend.backoff_spent_s > 0.0
        assert backend.breaker.stats.successes == 1

    def test_exhaustion_raises_and_counts_failure(self, compiled):
        backend = ResilientBackend(
            retry=RetryPolicy(max_attempts=2),
            fault_hook=_fail_first(99),
        )
        with pytest.raises(ReproError, match="failed 2 attempts"):
            backend.execute(compiled)
        assert backend.breaker.stats.failures == 1

    def test_backoff_matches_policy_schedule(self, compiled):
        policy = RetryPolicy(max_attempts=3, seed=5)
        backend = ResilientBackend(
            retry=policy, fault_hook=_fail_first(2)
        )
        backend.execute(compiled)
        expected = sum(
            policy.delay(k, token=compiled.key.slug()) for k in range(2)
        )
        assert backend.backoff_spent_s == pytest.approx(expected)


class TestBreakerIntegration:
    def test_sustained_failure_opens_then_fails_fast(self, compiled):
        clock = {"now": 0.0}
        backend = ResilientBackend(
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(
                failure_threshold=2, reset_timeout_s=10.0
            ),
            clock=lambda: clock["now"],
            fault_hook=_fail_first(99),
        )
        for _ in range(2):
            with pytest.raises(ReproError, match="failed 1 attempts"):
                backend.execute(compiled)
            clock["now"] += 0.1
        # Circuit is now open: the next call never reaches the inner
        # backend (message names the breaker, not the attempt count).
        with pytest.raises(ReproError, match="circuit breaker"):
            backend.execute(compiled)
        assert backend.breaker.stats.short_circuits == 1

    def test_probe_after_reset_recovers(self, compiled):
        clock = {"now": 0.0}
        calls = {"n": 0}

        def flaky_then_fine(attempt):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ReproError("transient")

        backend = ResilientBackend(
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(
                failure_threshold=2, reset_timeout_s=1.0
            ),
            clock=lambda: clock["now"],
            fault_hook=flaky_then_fine,
        )
        for _ in range(2):
            with pytest.raises(ReproError):
                backend.execute(compiled)
            clock["now"] += 0.1
        clock["now"] = 5.0  # past the reset timeout: half-open probe
        report = backend.execute(compiled)
        assert report is not None
        assert backend.breaker.state == CircuitBreaker.CLOSED
