"""PlanArtifact: versioned JSON round-trips and validation."""

import json

import pytest

from repro.compile.artifact import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    STAGE_NAMES,
    Lowering,
    PlanArtifact,
    TunerProvenance,
)
from repro.core.plan import ExecutionPlan, cpu_layer, gpu_layer, split_layer
from repro.core.plan_cache import PlanKey
from repro.errors import ReproError, TuningError
from repro.hardware.memory import AllocKind


def make_key(network="lenet", **overrides) -> PlanKey:
    fields = dict(
        network=network, device="jetson-agx-xavier", batch_size=1,
        precision="fp32", use_memory_management=True,
        use_hybrid_execution=True, use_inter_kernel=True,
        use_intra_kernel=True, objective="latency",
    )
    fields.update(overrides)
    return PlanKey(**fields)


def make_plan(network="lenet") -> ExecutionPlan:
    plan = ExecutionPlan(network)
    plan.set_layer(gpu_layer("conv1"))
    plan.set_layer(split_layer("conv2", 0.25))
    plan.set_layer(cpu_layer("fc1"))
    plan.alloc = {
        "input": AllocKind.MANAGED,
        "conv2.out": AllocKind.REGULAR,
    }
    return plan


def make_artifact(network="lenet") -> PlanArtifact:
    return PlanArtifact(
        key=make_key(network),
        plan=make_plan(network),
        provenance=TunerProvenance(
            converged_after=2, measured_rounds=4,
            round_scores=(0.4, 0.3, 0.25, 0.25), final_total_s=0.25,
        ),
    )


class TestLowering:
    def test_round_trip(self):
        low = Lowering(serialize=True, host_staging=True,
                       precision="fp16", batch_size=8)
        assert Lowering.from_dict(low.to_dict()) == low

    def test_unknown_fields_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            Lowering.from_dict({"backend": "analytic", "gpu_streams": 4})

    def test_defaults(self):
        low = Lowering()
        assert low.backend == "analytic"
        assert not low.serialize and not low.host_staging


class TestProvenance:
    def test_round_trip(self):
        prov = TunerProvenance(
            objective="energy", converged_after=3, measured_rounds=5,
            round_scores=(1.0, 0.9, 0.8, 0.8, 0.8), final_total_s=0.1,
        )
        assert TunerProvenance.from_dict(prov.to_dict()) == prov

    def test_default_stages_are_the_pipeline(self):
        assert TunerProvenance().stages == STAGE_NAMES
        assert STAGE_NAMES == (
            "profile", "place", "partition", "schedule", "lower",
        )

    def test_malformed_raises(self):
        with pytest.raises(ReproError, match="malformed tuner provenance"):
            TunerProvenance.from_dict({"objective": "latency"})


class TestArtifactRoundTrip:
    def test_dict_round_trip(self):
        art = make_artifact()
        back = PlanArtifact.from_dict(art.to_dict())
        assert back.key == art.key
        assert back.plan.to_dict() == art.plan.to_dict()
        assert back.lowering == art.lowering
        assert back.provenance == art.provenance
        assert back.version == ARTIFACT_VERSION

    def test_json_round_trip_preserves_layer_order(self):
        art = make_artifact()
        back = PlanArtifact.from_json(art.to_json())
        assert list(back.plan.layers) == ["conv1", "conv2", "fc1"]
        assert back.plan.layers["conv2"].cpu_fraction == 0.25
        assert back.plan.alloc["input"] is AllocKind.MANAGED

    def test_plan_key_round_trips_through_artifact_json(self):
        key = make_key(batch_size=16, precision="fp16",
                       use_intra_kernel=False, objective="edp")
        art = PlanArtifact(key=key, plan=make_plan())
        reloaded = PlanArtifact.from_json(art.to_json())
        assert reloaded.key == key
        assert hash(reloaded.key) == hash(key)

    def test_save_load(self, tmp_path):
        art = make_artifact()
        path = art.save(tmp_path / "lenet.json")
        assert json.loads(path.read_text())["schema"] == ARTIFACT_SCHEMA
        loaded = PlanArtifact.load(path)
        assert loaded.to_dict() == art.to_dict()


class TestArtifactValidation:
    def test_wrong_schema_rejected(self):
        data = make_artifact().to_dict()
        data["schema"] = "something.else"
        with pytest.raises(ReproError, match="not a plan artifact"):
            PlanArtifact.from_dict(data)

    def test_wrong_version_rejected(self):
        data = make_artifact().to_dict()
        data["version"] = ARTIFACT_VERSION + 1
        with pytest.raises(ReproError, match="unsupported plan-artifact"):
            PlanArtifact.from_dict(data)

    def test_missing_sections_rejected(self):
        data = make_artifact().to_dict()
        del data["plan"]
        with pytest.raises(ReproError, match="missing its 'plan'"):
            PlanArtifact.from_dict(data)

    def test_key_plan_network_mismatch_rejected(self):
        with pytest.raises(ReproError, match="names network"):
            PlanArtifact(key=make_key("lenet"), plan=make_plan("alexnet"))

    def test_invalid_json_rejected(self):
        with pytest.raises(ReproError, match="not valid JSON"):
            PlanArtifact.from_json("{nope")
        with pytest.raises(ReproError, match="must be an object"):
            PlanArtifact.from_json("[1, 2]")

    def test_missing_file_raises_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read plan artifact"):
            PlanArtifact.load(tmp_path / "missing.json")


class TestRehydration:
    def test_to_tuning_result_is_round_free(self):
        result = make_artifact().to_tuning_result()
        assert result.source == "artifact"
        assert result.rounds == []
        assert result.converged_after == 2
        with pytest.raises(TuningError, match="artifact"):
            result.final_report

    def test_describe_mentions_pipeline_and_key(self):
        text = make_artifact().describe()
        assert "profile -> place -> partition -> schedule -> lower" in text
        assert "lenet" in text and "jetson-agx-xavier" in text
        assert "4 measured rounds" in text
