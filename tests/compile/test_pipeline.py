"""The staged compilation pipeline and its thin clients."""

import pytest

from repro.baselines.cpu_only import cpu_only_plan
from repro.baselines.gpu_only import gpu_only_plan
from repro.compile import (
    STAGE_NAMES,
    CompiledPlan,
    PlanArtifact,
    compile_fixed,
    compile_plan,
)
from repro.core.engine import EdgeNN, EdgeNNConfig
from repro.core.memory_manager import MemoryPolicy
from repro.core.plan_cache import PlanCache
from repro.core.tuner import TunerConfig
from repro.errors import ReproError
from repro.hardware.specs import JETSON_AGX_XAVIER, RTX_2080TI_HOST
from repro.nn.models import build as build_model
from repro.obs import Observability


class TestCompilePlan:
    def test_matches_engine_plan(self):
        compiled = compile_plan("lenet", JETSON_AGX_XAVIER)
        engine = EdgeNN("lenet", JETSON_AGX_XAVIER, plan_cache=PlanCache())
        assert compiled.plan.to_dict() == engine.plan.to_dict()

    def test_accepts_engine_and_tuner_configs(self):
        via_engine = compile_plan(
            "lenet", JETSON_AGX_XAVIER,
            EdgeNNConfig(use_hybrid_execution=False),
        )
        via_tuner = compile_plan(
            "lenet", JETSON_AGX_XAVIER,
            TunerConfig(use_intra_kernel=False, use_inter_kernel=False),
        )
        assert via_engine.plan.to_dict() == via_tuner.plan.to_dict()

    def test_rejects_bogus_config(self):
        with pytest.raises(ReproError, match="config must be"):
            compile_plan("lenet", JETSON_AGX_XAVIER, config=42)

    def test_artifact_records_key_and_provenance(self):
        compiled = compile_plan("lenet", JETSON_AGX_XAVIER)
        art = compiled.artifact
        assert art.key.network == "lenet"
        assert art.key.device == JETSON_AGX_XAVIER.name
        assert art.provenance.stages == STAGE_NAMES
        assert art.provenance.measured_rounds == len(compiled.tuning.rounds)
        assert len(art.provenance.round_scores) == len(compiled.tuning.rounds)

    def test_custom_graph_compiles(self, chain_net):
        compiled = compile_plan(chain_net, JETSON_AGX_XAVIER)
        assert compiled.key.network == chain_net.name
        assert set(compiled.plan.layers) == set(chain_net.topo_order())


class TestCompileFixed:
    def test_cpu_plan_matches_baseline_helper(self):
        graph = build_model("lenet")
        a = compile_fixed(graph, JETSON_AGX_XAVIER, placement="cpu").plan
        b = cpu_only_plan(graph, JETSON_AGX_XAVIER)
        assert a.to_dict() == b.to_dict()

    def test_gpu_plan_matches_baseline_helper(self):
        graph = build_model("lenet")
        a = compile_fixed(
            graph, RTX_2080TI_HOST, placement="gpu",
            policy=MemoryPolicy.SEMANTIC,
        ).plan
        b = gpu_only_plan(graph, RTX_2080TI_HOST, MemoryPolicy.SEMANTIC)
        assert a.to_dict() == b.to_dict()

    def test_lowering_records_execution_semantics(self):
        compiled = compile_fixed(
            "lenet", JETSON_AGX_XAVIER, placement="gpu",
            serialize=True, host_staging=True,
        )
        assert compiled.artifact.lowering.serialize
        assert compiled.artifact.lowering.host_staging
        assert compiled.artifact.provenance.stages == ("place", "lower")

    def test_invalid_placement_rejected(self):
        with pytest.raises(ReproError, match="cpu.*or.*gpu"):
            compile_fixed("lenet", JETSON_AGX_XAVIER, placement="tpu")


class TestCompiledPlan:
    def test_from_artifact_rebuilds_graph_and_device(self):
        art = compile_plan("lenet", JETSON_AGX_XAVIER).artifact
        reloaded = PlanArtifact.from_json(art.to_json())
        compiled = CompiledPlan.from_artifact(reloaded)
        assert compiled.graph.name == "lenet"
        assert compiled.device.name == JETSON_AGX_XAVIER.name
        assert compiled.plan.to_dict() == art.plan.to_dict()

    def test_from_artifact_resolves_variant_devices(self):
        compiled = compile_fixed("lenet", JETSON_AGX_XAVIER, placement="gpu")
        art = PlanArtifact.from_json(compiled.artifact.to_json())
        assert CompiledPlan.from_artifact(art).device.spec.is_integrated

    def test_graph_mismatch_rejected(self):
        art = compile_fixed("lenet", JETSON_AGX_XAVIER).artifact
        with pytest.raises(ReproError, match="does not match"):
            CompiledPlan.from_artifact(art, graph=build_model("alexnet"))


class TestStageTracing:
    def test_pipeline_emits_stage_spans(self):
        obs = Observability.on()
        compile_plan("lenet", JETSON_AGX_XAVIER, obs=obs)
        names = [s.name for s in obs.tracer.iter_spans()]
        assert "tune" in names
        for stage in STAGE_NAMES:
            assert f"stage:{stage}" in names, f"missing stage:{stage}"
        # Legacy tuner spans survive inside the stages.
        assert "tune:profile" in names
        assert "tune:final" in names

    def test_stage_spans_nest_under_tune(self):
        obs = Observability.on()
        compile_plan("lenet", JETSON_AGX_XAVIER, obs=obs)
        spans = {s.name: s for s in obs.tracer.iter_spans()}
        tune = spans["tune"]
        for stage in STAGE_NAMES:
            assert spans[f"stage:{stage}"].parent_id == tune.span_id

    def test_engine_tune_goes_through_pipeline(self):
        obs = Observability.on()
        EdgeNN("lenet", JETSON_AGX_XAVIER, plan_cache=PlanCache(),
               obs=obs).tune()
        names = [s.name for s in obs.tracer.iter_spans()]
        assert "plan:lookup" in names
        assert "stage:lower" in names
