"""Shared fixtures: devices, miniature networks, and helpers.

Tests prefer miniature purpose-built graphs over the full paper networks so
the suite stays fast; the integration tests exercise the real six.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.device import Device
from repro.hardware.specs import (
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
)
from repro.nn.graph import NetworkGraph
from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Softmax,
)


@pytest.fixture
def jetson() -> Device:
    """Fresh integrated-device instance."""
    return Device(JETSON_AGX_XAVIER)


@pytest.fixture
def rpi() -> Device:
    """Fresh CPU-only edge device."""
    return Device(RASPBERRY_PI_4)


@pytest.fixture
def dgpu_host() -> Device:
    """Fresh discrete-GPU host."""
    return Device(RTX_2080TI_HOST)


def make_chain_net(name: str = "chain-net") -> NetworkGraph:
    """A small conv→fc chain exercising every common layer kind."""
    net = NetworkGraph(name, (3, 16, 16))
    net.add(Conv2D("conv1", out_channels=8, kernel_size=3, padding=1))
    net.add(ReLU("relu1"))
    net.add(MaxPool2D("pool1", kernel_size=2))
    net.add(Flatten("flatten"))
    net.add(Dropout("drop1"))
    net.add(Dense("fc1", 32))
    net.add(ReLU("relu2"))
    net.add(Dense("fc2", 10))
    net.add(Softmax("softmax"))
    return net


def make_branch_net(name: str = "branch-net") -> NetworkGraph:
    """A fire-module-style fork/join graph (concat join)."""
    net = NetworkGraph(name, (4, 8, 8))
    fork = net.add(Conv2D("squeeze", out_channels=4, kernel_size=1))
    net.add(Conv2D("left", out_channels=8, kernel_size=1), inputs=[fork])
    left = net.add(ReLU("left_relu"))
    net.add(Conv2D("right", out_channels=8, kernel_size=3, padding=1),
            inputs=[fork])
    right = net.add(ReLU("right_relu"))
    net.add(Concat("concat"), inputs=[left, right])
    net.add(Flatten("flatten"))
    net.add(Dense("fc", 10))
    net.add(Softmax("softmax"))
    return net


def make_residual_net(name: str = "residual-net") -> NetworkGraph:
    """A ResNet-style identity-shortcut graph (add join)."""
    net = NetworkGraph(name, (4, 8, 8))
    fork = net.add(Conv2D("stem", out_channels=4, kernel_size=3, padding=1))
    net.add(Conv2D("main1", out_channels=4, kernel_size=3, padding=1),
            inputs=[fork])
    net.add(ReLU("main_relu"))
    main = net.add(Conv2D("main2", out_channels=4, kernel_size=3, padding=1))
    net.add(Add("add"), inputs=[main, fork])
    net.add(ReLU("out_relu"))
    net.add(Flatten("flatten"))
    net.add(Dense("fc", 10))
    net.add(Softmax("softmax"))
    return net


@pytest.fixture
def chain_net() -> NetworkGraph:
    return make_chain_net()


@pytest.fixture
def branch_net() -> NetworkGraph:
    return make_branch_net()


@pytest.fixture
def residual_net() -> NetworkGraph:
    return make_residual_net()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
