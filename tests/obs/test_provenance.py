"""Decision-provenance log: recording, querying, summarizing."""

import json

from repro.obs.provenance import (
    NULL_PROVENANCE,
    MemoryPlacementRecord,
    PartitionCandidate,
    PartitionRecord,
    PlacementCandidate,
    ProvenanceLog,
)


def placement(buffer="conv1.weights", stage="seed", chosen="managed",
              network="lenet"):
    return MemoryPlacementRecord(
        network=network, buffer=buffer, role="read_only_param",
        policy="semantic", chosen=chosen, nbytes=1024.0, stage=stage,
        candidates=(
            PlacementCandidate(kind="managed", est_cost_s=1e-6, note="ft"),
            PlacementCandidate(kind="regular", est_cost_s=5e-5, note="h2d"),
        ),
        reason="single writer",
    )


def partition(layer="conv2", stage="seed", chosen="split"):
    return PartitionRecord(
        network="lenet", layer=layer, stage=stage, chosen=chosen,
        cpu_fraction=0.6, t_cpu_s=3e-4, t_gpu_s=4e-4,
        out_bytes=4096.0, copy_rate=2e10,
        candidates=(
            PartitionCandidate("gpu", 0.0, 4e-4),
            PartitionCandidate("cpu", 1.0, 3e-4),
            PartitionCandidate("split", 0.6, 2e-4),
        ),
        reason="Eq. 4 optimum beats solo execution",
    )


class TestQueries:
    def test_filters_compose(self):
        log = ProvenanceLog()
        log.record_placement(placement(buffer="a", stage="seed"))
        log.record_placement(placement(buffer="a", stage="round1"))
        log.record_placement(placement(buffer="b", stage="seed"))
        assert len(log.placements(buffer="a")) == 2
        assert len(log.placements(buffer="a", stage="round1")) == 1
        assert len(log.placements(stage="seed")) == 2
        assert log.placements(buffer="zzz") == []

    def test_partition_filters(self):
        log = ProvenanceLog()
        log.record_partition(partition(layer="conv2", chosen="split"))
        log.record_partition(partition(layer="fc3", chosen="gpu"))
        assert len(log.partitions(chosen="split")) == 1
        assert log.partitions(layer="fc3")[0].chosen == "gpu"
        assert len(log) == 2

    def test_final_placements_keeps_last_record(self):
        log = ProvenanceLog()
        log.record_placement(placement(buffer="a", stage="seed",
                                       chosen="regular"))
        log.record_placement(placement(buffer="a", stage="round2",
                                       chosen="managed"))
        finals = log.final_placements("lenet")
        assert finals["a"].chosen == "managed"
        assert finals["a"].stage == "round2"

    def test_candidates_carry_compared_costs(self):
        rec = placement()
        kinds = {c.kind for c in rec.candidates}
        assert kinds == {"managed", "regular"}
        assert all(c.est_cost_s >= 0 for c in rec.candidates)


class TestExport:
    def test_json_round_trip(self):
        log = ProvenanceLog()
        log.record_placement(placement())
        log.record_partition(partition())
        doc = json.loads(log.to_json())
        assert doc["placements"][0]["buffer"] == "conv1.weights"
        assert doc["placements"][0]["candidates"][0]["kind"] == "managed"
        assert doc["partitions"][0]["candidates"][2]["label"] == "split"

    def test_summary_mentions_decisions(self):
        log = ProvenanceLog()
        log.record_placement(placement())
        log.record_partition(partition())
        text = log.summary()
        assert "lenet" in text
        assert "zero-copy" in text
        assert "split" in text

    def test_empty_summary(self):
        assert "no decisions" in ProvenanceLog().summary()


class TestNullProvenance:
    def test_disabled_and_silent(self):
        assert NULL_PROVENANCE.enabled is False
        NULL_PROVENANCE.record_placement(placement())
        NULL_PROVENANCE.record_partition(partition())
        assert NULL_PROVENANCE.placements() == []
        assert NULL_PROVENANCE.partitions() == []
        assert json.loads(NULL_PROVENANCE.to_json()) == {
            "placements": [], "partitions": [], "degradations": [],
            "scalings": [], "alerts": [],
        }
