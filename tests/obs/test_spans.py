"""Hierarchical span tracer on the virtual clock."""

import json

from repro.obs.spans import NOOP_TRACER, NoopTracer, Span, SpanTracer


class TestSpanTracer:
    def test_nesting_follows_the_stack(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.record("leaf", 0.0, 1.0)
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_explicit_times_are_kept(self):
        tracer = SpanTracer()
        with tracer.span("a") as span:
            span.set_times(1.0, 3.0)
        assert tracer.roots[0].start_s == 1.0
        assert tracer.roots[0].end_s == 3.0
        assert tracer.roots[0].duration_s == 2.0

    def test_unset_times_inherit_child_envelope(self):
        tracer = SpanTracer()
        with tracer.span("phase"):
            tracer.record("a", 0.5, 1.0)
            tracer.record("b", 2.0, 4.0)
        (root,) = tracer.roots
        assert root.start_s == 0.5
        assert root.end_s == 4.0

    def test_empty_span_defaults_to_zero(self):
        tracer = SpanTracer()
        with tracer.span("empty"):
            pass
        assert tracer.roots[0].start_s == 0.0
        assert tracer.roots[0].end_s == 0.0

    def test_attributes(self):
        tracer = SpanTracer()
        with tracer.span("a", network="lenet") as span:
            span.set_attribute("k", 1)
            span.set_attributes(x=2, y=3)
        assert tracer.roots[0].attrs == {
            "network": "lenet", "k": 1, "x": 2, "y": 3,
        }

    def test_event_is_zero_duration_instant(self):
        tracer = SpanTracer()
        ev = tracer.event("arrival", 1.5)
        assert ev.category == "instant"
        assert ev.start_s == ev.end_s == 1.5

    def test_iter_spans_is_depth_first(self):
        tracer = SpanTracer()
        with tracer.span("r1"):
            tracer.record("c1", 0, 1)
            tracer.record("c2", 1, 2)
        with tracer.span("r2"):
            pass
        assert [s.name for s in tracer.iter_spans()] == [
            "r1", "c1", "c2", "r2",
        ]
        assert len(tracer) == 4

    def test_find_matches_exact_and_prefix(self):
        tracer = SpanTracer()
        tracer.record("layer:conv1", 0, 1)
        tracer.record("layer:conv2", 1, 2)
        tracer.record("layered", 2, 3)
        assert {s.name for s in tracer.find("layer")} == {
            "layer:conv1", "layer:conv2",
        }

    def test_sibling_after_closed_span_is_a_sibling(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["first", "second"]

    def test_to_json_round_trips(self):
        tracer = SpanTracer()
        with tracer.span("a", device="jetson"):
            tracer.record("b", 0.0, 1.0)
        doc = json.loads(tracer.to_json())
        assert doc[0]["name"] == "a"
        assert doc[0]["children"][0]["name"] == "b"

    def test_render_shows_tree(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            tracer.record("child", 0.0, 0.001)
        text = tracer.render()
        assert "root" in text
        assert "  child" in text

    def test_render_max_depth(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("mid"):
                tracer.record("deep", 0, 1)
        text = tracer.render(max_depth=1)
        assert "mid" in text
        assert "deep" not in text


class TestNoopTracer:
    def test_disabled_flag(self):
        assert NOOP_TRACER.enabled is False
        assert SpanTracer().enabled is True

    def test_span_is_reusable_singleton(self):
        a = NOOP_TRACER.span("x")
        b = NOOP_TRACER.span("y", category="c", attr=1)
        assert a is b
        with a as s:
            assert s.set_times(0, 1) is s
            assert s.set_attribute("k", "v") is s
            assert s.set_attributes(a=1) is s

    def test_queries_are_empty(self):
        assert NOOP_TRACER.roots == []
        assert list(NOOP_TRACER.iter_spans()) == []
        assert NOOP_TRACER.find("anything") == []
        assert NOOP_TRACER.to_json() == "[]"
        assert isinstance(NoopTracer().render(max_depth=2), str)

    def test_record_and_event_do_nothing(self):
        tracer = NoopTracer()
        tracer.record("a", 0.0, 1.0)
        tracer.event("b", 2.0)
        assert tracer.roots == []


class TestSpan:
    def test_envelope_covers_descendants(self):
        root = Span(1, None, "r", "span")
        child = Span(2, 1, "c", "span", start_s=1.0, end_s=2.0)
        grand = Span(3, 2, "g", "span", start_s=0.5, end_s=3.0)
        child.children.append(grand)
        root.children.append(child)
        assert root.envelope() == (0.5, 3.0)

    def test_duration_of_unset_times_is_zero(self):
        assert Span(1, None, "r", "span").duration_s == 0.0
