"""Metrics registry: counters, gauges, histograms, and the exporters."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.export import metrics_to_dict, prometheus_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ReproError):
            Counter().inc(-1)

    def test_gauge_tracks_max(self):
        g = Gauge()
        g.set(3)
        g.set(1)
        g.inc(1)
        assert g.value == 2
        assert g.max_value == 3

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.cumulative_buckets() == [
            (1.0, 1), (2.0, 2), (4.0, 3), (float("inf"), 4),
        ]
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.mean() == pytest.approx(26.25)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ReproError):
            Histogram(buckets=(2.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help")
        b = reg.counter("repro_x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ReproError):
            reg.gauge("m")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", labels=("a",))
        with pytest.raises(ReproError):
            reg.counter("m", labels=("b",))

    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("reqs", labels=("tenant",))
        fam.labels(tenant="a").inc()
        fam.labels(tenant="a").inc()
        fam.labels(tenant="b").inc(5)
        assert fam.labels(tenant="a").value == 2
        assert fam.labels(tenant="b").value == 5

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("reqs", labels=("tenant",))
        with pytest.raises(ReproError):
            fam.labels(nope="x")

    def test_label_free_family_proxies(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.5)
        assert reg.family("c").labels().value == 2
        assert reg.family("g").labels().value == 7
        assert reg.family("h").labels().count == 1

    def test_families_sorted_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa")
        assert [f.name for f in reg.families()] == ["aa", "zz"]
        assert "aa" in reg and "missing" not in reg
        with pytest.raises(ReproError):
            reg.family("missing")


class TestNullRegistry:
    def test_disabled_and_silent(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("x", "h", labels=("a",))
        c.labels(a="1").inc()
        c.inc(5)
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.families() == []
        assert prometheus_text(NULL_REGISTRY) == ""


class TestPrometheusText:
    def make(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_reqs_total", "Requests", labels=("tenant",))
        fam.labels(tenant="lenet").inc(3)
        reg.gauge("repro_depth", "Queue depth").set(2)
        h = reg.histogram("repro_lat_seconds", "Latency",
                          buckets=(0.001, 0.01))
        h.observe(0.0005)
        h.observe(0.5)
        return reg

    def test_exposition_shape(self):
        text = prometheus_text(self.make())
        assert "# HELP repro_reqs_total Requests" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{tenant="lenet"} 3' in text
        assert "repro_depth 2" in text

    def test_histogram_lines(self):
        text = prometheus_text(self.make())
        assert 'repro_lat_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
        assert "repro_lat_seconds_sum" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("m", labels=("l",)).labels(l='a"b\\c').inc()
        text = prometheus_text(reg)
        assert r'l="a\"b\\c"' in text

    def test_json_dump_parses(self):
        doc = json.loads(json.dumps(metrics_to_dict(self.make())))
        assert doc["repro_reqs_total"]["kind"] == "counter"
        assert doc["repro_reqs_total"]["series"][0]["labels"] == {
            "tenant": "lenet"
        }
        hist = doc["repro_lat_seconds"]["series"][0]
        assert hist["count"] == 2
        assert hist["buckets"][-1]["le"] == "+Inf"
        assert hist["buckets"][-1]["cumulative"] == 2


class TestHistogramQuantileFidelity:
    """Regression guard: the +Inf bucket is explicit and every exported
    cumulative count is monotone non-decreasing (the Prometheus quantile
    estimator silently miscomputes on either violation)."""

    def fill(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_fidelity_seconds", buckets=(0.001, 0.01, 0.1, 1.0)
        ).labels()
        # A spread that exercises every bucket plus overflow, with
        # boundary values landing exactly on bucket upper bounds.
        for v in (0.0005, 0.001, 0.004, 0.01, 0.05, 0.1, 0.7, 3.0, 42.0):
            h.observe(v)
        return reg, h

    def test_cumulative_counts_are_monotone_with_explicit_inf(self):
        _, h = self.fill()
        rows = h.cumulative_buckets()
        assert rows[-1][0] == float("inf")
        assert rows[-1][1] == h.count
        counts = [c for _, c in rows]
        assert counts == sorted(counts)
        bounds = [b for b, _ in rows]
        assert bounds == sorted(bounds)

    def test_prometheus_export_keeps_monotone_order(self):
        reg, h = self.fill()
        text = prometheus_text(reg)
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_fidelity_seconds_bucket")
        ]
        assert lines[-1] == (
            f'repro_fidelity_seconds_bucket{{le="+Inf"}} {h.count}'
        )
        exported = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert exported == sorted(exported)
        assert len(lines) == len(h.buckets) + 1  # every bound + +Inf

    def test_json_export_keeps_monotone_order(self):
        reg, h = self.fill()
        series = metrics_to_dict(reg)["repro_fidelity_seconds"]["series"][0]
        cumulative = [b["cumulative"] for b in series["buckets"]]
        assert cumulative == sorted(cumulative)
        assert series["buckets"][-1]["le"] == "+Inf"
        assert cumulative[-1] == h.count == series["count"]
