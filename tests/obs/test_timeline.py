"""Windowed telemetry timelines: recorder, artifact, diff, and SLOs."""

import json
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.obs import Observability
from repro.obs.timeline import (
    BurnRateRule,
    DiffTolerances,
    SloMonitor,
    SloObjective,
    TimelineArtifact,
    TimelineRecorder,
    diff_timelines,
    sparkline,
)


def small_artifact(**kw):
    """One deterministic two-batch run: 3 offered, 3 served."""
    r = TimelineRecorder(window_s=0.5, source="test", **kw)
    r.record_offered(0.1)
    r.record_offered(0.2)
    r.record_offered(1.2)
    r.record_batch(0.5, 0.6, 2, busy=(("cpu", 0.1),), energy_j=0.2)
    r.record_served(0.6, [0.4, 0.5])
    r.record_batch(1.3, 1.35, 1, busy=(("cpu", 0.05),))
    r.record_served(1.35, [0.15])
    return r.finish(
        horizon_s=1.5, makespan_s=1.35, capacity={"cpu": 1.0}
    )


class TestRecorder:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ReproError):
            TimelineRecorder(0.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ReproError):
            TimelineRecorder(1.0, bounds_s=(0.1, 0.1, 0.2))

    def test_counts_land_in_their_windows(self):
        art = small_artifact()
        assert art.windows == 3
        assert art.series["offered"] == [2, 0, 1]
        assert art.series["served"] == [0, 2, 1]
        assert art.series["batches"] == [0, 1, 1]

    def test_event_on_window_edge_opens_next_window(self):
        r = TimelineRecorder(1.0)
        r.record_offered(1.0)
        art = r.finish(horizon_s=2.0, makespan_s=1.0)
        assert art.series["offered"] == [0, 1]

    def test_bulk_offered_equals_per_event_offered(self):
        times = [0.1, 0.4, 1.7, 2.2, 2.9]
        one = TimelineRecorder(1.0)
        for t in times:
            one.record_offered(t)
        bulk = TimelineRecorder(1.0)
        bulk.record_offered_bulk(times)
        a = one.finish(horizon_s=3.0, makespan_s=3.0)
        b = bulk.finish(horizon_s=3.0, makespan_s=3.0)
        assert a.digest() == b.digest()
        assert bulk.op_counts["offered"] == 1
        assert one.op_counts["offered"] == len(times)

    def test_negative_timestamp_raises_at_finish(self):
        r = TimelineRecorder(1.0)
        r.record_offered(-0.1)
        with pytest.raises(ReproError):
            r.finish(horizon_s=1.0, makespan_s=1.0)

    def test_ops_and_op_counts_are_derived(self):
        r = TimelineRecorder(0.5)
        r.record_offered(0.1)
        r.record_shed(0.2, 3)
        r.record_served(0.3, [0.01, 0.02])
        assert r.op_counts["offered"] == 1
        assert r.op_counts["shed"] == 1
        assert r.op_counts["served"] == 1
        assert r.ops == 3

    def test_finish_is_pure(self):
        r = TimelineRecorder(0.5)
        r.record_offered(0.1)
        r.record_served(0.2, [0.05])
        a = r.finish(horizon_s=1.0, makespan_s=0.5)
        b = r.finish(horizon_s=1.0, makespan_s=0.5)
        assert a.digest() == b.digest()

    def test_queue_depth_is_derived_from_admits_and_leaves(self):
        # offered at 0.1 and 0.2, both leave via the batch dispatched
        # at 0.5: depth integral over window 0 = 0.1*1 + 0.3*2 = 0.7.
        art = small_artifact()
        assert art.series["queue_depth_mean"][0] == pytest.approx(1.4)
        assert art.series["queue_depth_mean"][1] == pytest.approx(0.0)
        assert art.series["queue_depth_max"] == [2, 0, 1]

    def test_fail_fast_failed_counts_as_queue_leave(self):
        r = TimelineRecorder(1.0)
        r.record_offered(0.0)
        r.record_failed(0.5, 1, from_queue=True)
        art = r.finish(horizon_s=2.0, makespan_s=2.0)
        assert art.series["queue_depth_mean"][0] == pytest.approx(0.5)
        assert art.series["queue_depth_mean"][1] == pytest.approx(0.0)

    def test_late_timeout_does_not_touch_queue_depth(self):
        # A late completion is already out of the queue; only
        # late=False (queue abandonment) is a depth leave.
        r = TimelineRecorder(1.0)
        r.record_offered(0.0)
        r.record_batch(0.2, 0.4, 1)
        r.record_timed_out(0.4, 1, late=True)
        art = r.finish(horizon_s=1.0, makespan_s=1.0)
        assert art.series["queue_depth_mean"][0] == pytest.approx(0.2)
        assert art.series["late"] == [1]
        assert art.series["timed_out"] == [1]

    def test_latency_quantiles_report_bucket_upper_bounds(self):
        r = TimelineRecorder(1.0)
        r.record_served(0.5, [0.004] * 99 + [0.2])
        art = r.finish(horizon_s=1.0, makespan_s=1.0)
        assert art.series["p50_ms"] == [5.0]
        assert art.series["p99_ms"] == [5.0]
        assert art.series["latency_max_ms"] == [200.0]

    def test_overflow_latency_reports_window_max(self):
        r = TimelineRecorder(1.0)
        r.record_served(0.5, [120.0])  # past the last sketch bound
        art = r.finish(horizon_s=1.0, makespan_s=1.0)
        assert art.series["p99_ms"] == [120000.0]

    def test_batch_span_straddling_windows_splits_energy(self):
        r = TimelineRecorder(1.0)
        r.record_batch(0.5, 1.5, 4, energy_j=1.0, busy=(("gpu", 1.0),))
        art = r.finish(
            horizon_s=2.0, makespan_s=2.0, capacity={"gpu": 1.0}
        )
        assert art.series["energy_j"][0] == pytest.approx(0.5)
        assert art.series["energy_j"][1] == pytest.approx(0.5)
        assert art.utilization["gpu"][0] == pytest.approx(0.5)

    def test_utilization_is_clamped_to_one(self):
        r = TimelineRecorder(1.0)
        r.record_batch(0.0, 1.0, 1, busy=(("cpu", 5.0),))
        art = r.finish(
            horizon_s=1.0, makespan_s=1.0, capacity={"cpu": 1.0}
        )
        assert art.utilization["cpu"] == [1.0]


class TestArtifact:
    def test_dict_round_trip_preserves_digest(self):
        art = small_artifact()
        clone = TimelineArtifact.from_dict(
            json.loads(art.to_json())
        )
        assert clone.digest() == art.digest()

    def test_save_load_round_trip(self, tmp_path):
        art = small_artifact()
        path = art.save(tmp_path / "tl.json")
        assert TimelineArtifact.load(path).digest() == art.digest()

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ReproError, match="not a timeline artifact"):
            TimelineArtifact.load(p)

    def test_load_rejects_unknown_version(self, tmp_path):
        doc = small_artifact().to_dict()
        doc["version"] = 999
        p = tmp_path / "x.json"
        p.write_text(json.dumps(doc))
        with pytest.raises(ReproError, match="version"):
            TimelineArtifact.load(p)

    def test_load_reports_missing_field(self, tmp_path):
        doc = small_artifact().to_dict()
        del doc["series"]
        p = tmp_path / "x.json"
        p.write_text(json.dumps(doc))
        with pytest.raises(ReproError, match="missing field"):
            TimelineArtifact.load(p)

    def test_load_rejects_bad_json_and_non_objects(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ReproError, match="cannot read"):
            TimelineArtifact.load(bad)
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]")
        with pytest.raises(ReproError, match="not a JSON object"):
            TimelineArtifact.load(arr)
        with pytest.raises(ReproError, match="cannot read"):
            TimelineArtifact.load(tmp_path / "absent.json")

    def test_derived_metrics(self):
        art = small_artifact()
        assert art.metric("goodput_ratio") == [1.0, 1.0, 1.0]
        assert art.metric("shed_rate") == [0.0, 0.0, 0.0]
        assert art.metric("util:cpu") == art.utilization["cpu"]
        assert art.times_s() == [0.0, 0.5, 1.0]
        assert art.total("served") == 3.0

    def test_unknown_metric_lists_known_names(self):
        with pytest.raises(ReproError, match="goodput_ratio"):
            small_artifact().metric("nope")
        with pytest.raises(ReproError, match="unknown utilization"):
            small_artifact().metric("util:tpu")

    def test_exceedance_boundary_bucket_counts_as_fast(self):
        r = TimelineRecorder(1.0)
        # 10 ms lands exactly on a sketch bound: <=10ms is fast.
        r.record_served(0.5, [0.004, 0.009, 0.2])
        art = r.finish(horizon_s=1.0, makespan_s=1.0)
        assert art.exceedance(10.0) == [pytest.approx(1 / 3)]
        assert art.exceedance(0.001) == [1.0]
        assert art.exceedance(10_000.0) == [0.0]

    def test_describe_renders_every_headline_series(self):
        text = small_artifact().describe()
        assert "goodput_rps" in text
        assert "util:cpu" in text


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_flat_series_is_flat_mid_bar(self):
        out = sparkline([2.0, 2.0, 2.0])
        assert len(set(out)) == 1 and len(out) == 3

    def test_ramp_spans_the_character_range(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out[0] == "▁" and out[-1] == "█"

    def test_long_series_downsampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40


class TestDiff:
    def test_identical_timelines_do_not_regress(self):
        art = small_artifact()
        diff = diff_timelines(art, art)
        assert not diff.regressed
        assert "verdict: OK" in diff.render()

    def test_served_drop_beyond_tolerance_regresses(self):
        base = small_artifact()
        cur = TimelineArtifact.from_dict(base.to_dict())
        cur.series["served"] = [0, 1, 0]
        diff = diff_timelines(base, cur)
        assert diff.regressed
        assert any("served dropped" in r for r in diff.regressions)

    def test_improvements_never_gate(self):
        base = small_artifact()
        cur = TimelineArtifact.from_dict(base.to_dict())
        cur.series["served"] = [0, 4, 4]
        diff = diff_timelines(base, cur)
        assert not diff.regressed
        assert diff.improvements

    def test_p99_noise_under_absolute_floor_does_not_gate(self):
        base = small_artifact()
        diff = diff_timelines(
            base, base,
            DiffTolerances(max_p99_increase=0.0, p99_floor_ms=1e9),
        )
        assert not diff.regressed

    def test_window_width_mismatch_is_not_comparable(self):
        base = small_artifact()
        other = TimelineArtifact.from_dict(base.to_dict())
        other.window_s = 0.25
        diff = diff_timelines(base, other)
        assert diff.regressed
        assert any("not comparable" in r for r in diff.regressions)

    def test_shed_rate_increase_regresses(self):
        base = small_artifact()
        cur = TimelineArtifact.from_dict(base.to_dict())
        cur.series["shed"] = [2, 0, 0]
        diff = diff_timelines(base, cur)
        assert any("shed rate up" in r for r in diff.regressions)
        assert diff.to_dict()["regressed"] is True


class TestSloObjective:
    def test_parse_both_operators(self):
        lo = SloObjective.parse("goodput_ratio>=0.99")
        hi = SloObjective.parse("p99_ms <= 250")
        assert (lo.metric, lo.op, lo.threshold) == (
            "goodput_ratio", ">=", 0.99
        )
        assert (hi.metric, hi.op, hi.threshold) == ("p99_ms", "<=", 250.0)
        assert lo.name == "goodput_ratio>=0.99"

    @pytest.mark.parametrize(
        "text", ["goodput_ratio", "p99_ms<=fast", ">=0.5", "x==1"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ReproError):
            SloObjective.parse(text)

    def test_budgets(self):
        assert SloObjective.parse(
            "goodput_ratio>=0.99"
        ).budget() == pytest.approx(0.01)
        assert SloObjective.parse(
            "p99_ms<=250"
        ).budget() == pytest.approx(0.01)
        assert SloObjective.parse("queue_depth_mean<=4").budget() == 1.0

    def test_rule_validation(self):
        with pytest.raises(ReproError):
            BurnRateRule(short_windows=3, long_windows=2)
        with pytest.raises(ReproError):
            BurnRateRule(factor=0.0)


def degraded_artifact(bad_windows, total=10, served_per_window=10):
    """A timeline where the given windows serve nothing at all."""
    r = TimelineRecorder(1.0, source="slo-test")
    for w in range(total):
        t = w + 0.5
        r.record_offered(t, served_per_window)
        if w in bad_windows:
            r.record_timed_out(t, served_per_window)
        else:
            r.record_batch(t, t + 0.01, served_per_window)
            r.record_served(
                t + 0.01, [0.005] * served_per_window
            )
    return r.finish(horizon_s=float(total), makespan_s=float(total))


class TestSloMonitor:
    def test_sustained_burn_fires_and_resolves(self):
        art = degraded_artifact({2, 3, 4, 5})
        monitor = SloMonitor(
            [SloObjective.parse("goodput_ratio>=0.99")],
            BurnRateRule(short_windows=1, long_windows=3, factor=1.0),
        )
        report = monitor.evaluate(art)
        assert report.firing
        alert = report.alerts[0]
        assert alert.fired_at_s == 2.0
        assert alert.resolved
        assert report.peak_burn["goodput_ratio>=0.99"] > 1.0
        assert "FIRED" in report.render()

    def test_long_window_suppresses_a_single_blip(self):
        # One bad window out of ten: the short window burns hot but the
        # 5-window long mean stays under the factor, so nothing pages.
        art = degraded_artifact({5})
        monitor = SloMonitor(
            [SloObjective.parse("goodput_ratio>=0.9")],
            BurnRateRule(short_windows=1, long_windows=5, factor=4.0),
        )
        report = monitor.evaluate(art)
        assert not report.firing
        assert report.peak_burn["goodput_ratio>=0.9"] > 0.0

    def test_unresolved_alert_reaches_end_of_run(self):
        art = degraded_artifact({7, 8, 9})
        monitor = SloMonitor(
            [SloObjective.parse("goodput_ratio>=0.99")],
            BurnRateRule(short_windows=1, long_windows=2),
        )
        report = monitor.evaluate(art)
        assert report.firing
        assert not report.alerts[-1].resolved
        assert report.to_dict()["firing"] is True

    def test_monitor_requires_objectives(self):
        with pytest.raises(ReproError):
            SloMonitor([])

    def test_record_mirrors_alerts_into_provenance(self):
        art = degraded_artifact({2, 3, 4})
        monitor = SloMonitor(
            [SloObjective.parse("goodput_ratio>=0.99")],
            BurnRateRule(short_windows=1, long_windows=2),
        )
        report = monitor.evaluate(art)
        obs = Observability.on()
        monitor.record(report, obs)
        fired = obs.provenance.alerts(event="fired")
        assert len(fired) == len(report.alerts)
        assert fired[0].objective == "goodput_ratio>=0.99"
        resolved = obs.provenance.alerts(event="resolved")
        assert len(resolved) == sum(a.resolved for a in report.alerts)

    def test_apply_drives_degradation_hooks(self):
        art = degraded_artifact({2, 3, 4})
        monitor = SloMonitor(
            [SloObjective.parse("goodput_ratio>=0.99")],
            BurnRateRule(short_windows=1, long_windows=2),
        )
        report = monitor.evaluate(art)

        calls = []

        class StubDegradation:
            def note_slo_alert(self, tenant, network, **kw):
                calls.append((network, kw["objective"]))

        n = monitor.apply(report, StubDegradation(), "lenet")
        assert n == len(report.alerts) == len(calls)
        assert calls[0] == ("lenet", "goodput_ratio>=0.99")
        assert monitor.apply(report, None, "lenet") == 0


class TestServingIntegration:
    def run_sim(self, **cfg_kw):
        from repro.serving import BatchPolicy, ServingConfig
        from repro.serving.simulator import (
            ServingSimulator, poisson_tenant,
        )

        sim = ServingSimulator(
            None,
            [poisson_tenant("lenet", 300.0, 1.0, seed=9)],
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8),
                timeline_window_s=0.25,
                **cfg_kw,
            ),
        )
        return sim, sim.run()

    def test_timeline_conserves_report_totals(self):
        sim, report = self.run_sim()
        art = sim.timeline
        assert art is not None
        assert art.total("offered") == report.offered
        assert art.total("served") == report.served
        assert art.total("shed") == report.shed
        assert art.total("timed_out") == report.timed_out
        assert sim.timeline_ops == sum(sim.timeline_op_counts.values())

    def test_same_seed_reruns_are_digest_identical(self):
        a, _ = self.run_sim()
        b, _ = self.run_sim()
        assert a.timeline.digest() == b.timeline.digest()

    def test_slos_produce_a_report(self):
        sim, _ = self.run_sim(
            slos=(SloObjective.parse("goodput_ratio>=0.5"),),
        )
        assert sim.slo_report is not None
        assert sim.slo_report.objectives[0].metric == "goodput_ratio"


class TestClusterIntegration:
    def run_cluster(self):
        from repro.cluster import (
            ClusterConfig, ClusterSimulator, ClusterTenant, DeviceMix,
        )
        from repro.serving import BatchPolicy
        from repro.workloads import PoissonArrivals

        sim = ClusterSimulator(
            [ClusterTenant("squeezenet", PoissonArrivals(80.0, 2.0, seed=4))],
            DeviceMix.parse("jetson-agx-xavier:2"),
            2,
            ClusterConfig(
                policy=BatchPolicy(
                    max_batch_size=8, max_wait_s=0.0,
                    max_queue_depth=64, deadline_s=0.5,
                ),
                seed=4,
                timeline_window_s=0.5,
            ),
        )
        return sim, sim.run()

    def test_timeline_conserves_report_totals(self):
        sim, report = self.run_cluster()
        art = sim.timeline
        assert art is not None
        assert art.total("offered") == report.offered
        assert art.total("served") == report.served
        assert art.total("shed") == report.shed
        # The whole arrival stream goes in through one bulk call.
        assert sim.timeline_op_counts["offered"] == 1

    def test_cross_process_digests_are_bit_identical(self):
        script = (
            "from repro.cluster import ClusterConfig, ClusterSimulator, "
            "ClusterTenant, DeviceMix\n"
            "from repro.serving import BatchPolicy\n"
            "from repro.workloads import PoissonArrivals\n"
            "sim = ClusterSimulator(\n"
            "    [ClusterTenant('squeezenet', "
            "PoissonArrivals(80.0, 2.0, seed=4))],\n"
            "    DeviceMix.parse('jetson-agx-xavier:2'), 2,\n"
            "    ClusterConfig(policy=BatchPolicy(max_batch_size=8, "
            "max_wait_s=0.0, max_queue_depth=64, deadline_s=0.5), "
            "seed=4, timeline_window_s=0.5))\n"
            "sim.run()\n"
            "print(sim.timeline.digest())\n"
        )
        digests = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(digests) == 1
        assert len(next(iter(digests))) == 64
