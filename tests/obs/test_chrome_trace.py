"""Merged Chrome-trace export: kernel timeline + request lifecycle."""

import json

from repro.obs.export import REQUEST_PID, SIM_PID, chrome_trace
from repro.serving.request import Request, RequestStatus
from repro.sim.trace import Trace, TraceEvent


def kernel_trace():
    trace = Trace()
    trace.add(TraceEvent("gpu", "conv1", 0.0, 0.001, "kernel"))
    trace.add(TraceEvent("cpu", "relu1", 0.001, 0.0015, "kernel"))
    trace.add(TraceEvent("copy", "memcpy:x", 0.0015, 0.002, "copy"))
    return trace


def served_request(rid=0, arrival=0.0, dispatch=0.001, finish=0.002):
    req = Request(request_id=rid, tenant="lenet", arrival_s=arrival)
    req.status = RequestStatus.SERVED
    req.dispatch_s = dispatch
    req.finish_s = finish
    req.batch_size = 2
    return req


def shed_request(rid=9, arrival=0.5):
    req = Request(request_id=rid, tenant="lenet", arrival_s=arrival)
    req.status = RequestStatus.SHED
    req.finish_s = arrival
    return req


class TestMergedTrace:
    def events(self, **kw):
        doc = json.loads(chrome_trace(**kw))
        assert "traceEvents" in doc
        return doc["traceEvents"]

    def test_valid_json_with_both_sides(self):
        evs = self.events(kernel_trace=kernel_trace(),
                          requests=[served_request()])
        pids = {e["pid"] for e in evs}
        assert pids == {SIM_PID, REQUEST_PID}

    def test_kernel_only_degrades_gracefully(self):
        evs = self.events(kernel_trace=kernel_trace())
        assert {e["pid"] for e in evs} == {SIM_PID}
        slices = [e for e in evs if e["ph"] == "X"]
        assert {s["name"] for s in slices} == {"conv1", "relu1", "memcpy:x"}

    def test_requests_only_degrades_gracefully(self):
        evs = self.events(requests=[served_request()])
        assert {e["pid"] for e in evs} == {REQUEST_PID}

    def test_empty_trace_is_valid(self):
        assert self.events() == []

    def test_timestamps_monotone_after_metadata(self):
        evs = self.events(kernel_trace=kernel_trace(),
                          requests=[served_request(), shed_request()])
        body = [e for e in evs if e["ph"] != "M"]
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)

    def test_metadata_first(self):
        evs = self.events(kernel_trace=kernel_trace(),
                          requests=[served_request()])
        phases = [e["ph"] for e in evs]
        last_meta = max(i for i, p in enumerate(phases) if p == "M")
        first_body = min(i for i, p in enumerate(phases) if p != "M")
        assert last_meta < first_body

    def test_flow_events_are_paired_by_id(self):
        reqs = [served_request(rid=i, arrival=i * 0.01,
                               dispatch=i * 0.01 + 0.005,
                               finish=i * 0.01 + 0.008)
                for i in range(5)]
        evs = self.events(requests=reqs)
        starts = {e["id"]: e["ts"] for e in evs if e["ph"] == "s"}
        finishes = {e["id"]: e["ts"] for e in evs if e["ph"] == "f"}
        assert set(starts) == set(finishes) == {str(i) for i in range(5)}
        for rid in starts:
            assert starts[rid] <= finishes[rid]
        for e in evs:
            if e["ph"] == "f":
                assert e["bp"] == "e"

    def test_async_track_spans_arrival_to_finish(self):
        req = served_request(rid=3, arrival=0.25, finish=0.75)
        evs = self.events(requests=[req])
        begin = next(e for e in evs if e["ph"] == "b")
        end = next(e for e in evs if e["ph"] == "e")
        assert begin["id"] == end["id"] == "3"
        assert begin["ts"] == 0.25e6
        assert end["ts"] == 0.75e6

    def test_shed_request_is_instant_event(self):
        evs = self.events(requests=[shed_request(rid=7)])
        instants = [e for e in evs if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "shed:req7"
        assert instants[0]["s"] == "t"
        assert not [e for e in evs if e["ph"] in ("s", "f")]

    def test_microsecond_units(self):
        evs = self.events(kernel_trace=kernel_trace())
        import pytest

        conv = next(e for e in evs if e.get("name") == "conv1")
        assert conv["ts"] == 0
        assert conv["dur"] == pytest.approx(1000)  # 0.001 s

    def test_process_names_label_both_pids(self):
        evs = self.events(kernel_trace=kernel_trace(),
                          requests=[served_request()])
        names = {e["pid"]: e["args"]["name"] for e in evs
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {SIM_PID: "simulator", REQUEST_PID: "requests"}


class TestEndToEndServingTrace:
    def test_simulated_run_exports_loadable_trace(self):
        from repro.obs import Observability
        from repro.serving.simulator import ServingSimulator, poisson_tenant

        obs = Observability.on()
        sim = ServingSimulator(
            None, [poisson_tenant("lenet", 150.0, 0.3, seed=3)], obs=obs
        )
        report = sim.run()
        doc = json.loads(chrome_trace(kernel_trace=sim.trace,
                                      requests=sim.requests))
        evs = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        # one flow pair per served request
        starts = [e for e in evs if e["ph"] == "s"]
        finishes = [e for e in evs if e["ph"] == "f"]
        assert len(starts) == len(finishes) == report.served
        # kernel intervals exist alongside request events
        assert any(e["pid"] == SIM_PID and e["ph"] == "X" for e in evs)
        body = [e for e in evs if e["ph"] != "M"]
        assert all(e["ts"] >= 0 for e in body)
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)


class TestClusterPerfettoExport:
    """The fleet simulator's batch-slice trace through chrome_trace."""

    def run_cluster(self, *, obs=None, rate=60.0):
        from repro.cluster import (
            ClusterConfig, ClusterSimulator, ClusterTenant, DeviceMix,
        )
        from repro.workloads import PoissonArrivals

        sim = ClusterSimulator(
            [ClusterTenant("squeezenet", PoissonArrivals(rate, 1.0, seed=2))],
            DeviceMix.parse("jetson-agx-xavier:2"),
            2,
            ClusterConfig(seed=2),
            obs=obs,
        )
        return sim, sim.run()

    def test_cluster_run_exports_loadable_trace(self):
        from repro.obs import Observability

        sim, report = self.run_cluster(obs=Observability.on())
        assert sim.trace is not None
        doc = json.loads(chrome_trace(kernel_trace=sim.trace))
        evs = doc["traceEvents"]
        slices = [e for e in evs if e["ph"] == "X"]
        # one complete slice per dispatched batch, all on the sim pid
        batch_total = sum(
            sum(p.batch_histogram.values()) for p in report.pools
        )
        assert slices and len(slices) == batch_total
        assert all(e["pid"] == SIM_PID for e in slices)
        assert all(e["dur"] >= 0 for e in slices)
        assert any("batch" in e["name"] for e in slices)
        ts = [e["ts"] for e in evs if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_disabled_observability_records_no_trace(self):
        sim, report = self.run_cluster(obs=None)
        assert sim.trace is None
        assert report.served > 0

    def test_empty_cluster_trace_exports_cleanly(self):
        # A fleet that admits traffic but never dispatches (the horizon
        # closes before any batch forms) still yields valid JSON.
        doc = json.loads(chrome_trace(kernel_trace=Trace()))
        assert doc["traceEvents"] == []
        assert doc["displayTimeUnit"] == "ms"

    def test_no_inputs_at_all_is_an_empty_trace(self):
        doc = json.loads(chrome_trace())
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}
