"""Observability threaded through engine, tuner, executor, and serving.

The cardinal rule: instrumentation must never change the simulated
numbers.  Every test here runs the same scenario with observability on
and off and insists the reports agree exactly.
"""

import pytest

from repro.core.engine import EdgeNN
from repro.core.plan_cache import clear_plan_cache
from repro.obs import NOOP_OBS, Observability
from repro.serving.simulator import ServingSimulator, poisson_tenant


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def observed_run(network="lenet"):
    obs = Observability.on()
    engine = EdgeNN(network, obs=obs)
    report = engine.run()
    return obs, report


class TestObservabilityBundle:
    def test_default_is_noop(self):
        assert EdgeNN("lenet").obs is NOOP_OBS
        assert not NOOP_OBS.enabled

    def test_on_is_fresh_and_enabled(self):
        a, b = Observability.on(), Observability.on()
        assert a.enabled and b.enabled
        assert a.tracer is not b.tracer
        assert Observability.off() is NOOP_OBS


class TestEngineInstrumentation:
    def test_identical_numbers_with_obs_on(self):
        obs, observed = observed_run()
        clear_plan_cache()
        plain = EdgeNN("lenet").run()
        assert observed.total_s == plain.total_s
        assert observed.cpu_busy_s == plain.cpu_busy_s
        assert observed.gpu_busy_s == plain.gpu_busy_s
        assert observed.copy_share == plain.copy_share

    def test_span_tree_covers_the_stack(self):
        obs, report = observed_run()
        names = {s.name for s in obs.tracer.iter_spans()}
        assert "plan:lookup" in names
        assert "tune" in names
        assert "execute:lenet" in names
        assert any(n.startswith("layer:") for n in names)

    def test_execute_span_matches_report(self):
        obs, report = observed_run()
        (execute,) = obs.tracer.find("execute")
        assert execute.end_s == pytest.approx(report.total_s)
        layers = [c for c in execute.children if c.name.startswith("layer:")]
        assert layers
        assert all(s.end_s <= report.total_s + 1e-12 for s in layers)

    def test_plan_cache_hit_recorded_on_second_engine(self):
        obs = Observability.on()
        EdgeNN("lenet", obs=obs).run()
        EdgeNN("lenet", obs=obs).run()
        fam = obs.metrics.family("repro_plan_cache_requests_total")
        assert fam.labels(result="miss").value == 1
        assert fam.labels(result="hit").value == 1

    def test_layer_metrics_populated(self):
        obs, _ = observed_run()
        fam = obs.metrics.family("repro_layers_executed_total")
        total = sum(inst.value for _, inst in fam.children())
        assert total == len(obs.tracer.find("layer"))


class TestProvenanceIntegration:
    def test_every_placement_lists_candidate_costs(self):
        obs, _ = observed_run()
        placements = obs.provenance.placements()
        assert placements
        semantic = [p for p in placements if p.policy == "semantic"]
        assert semantic
        for p in semantic:
            kinds = {c.kind for c in p.candidates}
            assert kinds == {"managed", "regular"}, p.buffer
            assert p.reason

    def test_partition_records_compare_eq_candidates(self):
        obs, _ = observed_run()
        partitions = obs.provenance.partitions()
        assert partitions
        for rec in partitions:
            labels = [c.label for c in rec.candidates]
            assert "gpu" in labels and "cpu" in labels
            assert rec.reason
        splits = obs.provenance.partitions(chosen="split")
        for rec in splits:
            split_cand = next(
                c for c in rec.candidates if c.label == "split"
            )
            solo = min(
                c.predicted_s for c in rec.candidates
                if c.label in ("gpu", "cpu")
            )
            assert split_cand.predicted_s <= solo

    def test_final_placements_cover_every_buffer(self):
        obs, _ = observed_run()
        engine_plan_buffers = set()
        clear_plan_cache()
        engine = EdgeNN("lenet")
        engine.tune()
        engine_plan_buffers = set(engine.plan.alloc)
        finals = obs.provenance.final_placements("lenet")
        assert set(finals) == engine_plan_buffers


class TestServingIntegration:
    def scenario(self, obs=None):
        clear_plan_cache()
        sim = ServingSimulator(
            None, [poisson_tenant("lenet", 120.0, 0.4, seed=11)], obs=obs
        )
        return sim, sim.run()

    def test_identical_reports_with_obs_on(self):
        _, plain = self.scenario()
        _, observed = self.scenario(obs=Observability.on())
        assert observed.to_dict() == plain.to_dict()

    def test_plan_cache_counters_in_report(self):
        _, first = self.scenario()
        assert first.plan_cache_misses > 0
        assert first.plan_cache_hits == 0
        # Second identical run: every (network, batch) already tuned.
        sim = ServingSimulator(
            None, [poisson_tenant("lenet", 120.0, 0.4, seed=11)]
        )
        second = sim.run()
        assert second.plan_cache_misses == 0
        assert second.plan_cache_hits == first.plan_cache_misses
        d = second.to_dict()
        assert d["plan_cache_hits"] == second.plan_cache_hits
        assert "plan cache" in second.describe()

    def test_serving_metrics_and_spans(self):
        obs = Observability.on()
        sim, report = self.scenario(obs=obs)
        served = obs.metrics.family(
            "repro_serving_requests_total"
        ).labels(tenant="lenet", outcome="served").value
        assert served == report.served
        hist = obs.metrics.family("repro_serving_batch_size").labels()
        assert hist.count == sum(report.batch_histogram.values())
        (serve,) = obs.tracer.find("serve")
        assert serve.end_s == pytest.approx(report.makespan_s)
        assert len([s for s in obs.tracer.iter_spans()
                    if s.category == "batch"]) == int(
            report.extra["batch_count"]
        )

    def test_requests_and_batches_exposed(self):
        obs = Observability.on()
        sim, report = self.scenario(obs=obs)
        assert len(sim.requests) == report.offered
        assert len(sim.batches) == int(report.extra["batch_count"])
