"""Arrival-process determinism and shape."""

import pytest

from repro.errors import ReproError
from repro.workloads.arrivals import (
    ClosedLoopArrivals,
    PoissonArrivals,
    UniformArrivals,
)


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = PoissonArrivals(100, 2.0, seed=5).initial_arrivals()
        b = PoissonArrivals(100, 2.0, seed=5).initial_arrivals()
        assert a == b

    def test_seed_changes_trace(self):
        a = PoissonArrivals(100, 2.0, seed=1).initial_arrivals()
        b = PoissonArrivals(100, 2.0, seed=2).initial_arrivals()
        assert a != b

    def test_all_within_horizon_and_sorted(self):
        times = PoissonArrivals(50, 3.0, seed=0).initial_arrivals()
        assert all(0.0 <= t < 3.0 for t in times)
        assert times == sorted(times)

    def test_count_near_rate_times_duration(self):
        times = PoissonArrivals(200, 10.0, seed=0).initial_arrivals()
        # 2000 expected, sd ~45; 5 sigma leaves this test deterministic
        # across numpy versions yet meaningful.
        assert 1775 <= len(times) <= 2225

    def test_open_loop_has_no_feedback(self):
        assert PoissonArrivals(10, 1.0).next_after(0.5) is None

    @pytest.mark.parametrize("kwargs", [
        {"rate_rps": 0, "duration_s": 1.0},
        {"rate_rps": -5, "duration_s": 1.0},
        {"rate_rps": 10, "duration_s": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            PoissonArrivals(**kwargs)


class TestUniform:
    def test_exact_spacing(self):
        times = UniformArrivals(4, 1.0).initial_arrivals()
        assert times == pytest.approx([0.0, 0.25, 0.5, 0.75])

    def test_exact_count(self):
        assert len(UniformArrivals(100, 2.0).initial_arrivals()) == 200

    def test_validation(self):
        with pytest.raises(ReproError):
            UniformArrivals(0, 1.0)
        with pytest.raises(ReproError):
            UniformArrivals(10, -1.0)


class TestClosedLoop:
    def test_staggered_starts(self):
        arrivals = ClosedLoopArrivals(clients=4, think_s=0.4, duration_s=10)
        assert arrivals.initial_arrivals() == pytest.approx(
            [0.0, 0.1, 0.2, 0.3])

    def test_one_initial_arrival_per_client(self):
        arrivals = ClosedLoopArrivals(clients=7, think_s=0.01, duration_s=5)
        assert len(arrivals.initial_arrivals()) == 7

    def test_next_after_adds_think_time(self):
        arrivals = ClosedLoopArrivals(clients=1, think_s=0.25, duration_s=10)
        assert arrivals.next_after(1.0) == pytest.approx(1.25)

    def test_next_after_respects_horizon(self):
        arrivals = ClosedLoopArrivals(clients=1, think_s=0.25, duration_s=10)
        assert arrivals.next_after(9.9) is None

    def test_zero_think_time_allowed(self):
        arrivals = ClosedLoopArrivals(clients=2, think_s=0.0, duration_s=1)
        assert arrivals.initial_arrivals() == [0.0, 0.0]
        assert arrivals.next_after(0.5) == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"clients": 0, "think_s": 0.1, "duration_s": 1.0},
        {"clients": 2, "think_s": -0.1, "duration_s": 1.0},
        {"clients": 2, "think_s": 0.1, "duration_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            ClosedLoopArrivals(**kwargs)
