"""Arrival-process determinism and shape."""

import pytest

from repro.errors import ReproError
from repro.workloads.arrivals import (
    ClosedLoopArrivals,
    DiurnalPoissonArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    UniformArrivals,
)


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = PoissonArrivals(100, 2.0, seed=5).initial_arrivals()
        b = PoissonArrivals(100, 2.0, seed=5).initial_arrivals()
        assert a == b

    def test_seed_changes_trace(self):
        a = PoissonArrivals(100, 2.0, seed=1).initial_arrivals()
        b = PoissonArrivals(100, 2.0, seed=2).initial_arrivals()
        assert a != b

    def test_all_within_horizon_and_sorted(self):
        times = PoissonArrivals(50, 3.0, seed=0).initial_arrivals()
        assert all(0.0 <= t < 3.0 for t in times)
        assert times == sorted(times)

    def test_count_near_rate_times_duration(self):
        times = PoissonArrivals(200, 10.0, seed=0).initial_arrivals()
        # 2000 expected, sd ~45; 5 sigma leaves this test deterministic
        # across numpy versions yet meaningful.
        assert 1775 <= len(times) <= 2225

    def test_open_loop_has_no_feedback(self):
        assert PoissonArrivals(10, 1.0).next_after(0.5) is None

    @pytest.mark.parametrize("kwargs", [
        {"rate_rps": 0, "duration_s": 1.0},
        {"rate_rps": -5, "duration_s": 1.0},
        {"rate_rps": 10, "duration_s": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            PoissonArrivals(**kwargs)


class TestUniform:
    def test_exact_spacing(self):
        times = UniformArrivals(4, 1.0).initial_arrivals()
        assert times == pytest.approx([0.0, 0.25, 0.5, 0.75])

    def test_exact_count(self):
        assert len(UniformArrivals(100, 2.0).initial_arrivals()) == 200

    def test_validation(self):
        with pytest.raises(ReproError):
            UniformArrivals(0, 1.0)
        with pytest.raises(ReproError):
            UniformArrivals(10, -1.0)


class TestClosedLoop:
    def test_staggered_starts(self):
        arrivals = ClosedLoopArrivals(clients=4, think_s=0.4, duration_s=10)
        assert arrivals.initial_arrivals() == pytest.approx(
            [0.0, 0.1, 0.2, 0.3])

    def test_one_initial_arrival_per_client(self):
        arrivals = ClosedLoopArrivals(clients=7, think_s=0.01, duration_s=5)
        assert len(arrivals.initial_arrivals()) == 7

    def test_next_after_adds_think_time(self):
        arrivals = ClosedLoopArrivals(clients=1, think_s=0.25, duration_s=10)
        assert arrivals.next_after(1.0) == pytest.approx(1.25)

    def test_next_after_respects_horizon(self):
        arrivals = ClosedLoopArrivals(clients=1, think_s=0.25, duration_s=10)
        assert arrivals.next_after(9.9) is None

    def test_zero_think_time_allowed(self):
        arrivals = ClosedLoopArrivals(clients=2, think_s=0.0, duration_s=1)
        assert arrivals.initial_arrivals() == [0.0, 0.0]
        assert arrivals.next_after(0.5) == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"clients": 0, "think_s": 0.1, "duration_s": 1.0},
        {"clients": 2, "think_s": -0.1, "duration_s": 1.0},
        {"clients": 2, "think_s": 0.1, "duration_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            ClosedLoopArrivals(**kwargs)


class TestDiurnal:
    def test_deterministic_given_seed(self):
        a = DiurnalPoissonArrivals(100, 4.0, period_s=4.0, seed=3)
        b = DiurnalPoissonArrivals(100, 4.0, period_s=4.0, seed=3)
        assert a.initial_arrivals() == b.initial_arrivals()

    def test_seed_changes_trace(self):
        a = DiurnalPoissonArrivals(100, 4.0, period_s=4.0, seed=1)
        b = DiurnalPoissonArrivals(100, 4.0, period_s=4.0, seed=2)
        assert a.initial_arrivals() != b.initial_arrivals()

    def test_all_within_horizon_and_sorted(self):
        times = DiurnalPoissonArrivals(
            80, 3.0, period_s=3.0, seed=0
        ).initial_arrivals()
        assert all(0.0 <= t < 3.0 for t in times)
        assert times == sorted(times)

    def test_mean_rate_is_base_rate(self):
        # Over a whole period the sinusoid averages out: expect
        # base_rate * duration arrivals regardless of amplitude.
        times = DiurnalPoissonArrivals(
            200, 10.0, period_s=10.0, amplitude=0.9, seed=0
        ).initial_arrivals()
        assert 1775 <= len(times) <= 2225

    def test_peak_half_busier_than_trough_half(self):
        # phase 0 puts the peak in the first half-period and the trough
        # in the second; the arrival counts must reflect that.
        times = DiurnalPoissonArrivals(
            200, 10.0, period_s=10.0, amplitude=0.8, seed=0
        ).initial_arrivals()
        first = sum(1 for t in times if t < 5.0)
        second = len(times) - first
        assert first > 1.5 * second

    def test_phase_shifts_the_cycle(self):
        import math

        # phase pi flips peak and trough.
        times = DiurnalPoissonArrivals(
            200, 10.0, period_s=10.0, amplitude=0.8, phase=math.pi,
            seed=0,
        ).initial_arrivals()
        first = sum(1 for t in times if t < 5.0)
        second = len(times) - first
        assert second > 1.5 * first

    def test_open_loop_has_no_feedback(self):
        assert DiurnalPoissonArrivals(10, 1.0).next_after(0.5) is None

    @pytest.mark.parametrize("kwargs", [
        {"base_rate_rps": 0, "duration_s": 1.0},
        {"base_rate_rps": 10, "duration_s": 1.0, "period_s": 0.0},
        {"base_rate_rps": 10, "duration_s": 1.0, "amplitude": 1.5},
        {"base_rate_rps": 10, "duration_s": 1.0, "amplitude": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            DiurnalPoissonArrivals(**kwargs)


class TestFlashCrowd:
    def test_deterministic_given_seed(self):
        a = FlashCrowdArrivals(
            50, 4.0, spike_start_s=1.0, spike_duration_s=1.0, seed=9
        )
        b = FlashCrowdArrivals(
            50, 4.0, spike_start_s=1.0, spike_duration_s=1.0, seed=9
        )
        assert a.initial_arrivals() == b.initial_arrivals()

    def test_all_within_horizon_and_sorted(self):
        times = FlashCrowdArrivals(
            50, 4.0, spike_start_s=1.0, spike_duration_s=1.0, seed=0
        ).initial_arrivals()
        assert all(0.0 <= t < 4.0 for t in times)
        assert times == sorted(times)

    def test_spike_window_is_denser(self):
        times = FlashCrowdArrivals(
            100, 10.0, spike_start_s=4.0, spike_duration_s=2.0,
            spike_factor=5.0, seed=0,
        ).initial_arrivals()
        inside = sum(1 for t in times if 4.0 <= t < 6.0)
        # 2s at 500/s inside vs 8s at 100/s outside; per-second density
        # inside must dominate clearly.
        outside = len(times) - inside
        assert inside / 2.0 > 3.0 * (outside / 8.0)

    def test_factor_one_is_plain_poisson_rate(self):
        times = FlashCrowdArrivals(
            200, 10.0, spike_start_s=2.0, spike_duration_s=2.0,
            spike_factor=1.0, seed=0,
        ).initial_arrivals()
        assert 1775 <= len(times) <= 2225

    @pytest.mark.parametrize("kwargs", [
        {"base_rate_rps": 0, "duration_s": 1.0,
         "spike_start_s": 0.0, "spike_duration_s": 0.5},
        {"base_rate_rps": 10, "duration_s": 1.0,
         "spike_start_s": -1.0, "spike_duration_s": 0.5},
        {"base_rate_rps": 10, "duration_s": 1.0,
         "spike_start_s": 0.0, "spike_duration_s": 0.0},
        {"base_rate_rps": 10, "duration_s": 1.0,
         "spike_start_s": 0.0, "spike_duration_s": 0.5,
         "spike_factor": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            FlashCrowdArrivals(**kwargs)
