"""CSV/JSON export of experiment results."""

import csv
import io
import json

import pytest

from repro.errors import ReproError
from repro.eval import experiments as ex
from repro.eval.export import result_rows, to_csv, to_json


@pytest.fixture(scope="module")
def fig06():
    return ex.fig06_edge_cpu_speedups(("lenet",))


class TestResultRows:
    def test_rows_from_figure_result(self, fig06):
        rows = result_rows(fig06)
        assert len(rows) == 1
        assert rows[0]["network"] == "lenet"
        assert "jetson_cpu_speedup" in rows[0]

    def test_rows_from_table_result(self):
        result = ex.table1_layer_improvements(("lenet",))
        rows = result_rows(result)
        assert {r["kernel_class"] for r in rows} <= {"conv", "dense"}

    def test_computed_properties_included(self):
        result = ex.fig12_cloud_comparison(("lenet",))
        rows = result_rows(result)
        assert "improvement_pct" in rows[0]
        assert "edgenn_wins" in rows[0]

    def test_rejects_unknown_shapes(self):
        with pytest.raises(ReproError):
            result_rows(object())


class TestCsv:
    def test_parses_back(self, fig06):
        text = to_csv(fig06)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["network"] == "lenet"
        assert float(parsed[0]["edgenn_ms"]) > 0

    def test_header_matches_fields(self, fig06):
        header = to_csv(fig06).splitlines()[0].split(",")
        assert "network" in header


class TestJson:
    def test_parses_back(self, fig06):
        doc = json.loads(to_json(fig06))
        assert doc["rows"][0]["network"] == "lenet"

    def test_includes_aggregates(self, fig06):
        doc = json.loads(to_json(fig06))
        assert "mean_jetson_cpu" in doc
        assert doc["mean_jetson_cpu"] > 0

    def test_fig09_max_included(self):
        doc = json.loads(to_json(ex.fig09_memcpy_share(("lenet",))))
        assert "max_discrete" in doc


def _serving_report():
    from repro.serving import BatchPolicy, ServingConfig, ServingSimulator, TenantSpec
    from repro.serving.simulator import BatchServiceTime
    from repro.hardware.specs import JETSON_AGX_XAVIER
    from repro.workloads.arrivals import UniformArrivals

    class Model:
        def warm(self, network, batch):
            t = 0.01 * batch
            return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                    gpu_busy_s=0.8 * t)

        cold = warm

    tenants = [TenantSpec(network="lenet", arrival=UniformArrivals(50, 1.0))]
    sim = ServingSimulator(JETSON_AGX_XAVIER, tenants, ServingConfig(),
                           service_model=Model())
    return sim.run()


class TestServingExport:
    def test_rows_have_aggregate_sentinel(self):
        from repro.eval.export import serving_rows

        rows = serving_rows(_serving_report())
        assert rows[-1]["tenant"] == "*"
        assert rows[-1]["offered"] == sum(r["offered"] for r in rows[:-1])

    def test_csv_parses_back(self):
        from repro.eval.export import serving_to_csv

        parsed = list(csv.DictReader(io.StringIO(
            serving_to_csv(_serving_report()))))
        assert parsed[0]["network"] == "lenet"
        assert float(parsed[0]["p99_ms"]) >= float(parsed[0]["p50_ms"])

    def test_json_round_trip(self):
        from repro.eval.export import serving_to_json

        doc = json.loads(serving_to_json(_serving_report()))
        assert doc["offered"] == doc["served"] + doc["shed"]
        assert doc["tenants"][0]["tenant"] == "lenet"


def _parity(csv_text, json_rows):
    """Assert CSV rows and JSON rows carry identical data field by field
    (CSV stringifies everything, so compare through float where possible)."""
    csv_rows = list(csv.DictReader(io.StringIO(csv_text)))
    assert len(csv_rows) == len(json_rows)
    for crow, jrow in zip(csv_rows, json_rows):
        assert set(crow) == set(jrow)
        for key, jval in jrow.items():
            cval = crow[key]
            if isinstance(jval, bool):
                assert cval == str(jval)
            elif isinstance(jval, (int, float)):
                assert float(cval) == pytest.approx(jval), key
            else:
                assert cval == str(jval), key


class TestCsvJsonRoundTripParity:
    def test_figure_result_parity(self, fig06):
        _parity(to_csv(fig06), json.loads(to_json(fig06))["rows"])

    def test_table_result_parity(self):
        result = ex.table1_layer_improvements(("lenet",))
        _parity(to_csv(result), json.loads(to_json(result))["rows"])

    def test_computed_properties_survive_both_paths(self):
        result = ex.fig12_cloud_comparison(("lenet",))
        _parity(to_csv(result), json.loads(to_json(result))["rows"])

    def test_serving_parity(self):
        from repro.eval.export import (
            serving_rows,
            serving_to_csv,
            serving_to_json,
        )

        report = _serving_report()
        json_tenants = json.loads(serving_to_json(report))["tenants"]
        # The JSON document drops the aggregate "*" row; compare the
        # per-tenant prefix, then the aggregate against the full rows.
        all_rows = serving_rows(report)
        _parity(serving_to_csv(report), all_rows)
        assert json_tenants == all_rows[:-1]
