"""Evaluation metrics (Eqs. 5-6 and aggregation)."""

import math

import pytest

from repro.errors import ReproError
from repro.eval import metrics


class TestMeans:
    def test_arithmetic(self):
        assert metrics.arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_geometric(self):
        assert metrics.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_of_identical(self):
        assert metrics.geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_geometric_below_arithmetic(self):
        values = [1.0, 2.0, 10.0]
        assert metrics.geometric_mean(values) < metrics.arithmetic_mean(values)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            metrics.arithmetic_mean([])
        with pytest.raises(ReproError):
            metrics.geometric_mean([])

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            metrics.geometric_mean([1.0, 0.0])


class TestSpeedupAndImprovement:
    def test_speedup(self):
        assert metrics.speedup(4.0, 1.0) == 4.0

    def test_improvement_pct(self):
        assert metrics.improvement_pct(4.0, 3.0) == pytest.approx(25.0)
        assert metrics.improvement_pct(4.0, 5.0) == pytest.approx(-25.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            metrics.speedup(0.0, 1.0)
        with pytest.raises(ReproError):
            metrics.improvement_pct(0.0, 1.0)


class TestEfficiencyRatios:
    def test_power_ratio_eq5(self):
        # A: 1 s at 5 W; B: 4 s at 10 W => A is 8x more efficient.
        ratio = metrics.performance_per_power_ratio(1.0, 5.0, 4.0, 10.0)
        assert ratio == pytest.approx(8.0)

    def test_price_ratio_eq6(self):
        # A: 1 s on $700; B: 10 s on $70 => equal perf/price.
        ratio = metrics.performance_per_price_ratio(1.0, 700.0, 10.0, 70.0)
        assert ratio == pytest.approx(1.0)

    def test_ratio_symmetry(self):
        forward = metrics.performance_per_power_ratio(1.0, 5.0, 2.0, 7.0)
        backward = metrics.performance_per_power_ratio(2.0, 7.0, 1.0, 5.0)
        assert forward * backward == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            metrics.performance_per_power_ratio(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ReproError):
            metrics.performance_per_price_ratio(1.0, 1.0, 1.0, 0.0)
