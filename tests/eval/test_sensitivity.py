"""Sensitivity of the headline conclusions to perturbed hardware
parameters."""

import pytest

from repro.eval.sensitivity import (
    SensitivityPoint,
    conclusions_robust,
    sweep,
)


class TestSweepMechanics:
    def test_sweep_returns_one_point_per_scale(self):
        points = sweep("lenet", "copy_rate", scales=(0.5, 1.0))
        assert len(points) == 2
        assert [p.scale for p in points] == [0.5, 1.0]

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            sweep("lenet", "voltage", scales=(1.0,))

    def test_copy_rate_moves_gpu_only_baseline(self):
        slow, fast = sweep("lenet", "copy_rate", scales=(0.5, 2.0))
        # Cheaper copies shrink the original program's staging cost.
        assert fast.gpu_only_s < slow.gpu_only_s

    def test_dram_bandwidth_moves_everything(self):
        slow, fast = sweep("lenet", "dram_bandwidth", scales=(0.5, 2.0))
        assert fast.edgenn_s <= slow.edgenn_s
        assert fast.cpu_only_s <= slow.cpu_only_s


class TestConclusionsRobust:
    @pytest.mark.parametrize("parameter", ["dram_bandwidth", "copy_rate",
                                           "corun_efficiency"])
    def test_alexnet_conclusions_hold_under_2x_perturbation(self, parameter):
        for point in sweep("alexnet", parameter, scales=(0.5, 1.0, 2.0)):
            assert point.conclusions_hold, point

    def test_aggregate_helper(self):
        assert conclusions_robust("alexnet", scales=(0.5, 2.0))

    def test_point_properties(self):
        point = SensitivityPoint("copy_rate", 1.0, edgenn_s=1.0,
                                 gpu_only_s=2.0, cpu_only_s=4.0)
        assert point.edgenn_improvement_pct == pytest.approx(50.0)
        assert point.cpu_speedup == pytest.approx(4.0)
        assert point.conclusions_hold
