"""Roofline and time breakdown analysis."""

import pytest

from repro.eval.breakdown import (
    format_breakdown,
    roofline_breakdown,
    split_candidates,
    time_breakdown,
)
from repro.eval.experiments import edgenn_report
from repro.hardware.specs import JETSON_AGX_XAVIER


class TestRooflineBreakdown:
    def test_covers_all_real_layers(self):
        rows = roofline_breakdown("alexnet")
        names = {r.layer for r in rows}
        assert "conv1" in names and "fc6" in names
        assert "flatten" not in names  # noop

    def test_fc_layers_memory_bound_on_gpu(self):
        rows = {r.layer: r for r in roofline_breakdown("alexnet")}
        assert rows["fc6"].gpu_memory_bound
        assert rows["fc6"].arithmetic_intensity < 1.0

    def test_conv_layers_compute_bound_on_gpu(self):
        rows = {r.layer: r for r in roofline_breakdown("alexnet")}
        assert not rows["conv2"].gpu_memory_bound

    def test_cpu_gpu_ratio_shape(self):
        rows = {r.layer: r for r in roofline_breakdown("alexnet")}
        # Big convs: GPU far ahead; fc: CPU competitive (the Table I story).
        assert rows["conv2"].cpu_gpu_ratio > 3.0
        assert rows["fc6"].cpu_gpu_ratio < 1.5


class TestSplitCandidates:
    def test_alexnet_candidates_are_the_fc_layers(self):
        candidates = split_candidates("alexnet", max_ratio=2.0)
        assert {"fc6", "fc7", "fc8"} <= set(candidates)
        assert "conv2" not in candidates

    def test_ratio_threshold_monotone(self):
        tight = set(split_candidates("alexnet", max_ratio=1.5))
        loose = set(split_candidates("alexnet", max_ratio=10.0))
        assert tight <= loose


class TestTimeBreakdown:
    def test_sums_to_meaningful_classes(self):
        report = edgenn_report("alexnet")
        breakdown = time_breakdown(report)
        assert breakdown["conv"] > 0
        assert breakdown["dense"] > 0
        assert "copies" in breakdown

    def test_conv_dominates_vgg(self):
        report = edgenn_report("vgg16")
        breakdown = time_breakdown(report)
        assert breakdown["conv"] > breakdown["dense"]


class TestFormat:
    def test_renders_table(self):
        text = format_breakdown("lenet")
        assert "Roofline breakdown" in text
        assert "conv1" in text and "t_cpu/t_gpu" in text
