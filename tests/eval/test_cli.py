"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "lenet"])
        assert args.network == "lenet"
        assert not args.no_memory and not args.no_hybrid
        assert args.objective == "latency"

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "transformer"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.network == "alexnet"
        assert args.arrival_rate == 10.0
        assert args.max_batch == 8
        assert args.tenant == []


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "jetson-agx-xavier" in out
        assert "amd-ryzen-apu" in out

    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("fcnn", "vgg16", "resnet18"):
            assert name in out

    def test_run(self, capsys):
        assert main(["run", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "plan" in out

    def test_run_with_ablation_flags(self, capsys):
        assert main(["run", "lenet", "--no-hybrid"]) == 0
        assert "split=0" in capsys.readouterr().out

    def test_run_with_energy_objective(self, capsys):
        assert main(["run", "lenet", "--objective", "energy"]) == 0

    def test_run_with_precision_and_batch(self, capsys):
        assert main(["run", "lenet", "--precision", "int8",
                     "--batch", "8"]) == 0

    def test_run_extension_network(self, capsys):
        assert main(["run", "mobilenet-v1"]) == 0
        assert "mobilenet-v1" in capsys.readouterr().out

    def test_networks_lists_extensions(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet-v1" in out and "extension" in out

    def test_run_on_variant_device(self, capsys):
        assert main(["run", "lenet", "--device", "apple-m1-style"]) == 0
        assert "apple-m1-style" in capsys.readouterr().out

    def test_run_unknown_device_errors(self, capsys):
        assert main(["run", "lenet", "--device", "tpu"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_run_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["run", "lenet", "--trace", str(trace)]) == 0
        assert trace.exists() and trace.read_text().startswith("{")

    def test_compare(self, capsys):
        assert main(["compare", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "cloud" in out and "rpi4" in out and "vs edgenn" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "Roofline breakdown" in out
        assert "split candidates" in out

    def test_breakdown_on_variant_device(self, capsys):
        assert main(["breakdown", "lenet", "--device", "amd-ryzen-apu"]) == 0

    def test_advise_feasible(self, capsys):
        assert main(["advise", "lenet", "--slo-ms", "1000"]) == 0
        out = capsys.readouterr().out
        assert "chosen" in out and "10W" in out

    def test_advise_infeasible_exit_code(self, capsys):
        assert main(["advise", "lenet", "--slo-ms", "0.0001"]) == 1
        assert "no mode meets" in capsys.readouterr().out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "sec5b2"]) == 0
        assert "V-B2" in capsys.readouterr().out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_serve_single_tenant(self, capsys):
        assert main(["serve", "--network", "lenet", "--arrival-rate", "50",
                     "--duration", "1"]) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "throughput" in out and "shed" in out

    def test_serve_multi_tenant(self, capsys):
        assert main(["serve", "--duration", "1",
                     "--tenant", "lenet:40:2",
                     "--tenant", "fcnn:40:1"]) == 0
        out = capsys.readouterr().out
        assert "lenet#0" in out and "fcnn#1" in out

    def test_serve_closed_loop(self, capsys):
        assert main(["serve", "--network", "lenet", "--duration", "1",
                     "--closed-loop", "4", "--think-ms", "20"]) == 0
        # A closed loop self-limits its offered load: nothing is shed.
        assert "shed 0 (0.0%)" in capsys.readouterr().out

    def test_serve_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "serve.json"
        assert main(["serve", "--network", "lenet", "--duration", "1",
                     "--trace", str(trace)]) == 0
        assert trace.exists()

    def test_serve_obs_out_writes_artifact_bundle(self, tmp_path, capsys):
        out = tmp_path / "obs"
        assert main(["serve", "--network", "lenet", "--duration", "0.5",
                     "--arrival-rate", "100", "--obs-out", str(out)]) == 0
        for name in ("trace.json", "metrics.prom", "metrics.json",
                     "provenance.json", "spans.json"):
            assert (out / name).exists(), name
        import json as _json

        doc = _json.loads((out / "trace.json").read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "s" in phases and "f" in phases
        assert "repro_serving_requests_total" in (
            out / "metrics.prom"
        ).read_text()
        prov = _json.loads((out / "provenance.json").read_text())
        assert prov["placements"]

    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "kernel.json"
        assert main(["trace", "lenet", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "tune" in printed and "layer:" in printed
        assert "zero-copy" in printed   # provenance summary
        assert out.exists()

    def test_metrics_command_prom(self, capsys):
        assert main(["metrics", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_layers_executed_total counter" in out

    def test_metrics_command_json(self, capsys):
        assert main(["metrics", "lenet", "--format", "json"]) == 0
        import json as _json

        doc = _json.loads(capsys.readouterr().out)
        assert "repro_layers_executed_total" in doc

    def test_serve_bad_tenant_spec(self, capsys):
        assert main(["serve", "--tenant", "nosuchnet:10"]) == 2

    def test_serve_non_numeric_tenant_rate(self, capsys):
        assert main(["serve", "--tenant", "lenet:abc"]) == 2
        assert "numeric" in capsys.readouterr().err

    def test_export(self, tmp_path, capsys):
        # run_all is expensive; export into tmp and spot-check one artifact.
        assert main(["export", str(tmp_path)]) == 0
        assert (tmp_path / "fig06.csv").exists()
        assert (tmp_path / "table1.json").exists()
