"""Experiment harness plumbing (fast subsets; the paper-shape assertions on
the full suite live in tests/integration/test_paper_shapes.py)."""

import pytest

from repro.eval import experiments as ex

FAST = ("fcnn", "lenet")


@pytest.fixture(autouse=True, scope="module")
def _warm_cache():
    # Reports are memoized; warming keeps individual tests snappy without
    # hiding correctness issues.
    yield


class TestCaching:
    def test_reports_memoized(self):
        a = ex.edgenn_report("lenet")
        b = ex.edgenn_report("lenet")
        assert a is b

    def test_cache_keyed_by_config(self):
        a = ex.edgenn_report("lenet")
        b = ex.edgenn_report("lenet", use_hybrid_execution=False)
        assert a is not b

    def test_clear_cache(self):
        a = ex.edgenn_report("lenet")
        ex.clear_cache()
        b = ex.edgenn_report("lenet")
        assert a is not b


class TestFig06:
    def test_rows_and_means(self):
        result = ex.fig06_edge_cpu_speedups(FAST)
        assert [r.network for r in result.rows] == list(FAST)
        assert result.mean_raspberry_pi > result.mean_jetson_cpu
        for row in result.rows:
            assert row.edgenn_ms > 0


class TestFig07And13:
    def test_fig07_structure(self):
        result = ex.fig07_efficiency_vs_edge_cpu(FAST)
        assert result.comparison == "raspberry-pi-4"
        assert result.geomean_power > 0
        assert result.geomean_price > 0

    def test_fig13_structure(self):
        result = ex.fig13_efficiency_vs_discrete_gpu(FAST)
        assert result.comparison == "rtx-2080ti-host"
        assert all(r.power_ratio > 1 for r in result.rows)


class TestFig08:
    def test_ablation_rows(self):
        result = ex.fig08_ablation(FAST)
        for row in result.rows:
            assert row.baseline_ms > 0
            # The full system at least matches its strongest single design.
            assert row.edgenn_improvement_pct >= min(
                row.memory_improvement_pct, row.hybrid_improvement_pct
            ) - 1.0


class TestFig09:
    def test_shares_in_unit_range(self):
        result = ex.fig09_memcpy_share(FAST)
        for row in result.rows:
            assert 0 <= row.integrated_share_pct <= 100
            assert 0 <= row.discrete_share_pct <= 100


class TestLayerFigures:
    def test_fig10_rows(self):
        result = ex.fig10_alexnet_zero_copy_layers()
        assert result.network == "alexnet"
        classes = {r.kernel_class for r in result.rows}
        assert "conv" in classes and "dense" in classes

    def test_fig10_omits_sub_percent_layers(self):
        result = ex.fig10_alexnet_zero_copy_layers()
        names = {r.layer for r in result.rows}
        assert "softmax" not in names

    def test_fig11_variants_differ(self):
        zc = ex.fig11_alexnet_hybrid_layers(zero_copy=True)
        nozc = ex.fig11_alexnet_hybrid_layers(zero_copy=False)
        assert zc.rows != nozc.rows


class TestTable1:
    def test_cells_cover_requested_networks(self):
        result = ex.table1_layer_improvements(("lenet",))
        networks = {c.network for c in result.cells}
        assert networks == {"lenet"}

    def test_cell_lookup(self):
        result = ex.table1_layer_improvements(("lenet",))
        cell = result.cell("lenet", "dense")
        assert cell.min_pct <= cell.avg_pct <= cell.max_pct

    def test_cell_lookup_missing(self):
        result = ex.table1_layer_improvements(("lenet",))
        with pytest.raises(KeyError):
            result.cell("lenet", "pool")

    def test_improvements_clamped_nonnegative(self):
        result = ex.table1_layer_improvements(("lenet",))
        for cell in result.cells:
            assert cell.min_pct >= 0.0


class TestFig12:
    def test_rows(self):
        result = ex.fig12_cloud_comparison(FAST)
        for row in result.rows:
            assert row.cloud_total_ms > row.cloud_computing_ms
            # Small nets always beat the 0.5 s network overhead.
            assert row.edgenn_wins


class TestSec5F:
    def test_chain_networks_gain_nothing(self):
        result = ex.sec5f_interkernel_only(FAST)
        for row in result.rows:
            assert row.interkernel_improvement_pct == pytest.approx(0.0, abs=0.5)

    def test_row_lookup(self):
        result = ex.sec5f_interkernel_only(FAST)
        assert result.row("fcnn").network == "fcnn"
        with pytest.raises(KeyError):
            result.row("vgg16")


class TestSec5B2:
    def test_utilizations_in_range(self):
        result = ex.sec5b2_utilization(FAST)
        for row in result.rows:
            assert 0 <= row.cpu_util_pct <= 100
            assert 0 <= row.gpu_util_pct <= 100
            assert row.power_w > 0
