"""Table rendering."""

from repro.eval import experiments as ex
from repro.eval import formatting as fmt


class TestRenderTable:
    def test_basic_layout(self):
        text = fmt.render_table(
            ["name", "value"], [("a", 1.5), ("bb", 2.0)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.50" in text and "bb" in text

    def test_empty_rows(self):
        text = fmt.render_table(["x"], [])
        assert "x" in text

    def test_floats_two_decimals(self):
        text = fmt.render_table(["v"], [(3.14159,)])
        assert "3.14" in text and "3.142" not in text


class TestFormatters:
    def test_fig06_formatter(self):
        result = ex.fig06_edge_cpu_speedups(("lenet",))
        text = fmt.format_fig06(result)
        assert "Fig 6" in text and "lenet" in text and "avg:" in text

    def test_fig08_formatter(self):
        text = fmt.format_fig08(ex.fig08_ablation(("lenet",)))
        assert "memory" in text and "edgenn" in text

    def test_fig09_formatter(self):
        text = fmt.format_fig09(ex.fig09_memcpy_share(("lenet",)))
        assert "integrated" in text and "discrete" in text

    def test_table1_formatter(self):
        text = fmt.format_table1(ex.table1_layer_improvements(("lenet",)))
        assert "Table I" in text and "fc" in text

    def test_sec5f_formatter(self):
        text = fmt.format_sec5f(ex.sec5f_interkernel_only(("lenet",)))
        assert "V-F" in text

    def test_fig12_formatter(self):
        text = fmt.format_fig12(ex.fig12_cloud_comparison(("lenet",)))
        assert "cloud" in text and "edgenn" in text

    def test_efficiency_formatter(self):
        result = ex.fig07_efficiency_vs_edge_cpu(("lenet",))
        text = fmt.format_efficiency(result, "Fig 7", "note")
        assert "raspberry-pi-4" in text and "geomean" in text

    def test_sec5b2_formatter(self):
        text = fmt.format_sec5b2(ex.sec5b2_utilization(("lenet",)))
        assert "util" in text


class TestServingFormatters:
    def _report(self):
        from repro.hardware.specs import JETSON_AGX_XAVIER
        from repro.serving import ServingConfig, ServingSimulator, TenantSpec
        from repro.serving.simulator import BatchServiceTime
        from repro.workloads.arrivals import UniformArrivals

        class Model:
            def warm(self, network, batch):
                t = 0.01 * batch
                return BatchServiceTime(total_s=t, cpu_busy_s=0.2 * t,
                                        gpu_busy_s=0.8 * t)

            cold = warm

        tenants = [TenantSpec(network="lenet",
                              arrival=UniformArrivals(40, 1.0))]
        sim = ServingSimulator(JETSON_AGX_XAVIER, tenants, ServingConfig(),
                               service_model=Model())
        return sim.run()

    def test_format_serving(self):
        text = fmt.format_serving(self._report())
        assert "Serving" in text and "p99 ms" in text
        assert "throughput=" in text and "lenet" in text

    def test_format_serving_sweep(self):
        report = self._report()
        text = fmt.format_serving_sweep([(10.0, report), (20.0, report)])
        assert "arrival-rate sweep" in text
        assert "rate req/s" in text
