"""Exception hierarchy: one catchable family, precise subtypes."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SpecError,
    errors.MemoryModelError,
    errors.AllocationError,
    errors.ShapeError,
    errors.GraphError,
    errors.PlanError,
    errors.SimulationError,
    errors.TuningError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_every_error_is_a_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_allocation_error_is_a_memory_model_error():
    assert issubclass(errors.AllocationError, errors.MemoryModelError)


def test_library_raises_only_its_own_family():
    """A representative misuse from each subsystem lands inside the
    ReproError family (so callers can catch one type)."""
    from repro.hardware.specs import device
    from repro.nn.graph import NetworkGraph
    from repro.nn.layers import Dense
    from repro.core.partition import optimal_cpu_fraction

    with pytest.raises(errors.ReproError):
        device("abacus")
    with pytest.raises(errors.ReproError):
        NetworkGraph("n", (4,)).add(Dense("fc", 4), inputs=["ghost"])
    with pytest.raises(errors.ReproError):
        optimal_cpu_fraction(-1.0, 1.0, 0.0, 1.0)
