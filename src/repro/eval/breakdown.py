"""Analysis tooling: roofline boundness and time breakdowns.

Answers the "why" questions behind the paper's results for any network on
any device:

* which layers are compute- vs memory-bound on each processor (the
  property that decides whether a split can pay, §IV-D);
* where a run's time actually goes (kernel class / processor / copies);
* per-layer CPU:GPU time ratios — the ``t_cpu / t_gpu`` landscape the
  tuner navigates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..core.report import InferenceReport
from ..hardware.device import Device
from ..hardware.specs import JETSON_AGX_XAVIER, DeviceSpec, ProcessorKind
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model
from .formatting import render_table


@dataclass(frozen=True)
class LayerBoundness:
    """Roofline characterization of one layer on one device."""

    layer: str
    kernel_class: str
    flops: float
    bytes_moved: float
    cpu_s: float
    gpu_s: float
    cpu_memory_bound: bool
    gpu_memory_bound: bool

    @property
    def arithmetic_intensity(self) -> float:
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved

    @property
    def cpu_gpu_ratio(self) -> float:
        """t_cpu / t_gpu — >1 means the GPU wins this layer."""
        if self.gpu_s == 0:
            return float("inf")
        return self.cpu_s / self.gpu_s


def roofline_breakdown(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec] = JETSON_AGX_XAVIER,
) -> Tuple[LayerBoundness, ...]:
    """Per-layer roofline characterization (no execution needed)."""
    graph = build_model(network) if isinstance(network, str) else network
    dev = device if isinstance(device, Device) else Device(device)
    rows: List[LayerBoundness] = []
    for name in graph.topo_order():
        node = graph.node(name)
        if node.layer.is_noop:
            continue
        work = graph.work(name)
        cpu = dev.kernel_cost(ProcessorKind.CPU, work)
        gpu = dev.kernel_cost(ProcessorKind.GPU, work)
        rows.append(
            LayerBoundness(
                layer=name,
                kernel_class=work.kernel_class,
                flops=work.flops,
                bytes_moved=work.total_bytes,
                cpu_s=cpu.total_s,
                gpu_s=gpu.total_s,
                cpu_memory_bound=cpu.is_memory_bound,
                gpu_memory_bound=gpu.is_memory_bound,
            )
        )
    return tuple(rows)


def split_candidates(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec] = JETSON_AGX_XAVIER,
    *,
    max_ratio: float = 3.0,
) -> List[str]:
    """Layers whose CPU:GPU time ratio suggests a profitable split (the
    tuner's shortlist): partitionable layers where the CPU is within
    ``max_ratio`` of the GPU."""
    graph = build_model(network) if isinstance(network, str) else network
    candidates = []
    for row in roofline_breakdown(graph, device):
        node = graph.node(row.layer)
        if node.layer.partitionable and row.cpu_gpu_ratio <= max_ratio:
            candidates.append(row.layer)
    return candidates


def time_breakdown(report: InferenceReport) -> Dict[str, float]:
    """Where a run's attributed time goes, by kernel class plus copies."""
    out: Dict[str, float] = {}
    for lr in report.layers:
        key = lr.kernel_class
        out[key] = out.get(key, 0.0) + max(lr.kernel_cpu_s, lr.kernel_gpu_s)
    out["copies"] = report.copy_s_total
    return out


def format_breakdown(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec] = JETSON_AGX_XAVIER,
) -> str:
    """Human-readable roofline table for one network on one device."""
    rows = roofline_breakdown(network, device)
    name = network if isinstance(network, str) else network.name
    return render_table(
        ["layer", "class", "AI (flop/B)", "cpu_ms", "gpu_ms", "t_cpu/t_gpu",
         "cpu bound", "gpu bound"],
        [
            (
                r.layer, r.kernel_class,
                r.arithmetic_intensity,
                r.cpu_s * 1e3, r.gpu_s * 1e3, r.cpu_gpu_ratio,
                "mem" if r.cpu_memory_bound else "compute",
                "mem" if r.gpu_memory_bound else "compute",
            )
            for r in rows
        ],
        title=f"Roofline breakdown — {name}",
    )
