"""Evaluation harness: metrics, per-figure experiments, formatting,
export, and sensitivity analysis."""

from . import breakdown, experiments, export, formatting, metrics, sensitivity

__all__ = ["breakdown", "experiments", "export", "formatting", "metrics", "sensitivity"]
