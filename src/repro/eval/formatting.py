"""Paper-style text rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from . import experiments as ex


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table; floats get 2 decimals."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append(
            [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_fig06(result: "ex.Fig6Result") -> str:
    table = render_table(
        ["network", "edgenn_ms", "vs jetson-cpu", "vs mobile-cpu", "vs rpi4"],
        [
            (r.network, r.edgenn_ms, r.jetson_cpu_speedup,
             r.mobile_cpu_speedup, r.raspberry_pi_speedup)
            for r in result.rows
        ],
        title="Fig 6 — EdgeNN speedup over edge CPUs "
              "(paper avgs: 3.97x / 3.12x / 8.80x)",
    )
    return (
        f"{table}\n"
        f"avg: {result.mean_jetson_cpu:.2f}x / "
        f"{result.mean_mobile_cpu:.2f}x / {result.mean_raspberry_pi:.2f}x"
    )


def format_efficiency(result: "ex.EfficiencyResult", fig: str, note: str) -> str:
    table = render_table(
        ["network", "perf/power ratio", "perf/price ratio"],
        [(r.network, r.power_ratio, r.price_ratio) for r in result.rows],
        title=f"{fig} — EdgeNN vs {result.comparison} ({note})",
    )
    return (
        f"{table}\n"
        f"geomean power={result.geomean_power:.2f}x "
        f"price={result.geomean_price:.2f}x (arith {result.mean_price:.2f})"
    )


def format_fig08(result: "ex.Fig8Result") -> str:
    table = render_table(
        ["network", "baseline_ms", "memory %", "hybrid %", "edgenn %"],
        [
            (r.network, r.baseline_ms, r.memory_improvement_pct,
             r.hybrid_improvement_pct, r.edgenn_improvement_pct)
            for r in result.rows
        ],
        title="Fig 8 — improvement over the original GPU program "
              "(paper avgs: 9.93% / 10.76% / 22.02%)",
    )
    return (
        f"{table}\navg: memory={result.mean_memory:.2f}% "
        f"hybrid={result.mean_hybrid:.2f}% edgenn={result.mean_edgenn:.2f}%"
    )


def format_fig09(result: "ex.Fig9Result") -> str:
    table = render_table(
        ["network", "integrated %", "discrete %"],
        [(r.network, r.integrated_share_pct, r.discrete_share_pct)
         for r in result.rows],
        title="Fig 9 — memory-copy time share "
              "(paper avgs: 11.46% / 23.34%, discrete max 36%)",
    )
    return (
        f"{table}\navg: integrated={result.mean_integrated:.2f}% "
        f"discrete={result.mean_discrete:.2f}% "
        f"(discrete max {result.max_discrete:.2f}%)"
    )


def format_layer_times(result: "ex.LayerTimesResult", title: str) -> str:
    return render_table(
        ["layer", "class", "without_ms", "with_ms", "improvement %"],
        [
            (r.layer, r.kernel_class, r.without_ms, r.with_ms, r.improvement_pct)
            for r in result.rows
        ],
        title=title,
    )


def format_table1(result: "ex.Table1Result") -> str:
    class_label = {"conv": "conv", "dense": "fc"}
    return render_table(
        ["network", "layer type", "min %", "max %", "avg %"],
        [
            (c.network, class_label[c.kernel_class], c.min_pct, c.max_pct, c.avg_pct)
            for c in result.cells
        ],
        title="Table I — hybrid execution with zero-copy: per-class "
              "improvement (paper: AlexNet conv=0, fc avg 53.81%)",
    )


def format_fig12(result: "ex.Fig12Result") -> str:
    table = render_table(
        ["network", "edgenn_ms", "cloud compute_ms", "cloud total_ms", "winner"],
        [
            (r.network, r.edgenn_ms, r.cloud_computing_ms, r.cloud_total_ms,
             "edgenn" if r.edgenn_wins else "cloud")
            for r in result.rows
        ],
        title="Fig 12 — EdgeNN vs cloud offload (paper: avg 20.28% faster; "
              "VGG loses)",
    )
    return f"{table}\navg improvement vs cloud: {result.mean_improvement:.2f}%"


def format_sec5f(result: "ex.Sec5FResult") -> str:
    return render_table(
        ["network", "inter-kernel only %", "edgenn %"],
        [
            (r.network, r.interkernel_improvement_pct, r.edgenn_improvement_pct)
            for r in result.rows
        ],
        title="Sec V-F — inter-kernel-only co-running vs EdgeNN "
              "(paper: +8.27% SqueezeNet, ~0 elsewhere)",
    )


def format_sec5b2(result: "ex.UtilizationResult") -> str:
    table = render_table(
        ["network", "cpu util %", "gpu util %", "power W"],
        [(r.network, r.cpu_util_pct, r.gpu_util_pct, r.power_w)
         for r in result.rows],
        title="Sec V-B2 — EdgeNN utilization/power on Jetson "
              "(paper: avg CPU 75% GPU 62%; ResNet 5.5 W, SqueezeNet 7.9 W)",
    )
    return (
        f"{table}\navg util: cpu={result.mean_cpu_util:.1f}% "
        f"gpu={result.mean_gpu_util:.1f}%"
    )


def format_serving(report) -> str:
    """Tabular rendering of a :class:`~repro.serving.report.ServingReport`
    (aggregate line plus one row per tenant)."""
    rows = [
        (
            t.name, t.weight, t.offered, t.served, t.shed,
            t.shed_rate * 100.0,
            t.latency.p50_s * 1e3, t.latency.p95_s * 1e3,
            t.latency.p99_s * 1e3, t.mean_batch_size,
        )
        for t in report.tenants
    ]
    table = render_table(
        ["tenant", "weight", "offered", "served", "shed", "shed %",
         "p50 ms", "p95 ms", "p99 ms", "mean batch"],
        rows,
        title=f"Serving — {report.device}, {report.duration_s:g}s offered "
              f"(makespan {report.makespan_s:.2f}s)",
    )
    return (
        f"{table}\n"
        f"throughput={report.throughput_rps:.2f} req/s "
        f"shed={report.shed_rate:.1%} "
        f"queue mean/max={report.queue_depth_mean:.2f}/"
        f"{report.queue_depth_max} "
        f"util cpu={report.cpu_utilization:.0%} "
        f"gpu={report.gpu_utilization:.0%}"
    )


def format_serving_sweep(rows) -> str:
    """Render an arrival-rate sweep: rows of
    ``(rate, ServingReport)`` pairs, one line per rate."""
    return render_table(
        ["rate req/s", "throughput", "shed %", "p50 ms", "p95 ms",
         "p99 ms", "mean batch", "gpu util %"],
        [
            (
                rate, r.throughput_rps, r.shed_rate * 100.0,
                r.latency.p50_s * 1e3, r.latency.p95_s * 1e3,
                r.latency.p99_s * 1e3, r.mean_batch_size,
                r.gpu_utilization * 100.0,
            )
            for rate, r in rows
        ],
        title="Serving — arrival-rate sweep",
    )


def format_all() -> str:
    """Render every experiment (the EXPERIMENTS.md generator's core)."""
    results = ex.run_all()
    parts = [
        format_fig06(results["fig06"]),
        format_efficiency(results["fig07"], "Fig 7",
                          "paper: power geomean 29.14x, price geomean 0.61"),
        format_fig08(results["fig08"]),
        format_fig09(results["fig09"]),
        format_layer_times(results["fig10"],
                           "Fig 10 — AlexNet layers, zero-copy off vs on"),
        format_layer_times(results["fig11_zc"],
                           "Fig 11 — AlexNet layers, hybrid (with zero-copy)"),
        format_layer_times(results["fig11_nozc"],
                           "Fig 11 — AlexNet layers, hybrid (no zero-copy)"),
        format_table1(results["table1"]),
        format_fig12(results["fig12"]),
        format_efficiency(results["fig13"], "Fig 13",
                          "paper: power 5.70x, price 1.25x"),
        format_sec5f(results["sec5f"]),
        format_sec5b2(results["sec5b2"]),
    ]
    return "\n\n".join(parts)
