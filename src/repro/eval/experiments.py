"""One function per table/figure of the paper's evaluation (Section V).

Every function returns structured row objects plus the paper's aggregate,
so benchmarks, tests, and EXPERIMENTS.md all read from the same source.
Reports are memoized per (network, configuration) within the process —
tuning is deterministic, so repeated calls are pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines import (
    CloudResult,
    run_cloud,
    run_cpu_only,
    run_gpu_only,
    run_interkernel_only,
)
from ..core.engine import EdgeNN, EdgeNNConfig
from ..core.memory_manager import MemoryPolicy
from ..core.report import InferenceReport
from ..hardware.specs import (
    DIMENSITY_8100,
    JETSON_AGX_XAVIER,
    RASPBERRY_PI_4,
    RTX_2080TI_HOST,
    DeviceSpec,
)
from ..nn.models import benchmark_names
from . import metrics

#: Default benchmark suite (paper order).
NETWORKS: Tuple[str, ...] = tuple(benchmark_names())

_report_cache: Dict[Tuple, object] = {}


def clear_cache() -> None:
    """Drop all memoized reports (tests use this for isolation)."""
    _report_cache.clear()


def _cached(key: Tuple, compute) -> object:
    if key not in _report_cache:
        _report_cache[key] = compute()
    return _report_cache[key]


def edgenn_report(
    network: str,
    *,
    use_memory_management: bool = True,
    use_hybrid_execution: bool = True,
) -> InferenceReport:
    """Tuned EdgeNN run on the Jetson (memoized)."""
    key = ("edgenn", network, use_memory_management, use_hybrid_execution)

    def compute() -> InferenceReport:
        config = EdgeNNConfig(
            use_memory_management=use_memory_management,
            use_hybrid_execution=use_hybrid_execution,
        )
        return EdgeNN(network, config=config).run()

    return _cached(key, compute)


def gpu_only_report(
    network: str,
    device: DeviceSpec = JETSON_AGX_XAVIER,
    *,
    managed: bool = False,
) -> InferenceReport:
    """Original-program run (memoized)."""
    key = ("gpu_only", network, device.name, managed)
    policy = MemoryPolicy.ALL_MANAGED if managed else MemoryPolicy.ALL_REGULAR

    def compute() -> InferenceReport:
        return run_gpu_only(network, device, policy=policy)

    return _cached(key, compute)


def cpu_only_report(network: str, device: DeviceSpec) -> InferenceReport:
    """Edge-CPU run (memoized)."""
    key = ("cpu_only", network, device.name)
    return _cached(key, lambda: run_cpu_only(network, device))


# ---------------------------------------------------------------------------
# Figure 6 — speedups over edge CPUs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig6Row:
    network: str
    edgenn_ms: float
    jetson_cpu_speedup: float
    mobile_cpu_speedup: float
    raspberry_pi_speedup: float


@dataclass(frozen=True)
class Fig6Result:
    rows: Tuple[Fig6Row, ...]

    @property
    def mean_jetson_cpu(self) -> float:
        return metrics.arithmetic_mean([r.jetson_cpu_speedup for r in self.rows])

    @property
    def mean_mobile_cpu(self) -> float:
        return metrics.arithmetic_mean([r.mobile_cpu_speedup for r in self.rows])

    @property
    def mean_raspberry_pi(self) -> float:
        return metrics.arithmetic_mean([r.raspberry_pi_speedup for r in self.rows])


def fig06_edge_cpu_speedups(networks: Sequence[str] = NETWORKS) -> Fig6Result:
    """Fig 6: EdgeNN on the integrated device vs inference on three edge
    CPUs (paper averages: 3.97x Jetson CPU, 3.12x phone, 8.80x RPi)."""
    rows = []
    for net in networks:
        edgenn = edgenn_report(net)
        rows.append(
            Fig6Row(
                network=net,
                edgenn_ms=edgenn.total_s * 1e3,
                jetson_cpu_speedup=metrics.speedup(
                    cpu_only_report(net, JETSON_AGX_XAVIER).total_s, edgenn.total_s
                ),
                mobile_cpu_speedup=metrics.speedup(
                    cpu_only_report(net, DIMENSITY_8100).total_s, edgenn.total_s
                ),
                raspberry_pi_speedup=metrics.speedup(
                    cpu_only_report(net, RASPBERRY_PI_4).total_s, edgenn.total_s
                ),
            )
        )
    return Fig6Result(tuple(rows))


# ---------------------------------------------------------------------------
# Figure 7 — power/price efficiency vs the edge CPU (Raspberry Pi)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EfficiencyRow:
    network: str
    power_ratio: float    # Eq. 5
    price_ratio: float    # Eq. 6


@dataclass(frozen=True)
class EfficiencyResult:
    rows: Tuple[EfficiencyRow, ...]
    comparison: str

    @property
    def geomean_power(self) -> float:
        return metrics.geometric_mean([r.power_ratio for r in self.rows])

    @property
    def geomean_price(self) -> float:
        return metrics.geometric_mean([r.price_ratio for r in self.rows])

    @property
    def mean_price(self) -> float:
        return metrics.arithmetic_mean([r.price_ratio for r in self.rows])


def _efficiency_vs(
    other_report, other_spec: DeviceSpec, comparison: str,
    networks: Sequence[str],
) -> EfficiencyResult:
    rows = []
    for net in networks:
        ours = edgenn_report(net)
        theirs = other_report(net)
        rows.append(
            EfficiencyRow(
                network=net,
                power_ratio=metrics.performance_per_power_ratio(
                    ours.total_s, ours.energy.average_power_w,
                    theirs.total_s, theirs.energy.average_power_w,
                ),
                price_ratio=metrics.performance_per_price_ratio(
                    ours.total_s, JETSON_AGX_XAVIER.price_usd,
                    theirs.total_s, other_spec.price_usd,
                ),
            )
        )
    return EfficiencyResult(tuple(rows), comparison)


def fig07_efficiency_vs_edge_cpu(
    networks: Sequence[str] = NETWORKS,
) -> EfficiencyResult:
    """Fig 7: EdgeNN vs Raspberry Pi (paper: power geomean 29.14x; price
    arithmetic mean 0.94, geomean 0.61 — the Pi wins on cost)."""
    return _efficiency_vs(
        lambda net: cpu_only_report(net, RASPBERRY_PI_4),
        RASPBERRY_PI_4, "raspberry-pi-4", networks,
    )


def fig13_efficiency_vs_discrete_gpu(
    networks: Sequence[str] = NETWORKS,
) -> EfficiencyResult:
    """Fig 13: EdgeNN vs RTX 2080 Ti (paper: power 5.70x, price 1.25x)."""
    return _efficiency_vs(
        lambda net: gpu_only_report(net, RTX_2080TI_HOST),
        RTX_2080TI_HOST, "rtx-2080ti-host", networks,
    )


# ---------------------------------------------------------------------------
# Figure 8 — ablation of the EdgeNN designs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8Row:
    network: str
    baseline_ms: float
    memory_improvement_pct: float    # zero-copy only
    hybrid_improvement_pct: float    # hybrid execution only
    edgenn_improvement_pct: float    # both


@dataclass(frozen=True)
class Fig8Result:
    rows: Tuple[Fig8Row, ...]

    def _mean(self, attr: str) -> float:
        return metrics.arithmetic_mean([getattr(r, attr) for r in self.rows])

    @property
    def mean_memory(self) -> float:
        return self._mean("memory_improvement_pct")

    @property
    def mean_hybrid(self) -> float:
        return self._mean("hybrid_improvement_pct")

    @property
    def mean_edgenn(self) -> float:
        return self._mean("edgenn_improvement_pct")


def fig08_ablation(networks: Sequence[str] = NETWORKS) -> Fig8Result:
    """Fig 8: improvement of each design over the original GPU program
    (paper averages: memory 9.93%, hybrid 10.76%, EdgeNN 22.02%)."""
    rows = []
    for net in networks:
        base = gpu_only_report(net).total_s
        memory = edgenn_report(net, use_hybrid_execution=False).total_s
        hybrid = edgenn_report(net, use_memory_management=False).total_s
        full = edgenn_report(net).total_s
        rows.append(
            Fig8Row(
                network=net,
                baseline_ms=base * 1e3,
                memory_improvement_pct=metrics.improvement_pct(base, memory),
                hybrid_improvement_pct=metrics.improvement_pct(base, hybrid),
                edgenn_improvement_pct=metrics.improvement_pct(base, full),
            )
        )
    return Fig8Result(tuple(rows))


# ---------------------------------------------------------------------------
# Figure 9 — memory-copy time share, integrated vs discrete
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig9Row:
    network: str
    integrated_share_pct: float
    discrete_share_pct: float


@dataclass(frozen=True)
class Fig9Result:
    rows: Tuple[Fig9Row, ...]

    @property
    def mean_integrated(self) -> float:
        return metrics.arithmetic_mean([r.integrated_share_pct for r in self.rows])

    @property
    def mean_discrete(self) -> float:
        return metrics.arithmetic_mean([r.discrete_share_pct for r in self.rows])

    @property
    def max_discrete(self) -> float:
        return max(r.discrete_share_pct for r in self.rows)


def fig09_memcpy_share(networks: Sequence[str] = NETWORKS) -> Fig9Result:
    """Fig 9: CPU<->GPU copy time share of the original programs (paper
    averages: 11.46% integrated, 23.34% discrete; max 36% discrete)."""
    rows = []
    for net in networks:
        integrated = gpu_only_report(net, JETSON_AGX_XAVIER)
        discrete = gpu_only_report(net, RTX_2080TI_HOST)
        rows.append(
            Fig9Row(
                network=net,
                integrated_share_pct=integrated.copy_share * 100.0,
                discrete_share_pct=discrete.copy_share * 100.0,
            )
        )
    return Fig9Result(tuple(rows))


# ---------------------------------------------------------------------------
# Figures 10 & 11 — AlexNet per-layer behaviour
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerTimeRow:
    layer: str
    kernel_class: str
    without_ms: float
    with_ms: float

    @property
    def improvement_pct(self) -> float:
        return metrics.improvement_pct(self.without_ms, self.with_ms)


@dataclass(frozen=True)
class LayerTimesResult:
    network: str
    description: str
    rows: Tuple[LayerTimeRow, ...]

    def rows_of_class(self, kernel_class: str) -> List[LayerTimeRow]:
        return [r for r in self.rows if r.kernel_class == kernel_class]


#: Layer classes shown in the paper's Figs 10/11 (conv / pool / fc bars).
_FIGURE_LAYER_CLASSES = ("conv", "pool", "dense")


def _significant_layers(report: InferenceReport, threshold: float = 0.0002):
    """Layers shown in the per-layer figures: the conv/pool/fc kernels
    above a small time-share floor (the paper omits layers "whose time
    proportions are less than 1%"; our time distribution is more
    conv/fc-heavy, so the floor is proportionally lower to keep the same
    set of bars visible)."""
    total = sum(lr.attributed_s for lr in report.layers)
    if total <= 0:
        return []
    return [
        lr for lr in report.layers
        if lr.kernel_class in _FIGURE_LAYER_CLASSES
        and lr.attributed_s / total >= threshold
    ]


def fig10_alexnet_zero_copy_layers() -> LayerTimesResult:
    """Fig 10: AlexNet layer times with and without zero-copy.

    Shape to reproduce: fc layers get much faster (their h2d weight copies
    vanish); pooling layers get *slower* (pure streaming kernels pay the
    managed-access bandwidth penalty)."""
    without = gpu_only_report("alexnet", managed=False)
    with_zc = gpu_only_report("alexnet", managed=True)
    rows = []
    for lr in _significant_layers(without):
        zc = with_zc.layer(lr.name)
        rows.append(
            LayerTimeRow(
                layer=lr.name, kernel_class=lr.kernel_class,
                # Kernel-only times: the paper brackets kernels with timer
                # events; the staging memcpys land outside the brackets.
                without_ms=lr.kernel_s * 1e3, with_ms=zc.kernel_s * 1e3,
            )
        )
    return LayerTimesResult(
        network="alexnet",
        description="per-layer time without vs with zero-copy",
        rows=tuple(rows),
    )


def fig11_alexnet_hybrid_layers(*, zero_copy: bool = True) -> LayerTimesResult:
    """Fig 11: AlexNet layer times with hybrid execution.

    Shape: fc layers improve strongly (avg ~31.7% without / ~53.8% with
    zero-copy in the paper); conv layers do not improve."""
    if zero_copy:
        without = gpu_only_report("alexnet", managed=True)
        with_hybrid = edgenn_report("alexnet")
    else:
        without = gpu_only_report("alexnet", managed=False)
        with_hybrid = edgenn_report("alexnet", use_memory_management=False)
    rows = []
    for lr in _significant_layers(without):
        hy = with_hybrid.layer(lr.name)
        rows.append(
            LayerTimeRow(
                layer=lr.name, kernel_class=lr.kernel_class,
                without_ms=lr.attributed_s * 1e3, with_ms=hy.attributed_s * 1e3,
            )
        )
    return LayerTimesResult(
        network="alexnet",
        description=f"per-layer time with hybrid execution (zero_copy={zero_copy})",
        rows=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Table I — conv/fc improvement from hybrid execution with zero-copy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Cell:
    network: str
    kernel_class: str
    min_pct: float
    max_pct: float
    avg_pct: float


@dataclass(frozen=True)
class Table1Result:
    cells: Tuple[Table1Cell, ...]

    def cell(self, network: str, kernel_class: str) -> Table1Cell:
        for c in self.cells:
            if c.network == network and c.kernel_class == kernel_class:
                return c
        raise KeyError((network, kernel_class))


TABLE1_NETWORKS: Tuple[str, ...] = ("lenet", "alexnet", "vgg16")


def table1_layer_improvements(
    networks: Sequence[str] = TABLE1_NETWORKS,
) -> Table1Result:
    """Table I: per-layer-class improvement of hybrid execution with
    zero-copy over zero-copy-only GPU execution.

    Negative measured improvements clamp to 0 (the paper reports 0 where
    the tuner keeps the layer on the GPU)."""
    cells = []
    for net in networks:
        base = gpu_only_report(net, managed=True)
        full = edgenn_report(net)
        for kernel_class in ("conv", "dense"):
            improvements = []
            for lr in base.layers:
                if lr.kernel_class != kernel_class:
                    continue
                after = full.layer(lr.name)
                if lr.attributed_s <= 0:
                    continue
                improvements.append(
                    max(0.0, metrics.improvement_pct(lr.attributed_s, after.attributed_s))
                )
            if not improvements:
                continue
            cells.append(
                Table1Cell(
                    network=net, kernel_class=kernel_class,
                    min_pct=min(improvements), max_pct=max(improvements),
                    avg_pct=metrics.arithmetic_mean(improvements),
                )
            )
    return Table1Result(tuple(cells))


# ---------------------------------------------------------------------------
# Figure 12 — EdgeNN vs cloud offload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig12Row:
    network: str
    edgenn_ms: float
    cloud_computing_ms: float
    cloud_total_ms: float

    @property
    def edgenn_wins(self) -> bool:
        return self.edgenn_ms < self.cloud_total_ms

    @property
    def improvement_pct(self) -> float:
        return metrics.improvement_pct(self.cloud_total_ms, self.edgenn_ms)


@dataclass(frozen=True)
class Fig12Result:
    rows: Tuple[Fig12Row, ...]

    @property
    def mean_improvement(self) -> float:
        return metrics.arithmetic_mean([r.improvement_pct for r in self.rows])


def fig12_cloud_comparison(networks: Sequence[str] = NETWORKS) -> Fig12Result:
    """Fig 12: EdgeNN vs cloud offload (paper: avg 20.28% faster; the
    compute-heavy VGG is the case where the discrete cloud GPU wins)."""
    rows = []
    for net in networks:
        ours = edgenn_report(net)
        cloud: CloudResult = _cached(("cloud", net), lambda n=net: run_cloud(n))
        rows.append(
            Fig12Row(
                network=net,
                edgenn_ms=ours.total_s * 1e3,
                cloud_computing_ms=cloud.computing_s * 1e3,
                cloud_total_ms=cloud.total_s * 1e3,
            )
        )
    return Fig12Result(tuple(rows))


# ---------------------------------------------------------------------------
# Section V-F — inter-kernel-only co-running comparator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sec5FRow:
    network: str
    interkernel_improvement_pct: float   # vs zero-copy GPU-only
    edgenn_improvement_pct: float


@dataclass(frozen=True)
class Sec5FResult:
    rows: Tuple[Sec5FRow, ...]

    def row(self, network: str) -> Sec5FRow:
        for r in self.rows:
            if r.network == network:
                return r
        raise KeyError(network)


def sec5f_interkernel_only(networks: Sequence[str] = NETWORKS) -> Sec5FResult:
    """§V-F: the inter-kernel-only approach helps only networks with
    independent DAG parts (paper: SqueezeNet +8.27%, ~0 elsewhere)."""
    rows = []
    for net in networks:
        base = gpu_only_report(net, managed=True).total_s
        inter = _cached(
            ("interkernel", net),
            lambda n=net: run_interkernel_only(n, JETSON_AGX_XAVIER),
        ).total_s
        full = edgenn_report(net).total_s
        rows.append(
            Sec5FRow(
                network=net,
                interkernel_improvement_pct=metrics.improvement_pct(base, inter),
                edgenn_improvement_pct=metrics.improvement_pct(base, full),
            )
        )
    return Sec5FResult(tuple(rows))


# ---------------------------------------------------------------------------
# Section V-B2 — utilization and power observations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UtilizationRow:
    network: str
    cpu_util_pct: float
    gpu_util_pct: float
    power_w: float


@dataclass(frozen=True)
class UtilizationResult:
    rows: Tuple[UtilizationRow, ...]

    @property
    def mean_cpu_util(self) -> float:
        return metrics.arithmetic_mean([r.cpu_util_pct for r in self.rows])

    @property
    def mean_gpu_util(self) -> float:
        return metrics.arithmetic_mean([r.gpu_util_pct for r in self.rows])


def sec5b2_utilization(networks: Sequence[str] = NETWORKS) -> UtilizationResult:
    """§V-B2: EdgeNN's processor utilizations and power draw on Jetson
    (paper: avg CPU 75%, GPU 62%; ResNet 5.5 W, SqueezeNet 7.9 W)."""
    rows = []
    for net in networks:
        r = edgenn_report(net)
        rows.append(
            UtilizationRow(
                network=net,
                cpu_util_pct=r.cpu_utilization * 100.0,
                gpu_util_pct=r.gpu_utilization * 100.0,
                power_w=r.energy.average_power_w,
            )
        )
    return UtilizationResult(tuple(rows))


def run_all() -> Dict[str, object]:
    """Execute every experiment once; keyed by paper artifact id."""
    return {
        "fig06": fig06_edge_cpu_speedups(),
        "fig07": fig07_efficiency_vs_edge_cpu(),
        "fig08": fig08_ablation(),
        "fig09": fig09_memcpy_share(),
        "fig10": fig10_alexnet_zero_copy_layers(),
        "fig11_zc": fig11_alexnet_hybrid_layers(zero_copy=True),
        "fig11_nozc": fig11_alexnet_hybrid_layers(zero_copy=False),
        "table1": table1_layer_improvements(),
        "fig12": fig12_cloud_comparison(),
        "fig13": fig13_efficiency_vs_discrete_gpu(),
        "sec5f": sec5f_interkernel_only(),
        "sec5b2": sec5b2_utilization(),
    }
