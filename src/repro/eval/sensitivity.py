"""Sensitivity analysis: do the paper's conclusions survive perturbed
hardware assumptions?

The simulator's fitted constants (DESIGN.md substitution table) carry
uncertainty.  This module re-runs the headline comparisons while sweeping
the physically-uncertain device parameters — DRAM bandwidth, copy-engine
rate, co-run controller efficiency — and reports how the *conclusions*
(EdgeNN beats GPU-only; integrated beats edge CPU) respond.  Conclusions
that flip under small perturbations would be calibration artifacts; these
don't (see ``tests/eval/test_sensitivity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple, Union

from ..baselines import run_cpu_only, run_gpu_only
from ..core.engine import EdgeNN
from ..hardware.device import Device
from ..hardware.specs import JETSON_AGX_XAVIER, DeviceSpec, InterconnectSpec
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbed configuration and its headline outcomes."""

    parameter: str
    scale: float
    edgenn_s: float
    gpu_only_s: float
    cpu_only_s: float

    @property
    def edgenn_improvement_pct(self) -> float:
        return (self.gpu_only_s - self.edgenn_s) / self.gpu_only_s * 100.0

    @property
    def cpu_speedup(self) -> float:
        return self.cpu_only_s / self.edgenn_s

    @property
    def conclusions_hold(self) -> bool:
        """EdgeNN beats the original program AND the edge CPU."""
        return (
            self.edgenn_s <= self.gpu_only_s * 1.001
            and self.edgenn_s < self.cpu_only_s
        )


def _perturbed_spec(parameter: str, scale: float) -> DeviceSpec:
    base = JETSON_AGX_XAVIER
    if parameter == "dram_bandwidth":
        return replace(
            base,
            name=f"{base.name}~dram x{scale:g}",
            memory=replace(base.memory, bandwidth=base.memory.bandwidth * scale),
        )
    if parameter == "copy_rate":
        return replace(
            base,
            name=f"{base.name}~copy x{scale:g}",
            interconnect=InterconnectSpec(
                name=base.interconnect.name,
                rate=base.interconnect.rate * scale,
                latency_s=base.interconnect.latency_s,
            ),
        )
    if parameter == "corun_efficiency":
        return replace(
            base,
            name=f"{base.name}~corun x{scale:g}",
            corun_dram_efficiency=min(1.0, base.corun_dram_efficiency * scale),
        )
    raise ValueError(
        f"unknown parameter {parameter!r}; expected dram_bandwidth, "
        "copy_rate, or corun_efficiency"
    )


def sweep(
    network: Union[str, NetworkGraph],
    parameter: str,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
) -> Tuple[SensitivityPoint, ...]:
    """Perturb one device parameter and re-measure the headline times."""
    points = []
    for scale in scales:
        spec = _perturbed_spec(parameter, scale)
        graph = build_model(network) if isinstance(network, str) else network
        edgenn = EdgeNN(graph, Device(spec)).run()
        gpu = run_gpu_only(network, spec)
        cpu = run_cpu_only(network, spec)
        points.append(
            SensitivityPoint(
                parameter=parameter,
                scale=scale,
                edgenn_s=edgenn.total_s,
                gpu_only_s=gpu.total_s,
                cpu_only_s=cpu.total_s,
            )
        )
    return tuple(points)


def conclusions_robust(
    network: Union[str, NetworkGraph] = "alexnet",
    parameters: Sequence[str] = ("dram_bandwidth", "copy_rate",
                                 "corun_efficiency"),
    scales: Sequence[float] = (0.5, 1.0, 2.0),
) -> bool:
    """True when the headline conclusions hold at every swept point."""
    return all(
        point.conclusions_hold
        for parameter in parameters
        for point in sweep(network, parameter, scales)
    )
