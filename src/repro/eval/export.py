"""Export experiment results as CSV / JSON for plotting.

Every experiment result object from :mod:`repro.eval.experiments` is a
dataclass (or holds tuples of dataclasses); these helpers flatten them into
row dictionaries so downstream notebooks can regenerate the paper's plots
with any plotting stack.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, List

from ..errors import ReproError


def result_rows(result: Any) -> List[Dict[str, Any]]:
    """Flatten one experiment result into a list of row dicts.

    Works for any result object exposing ``rows`` or ``cells`` of
    dataclass records (the convention of ``repro.eval.experiments``).
    """
    records = getattr(result, "rows", None)
    if records is None:
        records = getattr(result, "cells", None)
    if records is None:
        raise ReproError(
            f"{type(result).__name__} has neither .rows nor .cells"
        )
    rows = []
    for record in records:
        if not dataclasses.is_dataclass(record):
            raise ReproError(f"row {record!r} is not a dataclass record")
        row = dataclasses.asdict(record)
        # Include computed properties the figures rely on.
        for name in ("improvement_pct", "edgenn_wins"):
            if hasattr(record, name) and name not in row:
                row[name] = getattr(record, name)
        rows.append(row)
    return rows


def to_csv(result: Any) -> str:
    """Render one experiment result as CSV text."""
    rows = result_rows(result)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(result: Any, *, indent: int = 2) -> str:
    """Render one experiment result as JSON text (rows plus any aggregate
    properties such as means/geomeans)."""
    document: Dict[str, Any] = {"rows": result_rows(result)}
    for name in dir(result):
        if name.startswith(("mean", "geomean", "max_")):
            value = getattr(result, name)
            if isinstance(value, (int, float)):
                document[name] = value
    return json.dumps(document, indent=indent)


def serving_rows(report) -> List[Dict[str, Any]]:
    """Flatten a :class:`~repro.serving.report.ServingReport` into one
    row per tenant (plus the aggregate as tenant ``*``)."""
    rows: List[Dict[str, Any]] = []
    for t in list(report.tenants):
        rows.append({
            "tenant": t.name,
            "network": t.network,
            "weight": t.weight,
            "offered": t.offered,
            "served": t.served,
            "shed": t.shed,
            "shed_rate": t.shed_rate,
            "p50_ms": t.latency.p50_s * 1e3,
            "p95_ms": t.latency.p95_s * 1e3,
            "p99_ms": t.latency.p99_s * 1e3,
            "mean_ms": t.latency.mean_s * 1e3,
            "mean_batch_size": t.mean_batch_size,
        })
    rows.append({
        "tenant": "*",
        "network": "*",
        "weight": sum(t.weight for t in report.tenants),
        "offered": report.offered,
        "served": report.served,
        "shed": report.shed,
        "shed_rate": report.shed_rate,
        "p50_ms": report.latency.p50_s * 1e3,
        "p95_ms": report.latency.p95_s * 1e3,
        "p99_ms": report.latency.p99_s * 1e3,
        "mean_ms": report.latency.mean_s * 1e3,
        "mean_batch_size": report.mean_batch_size,
    })
    return rows


def serving_to_csv(report) -> str:
    """Per-tenant CSV of one serving run."""
    rows = serving_rows(report)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def serving_to_json(report, *, indent: int = 2) -> str:
    """Full JSON document of one serving run (summary + tenants)."""
    document = report.to_dict()
    document["tenants"] = serving_rows(report)[:-1]
    return json.dumps(document, indent=indent)


def write_all(directory) -> List[str]:
    """Run every experiment and write ``<id>.csv``/``<id>.json`` pairs into
    ``directory``; returns the artifact ids written."""
    import pathlib

    from . import experiments

    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for artifact_id, result in experiments.run_all().items():
        (out / f"{artifact_id}.csv").write_text(to_csv(result))
        (out / f"{artifact_id}.json").write_text(to_json(result))
        written.append(artifact_id)
    return written
