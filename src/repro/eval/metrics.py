"""Evaluation metrics: speedups, efficiency ratios, and means.

These are the exact quantities the paper reports: speedup factors (Fig 6),
performance/power and performance/price ratios (Eqs. 5-6, Figs 7 and 13),
relative time benefits (Fig 8), and their arithmetic/geometric means.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ReproError


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; raises on empty input."""
    if not values:
        raise ReproError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregation for efficiency ratios)."""
    if not values:
        raise ReproError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline_s: float, improved_s: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if baseline_s <= 0 or improved_s <= 0:
        raise ReproError("times must be positive for a speedup")
    return baseline_s / improved_s


def improvement_pct(baseline_s: float, improved_s: float) -> float:
    """Relative time benefit in percent (paper's "improvement")."""
    if baseline_s <= 0:
        raise ReproError("baseline time must be positive")
    return (baseline_s - improved_s) / baseline_s * 100.0


def performance_per_power_ratio(
    time_a_s: float, power_a_w: float, time_b_s: float, power_b_w: float
) -> float:
    """Paper Eq. 5 for arbitrary systems A vs B:
    ``(perf_A / power_A) / (perf_B / power_B)`` with perf = 1/time."""
    if min(time_a_s, power_a_w, time_b_s, power_b_w) <= 0:
        raise ReproError("times and powers must be positive")
    return (time_b_s * power_b_w) / (time_a_s * power_a_w)


def performance_per_price_ratio(
    time_a_s: float, price_a: float, time_b_s: float, price_b: float
) -> float:
    """Paper Eq. 6: ``(perf_A / price_A) / (perf_B / price_B)``."""
    if min(time_a_s, price_a, time_b_s, price_b) <= 0:
        raise ReproError("times and prices must be positive")
    return (time_b_s * price_b) / (time_a_s * price_a)
