"""Multi-DNN concurrent inference on one integrated device.

The paper's introduction motivates AIoT deployments running several
analytics models at once (its related work cites DART [88], "pipelined
data-parallel CPU/GPU scheduling for multi-DNN real-time inference").
This extension co-runs several EdgeNN-tuned networks on one simulated
device: each network keeps its own tuned plan and buffers (namespaced),
and their kernel submissions interleave round-robin on the shared
timeline — the way concurrent CUDA streams time-share the hardware.

Useful questions it answers:

* how much makespan does co-locating two models save vs running them
  back-to-back (resource complementarity: a CPU-heavy plan overlaps a
  GPU-heavy one);
* how much each tenant's latency stretches under contention
  (the per-tenant slowdown factor).

This module is the *one-shot* co-run primitive: every tenant submits
exactly one inference and the interleaving is round-robin.  Sustained
request streams — queues, dynamic batching, admission control, and
**weighted fair-share** scheduling that replaces round-robin at the
request level — live in :mod:`repro.serving`;
:func:`serve_concurrent` below is the bridge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..hardware.device import Device
from ..hardware.power import EnergyReport, energy_for_run
from ..hardware.specs import DeviceSpec
from ..hardware import calibration as cal
from ..nn.graph import NetworkGraph
from ..sim.timeline import COPY, CPU, GPU, Timeline
from .engine import EdgeNN, EdgeNNConfig
from .executor import HybridExecutor
from .plan import ExecutionPlan
from .report import InferenceReport


@dataclass(frozen=True)
class TenantResult:
    """One co-running network's outcome."""

    report: InferenceReport
    solo_s: float              # tuned latency when running alone

    @property
    def completion_s(self) -> float:
        return self.report.total_s

    @property
    def slowdown(self) -> float:
        """Latency stretch caused by sharing the device (>= ~1)."""
        if self.solo_s == 0:
            return 1.0
        return self.completion_s / self.solo_s


@dataclass(frozen=True)
class MultiTenantReport:
    """Co-running outcome for all tenants."""

    device: str
    tenants: Tuple[TenantResult, ...]
    makespan_s: float
    energy: EnergyReport

    @property
    def sequential_s(self) -> float:
        """Time the same work takes run back-to-back."""
        return sum(t.solo_s for t in self.tenants)

    @property
    def makespan_saving_pct(self) -> float:
        """How much co-running shrinks the makespan vs sequential."""
        if self.sequential_s == 0:
            return 0.0
        return (self.sequential_s - self.makespan_s) / self.sequential_s * 100.0

    def tenant(self, network: str) -> TenantResult:
        for t in self.tenants:
            if t.report.network == network:
                return t
        raise ReproError(f"no tenant {network!r}")


def run_concurrent(
    device: Union[Device, DeviceSpec],
    jobs: Sequence[Tuple[NetworkGraph, ExecutionPlan]],
) -> MultiTenantReport:
    """Co-run pre-planned networks on one device.

    Each job is a (graph, plan) pair — typically the output of
    :class:`~repro.core.engine.EdgeNN` tuning.  Submissions interleave
    round-robin; dependencies and per-resource serialization are handled
    by the shared timeline.
    """
    if not jobs:
        raise ReproError("run_concurrent needs at least one job")
    dev = device if isinstance(device, Device) else Device(device)

    # Solo reference runs (each on a fresh device instance of the same spec).
    solos: List[float] = []
    for graph, plan in jobs:
        solo_dev = Device(dev.spec)
        solos.append(HybridExecutor(graph, solo_dev, plan).run().total_s)

    dev.reset()
    timeline = Timeline((CPU, GPU, COPY))
    executors = [
        HybridExecutor(graph, dev, plan, namespace=f"t{i}")
        for i, (graph, plan) in enumerate(jobs)
    ]
    for executor in executors:
        executor.begin(timeline, reset_device=False)
    # Round-robin submission; each tenant finishes (reads its output back)
    # as soon as its own last kernel is submitted — resources are FIFO
    # queues, so deferring the readback would queue it behind the other
    # tenants' later work.
    finished: Dict[int, InferenceReport] = {}
    active = list(enumerate(executors))
    while active:
        still = []
        for idx, executor in active:
            if executor.step():
                still.append((idx, executor))
            else:
                finished[idx] = executor.finish()
        active = still
    reports = [finished[i] for i in range(len(executors))]

    makespan = timeline.trace.span()
    cpu_busy = timeline.busy_time(CPU)
    cpu_for_power = cpu_busy
    if cpu_busy > 0 and makespan > cpu_busy:
        cpu_for_power = cpu_busy + cal.OMP_SPIN_UTILIZATION * (makespan - cpu_busy)
    energy = energy_for_run(
        dev.spec, makespan, min(cpu_for_power, makespan),
        min(timeline.busy_time(GPU), makespan) if dev.has_gpu else 0.0,
    )
    tenants = tuple(
        TenantResult(report=report, solo_s=solo)
        for report, solo in zip(reports, solos)
    )
    return MultiTenantReport(
        device=dev.name, tenants=tenants, makespan_s=makespan, energy=energy,
    )


def concurrent_edgenn(
    networks: Sequence[Union[str, NetworkGraph]],
    device: Union[Device, DeviceSpec, None] = None,
    config: Optional[EdgeNNConfig] = None,
) -> MultiTenantReport:
    """Tune each network independently, then co-run them."""
    engines = [EdgeNN(net, device, config) for net in networks]
    jobs = [(engine.graph, engine.plan) for engine in engines]
    return run_concurrent(Device(engines[0].device.spec), jobs)


def serve_concurrent(
    networks: Sequence[str],
    device: Union[Device, DeviceSpec, None] = None,
    *,
    rate_rps: float = 10.0,
    duration_s: float = 10.0,
    weights: Optional[Sequence[float]] = None,
    seed: int = 0,
):
    """Request-level multi-tenant serving of several networks.

    The sustained-traffic successor of :func:`concurrent_edgenn`: each
    network becomes a tenant with an open-loop Poisson stream of
    ``rate_rps`` and a fair-share weight, and the full serving stack
    (queues, dynamic batching, admission control, weighted fair
    scheduling) multiplexes them.  Returns a
    :class:`~repro.serving.report.ServingReport`.
    """
    from ..serving.simulator import poisson_tenant, simulate

    if weights is None:
        weights = [1.0] * len(networks)
    if len(weights) != len(networks):
        raise ReproError(
            f"{len(networks)} networks but {len(weights)} weights"
        )
    tenants = [
        poisson_tenant(
            net, rate_rps, duration_s, seed=seed + i, weight=w,
            name=f"{net}#{i}" if networks.count(net) > 1 else None,
        )
        for i, (net, w) in enumerate(zip(networks, weights))
    ]
    return simulate(tenants, device)
