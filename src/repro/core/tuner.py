"""Fine-grained adaptive inference tuning (§IV-D).

The tuner follows the paper's workflow:

1. **Profile** — run the whole network once per processor ("first use the
   CPU and the GPU to calculate the whole layer separately and record their
   execution time").
2. **Analytic seed** — for every chain layer pick the CPU share from Eq. 4;
   for every branch segment enumerate assignments (scheduler) and pick the
   fastest predicted strategy.
3. **Adaptive feedback** — execute the plan, compare measured per-layer
   times against the profiles, rebalance split fractions from the measured
   side times, and demote splits that do not beat GPU-only execution
   ("applies different strategies each time and discovers the optimal
   partitioning strategy ... according to the performance feedback").

The equations ignore fixed partition overheads and DRAM contention; the
feedback loop is what corrects for them — this is the paper's argument for
being adaptive rather than purely analytic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TuningError
from ..hardware.device import Device
from ..hardware.specs import ProcessorKind
from ..nn.graph import BranchSegment, ChainSegment, NetworkGraph
from ..obs import NOOP_OBS, Observability
from ..obs.provenance import PartitionCandidate, PartitionRecord
from . import partition
from .executor import HybridExecutor
from .memory_manager import MemoryPlacer, MemoryPolicy
from .plan import (
    Assignment,
    ExecutionPlan,
    LayerPlan,
    cpu_layer,
    gpu_layer,
    split_layer,
)
from ..nn.precision import Precision
from .profiler import ProfileStore
from .report import InferenceReport
from .scheduler import assignments_for_graph


class TuningObjective(enum.Enum):
    """What the tuner optimizes when keeping the best measured plan.

    The paper tunes for latency; ENERGY and EDP (energy-delay product) are
    extensions for battery-constrained deployments (§V-G motivates energy
    as a first-class concern for AIoT).
    """

    LATENCY = "latency"
    ENERGY = "energy"
    EDP = "edp"

    def score(self, report: InferenceReport) -> float:
        if self is TuningObjective.LATENCY:
            return report.total_s
        if self is TuningObjective.ENERGY:
            return report.energy.energy_j
        return report.total_s * report.energy.energy_j


@dataclass(frozen=True)
class TunerConfig:
    """Knobs of the adaptive tuner (defaults follow the paper's spirit)."""

    use_intra_kernel: bool = True     # split chain layers (Eq. 1-4)
    use_inter_kernel: bool = True     # assign DAG branches across processors
    memory_policy: MemoryPolicy = MemoryPolicy.SEMANTIC
    objective: TuningObjective = TuningObjective.LATENCY
    precision: Precision = Precision.FP32
    batch_size: int = 1
    max_feedback_rounds: int = 6
    #: a split/CPU placement must beat GPU-only by this margin to survive.
    improvement_threshold: float = 0.01
    #: converged when no assignment changes and fractions move less than this.
    convergence_tol: float = 0.02
    #: never split a layer shorter than this (overheads would dominate).
    min_split_layer_s: float = 100e-6


@dataclass
class TuningResult:
    """Final plan plus the per-round measurement history.

    ``source`` records where the result came from: ``"tuned"`` for a
    live compilation (rounds hold the full measurement history) or
    ``"artifact"`` for a plan rehydrated from a serialized
    :class:`~repro.compile.artifact.PlanArtifact` (rounds are empty —
    the whole point of the reload path is running zero tuner rounds).
    """

    plan: ExecutionPlan
    rounds: List[InferenceReport] = field(default_factory=list)
    converged_after: int = 0
    source: str = "tuned"

    @property
    def final_report(self) -> InferenceReport:
        if not self.rounds:
            raise TuningError(
                "tuning result holds no measurement rounds "
                f"(source={self.source!r}); execute the plan to measure it"
            )
        return self.rounds[-1]


class AdaptiveTuner:
    """Derives an execution plan for one network on one integrated device."""

    def __init__(
        self,
        graph: NetworkGraph,
        device: Device,
        config: Optional[TunerConfig] = None,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        if not device.has_gpu:
            raise TuningError(
                f"EdgeNN targets CPU-GPU devices; {device.name!r} has no GPU"
            )
        self._graph = graph
        self._device = device
        self._config = config or TunerConfig()
        self._obs = obs if obs is not None else NOOP_OBS
        self._stage = "seed"     # provenance label for the current phase
        #: the place stage's binding: one memory manager per compilation,
        #: re-applied by later stages as layer placements evolve.
        self.placer = MemoryPlacer(
            graph, device.spec, self._config.memory_policy, obs=self._obs
        )
        self.profiles = ProfileStore()
        self._branch_layers = {
            name
            for segment in graph.segments()
            if isinstance(segment, BranchSegment)
            for branch in segment.branches
            for name in branch
        }

    # Read-only accessors for the compilation pipeline.
    @property
    def graph(self) -> NetworkGraph:
        return self._graph

    @property
    def device(self) -> Device:
        return self._device

    @property
    def config(self) -> TunerConfig:
        return self._config

    @property
    def obs(self) -> Observability:
        return self._obs

    # -- profiling ---------------------------------------------------------------

    def _profile_pass(self, proc: ProcessorKind) -> InferenceReport:
        """Run the whole network on one processor and record per-layer times."""
        plan = ExecutionPlan(self._graph.name)
        make = cpu_layer if proc is ProcessorKind.CPU else gpu_layer
        for name in self._graph.topo_order():
            plan.set_layer(make(name))
        self.placer.apply(plan, stage=f"profile:{proc.name.lower()}")
        report = self._executor_for(plan).run()
        for lr in report.layers:
            if proc is ProcessorKind.CPU:
                self.profiles.record_cpu(lr.name, lr.kernel_cpu_s)
            else:
                self.profiles.record_gpu(lr.name, lr.kernel_gpu_s)
        return report

    def _executor_for(self, plan: ExecutionPlan) -> HybridExecutor:
        """Executor with memory behaviour matching the policy: without the
        semantic memory manager the runtime inherits the original
        programs' host-staging of REGULAR activations."""
        return HybridExecutor(
            self._graph, self._device, plan,
            host_staging=self._config.memory_policy is MemoryPolicy.ALL_REGULAR,
            precision=self._config.precision,
            batch_size=self._config.batch_size,
            obs=self._obs,
        )

    def _record_partition(
        self,
        name: str,
        chosen: LayerPlan,
        candidates: List[Tuple[float, float]],
        *,
        t_cpu: float,
        t_gpu: float,
        out_bytes: float,
        copy_rate: float,
        measured_s: Optional[float] = None,
        reason: str = "",
    ) -> None:
        """Provenance: one Eq. 1-4 comparison and the placement it chose."""
        if not self._obs.provenance.enabled:
            return

        def label(p: float) -> str:
            if p <= 0.0:
                return "gpu"
            if p >= 1.0:
                return "cpu"
            return "split"

        self._obs.provenance.record_partition(PartitionRecord(
            network=self._graph.name,
            layer=name,
            stage=self._stage,
            chosen=chosen.assignment.value,
            cpu_fraction=chosen.cpu_fraction,
            t_cpu_s=t_cpu,
            t_gpu_s=t_gpu,
            out_bytes=out_bytes,
            copy_rate=copy_rate,
            candidates=tuple(
                PartitionCandidate(label(p), p, t) for p, t in candidates
            ),
            measured_s=measured_s,
            reason=reason,
        ))

    # -- plan construction -----------------------------------------------------------

    def _chain_layer_plan(self, name: str) -> LayerPlan:
        """Placement of one chain layer from the profiles (Eq. 4 + the
        whole-layer-on-CPU option)."""
        node = self._graph.node(name)
        cfg = self._config
        if (
            not cfg.use_intra_kernel
            or node.layer.is_noop
            or not node.layer.partitionable
        ):
            return gpu_layer(name)
        t_cpu = self.profiles.cpu_time(name)
        t_gpu = self.profiles.gpu_time(name)
        out_bytes = float(self._graph.out_bytes(name))
        s = self._device.copy_rate()
        if t_gpu < cfg.min_split_layer_s:
            # Too small: launch/merge overheads exceed any possible gain,
            # except when the CPU alone wins outright (cheap launch).
            if t_cpu < t_gpu * (1.0 - cfg.improvement_threshold):
                chosen = cpu_layer(name)
            else:
                chosen = gpu_layer(name)
            self._record_partition(
                name, chosen, [(0.0, t_gpu), (1.0, t_cpu)],
                t_cpu=t_cpu, t_gpu=t_gpu, out_bytes=out_bytes, copy_rate=s,
                reason="below min_split_layer_s; overheads would dominate",
            )
            return chosen
        merge_free = False  # split outputs are always REGULAR + merged
        handoff_free = cfg.memory_policy is not MemoryPolicy.ALL_REGULAR
        p_op = partition.optimal_cpu_fraction(
            t_cpu, t_gpu, out_bytes, s, merge_free=merge_free
        )
        candidates: List[Tuple[float, float]] = [(0.0, t_gpu)]
        if 0.0 < p_op < 1.0:
            candidates.append(
                (p_op, partition.total_time(t_cpu, t_gpu, p_op, out_bytes, s))
            )
        cpu_total = t_cpu + (0.0 if handoff_free else out_bytes / s)
        candidates.append((1.0, cpu_total))
        best_p, best_t = min(candidates, key=lambda c: c[1])
        if best_t >= t_gpu * (1.0 - cfg.improvement_threshold):
            chosen = gpu_layer(name)
            reason = "best candidate does not clear the improvement threshold"
        else:
            chosen = split_layer(name, best_p)
            reason = "Eq. 4 optimum beats solo execution"
        self._record_partition(
            name, chosen, candidates,
            t_cpu=t_cpu, t_gpu=t_gpu, out_bytes=out_bytes, copy_rate=s,
            reason=reason,
        )
        return chosen

    def build_initial_plan(self) -> ExecutionPlan:
        """The analytic seed plan from the current profiles."""
        return self.assemble_seed_plan(
            self.partition_chain_layers(), self.schedule_branch_layers()
        )

    # -- pipeline stage methods (driven by repro.compile.pipeline) -----------

    def partition_chain_layers(self) -> Dict[str, LayerPlan]:
        """Partition stage: intra-kernel placement of every chain layer
        from the profiles (Eq. 1-4 + the whole-layer-on-CPU option),
        in segment order."""
        placements: Dict[str, LayerPlan] = {}
        for segment in self._graph.segments():
            if isinstance(segment, ChainSegment):
                for name in segment.layers:
                    placements[name] = self._chain_layer_plan(name)
        return placements

    def schedule_branch_layers(self) -> Dict[str, LayerPlan]:
        """Schedule stage: inter-kernel assignment of DAG branch chains
        to processors (enumerated by the branch scheduler)."""
        cfg = self._config
        branch_assignments: Dict[str, object] = {}
        if cfg.use_inter_kernel:
            branch_assignments = assignments_for_graph(
                self._graph, self.profiles, self._device.copy_rate(),
                handoff_free=cfg.memory_policy is not MemoryPolicy.ALL_REGULAR,
            )
        placements: Dict[str, LayerPlan] = {}
        for segment in self._graph.segments():
            if isinstance(segment, BranchSegment):
                assignment = branch_assignments.get(segment.join)
                for i, branch in enumerate(segment.branches):
                    proc = (
                        assignment.processor_for(i)
                        if assignment is not None
                        else ProcessorKind.GPU
                    )
                    make = (
                        cpu_layer if proc is ProcessorKind.CPU else gpu_layer
                    )
                    for name in branch:
                        placements[name] = make(name)
        return placements

    def assemble_seed_plan(
        self,
        chain_placements: Dict[str, LayerPlan],
        branch_placements: Dict[str, LayerPlan],
    ) -> ExecutionPlan:
        """Combine per-stage placements into one plan (segment order, so
        downstream insertion-order consumers see the same plan the
        monolithic tuner built) and run the memory placer over it."""
        plan = ExecutionPlan(self._graph.name)
        for segment in self._graph.segments():
            if isinstance(segment, ChainSegment):
                for name in segment.layers:
                    plan.set_layer(chain_placements[name])
            else:
                for branch in segment.branches:
                    for name in branch:
                        plan.set_layer(branch_placements[name])
        self.placer.apply(plan, stage=self._stage)
        return plan

    # -- feedback --------------------------------------------------------------------

    def _apply_feedback(
        self, plan: ExecutionPlan, report: InferenceReport
    ) -> Tuple[ExecutionPlan, float]:
        """One adaptation round: rebalance splits, demote losers.

        Returns the updated plan and the largest fraction change."""
        new_plan = ExecutionPlan(self._graph.name, dict(plan.layers))
        max_delta = 0.0
        for lr in report.layers:
            if lr.name in self._branch_layers:
                # Branch layers were placed by the inter-kernel scheduler:
                # one branch runs on the CPU *in parallel* with the other on
                # the GPU, so "slower than GPU-alone" is not a regression.
                continue
            old = plan.layer_plan(lr.name)
            if old.assignment is Assignment.SPLIT:
                updated = self._rebalance_split(lr.name, old, lr)
            elif old.assignment is Assignment.CPU:
                updated = self._review_cpu_layer(lr.name, lr)
            else:
                continue
            if updated.assignment is not old.assignment:
                max_delta = 1.0
            else:
                max_delta = max(
                    max_delta, abs(updated.cpu_fraction - old.cpu_fraction)
                )
            new_plan.set_layer(updated)
        self.placer.apply(new_plan, stage=self._stage)
        return new_plan, max_delta

    def _rebalance_split(self, name: str, old: LayerPlan, lr) -> LayerPlan:
        cfg = self._config
        t_gpu_solo = self.profiles.gpu_time(name)
        t_cpu_solo = self.profiles.cpu_time(name)
        measured_now = lr.attributed_s
        out_bytes = float(self._graph.out_bytes(name))
        s = self._device.copy_rate()
        best_solo = min(t_gpu_solo, t_cpu_solo)
        if measured_now >= best_solo * (1.0 - cfg.improvement_threshold):
            # The split does not beat running the layer whole on the better
            # processor — measurements outrank any extrapolation here (the
            # co-run slowdowns and fixed overheads the equations ignore).
            chosen = self._better_solo(name, t_cpu_solo, t_gpu_solo)
            self._record_partition(
                name, chosen,
                [(0.0, t_gpu_solo), (old.cpu_fraction, measured_now),
                 (1.0, t_cpu_solo)],
                t_cpu=t_cpu_solo, t_gpu=t_gpu_solo,
                out_bytes=out_bytes, copy_rate=s, measured_s=measured_now,
                reason="measured split lost to solo execution; demoted",
            )
            return chosen
        p = old.cpu_fraction
        # Measured per-unit rates under real co-run conditions.
        unit_cpu = lr.kernel_cpu_s / p
        unit_gpu = lr.kernel_gpu_s / (1.0 - p)
        p_new = partition.optimal_cpu_fraction(unit_cpu, unit_gpu, out_bytes, s)
        # Extreme rebalances mean one side is a sliver whose per-unit rate
        # extrapolates badly (GPU occupancy is non-linear); run whole instead.
        if p_new <= 0.05 or p_new >= 0.95:
            chosen = self._better_solo(name, t_cpu_solo, t_gpu_solo)
            self._record_partition(
                name, chosen,
                [(0.0, t_gpu_solo), (p_new, measured_now), (1.0, t_cpu_solo)],
                t_cpu=t_cpu_solo, t_gpu=t_gpu_solo,
                out_bytes=out_bytes, copy_rate=s, measured_s=measured_now,
                reason="rebalance drove one side to a sliver; run whole",
            )
            return chosen
        self.profiles.record_split(
            name, p, lr.attributed_s, lr.kernel_cpu_s, lr.kernel_gpu_s
        )
        chosen = split_layer(name, p_new)
        self._record_partition(
            name, chosen,
            [(0.0, t_gpu_solo), (p, measured_now),
             (p_new, partition.total_time(unit_cpu, unit_gpu, p_new,
                                          out_bytes, s)),
             (1.0, t_cpu_solo)],
            t_cpu=t_cpu_solo, t_gpu=t_gpu_solo,
            out_bytes=out_bytes, copy_rate=s, measured_s=measured_now,
            reason="rebalanced from measured per-unit co-run rates",
        )
        return chosen

    def _better_solo(self, name: str, t_cpu: float, t_gpu: float) -> LayerPlan:
        """Whole-layer placement on whichever processor is faster (CPU must
        clear the improvement threshold to displace the GPU)."""
        if t_cpu < t_gpu * (1.0 - self._config.improvement_threshold):
            return cpu_layer(name)
        return gpu_layer(name)

    def _review_cpu_layer(self, name: str, lr) -> LayerPlan:
        t_gpu_solo = self.profiles.gpu_time(name)
        if lr.attributed_s >= t_gpu_solo * (1.0 - self._config.improvement_threshold):
            return gpu_layer(name)
        return cpu_layer(name)

    # -- profile / feedback / lower stage entry points ----------------------------------

    def stage_profile(self) -> InferenceReport:
        """Profile stage: run the whole network once per processor and
        record per-layer times.  Returns the GPU-only pass report (the
        "original program" measurement that opens the round history)."""
        tracer = self._obs.tracer
        with tracer.span("tune:profile", category="tuner", processor="gpu"):
            gpu_report = self._profile_pass(ProcessorKind.GPU)
        with tracer.span("tune:profile", category="tuner", processor="cpu"):
            self._profile_pass(ProcessorKind.CPU)
        self._stage = "seed"
        return gpu_report

    def stage_feedback(
        self, plan: ExecutionPlan, gpu_report: InferenceReport
    ) -> Tuple[TuningResult, ExecutionPlan, ExecutionPlan, float]:
        """Adaptive-feedback rounds: measure the plan, rebalance splits
        from the measured side times, demote losers; stop at convergence
        or the round budget.

        Returns ``(result, adapted_plan, best_plan, best_score)`` — the
        lower stage measures the final adapted plan and picks the winner.
        """
        cfg = self._config
        tracer = self._obs.tracer
        rounds_total = self._obs.metrics.counter(
            "repro_tuner_feedback_rounds_total",
            "Adaptive-feedback rounds executed", labels=("network",),
        )
        result = TuningResult(plan=plan, rounds=[gpu_report])
        best_plan, best_score = plan, float("inf")
        for round_idx in range(1, cfg.max_feedback_rounds + 1):
            self._stage = f"round{round_idx}"
            with tracer.span(f"tune:round{round_idx}",
                             category="tuner") as round_span:
                report = self._executor_for(plan).run()
                result.rounds.append(report)
                score = cfg.objective.score(report)
                if score < best_score:
                    best_plan, best_score = plan, score
                new_plan, max_delta = self._apply_feedback(plan, report)
                round_span.set_attributes(
                    score=score, max_delta=max_delta,
                    latency_ms=report.total_s * 1e3,
                )
            rounds_total.labels(network=self._graph.name).inc()
            plan = new_plan
            result.converged_after = round_idx
            if max_delta < cfg.convergence_tol:
                break
        return result, plan, best_plan, best_score

    def stage_lower(
        self,
        result: TuningResult,
        plan: ExecutionPlan,
        best_plan: ExecutionPlan,
        best_score: float,
    ) -> TuningResult:
        """Lower stage (tuner part): measure the final adapted plan so it
        can compete, then keep the *best measured* plan across rounds —
        "the fine-grained adaptive inference tuning approach applies
        different strategies each time and discovers the optimal
        partitioning strategy" (§IV-D)."""
        cfg = self._config
        with self._obs.tracer.span("tune:final", category="tuner"):
            final_report = self._executor_for(plan).run()
        result.rounds.append(final_report)
        if cfg.objective.score(final_report) < best_score:
            best_plan = plan
        result.plan = best_plan
        self._obs.metrics.gauge(
            "repro_tuner_converged_after_rounds",
            "Feedback rounds until the tuner converged", labels=("network",),
        ).labels(network=self._graph.name).set(result.converged_after)
        return result

    # -- main loop ---------------------------------------------------------------------

    def tune(self) -> TuningResult:
        """Full tuning cycle: profile → seed plan → feedback to convergence.

        Since the staged-compilation refactor this is a thin wrapper over
        :class:`repro.compile.pipeline.CompilerPipeline`, which drives the
        stage methods above (profile → place → partition → schedule →
        lower) in exactly this tuner's historical order.
        """
        from ..compile.pipeline import CompilerPipeline

        return CompilerPipeline().compile_with_tuner(self).tuning
