"""Data-processing-semantics classification of inference buffers (§IV-B).

The paper's guideline: *"The effect of applying zero-copy is not always
positive and is determined by data processing semantics.  The memory should
be managed according to the semantics."*

Buffer naming convention used across the library:

* ``input``             — the network input tensor.
* ``<layer>.weights``   — a layer's parameters (one buffer per layer).
* ``<layer>.out``       — a layer's output activation.

Roles drive the memory manager's REGULAR/MANAGED choice:

* ``WEIGHTS`` / ``NETWORK_INPUT`` — written once host-side, then read-only:
  the ideal zero-copy case (eliminates the h2d parameter copies that
  dominate Fig 9).
* ``ACTIVATION`` — written by exactly one processor, read downstream;
  zero-copy safe, and it makes cross-processor handoffs free.
* ``COWRITTEN_OUTPUT`` — output of a split layer: both processors write
  slices in the same step.  Zero-copy would trigger the fine-grained
  consistency storm; the paper mandates two REGULAR copies + explicit merge.
* ``NETWORK_OUTPUT`` — read back by the host at the end.
"""

from __future__ import annotations

import enum
from typing import Dict

from ..nn.graph import NetworkGraph
from .plan import Assignment, ExecutionPlan


class BufferRole(enum.Enum):
    """Data-processing semantics of one buffer."""

    NETWORK_INPUT = "network_input"
    WEIGHTS = "weights"
    ACTIVATION = "activation"
    COWRITTEN_OUTPUT = "cowritten_output"
    NETWORK_OUTPUT = "network_output"


def input_buffer() -> str:
    """Name of the network-input buffer."""
    return "input"


def weights_buffer(layer: str) -> str:
    """Name of a layer's parameter buffer."""
    return f"{layer}.weights"


def output_buffer(layer: str) -> str:
    """Name of a layer's output buffer."""
    return f"{layer}.out"


def classify_buffers(graph: NetworkGraph, plan: ExecutionPlan) -> Dict[str, BufferRole]:
    """Assign a :class:`BufferRole` to every buffer of an inference run.

    The classification is *plan dependent*: the same layer output is a
    plain ``ACTIVATION`` under GPU-only execution but a
    ``COWRITTEN_OUTPUT`` when the plan splits the layer across processors —
    which is exactly why the paper's memory management must cooperate with
    its hybrid execution.
    """
    roles: Dict[str, BufferRole] = {input_buffer(): BufferRole.NETWORK_INPUT}
    output_layer = graph.output_name
    for name in graph.topo_order():
        node = graph.node(name)
        if node.layer.param_bytes(node.in_shapes) > 0:
            roles[weights_buffer(name)] = BufferRole.WEIGHTS
        if node.layer.is_noop:
            continue  # aliases its input; no buffer of its own
        layer_plan = plan.layer_plan(name)
        if layer_plan.assignment is Assignment.SPLIT:
            roles[output_buffer(name)] = BufferRole.COWRITTEN_OUTPUT
        elif name == output_layer:
            roles[output_buffer(name)] = BufferRole.NETWORK_OUTPUT
        else:
            roles[output_buffer(name)] = BufferRole.ACTIVATION
    return roles
