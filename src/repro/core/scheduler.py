"""Inter-kernel assignment for the non-chain DAG parts (§IV-D).

For a fork-join region (fire modules, residual blocks) the tuner must map
each independent branch chain to one processor.  Following the paper's
example for Figure 5, the scheduler enumerates assignment strategies and
predicts each one's total time:

    t(assignment) = max(sum of CPU-assigned branch times,
                        sum of GPU-assigned branch times)
                    + handoff cost of CPU-produced branch outputs

The handoff term is ``v / s`` per CPU branch when its output lives in a
REGULAR buffer (explicit copy before the join), and 0 under zero-copy —
which is why hybrid execution composes with the semantic memory manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import PlanError
from ..hardware.specs import ProcessorKind
from ..nn.graph import BranchSegment, NetworkGraph
from .profiler import ProfileStore


@dataclass(frozen=True)
class BranchCosts:
    """Measured cost of one branch chain on each processor."""

    layers: Tuple[str, ...]
    cpu_s: float
    gpu_s: float
    out_bytes: float   # bytes the branch hands to the join layer


@dataclass(frozen=True)
class BranchAssignment:
    """Chosen processor per branch (indexed like ``segment.branches``)."""

    processors: Tuple[ProcessorKind, ...]
    predicted_s: float

    def processor_for(self, branch_index: int) -> ProcessorKind:
        return self.processors[branch_index]

    @property
    def uses_cpu(self) -> bool:
        return ProcessorKind.CPU in self.processors


def branch_costs(
    graph: NetworkGraph, segment: BranchSegment, profiles: ProfileStore
) -> List[BranchCosts]:
    """Sum the profiled per-layer times of each branch of ``segment``."""
    costs = []
    for branch in segment.branches:
        cpu_s = 0.0
        gpu_s = 0.0
        out_bytes = 0.0
        for layer in branch:
            if graph.node(layer).layer.is_noop:
                continue
            cpu_s += profiles.cpu_time(layer)
            gpu_s += profiles.gpu_time(layer)
        if branch:
            out_bytes = float(graph.out_bytes(branch[-1]))
        costs.append(
            BranchCosts(layers=tuple(branch), cpu_s=cpu_s, gpu_s=gpu_s,
                        out_bytes=out_bytes)
        )
    return costs


def predict_assignment_time(
    costs: Sequence[BranchCosts],
    processors: Sequence[ProcessorKind],
    copy_rate: float,
    *,
    handoff_free: bool = False,
) -> float:
    """Predicted region time of one assignment (the paper's strategy cost)."""
    if len(costs) != len(processors):
        raise PlanError("one processor required per branch")
    if copy_rate <= 0:
        raise PlanError(f"copy rate must be positive: {copy_rate}")
    cpu_total = sum(
        c.cpu_s for c, p in zip(costs, processors) if p is ProcessorKind.CPU
    )
    gpu_total = sum(
        c.gpu_s for c, p in zip(costs, processors) if p is ProcessorKind.GPU
    )
    handoff = 0.0
    if not handoff_free:
        handoff = sum(
            c.out_bytes / copy_rate
            for c, p in zip(costs, processors)
            if p is ProcessorKind.CPU and c.layers
        )
    return max(cpu_total, gpu_total) + handoff


def choose_assignment(
    costs: Sequence[BranchCosts],
    copy_rate: float,
    *,
    handoff_free: bool = False,
    allow_cpu: bool = True,
) -> BranchAssignment:
    """Enumerate all CPU/GPU branch assignments and pick the fastest.

    Empty branches (identity shortcuts) are pinned to the GPU — they cost
    nothing and moving them is meaningless.  With ``allow_cpu=False`` the
    result is the all-GPU baseline (used by ablations).
    """
    n = len(costs)
    if n == 0:
        raise PlanError("cannot assign an empty branch segment")
    choices_per_branch: List[Tuple[ProcessorKind, ...]] = []
    for c in costs:
        if not c.layers or not allow_cpu:
            choices_per_branch.append((ProcessorKind.GPU,))
        else:
            choices_per_branch.append((ProcessorKind.GPU, ProcessorKind.CPU))
    best: BranchAssignment | None = None
    for combo in itertools.product(*choices_per_branch):
        predicted = predict_assignment_time(
            costs, combo, copy_rate, handoff_free=handoff_free
        )
        if best is None or predicted < best.predicted_s:
            best = BranchAssignment(processors=tuple(combo), predicted_s=predicted)
    assert best is not None
    return best


def assignments_for_graph(
    graph: NetworkGraph,
    profiles: ProfileStore,
    copy_rate: float,
    *,
    handoff_free: bool = False,
    allow_cpu: bool = True,
) -> Dict[str, BranchAssignment]:
    """Choose an assignment for every branch segment; keyed by join layer."""
    result: Dict[str, BranchAssignment] = {}
    for segment in graph.segments():
        if isinstance(segment, BranchSegment):
            costs = branch_costs(graph, segment, profiles)
            result[segment.join] = choose_assignment(
                costs, copy_rate,
                handoff_free=handoff_free, allow_cpu=allow_cpu,
            )
    return result
