"""EdgeNN core: the paper's primary contribution.

* :mod:`semantics` / :mod:`memory_manager` — semantic-aware memory
  management (§IV-B);
* :mod:`executor` — inter-/intra-kernel CPU-GPU hybrid execution (§IV-C);
* :mod:`partition` / :mod:`scheduler` / :mod:`profiler` / :mod:`tuner` —
  the fine-grained adaptive inference tuning approach (§IV-D);
* :mod:`engine` — the :class:`EdgeNN` facade.
"""

from .engine import EdgeNN, EdgeNNConfig
from .executor import HybridExecutor
from .memory_manager import MemoryPolicy, plan_allocations
from .partition import (
    balance_point,
    collaboration_time,
    data_transfer_time,
    optimal_cpu_fraction,
    total_time,
)
from .plan import (
    Assignment,
    ExecutionPlan,
    LayerPlan,
    cpu_layer,
    gpu_layer,
    split_layer,
)
from .plan_cache import (
    PlanCache,
    PlanKey,
    clear_plan_cache,
    default_plan_cache,
)
from .profiler import LayerProfile, ProfileStore, SplitSample
from .report import InferenceReport, LayerResult, improvement, speedup
from .scheduler import (
    BranchAssignment,
    BranchCosts,
    assignments_for_graph,
    branch_costs,
    choose_assignment,
    predict_assignment_time,
)
from .multitenant import (
    MultiTenantReport,
    TenantResult,
    concurrent_edgenn,
    run_concurrent,
    serve_concurrent,
)
from .service import ServiceProfile, WarmExecutor, profile_service, warm_report
from .semantics import (
    BufferRole,
    classify_buffers,
    input_buffer,
    output_buffer,
    weights_buffer,
)
from .tuner import AdaptiveTuner, TunerConfig, TuningObjective, TuningResult

__all__ = [
    "AdaptiveTuner",
    "Assignment",
    "BranchAssignment",
    "BranchCosts",
    "BufferRole",
    "EdgeNN",
    "EdgeNNConfig",
    "ExecutionPlan",
    "HybridExecutor",
    "InferenceReport",
    "LayerPlan",
    "LayerProfile",
    "LayerResult",
    "MemoryPolicy",
    "MultiTenantReport",
    "PlanCache",
    "PlanKey",
    "ProfileStore",
    "ServiceProfile",
    "SplitSample",
    "TenantResult",
    "TunerConfig",
    "TuningObjective",
    "TuningResult",
    "assignments_for_graph",
    "balance_point",
    "branch_costs",
    "choose_assignment",
    "classify_buffers",
    "clear_plan_cache",
    "default_plan_cache",
    "collaboration_time",
    "concurrent_edgenn",
    "cpu_layer",
    "data_transfer_time",
    "gpu_layer",
    "improvement",
    "input_buffer",
    "optimal_cpu_fraction",
    "output_buffer",
    "plan_allocations",
    "predict_assignment_time",
    "run_concurrent",
    "serve_concurrent",
    "speedup",
    "profile_service",
    "split_layer",
    "total_time",
    "warm_report",
    "WarmExecutor",
    "weights_buffer",
]
