"""Shared cache of tuned execution plans.

Tuning is by far the most expensive operation in the system (two
profiling passes plus up to ``max_feedback_rounds`` measured runs), yet
its result is fully determined by *(network, device, batch size,
precision, ablation flags, objective)* — the simulator is deterministic.
A serving system dispatching batches of varying sizes would otherwise
re-tune the same (model, batch) pair on every dispatch.

:class:`PlanCache` memoizes :class:`~repro.core.tuner.TuningResult`
objects under exactly that key.  :class:`~repro.core.engine.EdgeNN`
consults the process-wide default cache whenever the network was given
by *name* (custom :class:`~repro.nn.graph.NetworkGraph` objects are
never cached — two different user graphs may share a name).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .tuner import TuningResult


@dataclass(frozen=True)
class PlanKey:
    """Cache key: everything the tuning outcome depends on."""

    network: str
    device: str
    batch_size: int
    precision: str
    use_memory_management: bool
    use_hybrid_execution: bool
    use_inter_kernel: bool
    use_intra_kernel: bool
    objective: str

    @classmethod
    def from_config(cls, network: str, device: str, config) -> "PlanKey":
        return cls(
            network=network,
            device=device,
            batch_size=config.batch_size,
            precision=config.precision.value,
            use_memory_management=config.use_memory_management,
            use_hybrid_execution=config.use_hybrid_execution,
            use_inter_kernel=config.use_inter_kernel,
            use_intra_kernel=config.use_intra_kernel,
            objective=config.objective.value,
        )


class PlanCache:
    """LRU cache of tuning results keyed by :class:`PlanKey`."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[PlanKey, TuningResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def get_or_tune(
        self, key: PlanKey, tune: Callable[[], "TuningResult"]
    ) -> "TuningResult":
        """Return the cached result for ``key``, tuning on first use."""
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        result = tune()
        self._entries[key] = result
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return result

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_DEFAULT: Optional[PlanCache] = None


def default_plan_cache() -> PlanCache:
    """The process-wide cache :class:`~repro.core.engine.EdgeNN` uses."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PlanCache()
    return _DEFAULT


def clear_plan_cache() -> None:
    """Drop every cached plan (tests / memory pressure)."""
    if _DEFAULT is not None:
        _DEFAULT.clear()
