"""Shared cache of tuned execution plans (in-memory LRU + optional disk).

Tuning is by far the most expensive operation in the system (two
profiling passes plus up to ``max_feedback_rounds`` measured runs), yet
its result is fully determined by *(network, device, batch size,
precision, ablation flags, objective)* — the simulator is deterministic.
A serving system dispatching batches of varying sizes would otherwise
re-tune the same (model, batch) pair on every dispatch.

:class:`PlanCache` memoizes :class:`~repro.core.tuner.TuningResult`
objects under exactly that key.  :class:`~repro.core.engine.EdgeNN`
consults the process-wide default cache whenever the network was given
by *name* (custom :class:`~repro.nn.graph.NetworkGraph` objects are
never cached — two different user graphs may share a name).

Two properties matter for serving:

* **Thread safety** — the serving simulator and concurrent clients share
  :func:`default_plan_cache`; every public operation (including the
  hit/miss counters) runs under one lock, so a key is tuned exactly once
  no matter how many threads race on it.
* **Disk persistence** — give the cache a ``save_dir`` and every freshly
  tuned result is written as a versioned
  :class:`~repro.compile.artifact.PlanArtifact` JSON file; a later
  process (or a pre-deploy ahead-of-time tuning step) warm-starts from
  those files with *zero* tuner rounds.  Disk loads count as hits and
  are additionally reported in :attr:`PlanCache.disk_hits`.
"""

from __future__ import annotations

import logging
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union, TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..store.plan_store import PlanStore
    from .tuner import TuningResult

_LOG = logging.getLogger(__name__)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ReproError(f"PlanKey.from_config: {message}")


@dataclass(frozen=True)
class PlanKey:
    """Cache key: everything the tuning outcome depends on."""

    network: str
    device: str
    batch_size: int
    precision: str
    use_memory_management: bool
    use_hybrid_execution: bool
    use_inter_kernel: bool
    use_intra_kernel: bool
    objective: str

    _FLAGS = (
        "use_memory_management",
        "use_hybrid_execution",
        "use_inter_kernel",
        "use_intra_kernel",
    )

    @classmethod
    def from_config(cls, network: str, device: str, config) -> "PlanKey":
        """Build a key from an engine/tuner config object.

        The config is duck-typed (:class:`~repro.core.engine.EdgeNNConfig`
        or anything shaped like it), so every field is validated here and
        a :class:`~repro.errors.ReproError` names exactly what is missing
        or mistyped instead of a late ``AttributeError`` deep in a cache
        lookup.
        """
        _require(isinstance(network, str) and bool(network),
                 f"network must be a non-empty string, got {network!r}")
        _require(isinstance(device, str) and bool(device),
                 f"device must be a non-empty string, got {device!r}")
        batch = getattr(config, "batch_size", None)
        _require(isinstance(batch, int) and not isinstance(batch, bool)
                 and batch >= 1,
                 f"config.batch_size must be an int >= 1, got {batch!r}")
        precision = getattr(config, "precision", None)
        precision_value = getattr(precision, "value", None)
        _require(isinstance(precision_value, str),
                 f"config.precision must be a Precision enum, "
                 f"got {precision!r}")
        objective = getattr(config, "objective", None)
        objective_value = getattr(objective, "value", None)
        _require(isinstance(objective_value, str),
                 f"config.objective must be a TuningObjective enum, "
                 f"got {objective!r}")
        flags = {}
        for flag in cls._FLAGS:
            value = getattr(config, flag, None)
            _require(isinstance(value, bool),
                     f"config.{flag} must be a bool, got {value!r}")
            flags[flag] = value
        return cls(
            network=network,
            device=device,
            batch_size=batch,
            precision=precision_value,
            objective=objective_value,
            **flags,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PlanKey":
        """Inverse of :meth:`to_dict`; raises ReproError on bad data."""
        names = {f.name for f in fields(cls)}
        missing = names - set(data)
        if missing:
            raise ReproError(
                f"plan key record is missing fields {sorted(missing)}"
            )
        kwargs = {}
        for f in fields(cls):
            value = data[f.name]
            if f.type == "str" and not isinstance(value, str):
                raise ReproError(
                    f"plan key field {f.name!r} must be a string, "
                    f"got {value!r}"
                )
            if f.type == "bool" and not isinstance(value, bool):
                raise ReproError(
                    f"plan key field {f.name!r} must be a bool, got {value!r}"
                )
            if f.type == "int" and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ReproError(
                    f"plan key field {f.name!r} must be an int, got {value!r}"
                )
            kwargs[f.name] = value
        return cls(**kwargs)

    def slug(self) -> str:
        """Human-readable, filesystem-safe identifier for this key."""
        flags = "".join(
            "1" if getattr(self, flag) else "0" for flag in self._FLAGS
        )
        raw = (
            f"{self.network}__{self.device}__b{self.batch_size}"
            f"__{self.precision}__{self.objective}__{flags}"
        )
        return re.sub(r"[^A-Za-z0-9._-]+", "-", raw)


@dataclass(frozen=True)
class PlanCacheStats:
    """Consistent point-in-time snapshot of a cache's counters.

    Reading the counters one by one can tear under concurrency; a fleet
    run brackets itself with two snapshots and reports the difference.
    """

    hits: int
    misses: int
    disk_hits: int
    corrupt_loads: int
    entries: int

    def delta(self, before: "PlanCacheStats") -> "PlanCacheStats":
        """Counter traffic since ``before`` (entries is the *current* size)."""
        return PlanCacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            disk_hits=self.disk_hits - before.disk_hits,
            corrupt_loads=self.corrupt_loads - before.corrupt_loads,
            entries=self.entries,
        )


class PlanCache:
    """Thread-safe LRU cache of tuning results keyed by :class:`PlanKey`.

    ``save_dir`` adds a disk-persistence layer: tuned results are written
    as :class:`~repro.compile.artifact.PlanArtifact` JSON files (one per
    key, named by :meth:`PlanKey.slug`) and read back on a miss, so
    tuning survives process restarts.

    ``store`` goes one step further: the cache becomes a thin
    read-through client of a content-addressed
    :class:`~repro.store.plan_store.PlanStore` (the fleet-tuned plan
    database).  Store hits count as ``disk_hits``; fresh tunes are
    ``put`` back into the store.  ``store`` and ``save_dir`` compose —
    the store is consulted first.
    """

    def __init__(
        self,
        capacity: int = 128,
        save_dir: Optional[Union[str, Path]] = None,
        store: Optional["PlanStore"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[PlanKey, TuningResult]" = OrderedDict()
        self._lock = threading.RLock()
        self._save_dir = Path(save_dir) if save_dir is not None else None
        self._plan_store = store
        self.hits = 0
        self.misses = 0
        #: hits served from persistent layers — ``save_dir`` artifacts
        #: or the plan store (subset of ``hits``).
        self.disk_hits = 0
        #: disk artifacts that failed to load (corrupt / truncated /
        #: checksum mismatch); each also counted as a miss.
        self.corrupt_loads = 0

    @property
    def save_dir(self) -> Optional[Path]:
        return self._save_dir

    @property
    def store(self) -> Optional["PlanStore"]:
        return self._plan_store

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> PlanCacheStats:
        """Atomic snapshot of the hit/miss counters and entry count."""
        with self._lock:
            return PlanCacheStats(
                hits=self.hits,
                misses=self.misses,
                disk_hits=self.disk_hits,
                corrupt_loads=self.corrupt_loads,
                entries=len(self._entries),
            )

    def get_or_tune(
        self, key: PlanKey, tune: Callable[[], "TuningResult"]
    ) -> "TuningResult":
        """Return the cached result for ``key``, tuning on first use.

        Lookup order: in-memory LRU, then the plan store (if attached),
        then the ``save_dir`` artifact (if configured), then ``tune()``.
        The whole operation holds the cache lock, so concurrent callers
        of the same key tune once and the counters stay consistent.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            loaded = self._load_from_store(key)
            if loaded is None:
                loaded = self._load(key)
            if loaded is not None:
                self.hits += 1
                self.disk_hits += 1
                self._store(key, loaded)
                return loaded
            self.misses += 1
            result = tune()
            self._store(key, result)
            self._persist(key, result)
            return result

    def invalidate(
        self, key: PlanKey, *, remove_disk: bool = False
    ) -> List[str]:
        """Drop ``key``'s in-memory entry (graceful degradation: a plan
        whose predicted cost has drifted from reality must be re-tuned).

        ``remove_disk=True`` also deletes every on-disk trace of the
        key's slug — the artifact itself, any quarantined
        (``*.corrupt*``) siblings from earlier bad loads, orphaned
        ``*.tmp`` corpses of torn writes, and the plan-store entry when
        a store is attached — forcing the next lookup to re-tune
        instead of re-loading a stale or poisoned plan.

        Returns what was removed: the marker ``"memory"`` for the
        in-memory entry plus the path of every deleted file (empty list
        when nothing was found, so truthiness means "removed anything").
        """
        with self._lock:
            removed: List[str] = []
            if self._entries.pop(key, None) is not None:
                removed.append("memory")
            if remove_disk and self._save_dir is not None:
                # The slug's whole sibling family: `<slug>.json`,
                # `<slug>.json.tmp` (torn write), `<slug>.json.corrupt*`
                # (quarantined earlier loads).
                pattern = f"{key.slug()}.json*"
                for path in sorted(self._save_dir.glob(pattern)):
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    removed.append(str(path))
            if remove_disk and self._plan_store is not None:
                removed.extend(
                    str(p) for p in self._plan_store.remove(key)
                )
            return removed

    def clear(self) -> None:
        """Drop every in-memory entry and reset the counters.

        ``save_dir`` artifacts are left on disk (they are the whole point
        of persistence); delete the directory to clear those too.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.corrupt_loads = 0

    # -- internals (call with the lock held) ---------------------------------

    def _store(self, key: PlanKey, result: "TuningResult") -> None:
        self._entries[key] = result
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def _artifact_path(self, key: PlanKey) -> Path:
        assert self._save_dir is not None
        return self._save_dir / f"{key.slug()}.json"

    def _load_from_store(self, key: PlanKey) -> Optional["TuningResult"]:
        """Read-through to the attached plan store, if any.

        The store does its own integrity work (content-hash check,
        checksum, key equality, staleness fingerprints, quarantine on
        corruption) and degrades every failure to ``None``; corrupt
        store objects also bump our ``corrupt_loads`` so serving
        reports stay comparable with the ``save_dir`` path.
        """
        if self._plan_store is None:
            return None
        quarantined_before = self._plan_store.quarantined
        artifact = self._plan_store.get(key)
        with self._lock:  # re-entrant: callers already hold it
            self.corrupt_loads += (
                self._plan_store.quarantined - quarantined_before
            )
        if artifact is None:
            return None
        return artifact.to_tuning_result()

    def _load(self, key: PlanKey) -> Optional["TuningResult"]:
        """Rehydrate a TuningResult from the key's artifact, if present."""
        if self._save_dir is None:
            return None
        path = self._artifact_path(key)
        if not path.exists():
            return None
        from ..compile.artifact import PlanArtifact

        try:
            artifact = PlanArtifact.load(path)
        except ReproError as exc:
            # A corrupt or truncated artifact (torn write, bit rot,
            # checksum mismatch) must not take the service down: warn,
            # quarantine the evidence next to the slot (so the re-tuned
            # artifact can take its place), count a miss, and re-tune.
            self.corrupt_loads += 1
            _LOG.warning(
                "discarding corrupt plan artifact %s (%s); re-tuning",
                path, exc,
            )
            self._quarantine_sibling(path)
            return None
        if artifact.key != key:
            raise ReproError(
                f"plan artifact {path} was compiled under a different key "
                f"({artifact.key}) than requested ({key})"
            )
        return artifact.to_tuning_result()

    @staticmethod
    def _quarantine_sibling(path: Path) -> None:
        """Move a corrupt artifact aside as ``<name>.corrupt[N]``."""
        target = path.with_name(path.name + ".corrupt")
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_name(f"{path.name}.corrupt{counter}")
        try:
            path.replace(target)
        except OSError as exc:
            # Quarantine is best-effort forensics; the load already
            # degraded to a miss, so a failed rename only costs the
            # evidence file, not correctness.
            _LOG.warning("could not quarantine %s: %s", path, exc)

    def _persist(self, key: PlanKey, result: "TuningResult") -> None:
        """Write the tuned result to the store and/or ``save_dir``.

        Both sinks write atomically (tmp sibling + ``os.replace``), so
        a crash mid-persist never leaves a torn artifact behind.
        """
        # Duck-typed guard: unit tests exercise the LRU with plain
        # sentinel values; only real tuning results are persistable.
        if not hasattr(result, "plan") or not hasattr(result, "rounds"):
            return
        from ..compile.artifact import PlanArtifact

        artifact: Optional["PlanArtifact"] = None
        if self._plan_store is not None:
            artifact = PlanArtifact.from_tuning(key, result)
            self._plan_store.put(artifact)
        if self._save_dir is not None:
            if artifact is None:
                artifact = PlanArtifact.from_tuning(key, result)
            self._save_dir.mkdir(parents=True, exist_ok=True)
            artifact.save(self._artifact_path(key))


_DEFAULT: Optional[PlanCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_plan_cache() -> PlanCache:
    """The process-wide cache :class:`~repro.core.engine.EdgeNN` uses."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = PlanCache()
        return _DEFAULT


def configure_default_plan_cache(
    save_dir: Optional[Union[str, Path]] = None,
    capacity: int = 128,
    store_dir: Optional[Union[str, Path]] = None,
) -> PlanCache:
    """Replace the process-wide cache (e.g. to point it at a plan
    directory for ahead-of-time-tuned serving).  ``store_dir`` attaches
    a content-addressed :class:`~repro.store.plan_store.PlanStore`
    (what ``repro tune-fleet`` produces) as the first persistent layer.
    Returns the new cache."""
    global _DEFAULT
    store: Optional["PlanStore"] = None
    if store_dir is not None:
        from ..store.plan_store import PlanStore

        store = PlanStore(store_dir)
    with _DEFAULT_LOCK:
        _DEFAULT = PlanCache(capacity=capacity, save_dir=save_dir, store=store)
        return _DEFAULT


def clear_plan_cache() -> None:
    """Drop every cached plan (tests / memory pressure)."""
    with _DEFAULT_LOCK:
        cache = _DEFAULT
    if cache is not None:
        cache.clear()
