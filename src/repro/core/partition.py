"""Intra-kernel CPU/GPU partitioning — the paper's Equations 1-4 (§IV-D).

For one layer in the chain part of the DAG, the CPU computes a fraction
``p_cpu`` of the output and the GPU the rest:

* Eq. 1 — collaboration time is the max of the two sides
  ``t_co = max(t_cpu * p_cpu, t_gpu * (1 - p_cpu))``.
* Eq. 2 — the CPU's slice of the output must be merged into the device
  copy: ``t_data = p_cpu * v_o / s``.
* Eq. 3 — total ``t_total = t_co + t_data``.
* Eq. 4 — the optimum: ``p_op = 0`` when ``v_o / s >= t_gpu`` (the merge
  copy would cost more than the GPU time it saves), otherwise the balance
  point ``t_gpu / (t_cpu + t_gpu)``.

These formulas are the *analytic seed*; the adaptive tuner then corrects
``p`` from measured feedback (contention and fixed overheads are not in the
formulas — exactly why the paper makes the tuner adaptive).
"""

from __future__ import annotations

from ..errors import TuningError


def _check_inputs(t_cpu: float, t_gpu: float, p_cpu: float | None = None) -> None:
    if t_cpu < 0 or t_gpu < 0:
        raise TuningError(f"negative layer times: t_cpu={t_cpu}, t_gpu={t_gpu}")
    if p_cpu is not None and not 0.0 <= p_cpu <= 1.0:
        raise TuningError(f"p_cpu out of [0, 1]: {p_cpu}")


def collaboration_time(t_cpu: float, t_gpu: float, p_cpu: float) -> float:
    """Paper Eq. 1: co-run compute time at CPU share ``p_cpu``."""
    _check_inputs(t_cpu, t_gpu, p_cpu)
    return max(t_cpu * p_cpu, t_gpu * (1.0 - p_cpu))


def data_transfer_time(p_cpu: float, out_bytes: float, copy_rate: float) -> float:
    """Paper Eq. 2: merge-copy time of the CPU's output slice."""
    if out_bytes < 0:
        raise TuningError(f"negative output volume: {out_bytes}")
    if copy_rate <= 0:
        raise TuningError(f"copy rate must be positive: {copy_rate}")
    if not 0.0 <= p_cpu <= 1.0:
        raise TuningError(f"p_cpu out of [0, 1]: {p_cpu}")
    return p_cpu * out_bytes / copy_rate


def total_time(
    t_cpu: float, t_gpu: float, p_cpu: float, out_bytes: float, copy_rate: float
) -> float:
    """Paper Eq. 3: collaboration plus merge time."""
    return collaboration_time(t_cpu, t_gpu, p_cpu) + data_transfer_time(
        p_cpu, out_bytes, copy_rate
    )


def balance_point(t_cpu: float, t_gpu: float) -> float:
    """The ``p`` equalizing both sides: ``t_gpu / (t_cpu + t_gpu)``."""
    _check_inputs(t_cpu, t_gpu)
    if t_cpu + t_gpu == 0:
        return 0.0
    return t_gpu / (t_cpu + t_gpu)


def optimal_cpu_fraction(
    t_cpu: float,
    t_gpu: float,
    out_bytes: float,
    copy_rate: float,
    *,
    merge_free: bool = False,
) -> float:
    """Paper Eq. 4: the analytically optimal CPU share.

    ``merge_free=True`` models the case where the output handoff costs
    nothing (managed single-writer buffers); the optimum is then always the
    balance point.
    """
    _check_inputs(t_cpu, t_gpu)
    if copy_rate <= 0:
        raise TuningError(f"copy rate must be positive: {copy_rate}")
    if t_cpu == 0 and t_gpu == 0:
        return 0.0
    if merge_free:
        return balance_point(t_cpu, t_gpu)
    if out_bytes / copy_rate >= t_gpu:
        return 0.0
    return balance_point(t_cpu, t_gpu)
