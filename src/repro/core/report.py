"""Inference execution reports.

Everything the evaluation section needs comes out of these records:
end-to-end latency (Figs 6, 8, 12), per-layer times (Figs 10, 11, Table I),
copy-time shares (Fig 9), utilizations and energy (Figs 7, 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ReproError
from ..hardware.power import EnergyReport
from ..sim.trace import Trace
from .plan import Assignment


@dataclass(frozen=True)
class LayerResult:
    """Measured execution of one layer within a run."""

    name: str
    kernel_class: str
    assignment: Assignment
    cpu_fraction: float
    start_s: float
    end_s: float
    kernel_cpu_s: float    # CPU-side kernel time (0 when CPU unused)
    kernel_gpu_s: float    # GPU-side kernel time (0 when GPU unused)
    copy_s: float          # explicit copies attributed to this layer
    overhead_s: float      # first-touch / partition / consistency overheads
    consistency_s: float = 0.0   # managed co-write consistency storm time

    @property
    def wall_s(self) -> float:
        """Wall-clock span of the layer on the timeline.  Includes any time
        spent queued behind other streams' work, so it is the right metric
        for schedule inspection but not for per-layer cost comparison."""
        return self.end_s - self.start_s

    @property
    def kernel_s(self) -> float:
        """Kernel-only time (the slower side for splits) — what a
        cudaEvent pair around the kernel would measure.  Fig 10 uses this
        metric (the paper times kernels, not the surrounding memcpys)."""
        return max(self.kernel_cpu_s, self.kernel_gpu_s)

    @property
    def attributed_s(self) -> float:
        """Time attributable to this layer alone: the slower of its two
        kernel sides plus its explicit copies.  This is what the paper's
        per-layer figures (Figs 10/11, Table I) measure — queue waits
        caused by *other* layers are excluded."""
        return (
            max(self.kernel_cpu_s, self.kernel_gpu_s)
            + self.copy_s
            + self.consistency_s
        )


@dataclass
class InferenceReport:
    """Complete result of one simulated inference."""

    network: str
    device: str
    total_s: float
    layers: List[LayerResult]
    copy_s_total: float          # all explicit copy time, incl. final readback
    cpu_busy_s: float
    gpu_busy_s: float
    energy: EnergyReport
    trace: Trace
    plan_summary: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    def layer(self, name: str) -> LayerResult:
        """Result of one layer by name."""
        for lr in self.layers:
            if lr.name == name:
                return lr
        raise ReproError(f"no layer {name!r} in report for {self.network}")

    @property
    def copy_share(self) -> float:
        """Fraction of total time spent in explicit CPU<->GPU copies
        (the quantity plotted in Fig 9)."""
        if self.total_s == 0:
            return 0.0
        return self.copy_s_total / self.total_s

    @property
    def cpu_utilization(self) -> float:
        return self.energy.cpu_utilization

    @property
    def gpu_utilization(self) -> float:
        return self.energy.gpu_utilization

    def time_by_class(self) -> Dict[str, float]:
        """Wall time per kernel class (conv / dense / pool / ...)."""
        out: Dict[str, float] = {}
        for lr in self.layers:
            out[lr.kernel_class] = out.get(lr.kernel_class, 0.0) + lr.wall_s
        return out

    def layers_of_class(self, kernel_class: str) -> List[LayerResult]:
        return [lr for lr in self.layers if lr.kernel_class == kernel_class]

    def to_dict(self) -> Dict[str, object]:
        """Flat summary for tabulation / JSON export."""
        return {
            "network": self.network,
            "device": self.device,
            "total_ms": self.total_s * 1e3,
            "copy_ms": self.copy_s_total * 1e3,
            "copy_share": self.copy_share,
            "cpu_util": self.cpu_utilization,
            "gpu_util": self.gpu_utilization,
            "power_w": self.energy.average_power_w,
            "energy_j": self.energy.energy_j,
            "plan": self.plan_summary,
        }


def improvement(baseline_s: float, improved_s: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (the paper's
    "time benefits"): positive means faster."""
    if baseline_s <= 0:
        raise ReproError(f"baseline time must be positive, got {baseline_s}")
    return (baseline_s - improved_s) / baseline_s


def speedup(baseline_s: float, improved_s: float) -> float:
    """Classic speedup factor baseline/improved."""
    if improved_s <= 0:
        raise ReproError(f"improved time must be positive, got {improved_s}")
    return baseline_s / improved_s
