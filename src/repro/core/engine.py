"""The EdgeNN engine: the library's primary public API.

Ties the three designs together exactly as Figure 3 describes: the
fine-grained adaptive tuner derives sub-task assignments and memory usage
strategies, the semantic-aware memory manager allocates buffers, and the
hybrid executor co-runs the CPU and the GPU under that plan.

Typical use::

    from repro import EdgeNN
    engine = EdgeNN("alexnet")           # Jetson AGX Xavier by default
    report = engine.run()                # tunes on first use
    print(report.total_s, report.copy_share)
    probs = engine.infer(image)          # numeric forward pass (NumPy)

Feature flags in :class:`EdgeNNConfig` disable individual designs for the
paper's ablation (Fig 8): memory management only, hybrid execution only,
or the full system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union, TYPE_CHECKING

import numpy as np

from ..errors import ReproError
from ..hardware.device import Device
from ..hardware.specs import JETSON_AGX_XAVIER, DeviceSpec
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model
from ..nn.precision import Precision
from ..obs import NOOP_OBS, Observability
from .memory_manager import MemoryPolicy
from .plan import ExecutionPlan
from .plan_cache import PlanCache, PlanKey, default_plan_cache
from .report import InferenceReport
from .tuner import AdaptiveTuner, TunerConfig, TuningObjective, TuningResult

if TYPE_CHECKING:  # pragma: no cover - circular at runtime, fine for types
    from ..compile.artifact import PlanArtifact
    from ..compile.pipeline import CompiledPlan


@dataclass(frozen=True)
class EdgeNNConfig:
    """Feature flags and tuning knobs.

    The three ablation points of Fig 8 map to:

    * original program      — ``use_memory_management=False,
      use_hybrid_execution=False`` (equivalently, the gpu_only baseline);
    * "memory management"   — ``use_hybrid_execution=False``;
    * "CPU-GPU hybrid execution" — ``use_memory_management=False``;
    * "EdgeNN"              — both on (the default).
    """

    use_memory_management: bool = True
    use_hybrid_execution: bool = True
    use_inter_kernel: bool = True   # sub-flag of hybrid execution
    use_intra_kernel: bool = True   # sub-flag of hybrid execution
    max_feedback_rounds: int = 6
    improvement_threshold: float = 0.01
    #: what to optimize: latency (the paper), energy, or energy-delay.
    objective: TuningObjective = TuningObjective.LATENCY
    #: inference datatype (performance model only; numerics stay float32).
    precision: Precision = Precision.FP32
    #: frames per simulated inference (weights amortize across the batch).
    batch_size: int = 1

    def memory_policy(self) -> MemoryPolicy:
        if self.use_memory_management:
            return MemoryPolicy.SEMANTIC
        return MemoryPolicy.ALL_REGULAR

    def tuner_config(self) -> TunerConfig:
        return TunerConfig(
            use_intra_kernel=self.use_hybrid_execution and self.use_intra_kernel,
            use_inter_kernel=self.use_hybrid_execution and self.use_inter_kernel,
            memory_policy=self.memory_policy(),
            max_feedback_rounds=self.max_feedback_rounds,
            improvement_threshold=self.improvement_threshold,
            objective=self.objective,
            precision=self.precision,
            batch_size=self.batch_size,
        )


class EdgeNN:
    """Efficient neural-network inference on a CPU-GPU integrated device."""

    def __init__(
        self,
        network: Union[str, NetworkGraph],
        device: Union[Device, DeviceSpec, None] = None,
        config: Optional[EdgeNNConfig] = None,
        *,
        plan_cache: Optional[PlanCache] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.graph = build_model(network) if isinstance(network, str) else network
        self.obs = obs if obs is not None else NOOP_OBS
        if device is None:
            device = JETSON_AGX_XAVIER
        self.device = device if isinstance(device, Device) else Device(device)
        if not self.device.spec.is_integrated:
            raise ReproError(
                f"EdgeNN requires a CPU-GPU integrated device; "
                f"{self.device.name!r} is not (use the baselines for it)"
            )
        self.config = config or EdgeNNConfig()
        self._tuning: Optional[TuningResult] = None
        self._compiled: Optional["CompiledPlan"] = None
        self._numpy_backend = None
        # Plans are only shareable when the network is a catalog model
        # named by string: a user-built NetworkGraph may reuse a name for
        # a different topology, so it always tunes privately.
        self._plan_cache = (
            plan_cache if plan_cache is not None else default_plan_cache()
        )
        self._cache_key = (
            PlanKey.from_config(network, self.device.name, self.config)
            if isinstance(network, str)
            else None
        )

    # -- tuning & simulated execution ----------------------------------------

    def tune(self, force: bool = False) -> TuningResult:
        """Run the adaptive tuning cycle (cached after the first call).

        Results for catalog networks are also memoized in the shared
        :class:`~repro.core.plan_cache.PlanCache` keyed by (network,
        device, batch size, precision, flags); ``force=True`` bypasses
        both caches and re-tunes from scratch.
        """
        if self._tuning is None or force:
            from ..compile.pipeline import CompilerPipeline

            obs = self.obs
            self._compiled = None

            def _tune_now() -> TuningResult:
                tuner = AdaptiveTuner(
                    self.graph, self.device, self.config.tuner_config(),
                    obs=obs,
                )
                self._compiled = CompilerPipeline().compile_with_tuner(
                    tuner, key=self._cache_key
                )
                return self._compiled.tuning

            if self._cache_key is not None and not force:
                hits_before = self._plan_cache.hits
                with obs.tracer.span(
                    "plan:lookup", category="plan",
                    network=self.graph.name, device=self.device.name,
                    batch=self.config.batch_size,
                ) as span:
                    self._tuning = self._plan_cache.get_or_tune(
                        self._cache_key, _tune_now
                    )
                    hit = self._plan_cache.hits > hits_before
                    span.set_attribute("cache", "hit" if hit else "miss")
                obs.metrics.counter(
                    "repro_plan_cache_requests_total",
                    "Plan-cache lookups by result", labels=("result",),
                ).labels(result="hit" if hit else "miss").inc()
            else:
                with obs.tracer.span("plan:tune", category="plan",
                                     network=self.graph.name):
                    self._tuning = _tune_now()
        return self._tuning

    @property
    def plan(self) -> ExecutionPlan:
        """The tuned execution plan."""
        return self.tune().plan

    def compiled(self) -> "CompiledPlan":
        """The compiled plan (tunes on first use).

        When the tuning came from a cache (memory or disk) rather than a
        live pipeline run, the compiled plan is reassembled from the
        cached result — the artifact then records the cached plan with
        its round-free provenance.
        """
        tuning = self.tune()
        if self._compiled is None:
            from ..compile.artifact import PlanArtifact
            from ..compile.pipeline import CompiledPlan, _key_for_tuner

            key = self._cache_key
            if key is None:
                tuner_cfg = self.config.tuner_config()
                key = _key_for_tuner(self.graph, self.device, tuner_cfg)
            self._compiled = CompiledPlan(
                graph=self.graph,
                device=self.device,
                artifact=PlanArtifact.from_tuning(key, tuning),
                tuning=tuning,
            )
        return self._compiled

    def artifact(self) -> "PlanArtifact":
        """The serializable :class:`~repro.compile.artifact.PlanArtifact`."""
        return self.compiled().artifact

    def run(self) -> InferenceReport:
        """Simulate one inference under the tuned plan (analytic backend)."""
        from ..compile.backends import AnalyticBackend

        backend = AnalyticBackend()
        compiled = self.compiled()
        if not self.obs.enabled:
            return backend.execute(compiled)
        with self.obs.tracer.span(
            f"execute:{self.graph.name}", category="execute",
            device=self.device.name, batch=self.config.batch_size,
        ) as span:
            report = backend.execute(compiled, obs=self.obs)
            span.set_times(0.0, report.total_s)
            span.set_attributes(
                latency_ms=report.total_s * 1e3,
                copy_share=round(report.copy_share, 4),
            )
        return report

    # -- numerics ---------------------------------------------------------------

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Numerically execute the network on ``x`` (NumPy backend).

        Independent of the timing simulation: the placement of a layer on
        CPU or GPU never changes its mathematical result, so this path
        needs no plan and never triggers tuning.
        """
        from ..compile.backends import NumpyBackend

        if self._numpy_backend is None:
            self._numpy_backend = NumpyBackend()
        return self._numpy_backend.infer(self.graph, x)

    def summary(self) -> str:
        """Engine + plan description for logs."""
        lines = [
            f"EdgeNN({self.graph.name} on {self.device.name})",
            self.plan.describe(),
        ]
        tuning = self.tune()
        lines.append(
            f"tuned in {tuning.converged_after} feedback rounds; "
            f"final latency {tuning.final_report.total_s * 1e3:.3f} ms"
        )
        return "\n".join(lines)
