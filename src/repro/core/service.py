"""Inference-service simulation: cold starts vs warm steady state.

The paper's benchmarks measure *one-shot* inference — "inference needs
numerous input parameters and computes forward propagation only once" —
which is exactly the regime where parameter copies dominate (Fig 9) and
zero-copy pays most.  A deployed inference *service* instead loads weights
once and answers many requests.  This module simulates both phases so a
user can see where the paper's conclusions carry over:

* **cold** — first request: weights must reach the GPU (explicit copies
  under regular allocation; first-touch under managed).
* **warm** — steady state: weights already resident; only per-request
  activations move.

The zero-copy benefit shrinks in the warm phase (its biggest win was the
parameter staging), while the hybrid-execution benefit persists — a
useful decomposition the paper's one-shot setup cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..compile.backends import AnalyticBackend
from ..hardware.device import Device
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph
from ..nn.models import build as build_model
from .engine import EdgeNN, EdgeNNConfig
from .executor import HybridExecutor
from .memory_manager import MemoryPolicy
from .report import InferenceReport


@dataclass(frozen=True)
class ServiceProfile:
    """Latency profile of an inference service."""

    network: str
    device: str
    cold_s: float          # first-request latency
    warm_s: float          # steady-state request latency
    requests_to_amortize: int   # requests until the cold overhead is <1%

    @property
    def cold_overhead_s(self) -> float:
        return self.cold_s - self.warm_s


class WarmExecutor(HybridExecutor):
    """A hybrid executor whose weight buffers are already device-resident
    (the steady state of a long-running service)."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("warm_weights", True)
        super().__init__(*args, **kwargs)


def _backend_kwargs(config: EdgeNNConfig | None) -> dict:
    """Match the execution semantics of the configuration: without the
    semantic memory manager, the runtime behaves like the original
    programs (single stream, per-layer host staging)."""
    plain = (
        config is not None
        and config.memory_policy() is MemoryPolicy.ALL_REGULAR
    )
    return {"serialize": plain, "host_staging": plain}


def profile_service(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec, None] = None,
    config: EdgeNNConfig | None = None,
) -> ServiceProfile:
    """Cold/warm latency profile of an EdgeNN-tuned inference service."""
    graph = build_model(network) if isinstance(network, str) else network
    engine = EdgeNN(graph, device, config)
    compiled = engine.compiled()
    kwargs = _backend_kwargs(config)
    cold = AnalyticBackend(**kwargs).execute(compiled)
    warm = AnalyticBackend(warm_weights=True, **kwargs).execute(compiled)
    overhead = max(0.0, cold.total_s - warm.total_s)
    if overhead <= 0:
        amortize = 1
    else:
        amortize = max(1, int(overhead / (0.01 * warm.total_s)) + 1)
    return ServiceProfile(
        network=graph.name,
        device=engine.device.name,
        cold_s=cold.total_s,
        warm_s=warm.total_s,
        requests_to_amortize=amortize,
    )


def warm_report(
    network: Union[str, NetworkGraph],
    device: Union[Device, DeviceSpec, None] = None,
    config: EdgeNNConfig | None = None,
) -> InferenceReport:
    """Full report of one steady-state (warm) request."""
    graph = build_model(network) if isinstance(network, str) else network
    engine = EdgeNN(graph, device, config)
    return AnalyticBackend(
        warm_weights=True, **_backend_kwargs(config)
    ).execute(engine.compiled())
