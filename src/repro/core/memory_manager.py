"""Semantic-aware memory management (§IV-B).

Chooses one of the two memory usage mechanisms per buffer:

* zero-copy (``cudaMallocManaged``) for read-only parameters, inputs, and
  single-writer activations — eliminating explicit h2d/d2h copies;
* regular allocation (``cudaMalloc`` + ``cudaMemcpy``) for outputs that the
  CPU and GPU co-write in one step, where zero-copy's consistency cost
  would dwarf an explicit merge.

On non-integrated devices (discrete GPU) managed memory brings no benefit
(the paper: PCIe makes unified memory migration at least as expensive as
explicit copies), so everything stays REGULAR there regardless of policy.
"""

from __future__ import annotations

import enum
from typing import Dict

from ..hardware.memory import AllocKind
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph
from .plan import ExecutionPlan
from .semantics import BufferRole, classify_buffers


class MemoryPolicy(enum.Enum):
    """Which allocation policy to apply (for ablation, Fig 8)."""

    ALL_REGULAR = "all_regular"       # the original programs' behaviour
    ALL_MANAGED = "all_managed"       # naive zero-copy everywhere
    SEMANTIC = "semantic"             # EdgeNN: choose by data semantics


def plan_allocations(
    graph: NetworkGraph,
    plan: ExecutionPlan,
    device: DeviceSpec,
    policy: MemoryPolicy = MemoryPolicy.SEMANTIC,
) -> Dict[str, AllocKind]:
    """Decide the allocation kind of every buffer and record it in ``plan``.

    Returns the mapping (also stored in ``plan.alloc``).
    """
    roles = classify_buffers(graph, plan)
    alloc: Dict[str, AllocKind] = {}
    managed_possible = device.is_integrated
    for buffer_name, role in roles.items():
        if not managed_possible or policy is MemoryPolicy.ALL_REGULAR:
            alloc[buffer_name] = AllocKind.REGULAR
        elif policy is MemoryPolicy.ALL_MANAGED:
            alloc[buffer_name] = AllocKind.MANAGED
        else:  # SEMANTIC
            if role is BufferRole.COWRITTEN_OUTPUT:
                alloc[buffer_name] = AllocKind.REGULAR
            else:
                alloc[buffer_name] = AllocKind.MANAGED
    plan.alloc = alloc
    return alloc
