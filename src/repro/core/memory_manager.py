"""Semantic-aware memory management (§IV-B).

Chooses one of the two memory usage mechanisms per buffer:

* zero-copy (``cudaMallocManaged``) for read-only parameters, inputs, and
  single-writer activations — eliminating explicit h2d/d2h copies;
* regular allocation (``cudaMalloc`` + ``cudaMemcpy``) for outputs that the
  CPU and GPU co-write in one step, where zero-copy's consistency cost
  would dwarf an explicit merge.

On non-integrated devices (discrete GPU) managed memory brings no benefit
(the paper: PCIe makes unified memory migration at least as expensive as
explicit copies), so everything stays REGULAR there regardless of policy.

When an :class:`~repro.obs.Observability` bundle is passed, every
placement decision is recorded in the provenance log together with the
estimated cost of each mechanism *considered* — the explicit-staging
cost a REGULAR allocation would pay versus the first-touch (or, for
co-written outputs, consistency-storm) cost of MANAGED — so a run can be
audited decision by decision.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..hardware import calibration as cal
from ..hardware.memory import AllocKind
from ..hardware.specs import DeviceSpec
from ..nn import tensor
from ..nn.graph import NetworkGraph
from ..obs import Observability
from ..obs.provenance import MemoryPlacementRecord, PlacementCandidate
from .plan import Assignment, ExecutionPlan
from .semantics import (
    BufferRole,
    classify_buffers,
    input_buffer,
    output_buffer,
    weights_buffer,
)


class MemoryPolicy(enum.Enum):
    """Which allocation policy to apply (for ablation, Fig 8)."""

    ALL_REGULAR = "all_regular"       # the original programs' behaviour
    ALL_MANAGED = "all_managed"       # naive zero-copy everywhere
    SEMANTIC = "semantic"             # EdgeNN: choose by data semantics


def _buffer_sizes(graph: NetworkGraph) -> Dict[str, float]:
    """Base (fp32, batch 1) byte size of every named buffer."""
    sizes: Dict[str, float] = {
        input_buffer(): float(tensor.nbytes(graph.input_shape))
    }
    for name in graph.topo_order():
        node = graph.node(name)
        pbytes = node.layer.param_bytes(node.in_shapes)
        if pbytes > 0:
            sizes[weights_buffer(name)] = float(pbytes)
        if not node.layer.is_noop:
            sizes[output_buffer(name)] = float(tensor.nbytes(node.out_shape))
    return sizes


def _placement_candidates(
    role: BufferRole,
    nbytes: float,
    copy_rate: Optional[float],
    copy_latency_s: float,
    cpu_fraction: float,
) -> tuple:
    """Estimated steady cost of each mechanism for one buffer.

    These are explanation-grade estimates (base buffer size, no
    contention): the simulator's memory model charges the exact costs at
    execution time.  What matters here is *which terms were compared* —
    explicit staging vs first-touch vs the co-write consistency storm.
    """
    if copy_rate is None or copy_rate <= 0:
        return ()
    if role is BufferRole.COWRITTEN_OUTPUT:
        regular = PlacementCandidate(
            kind=AllocKind.REGULAR.value,
            est_cost_s=copy_latency_s + cpu_fraction * nbytes / copy_rate,
            note=f"explicit merge of the CPU slice (Eq. 2, p={cpu_fraction:.3f})",
        )
        managed = PlacementCandidate(
            kind=AllocKind.MANAGED.value,
            est_cost_s=nbytes * cal.MANAGED_COWRITE_PENALTY_S_PER_BYTE,
            note="co-write consistency storm (fine-grained coherence)",
        )
    else:
        regular = PlacementCandidate(
            kind=AllocKind.REGULAR.value,
            est_cost_s=copy_latency_s + nbytes / copy_rate,
            note="explicit h2d staging through the copy engine",
        )
        managed = PlacementCandidate(
            kind=AllocKind.MANAGED.value,
            est_cost_s=nbytes * cal.MANAGED_FIRST_TOUCH_S_PER_BYTE,
            note="zero-copy: first-touch page set-up only",
        )
    return (managed, regular)


class MemoryPlacer:
    """The place stage's bound memory manager: one (graph, device, policy)
    binding whose per-buffer decisions are (re)applied whenever layer
    placements evolve — a split layer forces its output to REGULAR, so
    placement and allocation cannot be decided independently."""

    def __init__(
        self,
        graph: NetworkGraph,
        device: DeviceSpec,
        policy: MemoryPolicy = MemoryPolicy.SEMANTIC,
        *,
        obs: Optional[Observability] = None,
    ) -> None:
        self.graph = graph
        self.device = device
        self.policy = policy
        self._obs = obs

    def buffer_catalog(self) -> Dict[str, float]:
        """Every named buffer and its base (fp32, batch-1) byte size."""
        return _buffer_sizes(self.graph)

    def apply(self, plan: ExecutionPlan, *, stage: str = "") -> Dict[str, AllocKind]:
        """Decide every buffer's mechanism for the plan's current placements."""
        return plan_allocations(
            self.graph, plan, self.device, self.policy,
            obs=self._obs, stage=stage,
        )


def plan_allocations(
    graph: NetworkGraph,
    plan: ExecutionPlan,
    device: DeviceSpec,
    policy: MemoryPolicy = MemoryPolicy.SEMANTIC,
    *,
    obs: Optional[Observability] = None,
    stage: str = "",
) -> Dict[str, AllocKind]:
    """Decide the allocation kind of every buffer and record it in ``plan``.

    Returns the mapping (also stored in ``plan.alloc``).  With ``obs``
    given, each decision and its compared candidate costs land in the
    provenance log under ``stage``.
    """
    roles = classify_buffers(graph, plan)
    alloc: Dict[str, AllocKind] = {}
    managed_possible = device.is_integrated
    provenance = obs.provenance if obs is not None else None
    record = provenance is not None and provenance.enabled
    if record:
        sizes = _buffer_sizes(graph)
        if device.interconnect is not None:
            copy_rate: Optional[float] = device.interconnect.rate
            copy_latency_s = device.interconnect.latency_s
        else:
            copy_rate, copy_latency_s = None, 0.0
    for buffer_name, role in roles.items():
        if not managed_possible or policy is MemoryPolicy.ALL_REGULAR:
            kind = AllocKind.REGULAR
            reason = (
                "managed memory unavailable on non-integrated device"
                if not managed_possible
                else "policy forces regular allocation (ablation)"
            )
        elif policy is MemoryPolicy.ALL_MANAGED:
            kind = AllocKind.MANAGED
            reason = "policy forces zero-copy everywhere (ablation)"
        else:  # SEMANTIC
            if role is BufferRole.COWRITTEN_OUTPUT:
                kind = AllocKind.REGULAR
                reason = (
                    "both processors write slices in one step; explicit "
                    "merge beats the zero-copy consistency storm"
                )
            else:
                kind = AllocKind.MANAGED
                reason = (
                    "single-writer semantics; zero-copy eliminates the "
                    "explicit transfer"
                )
        alloc[buffer_name] = kind
        if record:
            cpu_fraction = 0.0
            if role is BufferRole.COWRITTEN_OUTPUT:
                layer = buffer_name[: -len(".out")]
                lp = plan.layers.get(layer)
                if lp is not None and lp.assignment is Assignment.SPLIT:
                    cpu_fraction = lp.cpu_fraction
            provenance.record_placement(MemoryPlacementRecord(
                network=graph.name,
                buffer=buffer_name,
                role=role.value,
                policy=policy.value,
                chosen=kind.value,
                nbytes=sizes.get(buffer_name, 0.0),
                stage=stage,
                candidates=_placement_candidates(
                    role, sizes.get(buffer_name, 0.0),
                    copy_rate, copy_latency_s, cpu_fraction,
                ),
                reason=reason,
            ))
    plan.alloc = alloc
    return alloc
