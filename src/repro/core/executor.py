"""Inter- and intra-kernel CPU-GPU hybrid execution (§IV-C).

The executor turns an :class:`~repro.core.plan.ExecutionPlan` into a
schedule on the device's simulated timeline:

* GPU-/CPU-assigned layers run as single kernels on their stream;
* branch chains mapped to different processors co-run automatically,
  because scheduling is *data-dependency driven* ("lazy synchronization":
  a kernel waits only for the events producing its inputs);
* SPLIT layers run both sides concurrently under the DRAM-contention
  model, then merge the CPU slice through the copy engine (Eq. 2);
* REGULAR buffers generate explicit copy-engine transfers whenever a
  processor touches a stale copy; MANAGED buffers instead apply the
  zero-copy bandwidth factor and first-touch cost.

``serialize=True`` reproduces the original programs' single-stream
behaviour (memcpy → kernel → memcpy ...), which is the baseline whose copy
shares Fig 9 reports; EdgeNN runs with ``serialize=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanError, SpecError
from ..hardware import calibration as cal
from ..hardware.device import Device
from ..hardware.memory import AllocKind, Buffer
from ..hardware.power import energy_for_run
from ..hardware.specs import ProcessorKind
from ..nn import tensor
from ..nn.graph import INPUT, NetworkGraph
from ..nn.precision import Precision, scale_work
from ..obs import NOOP_OBS, Observability
from ..sim.timeline import COPY, CPU, GPU, ScheduledEvent, Timeline
from .plan import Assignment, ExecutionPlan
from .report import InferenceReport, LayerResult
from .semantics import input_buffer, output_buffer, weights_buffer

_RESOURCE_OF = {ProcessorKind.CPU: CPU, ProcessorKind.GPU: GPU}


@dataclass
class _LayerAccounting:
    """Scratch accumulator while scheduling one layer."""

    copy_s: float = 0.0
    overhead_s: float = 0.0
    events: List[ScheduledEvent] = None

    def __post_init__(self) -> None:
        if self.events is None:
            self.events = []

    def span(self) -> tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start_s for e in self.events),
            max(e.end_s for e in self.events),
        )


class HybridExecutor:
    """Executes one inference of ``graph`` on ``device`` under ``plan``."""

    def __init__(
        self,
        graph: NetworkGraph,
        device: Device,
        plan: ExecutionPlan,
        *,
        serialize: bool = False,
        host_staging: bool = False,
        prefetch: bool = True,
        warm_weights: bool = False,
        precision: Precision = Precision.FP32,
        batch_size: int = 1,
        namespace: str = "",
        obs: Optional[Observability] = None,
    ) -> None:
        self._graph = graph
        self._device = device
        self._plan = plan
        self._obs = obs if obs is not None else NOOP_OBS
        self._serialize = serialize
        self._host_staging = host_staging
        # cudaMemPrefetchAsync (paper §IV-B implementation details): the
        # managed first-touch page set-up is issued on the copy stream
        # ahead of the kernel, hiding it behind earlier work.
        self._prefetch = prefetch
        # Warm-start: weight buffers are already device-resident, the
        # steady state of a long-running service (repro.core.service).
        self._warm_weights = warm_weights
        # Inference datatype: shrinks buffers/traffic and boosts compute
        # throughput (see repro.nn.precision); numerics stay float32.
        self._precision = precision
        if batch_size < 1:
            raise PlanError(f"batch size must be >= 1, got {batch_size}")
        # Batched inference (extension): activations/outputs/FLOPs scale
        # with the batch, weights are read once, and GPU occupancy improves
        # with the extra output elements.
        self._batch = batch_size
        # Buffer-name prefix so several executors can share one device
        # (multi-tenant co-running) without colliding allocations.
        self._namespace = namespace
        self._shared_timeline = False
        self._validate()

    def _ns(self, buffer_name: str) -> str:
        """Namespaced physical buffer name."""
        if self._namespace:
            return f"{self._namespace}:{buffer_name}"
        return buffer_name

    def _validate(self) -> None:
        for name in self._graph.topo_order():
            lp = self._plan.layer_plan(name)  # raises PlanError when missing
            if lp.uses_gpu and not self._device.has_gpu:
                raise PlanError(
                    f"layer {name!r} needs a GPU but device "
                    f"{self._device.name!r} has none"
                )

    # -- public ---------------------------------------------------------------

    def run(self) -> InferenceReport:
        """Simulate one inference; returns the full report."""
        self.begin()
        while self.step():
            pass
        return self.finish()

    # -- stepwise interface (multi-tenant co-running) -----------------------------

    def begin(
        self,
        timeline: Optional[Timeline] = None,
        *,
        reset_device: bool = True,
    ) -> None:
        """Prepare a run.  Passing a ``timeline`` shares it with other
        executors (their submissions interleave like concurrent CUDA
        streams); the caller then owns device reset."""
        if reset_device:
            self._device.reset()
        self._shared_timeline = timeline is not None
        self._timeline = timeline if timeline is not None else Timeline(
            (CPU, GPU, COPY)
        )
        self._producer: Dict[str, ScheduledEvent] = {}
        self._resolved: Dict[str, str] = {INPUT: self._ns(input_buffer())}
        self._last_event: Optional[ScheduledEvent] = None
        self._copy_s_total = 0.0
        self._completion_s = 0.0
        self._allocate_buffers()
        self._pending: List[str] = list(self._graph.topo_order())
        self._results: List[LayerResult] = []

    def step(self) -> bool:
        """Schedule the next layer; returns False once all are scheduled."""
        if not self._pending:
            return False
        name = self._pending.pop(0)
        if self._obs.enabled:
            with self._obs.tracer.span(
                f"layer:{name}", category="layer",
            ) as span:
                result = self._exec_layer(name)
                span.set_times(result.start_s, result.end_s)
                span.set_attributes(
                    assignment=result.assignment.value,
                    cpu_fraction=round(result.cpu_fraction, 4),
                    kernel_class=result.kernel_class,
                    copy_ms=round(result.copy_s * 1e3, 6),
                )
        else:
            result = self._exec_layer(name)
        self._completion_s = max(self._completion_s, result.end_s)
        self._results.append(result)
        return True

    def finish(self) -> InferenceReport:
        """Read the output back and assemble the report."""
        self._readback_output()
        if self._shared_timeline:
            # Tenant view: completion time of this network's own events;
            # per-processor busy approximated from its own kernels.
            total_s = self._completion_s
            cpu_busy = sum(lr.kernel_cpu_s for lr in self._results)
            gpu_busy = sum(lr.kernel_gpu_s for lr in self._results)
        else:
            total_s = self._timeline.trace.span()
            cpu_busy = self._timeline.busy_time(CPU)
            gpu_busy = self._timeline.busy_time(GPU)
        # The OpenMP team spin-waits once the CPU participates at all, so
        # the utilization the power meter sees exceeds scheduled busy time.
        cpu_busy_for_power = cpu_busy
        if cpu_busy > 0 and total_s > cpu_busy:
            cpu_busy_for_power = (
                cpu_busy + cal.OMP_SPIN_UTILIZATION * (total_s - cpu_busy)
            )
        energy = energy_for_run(
            self._device.spec, total_s, min(cpu_busy_for_power, total_s),
            min(gpu_busy, total_s) if self._device.has_gpu else 0.0,
        )
        if self._obs.enabled:
            metrics = self._obs.metrics
            layers_total = metrics.counter(
                "repro_layers_executed_total",
                "Layers scheduled by assignment kind", labels=("assignment",),
            )
            for lr in self._results:
                layers_total.labels(assignment=lr.assignment.value).inc()
            metrics.counter(
                "repro_copy_seconds_total",
                "Explicit copy-engine seconds scheduled",
            ).inc(self._copy_s_total)
            busy = metrics.counter(
                "repro_resource_busy_seconds_total",
                "Simulated busy seconds per resource", labels=("resource",),
            )
            busy.labels(resource=CPU).inc(cpu_busy)
            busy.labels(resource=GPU).inc(gpu_busy)
        return InferenceReport(
            network=self._graph.name,
            device=self._device.name,
            total_s=total_s,
            layers=self._results,
            copy_s_total=self._copy_s_total,
            cpu_busy_s=cpu_busy,
            gpu_busy_s=gpu_busy,
            energy=energy,
            trace=self._timeline.trace,
            plan_summary=self._plan.describe(),
        )

    # -- buffer setup -----------------------------------------------------------

    def _allocate_buffers(self) -> None:
        mem = self._device.memory
        ratio = self._precision.byte_ratio * self._batch
        mem.allocate(
            self._ns(input_buffer()),
            tensor.nbytes(self._graph.input_shape) * ratio,
            self._alloc_kind(input_buffer()),
            role="network_input",
        )
        for name in self._graph.topo_order():
            node = self._graph.node(name)
            pbytes = node.layer.param_bytes(node.in_shapes)
            if pbytes > 0:
                mem.allocate(
                    self._ns(weights_buffer(name)),
                    float(pbytes) * self._precision.byte_ratio,
                    self._alloc_kind(weights_buffer(name)), role="weights",
                )
            if not node.layer.is_noop:
                mem.allocate(
                    self._ns(output_buffer(name)),
                    float(tensor.nbytes(node.out_shape)) * ratio,
                    self._alloc_kind(output_buffer(name)), role="activation",
                )
        if self._warm_weights:
            for name in self._graph.topo_order():
                node = self._graph.node(name)
                if node.layer.param_bytes(node.in_shapes) > 0:
                    buf = mem.get(self._ns(weights_buffer(name)))
                    buf.device_valid = True   # regular: copy already done
                    buf.gpu_touched = True    # managed: pages already mapped

    def _alloc_kind(self, buffer_name: str) -> AllocKind:
        kind = self._plan.alloc_kind(buffer_name)
        if kind is AllocKind.MANAGED and not self._device.is_integrated:
            raise PlanError(
                f"plan uses managed memory for {buffer_name!r} on "
                f"non-integrated device {self._device.name!r}"
            )
        return kind

    # -- layer scheduling ---------------------------------------------------------

    def _exec_layer(self, name: str) -> LayerResult:
        node = self._graph.node(name)
        lp = self._plan.layer_plan(name)
        if node.layer.is_noop:
            # Alias the (single) input; zero-cost structural layer.  It is
            # "done" the instant its input is (metadata only).
            alias = self._resolved[node.input_names[0]]
            self._resolved[name] = alias
            producer = self._producer.get(alias)
            at = producer.end_s if producer is not None else 0.0
            return LayerResult(
                name=name, kernel_class=node.layer.kernel_class,
                assignment=lp.assignment, cpu_fraction=0.0,
                start_s=at, end_s=at,
                kernel_cpu_s=0.0, kernel_gpu_s=0.0, copy_s=0.0, overhead_s=0.0,
            )
        out_buf = self._device.memory.get(self._ns(output_buffer(name)))
        self._resolved[name] = out_buf.name
        if lp.assignment is Assignment.SPLIT:
            return self._exec_split(name, lp.cpu_fraction, out_buf)
        return self._exec_single(name, lp.processor, out_buf)

    def _work_for(self, name: str, proc: ProcessorKind):
        """The layer's kernel work at the configured batch size and
        precision, with the processor's narrow-datatype throughput folded
        into the FLOP term."""
        from dataclasses import replace as _replace

        work = scale_work(self._graph.work(name), self._precision)
        if self._batch > 1:
            work = _replace(
                work,
                flops=work.flops * self._batch,
                act_in_bytes=work.act_in_bytes * self._batch,
                out_bytes=work.out_bytes * self._batch,
                out_elements=work.out_elements * self._batch,
            )
        speedup = self._precision.compute_speedup(proc)
        if speedup != 1.0:
            work = _replace(work, flops=work.flops / speedup)
        return work

    def _input_buffers(self, name: str) -> List[Buffer]:
        node = self._graph.node(name)
        bufs = [
            self._device.memory.get(self._resolved[src])
            for src in node.input_names
        ]
        pbytes = node.layer.param_bytes(node.in_shapes)
        if pbytes > 0:
            bufs.append(self._device.memory.get(self._ns(weights_buffer(name))))
        return bufs

    def _prepare_reads(
        self,
        bufs: Sequence[Buffer],
        proc: ProcessorKind,
        acc: _LayerAccounting,
        kernel_class: str,
    ) -> tuple[List[ScheduledEvent], float, float]:
        """Schedule any transfers needed for ``proc`` to read ``bufs``.

        Returns (dependency events, extra overhead seconds, bw factor)."""
        deps: List[ScheduledEvent] = []
        overhead = 0.0
        factor = 1.0
        for buf in bufs:
            producer = self._producer.get(buf.name)
            cost = self._device.memory.read_cost(buf, proc, kernel_class)
            if cost.overhead_s > 0 and self._prefetch:
                # cudaMemPrefetchAsync: page set-up runs on the copy stream
                # and typically hides behind the preceding kernel.
                ev = self._timeline.schedule(
                    COPY, cost.overhead_s, f"prefetch:{buf.name}",
                    after=[producer] if producer is not None else [],
                    category="copy",
                )
                acc.events.append(ev)
                self._completion_s = max(self._completion_s, ev.end_s)
                deps.append(ev)
            else:
                overhead += cost.overhead_s
            factor = min(factor, cost.bw_factor)
            for transfer in cost.transfers:
                ev = self._schedule_copy(transfer, producer, acc)
                deps.append(ev)
            if producer is not None:
                deps.append(producer)
        return deps, overhead, factor

    def _schedule_copy(
        self,
        transfer,
        producer: Optional[ScheduledEvent],
        acc: _LayerAccounting,
    ) -> ScheduledEvent:
        if self._device.copy_engine is None:
            raise SpecError(
                f"device {self._device.name!r} cannot perform explicit copies"
            )
        duration = self._device.copy_engine.record(transfer)
        deps = [producer] if producer is not None else []
        if self._serialize and self._last_event is not None:
            deps.append(self._last_event)
        ev = self._timeline.schedule(
            COPY, duration,
            f"memcpy:{transfer.buffer_name}:{transfer.direction.value}",
            after=deps, category="copy",
        )
        acc.copy_s += duration
        acc.events.append(ev)
        self._copy_s_total += duration
        self._completion_s = max(self._completion_s, ev.end_s)
        self._last_event = ev
        if self._obs.enabled:
            self._obs.tracer.record(
                ev.label, ev.start_s, ev.end_s, category="memcpy",
                bytes=transfer.nbytes, direction=transfer.direction.value,
            )
        return ev

    def _exec_single(
        self, name: str, proc: ProcessorKind, out_buf: Buffer
    ) -> LayerResult:
        node = self._graph.node(name)
        work = self._work_for(name, proc)
        acc = _LayerAccounting()
        deps, overhead, factor = self._prepare_reads(
            self._input_buffers(name), proc, acc, work.kernel_class
        )
        wcost = self._device.memory.write_cost(out_buf, proc, work.kernel_class)
        overhead += wcost.overhead_s
        factor = min(factor, wcost.bw_factor)
        # Cross-processor handoff at DAG joins costs a sync.
        if self._needs_join_sync(name, proc):
            overhead += cal.JOIN_SYNC_OVERHEAD_S
        kc = self._device.kernel_cost(proc, work, mem_bw_factor=factor)
        if self._serialize and self._last_event is not None:
            deps.append(self._last_event)
        ev = self._timeline.schedule(
            _RESOURCE_OF[proc], kc.total_s + overhead, name, after=deps,
        )
        acc.events.append(ev)
        self._producer[out_buf.name] = ev
        self._last_event = ev
        self._device.memory.cowrite_penalty(out_buf)  # resets writer set
        if self._host_staging and proc is ProcessorKind.GPU:
            stage = self._device.memory.stage_out(out_buf)
            if stage is not None:
                stage_ev = self._schedule_copy(stage, ev, acc)
                self._producer[out_buf.name] = stage_ev
        start, end = acc.span()
        return LayerResult(
            name=name, kernel_class=node.layer.kernel_class,
            assignment=(
                Assignment.CPU if proc is ProcessorKind.CPU else Assignment.GPU
            ),
            cpu_fraction=1.0 if proc is ProcessorKind.CPU else 0.0,
            start_s=start, end_s=end,
            kernel_cpu_s=ev.duration_s if proc is ProcessorKind.CPU else 0.0,
            kernel_gpu_s=ev.duration_s if proc is ProcessorKind.GPU else 0.0,
            copy_s=acc.copy_s, overhead_s=overhead,
        )

    def _exec_split(
        self, name: str, cpu_fraction: float, out_buf: Buffer
    ) -> LayerResult:
        node = self._graph.node(name)
        cpu_work = self._work_for(name, ProcessorKind.CPU).scaled(cpu_fraction)
        gpu_work = self._work_for(name, ProcessorKind.GPU).scaled(
            1.0 - cpu_fraction
        )
        work = self._graph.work(name)
        acc = _LayerAccounting()
        consistency_s = 0.0
        in_bufs = self._input_buffers(name)
        deps_cpu, ovh_cpu, f_cpu = self._prepare_reads(
            in_bufs, ProcessorKind.CPU, acc, work.kernel_class
        )
        deps_gpu, ovh_gpu, f_gpu = self._prepare_reads(
            in_bufs, ProcessorKind.GPU, acc, work.kernel_class
        )
        wc_cpu = self._device.memory.write_cost(
            out_buf, ProcessorKind.CPU, work.kernel_class
        )
        wc_gpu = self._device.memory.write_cost(
            out_buf, ProcessorKind.GPU, work.kernel_class
        )
        ovh_cpu += wc_cpu.overhead_s
        ovh_gpu += wc_gpu.overhead_s + cal.PARTITION_OVERHEAD_S
        f_cpu = min(f_cpu, wc_cpu.bw_factor)
        f_gpu = min(f_gpu, wc_gpu.bw_factor)
        cpu_cost = self._device.kernel_cost(
            ProcessorKind.CPU, cpu_work, mem_bw_factor=f_cpu,
            include_launch=False,
        )
        gpu_cost = self._device.kernel_cost(
            ProcessorKind.GPU, gpu_work, mem_bw_factor=f_gpu,
            include_launch=False,
        )
        cpu_body, gpu_body = self._device.corun(cpu_cost, gpu_cost)
        cpu_launch = self._device.processor(ProcessorKind.CPU).launch_overhead_s
        gpu_launch = self._device.processor(ProcessorKind.GPU).launch_overhead_s
        # Both sides start together once all inputs are ready on both
        # processors (the co-run contention math assumes a common start).
        joint_deps = deps_cpu + deps_gpu
        start_at = max(
            [self._timeline.free_at(CPU), self._timeline.free_at(GPU)]
            + [d.end_s for d in joint_deps]
        )
        ev_cpu = self._timeline.schedule(
            CPU, cpu_body + cpu_launch + ovh_cpu, f"{name}[cpu]",
            after=joint_deps, not_before=start_at,
        )
        ev_gpu = self._timeline.schedule(
            GPU, gpu_body + gpu_launch + ovh_gpu, f"{name}[gpu]",
            after=joint_deps, not_before=start_at,
        )
        acc.events.extend([ev_cpu, ev_gpu])
        producer: ScheduledEvent
        penalty = self._device.memory.cowrite_penalty(out_buf)
        if penalty > 0.0:
            # Managed co-write: consistency storm serialized on the GPU side.
            producer = self._timeline.schedule(
                GPU, penalty, f"{name}[consistency]",
                after=[ev_cpu, ev_gpu], category="sync",
            )
            acc.events.append(producer)
            acc.overhead_s += penalty
            consistency_s = penalty
        else:
            merge = self._device.memory.merge_transfer(out_buf, cpu_fraction)
            if merge is not None:
                producer = self._schedule_copy(merge, None, acc)
                # Merge must wait for both sides.
                producer = self._timeline.schedule(
                    GPU, 0.0, f"{name}[merged]",
                    after=[producer, ev_cpu, ev_gpu], category="sync",
                )
            else:
                producer = self._timeline.schedule(
                    GPU, 0.0, f"{name}[joined]",
                    after=[ev_cpu, ev_gpu], category="sync",
                )
            acc.events.append(producer)
        self._producer[out_buf.name] = producer
        self._last_event = producer
        start, end = acc.span()
        return LayerResult(
            name=name, kernel_class=node.layer.kernel_class,
            assignment=Assignment.SPLIT, cpu_fraction=cpu_fraction,
            start_s=start, end_s=end,
            kernel_cpu_s=ev_cpu.duration_s, kernel_gpu_s=ev_gpu.duration_s,
            copy_s=acc.copy_s, overhead_s=ovh_cpu + ovh_gpu + acc.overhead_s,
            consistency_s=consistency_s,
        )

    def _needs_join_sync(self, name: str, proc: ProcessorKind) -> bool:
        """True when this layer consumes outputs produced on the *other*
        processor (cross-stream dependency => event wait)."""
        node = self._graph.node(name)
        if node.in_degree < 2:
            return False
        resource = _RESOURCE_OF[proc]
        for src in node.input_names:
            buf_name = self._resolved.get(src)
            producer = self._producer.get(buf_name) if buf_name else None
            if producer is not None and producer.resource not in (resource, COPY):
                if producer.duration_s > 0 or producer.resource != resource:
                    return True
        return False

    def _readback_output(self) -> None:
        """Final result consumed host-side (cudaMemcpy d2h or direct managed
        read after cudaDeviceSynchronize)."""
        out_name = self._resolved[self._graph.output_name]
        buf = self._device.memory.get(out_name)
        acc = _LayerAccounting()
        cost = self._device.memory.read_cost(buf, ProcessorKind.CPU)
        producer = self._producer.get(buf.name)
        for transfer in cost.transfers:
            self._schedule_copy(transfer, producer, acc)


# -- batched service-time gather ------------------------------------------------


def service_times(
    service_fn: Callable[[str, int], float],
    keys: Sequence[str],
    sizes: Sequence[int],
) -> np.ndarray:
    """Batched service-time entry: seconds for each (key, size) pair.

    The simulators' hot loops ask for whole vectors of batch costs at
    once (sweep grids, router cost tables, epoch pre-tuning); tuning is
    memoized per distinct pair, so ``service_fn`` — a scalar
    ``(key, size) -> seconds`` callable such as
    ``lambda n, b: model.warm(n, b).total_s`` — is invoked exactly once
    per distinct pair, in first-occurrence order (plan-cache traffic
    stays deterministic), and the results broadcast back over the full
    batch as one float64 array.
    """
    if len(keys) != len(sizes):
        raise PlanError(
            f"service_times needs parallel keys/sizes, got "
            f"{len(keys)} keys and {len(sizes)} sizes"
        )
    memo: Dict[Tuple[str, int], float] = {}
    out = np.empty(len(keys), dtype=np.float64)
    for i, (key, size) in enumerate(zip(keys, sizes)):
        pair = (key, int(size))
        cached = memo.get(pair)
        if cached is None:
            cached = float(service_fn(pair[0], pair[1]))
            memo[pair] = cached
        out[i] = cached
    return out
