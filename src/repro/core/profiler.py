"""Per-layer performance statistics (the tuner's measurement store).

The paper's workflow: "the performance statistics are recorded to guide the
tuning approach" (§IV-A).  The tuner only ever sees *measured* times from
executed runs — never the simulator's internals — so the same tuning logic
would run unchanged against real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import TuningError


@dataclass
class SplitSample:
    """One measured execution of a split layer."""

    cpu_fraction: float
    wall_s: float
    cpu_side_s: float
    gpu_side_s: float


@dataclass
class LayerProfile:
    """Accumulated measurements for one layer."""

    name: str
    cpu_s: Optional[float] = None     # whole layer on CPU (EWMA)
    gpu_s: Optional[float] = None     # whole layer on GPU (EWMA)
    split_history: List[SplitSample] = field(default_factory=list)

    def best_known_wall(self) -> Optional[float]:
        """Fastest observed execution of this layer under any placement."""
        candidates = [t for t in (self.cpu_s, self.gpu_s) if t is not None]
        candidates.extend(s.wall_s for s in self.split_history)
        return min(candidates) if candidates else None


class ProfileStore:
    """EWMA measurement store keyed by layer name."""

    def __init__(self, ewma_alpha: float = 0.5) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise TuningError(f"ewma alpha out of (0, 1]: {ewma_alpha}")
        self._alpha = ewma_alpha
        self._profiles: Dict[str, LayerProfile] = {}

    def profile(self, layer: str) -> LayerProfile:
        return self._profiles.setdefault(layer, LayerProfile(layer))

    def __contains__(self, layer: str) -> bool:
        return layer in self._profiles

    def record_cpu(self, layer: str, wall_s: float) -> None:
        self._record_scalar(layer, "cpu_s", wall_s)

    def record_gpu(self, layer: str, wall_s: float) -> None:
        self._record_scalar(layer, "gpu_s", wall_s)

    def record_split(
        self, layer: str, cpu_fraction: float, wall_s: float,
        cpu_side_s: float, gpu_side_s: float,
    ) -> None:
        if wall_s < 0:
            raise TuningError(f"negative measurement for {layer}")
        self.profile(layer).split_history.append(
            SplitSample(cpu_fraction, wall_s, cpu_side_s, gpu_side_s)
        )

    def cpu_time(self, layer: str) -> float:
        """Measured whole-layer CPU time; raises if never profiled."""
        return self._require(layer, "cpu_s")

    def gpu_time(self, layer: str) -> float:
        """Measured whole-layer GPU time; raises if never profiled."""
        return self._require(layer, "gpu_s")

    def has_both(self, layer: str) -> bool:
        p = self._profiles.get(layer)
        return p is not None and p.cpu_s is not None and p.gpu_s is not None

    def latest_split(self, layer: str) -> Optional[SplitSample]:
        p = self._profiles.get(layer)
        if p is None or not p.split_history:
            return None
        return p.split_history[-1]

    def _record_scalar(self, layer: str, attr: str, wall_s: float) -> None:
        if wall_s < 0:
            raise TuningError(f"negative measurement for {layer}")
        profile = self.profile(layer)
        old = getattr(profile, attr)
        new = wall_s if old is None else self._alpha * wall_s + (1 - self._alpha) * old
        setattr(profile, attr, new)

    def _require(self, layer: str, attr: str) -> float:
        p = self._profiles.get(layer)
        value = getattr(p, attr) if p is not None else None
        if value is None:
            raise TuningError(f"layer {layer!r} has no {attr} profile yet")
        return value
