"""Execution plans: the tuner's output, the executor's input.

A plan assigns every layer to the GPU, the CPU, or a CPU/GPU split with a
concrete CPU fraction (intra-kernel co-running), and records the memory
mechanism chosen for every buffer (semantic-aware memory management).

Plans serialize to plain dicts (:meth:`ExecutionPlan.to_dict` /
:meth:`ExecutionPlan.from_dict`) so the compilation pipeline can persist
them inside a :class:`~repro.compile.artifact.PlanArtifact`.  Layer order
is preserved through the round-trip: downstream consumers (buffer
classification, provenance) iterate plans in insertion order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..errors import PlanError
from ..hardware.memory import AllocKind
from ..hardware.specs import ProcessorKind


class Assignment(enum.Enum):
    """Where a layer executes."""

    GPU = "gpu"
    CPU = "cpu"
    SPLIT = "split"   # intra-kernel co-run: CPU computes `cpu_fraction`


@dataclass(frozen=True)
class LayerPlan:
    """Placement decision for one layer."""

    layer: str
    assignment: Assignment
    cpu_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.assignment is Assignment.SPLIT:
            if not 0.0 < self.cpu_fraction < 1.0:
                raise PlanError(
                    f"{self.layer}: SPLIT needs cpu_fraction in (0, 1), "
                    f"got {self.cpu_fraction}"
                )
        elif self.assignment is Assignment.CPU:
            if self.cpu_fraction not in (0.0, 1.0):
                raise PlanError(f"{self.layer}: CPU assignment implies fraction 1")
            object.__setattr__(self, "cpu_fraction", 1.0)
        else:
            if self.cpu_fraction != 0.0:
                raise PlanError(f"{self.layer}: GPU assignment implies fraction 0")

    @property
    def uses_cpu(self) -> bool:
        return self.assignment is not Assignment.GPU

    @property
    def uses_gpu(self) -> bool:
        return self.assignment is not Assignment.CPU

    @property
    def processor(self) -> ProcessorKind:
        """Single executing processor (raises for SPLIT)."""
        if self.assignment is Assignment.SPLIT:
            raise PlanError(f"{self.layer}: split layer has no single processor")
        return (
            ProcessorKind.CPU
            if self.assignment is Assignment.CPU
            else ProcessorKind.GPU
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "layer": self.layer,
            "assignment": self.assignment.value,
            "cpu_fraction": self.cpu_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LayerPlan":
        """Inverse of :meth:`to_dict` (raises PlanError on bad data)."""
        try:
            layer = data["layer"]
            assignment = Assignment(data["assignment"])
            cpu_fraction = float(data.get("cpu_fraction", 0.0))
        except (KeyError, ValueError, TypeError) as exc:
            raise PlanError(f"malformed layer-plan record {data!r}") from exc
        return cls(str(layer), assignment, cpu_fraction)


def gpu_layer(name: str) -> LayerPlan:
    """Convenience: a GPU-only layer plan."""
    return LayerPlan(name, Assignment.GPU)


def cpu_layer(name: str) -> LayerPlan:
    """Convenience: a CPU-only layer plan."""
    return LayerPlan(name, Assignment.CPU)


def split_layer(name: str, cpu_fraction: float) -> LayerPlan:
    """Convenience: a split layer plan (clamps degenerate fractions)."""
    if cpu_fraction <= 0.0:
        return gpu_layer(name)
    if cpu_fraction >= 1.0:
        return cpu_layer(name)
    return LayerPlan(name, Assignment.SPLIT, cpu_fraction)


@dataclass
class ExecutionPlan:
    """Complete placement + memory decisions for one network on one device."""

    network: str
    layers: Dict[str, LayerPlan] = field(default_factory=dict)
    alloc: Dict[str, AllocKind] = field(default_factory=dict)  # buffer -> kind

    def layer_plan(self, name: str) -> LayerPlan:
        try:
            return self.layers[name]
        except KeyError as exc:
            raise PlanError(f"no plan for layer {name!r}") from exc

    def set_layer(self, plan: LayerPlan) -> None:
        self.layers[plan.layer] = plan

    def alloc_kind(self, buffer_name: str) -> AllocKind:
        """Memory mechanism for a buffer (defaults to REGULAR)."""
        return self.alloc.get(buffer_name, AllocKind.REGULAR)

    @property
    def split_layers(self) -> Dict[str, float]:
        """Layer → cpu fraction for every split layer."""
        return {
            name: lp.cpu_fraction
            for name, lp in self.layers.items()
            if lp.assignment is Assignment.SPLIT
        }

    @property
    def cpu_layers(self) -> list:
        """Names of whole layers assigned to the CPU."""
        return [
            name for name, lp in self.layers.items()
            if lp.assignment is Assignment.CPU
        ]

    def counts(self) -> Mapping[str, int]:
        """How many layers run on each assignment kind."""
        out = {a.value: 0 for a in Assignment}
        for lp in self.layers.values():
            out[lp.assignment.value] += 1
        return out

    def describe(self) -> str:
        """One-line summary for logs."""
        c = self.counts()
        managed = sum(1 for k in self.alloc.values() if k is AllocKind.MANAGED)
        return (
            f"plan[{self.network}]: gpu={c['gpu']} cpu={c['cpu']} "
            f"split={c['split']} managed_buffers={managed}/{len(self.alloc)}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; layer and alloc order are preserved."""
        layers: List[Dict[str, object]] = [
            lp.to_dict() for lp in self.layers.values()
        ]
        return {
            "network": self.network,
            "layers": layers,
            "alloc": {name: kind.value for name, kind in self.alloc.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExecutionPlan":
        """Inverse of :meth:`to_dict` (raises PlanError on bad data)."""
        try:
            network = str(data["network"])
            layer_records = data["layers"]
            alloc_records = data.get("alloc", {})
        except (KeyError, TypeError) as exc:
            raise PlanError(f"malformed execution-plan record: {exc}") from exc
        plan = cls(network)
        for record in layer_records:
            plan.set_layer(LayerPlan.from_dict(record))
        try:
            plan.alloc = {
                str(name): AllocKind(kind)
                for name, kind in alloc_records.items()
            }
        except ValueError as exc:
            raise PlanError(f"unknown allocation kind: {exc}") from exc
        return plan
