"""Exception hierarchy for the EdgeNN reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause while still discriminating precise
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecError(ReproError):
    """A hardware specification is invalid or inconsistent."""


class MemoryModelError(ReproError):
    """Illegal buffer state transition or allocation request."""


class AllocationError(MemoryModelError):
    """A buffer allocation exceeded device capacity or was malformed."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested layer or graph edge."""


class GraphError(ReproError):
    """The network graph is malformed (cycles, dangling inputs, bad names)."""


class PlanError(ReproError):
    """An execution plan is inconsistent with the network or device."""


class SimulationError(ReproError):
    """The discrete-event timeline was driven into an invalid state."""


class TuningError(ReproError):
    """The adaptive tuner received invalid measurements or configuration."""
