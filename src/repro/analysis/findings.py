"""Finding records: the unit of output of every analysis pass.

A :class:`Finding` is one diagnostic — a lint hit, a concurrency
hazard, or an artifact-invariant violation — with enough context to be
rendered (``path:line``), machine-filtered (``rule``), and matched
against the committed baseline (``fingerprint``).

Fingerprints deliberately exclude the line number: baselined findings
must survive unrelated edits that shift code up or down.  They hash the
rule id, the repo-relative path, the enclosing symbol (function or
class, when known), and the message.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: Finding severities, mildest first.
SEVERITIES: Sequence[str] = ("note", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule or verifier."""

    rule: str                 # e.g. "REPRO101"
    path: str                 # repo-relative or display path
    message: str
    line: int = 0             # 1-based; 0 when the finding is file-level
    symbol: str = ""          # enclosing function/class, "" if file-level
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        blob = "|".join(
            (self.rule, self.path.replace("\\", "/"), self.symbol,
             self.message)
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line, grep-friendly text form."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule} {self.severity}: {self.message}{where}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FindingCollector:
    """Mutable accumulator shared by the passes of one analysis run."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def sorted(self) -> List[Finding]:
        """Deterministic order: path, then line, then rule."""
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule, f.message)
        )


__all__ = ["Finding", "FindingCollector", "SEVERITIES"]
