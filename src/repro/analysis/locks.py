"""REPRO22x — lock escape analysis and global lock-acquisition order.

Two upgrades over the lexical REPRO201 heuristic:

**Escape analysis (no new rule id — it makes REPRO201 smarter).**
A private helper that mutates shared state without taking the lock is
fine *if the lock is always already held when it runs*.  The old rule
could not see that, so such helpers lived in the baseline with a
"call with the lock held" justification.  This pass proves it instead,
per class, as a fixed point:

  a private method ``_m`` is **proven lock-held** when
  (1) it never escapes — every ``self._m`` reference in the class is a
      direct call, never a value (no callbacks, no ``getattr``), and
  (2) every internal call site is lexically inside ``with self._lock``,
      inside ``__init__`` (construction happens-before sharing), or
      inside another method already proven lock-held.

Proven methods are exempt from REPRO201; everything else still flags.
The proof is deliberately per-class and intraprocedural — a helper
called from *outside* its class is never proven.

**REPRO220 lock order (new rule).**
Every ``with self.<lock>`` acquisition is a node; an edge ``A -> B``
means some code path acquires ``B`` (directly, or transitively through
project calls) while holding ``A``.  Any strongly connected component
with two or more locks is a potential deadlock: two threads entering
the cycle from different ends can block each other forever.  Self
re-acquisition (``A -> A``) is not reported — the repo's shared classes
use ``RLock`` where they re-enter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, ModuleInfo
from .concurrency import _is_lock_with, _lock_attributes
from .findings import Finding

RULE_ORDER = "REPRO220"


# ---------------------------------------------------------------------------
# Escape analysis (per-class proof that helpers run with the lock held)
# ---------------------------------------------------------------------------

@dataclass
class EscapeProof:
    """The outcome of the per-class lock escape analysis."""

    #: method name -> one-line proof ("all N call sites hold the lock").
    proven: Dict[str, str] = field(default_factory=dict)
    #: method name -> why the proof failed (for docs and debugging).
    unproven: Dict[str, str] = field(default_factory=dict)


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The statement's direct expressions (not nested statement bodies)."""
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item
                elif isinstance(item, ast.withitem):
                    yield item.context_expr


def _self_method_calls(expr: ast.expr) -> Iterator[str]:
    """Names of methods invoked as ``self.<m>(...)`` anywhere in ``expr``."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            yield node.func.attr


def _call_sites_by_callee(
    cls: ast.ClassDef, locks: Set[str]
) -> Dict[str, List[Tuple[str, bool]]]:
    """callee method -> [(caller method, lock lexically held)] within the
    class."""
    sites: Dict[str, List[Tuple[str, bool]]] = {}

    def walk(body: Sequence[ast.stmt], caller: str, locked: bool) -> None:
        for stmt in body:
            inner = locked
            if isinstance(stmt, ast.With):
                inner = locked or _is_lock_with(stmt, locks)
            for expr in _own_exprs(stmt):
                for callee in _self_method_calls(expr):
                    sites.setdefault(callee, []).append((caller, locked))
            for field_name in ("body", "orelse", "finalbody"):
                children = getattr(stmt, field_name, None)
                if children:
                    walk(children, caller, inner)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    walk(handler.body, caller, locked)

    for method in cls.body:
        if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk(method.body, method.name, False)
    return sites


def _escaped_methods(cls: ast.ClassDef, candidates: Set[str]) -> Set[str]:
    """Candidates referenced as values (``self._m`` without a call)."""
    call_funcs = {
        id(node.func)
        for node in ast.walk(cls)
        if isinstance(node, ast.Call)
    }
    escaped: Set[str] = set()
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in candidates
            and id(node) not in call_funcs
        ):
            escaped.add(node.attr)
    return escaped


def analyze_class_escapes(cls: ast.ClassDef, locks: Set[str]) -> EscapeProof:
    """Prove which private methods of ``cls`` only run with a lock held."""
    proof = EscapeProof()
    if not locks:
        return proof
    methods = {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    # Public methods are callable from outside the class; dunders are
    # invoked by the runtime.  Neither can be proven from internal
    # evidence alone.
    candidates = {
        name for name in methods
        if name.startswith("_") and not name.startswith("__")
    }
    escaped = _escaped_methods(cls, candidates)
    for name in sorted(escaped):
        proof.unproven[name] = "escapes as a value (referenced without a call)"
    sites = _call_sites_by_callee(cls, locks)

    proven: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in sorted(candidates - proven - escaped):
            calls = sites.get(name, [])
            if not calls:
                continue
            if all(
                locked or caller == "__init__" or caller in proven
                for caller, locked in calls
            ):
                proven.add(name)
                changed = True
    for name in sorted(proven):
        count = len(sites[name])
        proof.proven[name] = (
            f"all {count} internal call site(s) hold the lock "
            f"(lexically, via __init__, or via a proven caller)"
        )
    for name in sorted(candidates - proven - escaped):
        calls = sites.get(name, [])
        if not calls:
            proof.unproven[name] = "no internal call sites (cannot prove)"
        else:
            unlocked = [c for c, locked in calls if not locked]
            proof.unproven[name] = (
                f"called without the lock from {', '.join(sorted(set(unlocked)))}"
            )
    return proof


def proven_lock_held(cls: ast.ClassDef, locks: Optional[Set[str]] = None) -> Set[str]:
    """Method names of ``cls`` proven to always run with the lock held."""
    if locks is None:
        locks = _lock_attributes(cls)
    return set(analyze_class_escapes(cls, locks).proven)


# ---------------------------------------------------------------------------
# REPRO220 — global lock-acquisition-order graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LockEdge:
    """``holder`` is held when ``acquired`` is (or may be) taken."""

    holder: str                   # lock id: module.Class.<attr>
    acquired: str
    path: str                     # display path of the acquisition site
    line: int
    symbol: str


class LockOrderAnalysis:
    """Builds the lock graph over a project call graph and finds cycles."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.edges: Dict[Tuple[str, str], LockEdge] = {}
        self._locks_memo: Dict[str, Set[str]] = {}
        self._callee_index: Dict[int, str] = {
            id(site.node): site.callee for site in self.graph.calls
        }

    # -- lock identity --------------------------------------------------------

    def _lock_id(self, qualname: str, stmt: ast.With) -> Optional[str]:
        fn = self.graph.function(qualname)
        if fn is None or not fn.cls:
            return None
        cls = self.graph.classes.get(f"{fn.module}.{fn.cls}")
        if cls is None:
            return None
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in cls.lock_attrs
            ):
                return f"{cls.qualname}.{expr.attr}"
        return None

    # -- transitive acquisition -----------------------------------------------

    def locks_acquired(self, qualname: str) -> Set[str]:
        """Every lock ``qualname`` may acquire, directly or via project
        calls (memoized; cycles contribute nothing extra)."""
        memoized = self._locks_memo.get(qualname)
        if memoized is not None:
            return memoized
        self._locks_memo[qualname] = set()  # cycle guard
        fn = self.graph.function(qualname)
        acquired: Set[str] = set()
        if fn is not None:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.With):
                    lock = self._lock_id(qualname, node)
                    if lock is not None:
                        acquired.add(lock)
            for callee in self.graph.callees_of(qualname):
                acquired |= self.locks_acquired(callee)
        self._locks_memo[qualname] = acquired
        return acquired

    # -- edge collection ------------------------------------------------------

    def _add_edge(self, edge: LockEdge) -> None:
        if edge.holder == edge.acquired:
            return  # RLock re-entry; not an ordering hazard
        self.edges.setdefault((edge.holder, edge.acquired), edge)

    def _walk(
        self,
        body: Sequence[ast.stmt],
        qualname: str,
        module: ModuleInfo,
        held: Tuple[str, ...],
    ) -> None:
        for stmt in body:
            inner = held
            if isinstance(stmt, ast.With):
                lock = self._lock_id(qualname, stmt)
                if lock is not None:
                    for holder in held:
                        self._add_edge(LockEdge(
                            holder=holder,
                            acquired=lock,
                            path=module.display_path,
                            line=stmt.lineno,
                            symbol=_symbol_of(qualname),
                        ))
                    inner = held + (lock,)
            if held:
                for expr in _own_exprs(stmt):
                    for call in ast.walk(expr):
                        if not isinstance(call, ast.Call):
                            continue
                        callee = self._callee_index.get(id(call))
                        if callee is None:
                            continue
                        for lock in self.locks_acquired(callee):
                            for holder in held:
                                self._add_edge(LockEdge(
                                    holder=holder,
                                    acquired=lock,
                                    path=module.display_path,
                                    line=call.lineno,
                                    symbol=_symbol_of(qualname),
                                ))
            for field_name in ("body", "orelse", "finalbody"):
                children = getattr(stmt, field_name, None)
                if children:
                    self._walk(children, qualname, module, inner)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._walk(handler.body, qualname, module, held)

    def build(self) -> "LockOrderAnalysis":
        for fn in self.graph.functions.values():
            module = self.graph.modules.get(fn.module)
            if module is None:
                continue
            self._walk(fn.node.body, fn.qualname, module, ())
        return self

    # -- cycle detection ------------------------------------------------------

    def cycles(self) -> List[Tuple[str, ...]]:
        """Strongly connected components with >= 2 locks, canonically
        ordered (rotated so the smallest lock id leads)."""
        adjacency: Dict[str, Set[str]] = {}
        for holder, acquired in self.edges:
            adjacency.setdefault(holder, set()).add(acquired)
            adjacency.setdefault(acquired, set())
        sccs = _tarjan(adjacency)
        out: List[Tuple[str, ...]] = []
        for component in sccs:
            if len(component) >= 2:
                out.append(tuple(sorted(component)))
        return sorted(out)

    def check(self) -> List[Finding]:
        findings: List[Finding] = []
        for cycle in self.cycles():
            anchor = self._anchor_for(cycle)
            chain = " -> ".join((*cycle, cycle[0]))
            if anchor is not None and self.graph.modules.get(
                _module_of_path(self.graph, anchor.path)
            ) is not None:
                module = self.graph.modules[
                    _module_of_path(self.graph, anchor.path)
                ]
                if self.graph.suppressed(module, anchor.line, RULE_ORDER):
                    continue
            findings.append(Finding(
                rule=RULE_ORDER,
                path=anchor.path if anchor else "<project>",
                line=anchor.line if anchor else 0,
                symbol=anchor.symbol if anchor else "",
                message=(
                    f"lock-order cycle (potential deadlock): {chain}; "
                    f"acquire these locks in one global order"
                ),
            ))
        return findings

    def _anchor_for(self, cycle: Tuple[str, ...]) -> Optional[LockEdge]:
        members = set(cycle)
        best: Optional[LockEdge] = None
        for (holder, acquired), edge in sorted(self.edges.items()):
            if holder in members and acquired in members:
                if best is None:
                    best = edge
        return best


def _symbol_of(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


def _module_of_path(graph: CallGraph, path: str) -> str:
    for name, module in graph.modules.items():
        if module.display_path == path:
            return name
    return ""


def _tarjan(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC (no recursion limit surprises)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(adjacency):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(adjacency[root])))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def check_lock_order(graph: CallGraph) -> List[Finding]:
    """Run the REPRO220 pass over a built call graph."""
    return LockOrderAnalysis(graph).build().check()


__all__ = [
    "EscapeProof",
    "LockEdge",
    "LockOrderAnalysis",
    "RULE_ORDER",
    "analyze_class_escapes",
    "check_lock_order",
    "proven_lock_held",
]
