"""Static artifact verifiers: check load-bearing JSON without executing it.

Everything the system persists — :class:`~repro.compile.artifact.PlanArtifact`
files, :class:`~repro.faults.scenario.FaultScenario` files — and
everything it ships in-process — :class:`~repro.hardware.specs.DeviceSpec`
catalogs, :class:`~repro.nn.graph.NetworkGraph` models — carries
invariants that were previously enforced only at runtime, deep inside
the simulator.  These verifiers check them *up front*:

Plan artifacts (``repro check-plan``):

* schema / version / content-checksum validity (REPRO301/302);
* every partition fraction in its legal range — split in (0, 1), CPU
  exactly 1, GPU exactly 0 (REPRO303, the Eq. 1-4 contract);
* the allocation table covers every buffer of the named network exactly
  once, no extras, no misses (REPRO304);
* zero-copy (MANAGED) allocations only on unified-memory devices
  (REPRO305);
* the named device's roofline is consistent — positive peak FLOPs and
  bandwidth, finite arithmetic-intensity breakpoints (REPRO308);
* the named network's dataflow re-verifies — every layer's input shape
  is produced by a predecessor (REPRO309).

Fault scenarios:

* schema / version / probability ranges (REPRO301/307);
* fault windows of the same kind must not overlap (REPRO306).

Plan stores (``repro check-plan <store-dir>``):

* manifest schema / version / entry structure (REPRO310);
* every entry's object exists, hashes to its content address, carries
  a valid payload checksum, and embeds the entry's key (REPRO311);
* objects not referenced by any manifest entry are orphans (REPRO312,
  warning — recoverable via ``PlanStore.rebuild``);
* producer fingerprints that no longer match the current DeviceSpec /
  cost-model build are stale (REPRO313, warning — the store serves
  them as misses until swept).

Every check returns :class:`~repro.analysis.findings.Finding` records
rather than raising, so one corrupt file yields a complete diagnosis.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from ..compile.artifact import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    PlanArtifact,
    payload_checksum,
)
from ..core.plan import Assignment, ExecutionPlan
from ..core.plan_cache import PlanKey
from ..errors import ReproError
from ..faults.scenario import (
    SCENARIO_SCHEMA,
    FaultScenario,
)
from ..hardware.memory import AllocKind
from ..hardware.specs import DeviceSpec
from ..nn.graph import NetworkGraph
from .findings import Finding

RULE_SCHEMA = "REPRO301"
RULE_CHECKSUM = "REPRO302"
RULE_FRACTION = "REPRO303"
RULE_ALLOC_COVERAGE = "REPRO304"
RULE_ZERO_COPY = "REPRO305"
RULE_WINDOWS = "REPRO306"
RULE_PROBABILITY = "REPRO307"
RULE_ROOFLINE = "REPRO308"
RULE_DATAFLOW = "REPRO309"
RULE_STORE_SCHEMA = "REPRO310"
RULE_STORE_OBJECT = "REPRO311"
RULE_STORE_ORPHAN = "REPRO312"
RULE_STORE_STALE = "REPRO313"

_SHA256_HEX = 64


def _finding(rule: str, path: str, message: str, symbol: str = "") -> Finding:
    return Finding(rule=rule, path=path, message=message, symbol=symbol)


def _device_catalog() -> Mapping[str, DeviceSpec]:
    from ..hardware.specs import DEVICE_CATALOG
    from ..hardware.variants import VARIANT_CATALOG

    catalog: Dict[str, DeviceSpec] = dict(DEVICE_CATALOG)
    catalog.update(VARIANT_CATALOG)
    return catalog


def _build_network(name: str) -> Optional[NetworkGraph]:
    from ..nn.models import MODEL_BUILDERS, build

    if name not in MODEL_BUILDERS:
        return None
    return build(name)


# ---------------------------------------------------------------------------
# Device specs
# ---------------------------------------------------------------------------

def verify_device_spec(spec: DeviceSpec, *, path: str = "") -> List[Finding]:
    """Roofline consistency of one device spec."""
    label = path or f"device:{spec.name}"
    out: List[Finding] = []
    processors = [("cpu", spec.cpu)]
    if spec.gpu is not None:
        processors.append(("gpu", spec.gpu))
    for kind, proc in processors:
        if not (proc.peak_flops > 0 and math.isfinite(proc.peak_flops)):
            out.append(_finding(
                RULE_ROOFLINE, label,
                f"{kind} peak_flops must be positive and finite, got "
                f"{proc.peak_flops!r}", symbol=spec.name,
            ))
        bandwidth = spec.stream_bandwidth(proc)
        if not (bandwidth > 0 and math.isfinite(bandwidth)):
            out.append(_finding(
                RULE_ROOFLINE, label,
                f"{kind} stream bandwidth must be positive and finite, got "
                f"{bandwidth!r}", symbol=spec.name,
            ))
    if not out:
        for kind, breakpoint_ai in spec.roofline_breakpoints().items():
            if not (breakpoint_ai > 0 and math.isfinite(breakpoint_ai)):
                out.append(_finding(
                    RULE_ROOFLINE, label,
                    f"{kind} arithmetic-intensity breakpoint must be "
                    f"finite and positive, got {breakpoint_ai!r}",
                    symbol=spec.name,
                ))
    if not (spec.memory.bandwidth > 0 and math.isfinite(spec.memory.bandwidth)):
        out.append(_finding(
            RULE_ROOFLINE, label,
            f"memory bandwidth must be positive and finite, got "
            f"{spec.memory.bandwidth!r}", symbol=spec.name,
        ))
    return out


# ---------------------------------------------------------------------------
# Network graphs
# ---------------------------------------------------------------------------

def verify_network_graph(net: NetworkGraph, *, path: str = "") -> List[Finding]:
    """Dataflow re-verification of one network DAG."""
    label = path or f"network:{net.name}"
    out: List[Finding] = []
    try:
        problems = net.verify_dataflow()
    except ReproError as exc:
        return [_finding(RULE_DATAFLOW, label, str(exc), symbol=net.name)]
    for problem in problems:
        out.append(_finding(RULE_DATAFLOW, label, problem, symbol=net.name))
    return out


# ---------------------------------------------------------------------------
# Plan artifacts
# ---------------------------------------------------------------------------

def _verify_plan_payload(data: Mapping[str, object], path: str) -> List[Finding]:
    """Structural checks on the raw payload (no model/device resolution)."""
    out: List[Finding] = []
    schema = data.get("schema")
    if schema != ARTIFACT_SCHEMA:
        out.append(_finding(
            RULE_SCHEMA, path,
            f"not a plan artifact: schema={schema!r}, expected "
            f"{ARTIFACT_SCHEMA!r}",
        ))
        return out
    version = data.get("version")
    if version != ARTIFACT_VERSION:
        out.append(_finding(
            RULE_SCHEMA, path,
            f"unsupported plan-artifact version {version!r} (this build "
            f"reads {ARTIFACT_VERSION})",
        ))
    recorded = data.get("checksum")
    if recorded is None:
        out.append(_finding(
            RULE_CHECKSUM, path,
            "artifact has no content checksum; regenerate it with this "
            "build", symbol="checksum",
        ))
    else:
        expected = payload_checksum(data)
        if recorded != expected:
            out.append(_finding(
                RULE_CHECKSUM, path,
                f"checksum mismatch: recorded {str(recorded)[:12]}…, "
                f"content hashes to {expected[:12]}… (corrupt or "
                f"hand-edited file)", symbol="checksum",
            ))
    for section in ("key", "plan"):
        if not isinstance(data.get(section), Mapping):
            out.append(_finding(
                RULE_SCHEMA, path,
                f"artifact is missing its {section!r} section",
                symbol=section,
            ))
    return out


def _verify_fractions(
    plan_data: Mapping[str, object], path: str
) -> List[Finding]:
    """Eq. 1-4 contract on the raw layer records."""
    out: List[Finding] = []
    records = plan_data.get("layers")
    if not isinstance(records, list):
        return [_finding(
            RULE_SCHEMA, path, "plan section has no layer list",
            symbol="plan.layers",
        )]
    for record in records:
        if not isinstance(record, Mapping):
            out.append(_finding(
                RULE_SCHEMA, path,
                f"malformed layer record {record!r}", symbol="plan.layers",
            ))
            continue
        layer = str(record.get("layer", "?"))
        assignment = record.get("assignment")
        try:
            fraction = float(record.get("cpu_fraction", 0.0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            out.append(_finding(
                RULE_FRACTION, path,
                f"layer {layer!r} has non-numeric cpu_fraction "
                f"{record.get('cpu_fraction')!r}", symbol=layer,
            ))
            continue
        if not 0.0 <= fraction <= 1.0 or not math.isfinite(fraction):
            out.append(_finding(
                RULE_FRACTION, path,
                f"layer {layer!r} partition fraction {fraction!r} outside "
                f"[0, 1]", symbol=layer,
            ))
        elif assignment == Assignment.SPLIT.value and not 0.0 < fraction < 1.0:
            out.append(_finding(
                RULE_FRACTION, path,
                f"split layer {layer!r} needs cpu_fraction strictly inside "
                f"(0, 1), got {fraction!r}", symbol=layer,
            ))
        elif assignment == Assignment.CPU.value and fraction not in (0.0, 1.0):
            out.append(_finding(
                RULE_FRACTION, path,
                f"cpu layer {layer!r} implies fraction 1, got {fraction!r}",
                symbol=layer,
            ))
        elif assignment == Assignment.GPU.value and fraction != 0.0:
            out.append(_finding(
                RULE_FRACTION, path,
                f"gpu layer {layer!r} implies fraction 0, got {fraction!r}",
                symbol=layer,
            ))
    return out


def _verify_semantics(
    key: PlanKey, plan: ExecutionPlan, path: str
) -> List[Finding]:
    """Cross-checks against the named network and device."""
    out: List[Finding] = []
    catalog = _device_catalog()
    device = catalog.get(key.device)
    if device is None:
        out.append(Finding(
            rule=RULE_SCHEMA, path=path, severity="warning",
            message=(
                f"device {key.device!r} is not in the catalog; "
                f"device-dependent checks skipped"
            ), symbol="key.device",
        ))
    else:
        out.extend(verify_device_spec(device, path=path))
        managed = [
            name for name, kind in plan.alloc.items()
            if kind is AllocKind.MANAGED
        ]
        if managed and not device.is_integrated:
            out.append(_finding(
                RULE_ZERO_COPY, path,
                f"{len(managed)} zero-copy (managed) allocations on "
                f"{key.device!r}, which has no unified memory "
                f"(first: {managed[0]!r})", symbol="plan.alloc",
            ))
    net = _build_network(key.network)
    if net is None:
        out.append(Finding(
            rule=RULE_SCHEMA, path=path, severity="warning",
            message=(
                f"network {key.network!r} is not a catalog model; "
                f"coverage checks skipped"
            ), symbol="key.network",
        ))
        return out
    out.extend(verify_network_graph(net, path=path))
    placed = set(plan.layers)
    expected_layers = set(net.topo_order())
    for missing in sorted(expected_layers - placed):
        out.append(_finding(
            RULE_ALLOC_COVERAGE, path,
            f"layer {missing!r} of {key.network!r} has no placement in "
            f"the plan", symbol="plan.layers",
        ))
    for extra in sorted(placed - expected_layers):
        out.append(_finding(
            RULE_ALLOC_COVERAGE, path,
            f"plan places unknown layer {extra!r} (not in "
            f"{key.network!r})", symbol="plan.layers",
        ))
    if device is not None:
        from ..core.memory_manager import MemoryPlacer

        catalog_buffers = set(MemoryPlacer(net, device).buffer_catalog())
        allocated = set(plan.alloc)
        for missing in sorted(catalog_buffers - allocated):
            out.append(_finding(
                RULE_ALLOC_COVERAGE, path,
                f"buffer {missing!r} has no allocation decision",
                symbol="plan.alloc",
            ))
        for extra in sorted(allocated - catalog_buffers):
            out.append(_finding(
                RULE_ALLOC_COVERAGE, path,
                f"allocation table names unknown buffer {extra!r}",
                symbol="plan.alloc",
            ))
    return out


def verify_plan_artifact_data(
    data: Mapping[str, object], *, path: str = "plan-artifact",
) -> List[Finding]:
    """Verify a plan-artifact payload dict without executing it."""
    out = _verify_plan_payload(data, path)
    if any(f.rule == RULE_SCHEMA and f.severity == "error" for f in out):
        return out
    plan_data = data.get("plan")
    if isinstance(plan_data, Mapping):
        out.extend(_verify_fractions(plan_data, path))
    if any(f.severity == "error" for f in out):
        return out
    # The payload is structurally sound: parse it and cross-check.
    try:
        artifact = PlanArtifact.from_dict(data)
    except ReproError as exc:
        out.append(_finding(RULE_SCHEMA, path, str(exc)))
        return out
    out.extend(_verify_semantics(artifact.key, artifact.plan, path))
    return out


# ---------------------------------------------------------------------------
# Fault scenarios
# ---------------------------------------------------------------------------

def verify_fault_scenario_data(
    data: Mapping[str, object], *, path: str = "fault-scenario",
) -> List[Finding]:
    """Verify a fault-scenario payload dict without running it."""
    out: List[Finding] = []
    schema = data.get("schema")
    if schema != SCENARIO_SCHEMA:
        return [_finding(
            RULE_SCHEMA, path,
            f"not a fault scenario: schema={schema!r}, expected "
            f"{SCENARIO_SCHEMA!r}",
        )]
    for label in ("kernel_failure_p", "payload_corrupt_p",
                  "artifact_corrupt_p", "worker_crash_p"):
        raw = data.get(label, 0.0)
        try:
            p = float(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            out.append(_finding(
                RULE_PROBABILITY, path,
                f"{label} must be numeric, got {raw!r}", symbol=label,
            ))
            continue
        if not 0.0 <= p <= 1.0:
            out.append(_finding(
                RULE_PROBABILITY, path,
                f"{label} must be a probability in [0, 1], got {p!r}",
                symbol=label,
            ))
    if out:
        return out
    try:
        scenario = FaultScenario.from_dict(data)
    except ReproError as exc:
        out.append(_finding(RULE_SCHEMA, path, str(exc)))
        return out
    for problem in scenario.overlapping_windows():
        out.append(_finding(
            RULE_WINDOWS, path, problem, symbol=scenario.name,
        ))
    return out


def verify_fault_scenario(
    scenario: FaultScenario, *, path: str = "",
) -> List[Finding]:
    """Verify an in-memory scenario (used for the built-in catalog)."""
    label = path or f"scenario:{scenario.name}"
    return [
        _finding(RULE_WINDOWS, label, problem, symbol=scenario.name)
        for problem in scenario.overlapping_windows()
    ]


# ---------------------------------------------------------------------------
# Plan stores
# ---------------------------------------------------------------------------

def _entry_shape_problems(record: Mapping[str, object]) -> List[str]:
    """Structural problems with one manifest entry record."""
    problems: List[str] = []
    key = record.get("key")
    if not isinstance(key, Mapping):
        problems.append(f"entry key must be an object, got {key!r}")
    sha = record.get("sha256")
    if not (
        isinstance(sha, str)
        and len(sha) == _SHA256_HEX
        and all(c in "0123456789abcdef" for c in sha)
    ):
        problems.append(f"entry sha256 must be {_SHA256_HEX} hex chars, got {sha!r}")
    fingerprints = record.get("fingerprints")
    if not isinstance(fingerprints, Mapping):
        problems.append(
            f"entry fingerprints must be an object, got {fingerprints!r}"
        )
    return problems


def verify_plan_store(root: Union[str, Path]) -> List[Finding]:
    """Verify a :class:`~repro.store.plan_store.PlanStore` directory.

    Checks the manifest's schema/version and entry structure (REPRO310),
    re-hashes every referenced object against its content address and
    re-validates its embedded artifact + key (REPRO311), reports objects
    no manifest entry references (REPRO312, warning — ``rebuild()``
    re-indexes them), and compares recorded producer fingerprints with
    the current DeviceSpec / cost-model build (REPRO313, warning — the
    store already serves such entries as stale misses).
    """
    from ..fsutil import TMP_SUFFIX, sha256_text
    from ..store.fingerprint import cost_model_fingerprint, device_fingerprint_for
    from ..store.plan_store import (
        MANIFEST_NAME,
        OBJECTS_DIR,
        STORE_SCHEMA,
        STORE_VERSION,
    )

    store_root = Path(root)
    manifest_path = store_root / MANIFEST_NAME
    display = str(manifest_path)
    out: List[Finding] = []
    if not manifest_path.is_file():
        return [_finding(
            RULE_STORE_SCHEMA, str(store_root),
            f"no {MANIFEST_NAME} here — not a plan store "
            f"(or one that never completed a write)",
        )]
    try:
        data = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [_finding(
            RULE_STORE_SCHEMA, display, f"manifest unreadable: {exc}",
        )]
    if not isinstance(data, Mapping):
        return [_finding(
            RULE_STORE_SCHEMA, display, "manifest top level must be an object",
        )]
    schema = data.get("schema")
    if schema != STORE_SCHEMA:
        out.append(_finding(
            RULE_STORE_SCHEMA, display,
            f"manifest schema is {schema!r} (expected {STORE_SCHEMA!r})",
        ))
        return out
    version = data.get("version")
    if version != STORE_VERSION:
        out.append(_finding(
            RULE_STORE_SCHEMA, display,
            f"manifest version {version!r} is not {STORE_VERSION} — "
            f"fingerprint semantics may have drifted across builds",
        ))
    entries = data.get("entries", {})
    if not isinstance(entries, Mapping):
        out.append(_finding(
            RULE_STORE_SCHEMA, display,
            f"manifest entries must be an object, got {type(entries).__name__}",
        ))
        return out

    current_cost_fp = cost_model_fingerprint()
    referenced: Dict[str, str] = {}
    for slug in sorted(str(s) for s in entries):
        record = entries[slug]
        if not isinstance(record, Mapping):
            out.append(_finding(
                RULE_STORE_SCHEMA, display,
                f"entry for {slug!r} must be an object, "
                f"got {type(record).__name__}",
                symbol=slug,
            ))
            continue
        problems = _entry_shape_problems(record)
        if problems:
            out.extend(
                _finding(RULE_STORE_SCHEMA, display, problem, symbol=slug)
                for problem in problems
            )
            continue
        sha = str(record["sha256"])
        referenced[sha] = slug
        object_path = store_root / OBJECTS_DIR / f"{sha}.json"
        object_display = str(object_path)
        try:
            text = object_path.read_text()
        except OSError:
            out.append(_finding(
                RULE_STORE_OBJECT, object_display,
                f"object for {slug!r} is missing — crashed writer or "
                f"manual deletion; the store treats this entry as a miss",
                symbol=slug,
            ))
            continue
        actual = sha256_text(text)
        if actual != sha:
            out.append(_finding(
                RULE_STORE_OBJECT, object_display,
                f"object bytes hash to {actual[:12]}… but the address "
                f"says {sha[:12]}… — content-address violation "
                f"(corrupt write); the store quarantines this on read",
                symbol=slug,
            ))
            continue
        try:
            artifact = PlanArtifact.from_json(text)
        except ReproError as exc:
            out.append(_finding(
                RULE_STORE_OBJECT, object_display,
                f"object for {slug!r} is not a valid plan artifact: {exc}",
                symbol=slug,
            ))
            continue
        if artifact.key.slug() != slug:
            out.append(_finding(
                RULE_STORE_OBJECT, object_display,
                f"object embeds key {artifact.key.slug()!r} but the "
                f"manifest indexes it as {slug!r}",
                symbol=slug,
            ))
        fingerprints = record.get("fingerprints")
        recorded_device = ""
        recorded_cost = ""
        if isinstance(fingerprints, Mapping):
            recorded_device = str(fingerprints.get("device", ""))
            recorded_cost = str(fingerprints.get("cost_model", ""))
        current_device = device_fingerprint_for(artifact.key.device)
        if recorded_device and current_device and recorded_device != current_device:
            out.append(Finding(
                rule=RULE_STORE_STALE, path=display, severity="warning",
                message=(
                    f"entry {slug!r} was tuned against a different "
                    f"{artifact.key.device!r} spec (device fingerprint "
                    f"drift); sweep_stale() or re-tune"
                ),
                symbol=slug,
            ))
        if recorded_cost and recorded_cost != current_cost_fp:
            out.append(Finding(
                rule=RULE_STORE_STALE, path=display, severity="warning",
                message=(
                    f"entry {slug!r} predates the current cost-model "
                    f"calibration (cost-model fingerprint drift); "
                    f"sweep_stale() or re-tune"
                ),
                symbol=slug,
            ))

    objects_dir = store_root / OBJECTS_DIR
    if objects_dir.is_dir():
        for object_path in sorted(objects_dir.glob("*.json")):
            if object_path.stem not in referenced:
                out.append(Finding(
                    rule=RULE_STORE_ORPHAN, path=str(object_path),
                    severity="warning",
                    message=(
                        "object is not referenced by any manifest entry "
                        "(interrupted registration?); PlanStore.rebuild() "
                        "re-indexes it"
                    ),
                ))
        for tmp_path in sorted(objects_dir.glob(f"*{TMP_SUFFIX}")):
            out.append(Finding(
                rule=RULE_STORE_ORPHAN, path=str(tmp_path),
                severity="warning",
                message=(
                    "torn temporary write left behind by a crashed "
                    "worker; PlanStore.sweep_tmp() collects it"
                ),
            ))
    return out


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

def verify_artifact_file(path: Union[str, Path]) -> List[Finding]:
    """Verify one path, dispatching on its JSON ``schema`` field.

    Accepts plan artifacts, fault scenarios, and plan-store manifests;
    a directory is treated as a plan-store root.  Anything else (or a
    file that is not JSON at all) is itself a finding.
    """
    file_path = Path(path)
    display = str(path)
    if file_path.is_dir():
        return verify_plan_store(file_path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {display}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        return [_finding(RULE_SCHEMA, display, f"not valid JSON: {exc}")]
    if not isinstance(data, Mapping):
        return [_finding(RULE_SCHEMA, display, "top level must be an object")]
    schema = data.get("schema")
    if schema == ARTIFACT_SCHEMA:
        return verify_plan_artifact_data(data, path=display)
    if schema == SCENARIO_SCHEMA:
        return verify_fault_scenario_data(data, path=display)
    from ..store.plan_store import STORE_SCHEMA
    if schema == STORE_SCHEMA:
        return verify_plan_store(file_path.parent)
    return [_finding(
        RULE_SCHEMA, display,
        f"unknown schema {schema!r}; verifiable schemas are "
        f"{ARTIFACT_SCHEMA!r}, {SCENARIO_SCHEMA!r}, and {STORE_SCHEMA!r}",
    )]


def verify_catalogs() -> List[Finding]:
    """Statically verify everything the package ships in-process:
    every device spec, every built-in fault scenario, every catalog
    model's dataflow."""
    from ..faults.scenario import SCENARIO_CATALOG
    from ..nn.models import MODEL_BUILDERS, build

    out: List[Finding] = []
    for spec in _device_catalog().values():
        out.extend(verify_device_spec(spec))
    for scenario in SCENARIO_CATALOG.values():
        out.extend(verify_fault_scenario(scenario))
    for name in MODEL_BUILDERS:
        out.extend(verify_network_graph(build(name)))
    return out


__all__ = [
    "verify_artifact_file",
    "verify_catalogs",
    "verify_device_spec",
    "verify_fault_scenario",
    "verify_fault_scenario_data",
    "verify_network_graph",
    "verify_plan_artifact_data",
    "verify_plan_store",
]
