"""REPRO23x — durability discipline for store/plan/manifest/lease files.

PR 9's crash-safety story (torn-write chaos tests, killed-coordinator
restarts) only holds if **every durable artifact goes through
:func:`repro.fsutil.atomic_write_text`** — tmp sibling, ``fsync``, then
``os.replace``.  A single raw ``write_text`` in the store or the tuning
queue re-opens the torn-file window those tests closed.  This pass
makes the discipline structural:

* **REPRO230** — a raw write sink in durability scope:
  ``open(..., "w"/"a")``, ``<path>.write_text(...)`` /
  ``write_bytes(...)``, or ``json.dump(obj, handle)``.  Replace with
  ``atomic_write_text`` (serialize first, write once).
* **REPRO231** — a hand-rolled "atomic" rename: a function that both
  writes a file and ``os.replace``/``os.rename``/``Path.replace``-s it
  without an ``os.fsync`` in between.  A crash between the write and
  the rename publishes an empty or torn file on some filesystems; the
  fix is, again, ``atomic_write_text``.

Scope: the packages whose files survive a process (``store``,
``tuning``) plus the known durable-artifact modules elsewhere
(plan cache, analysis baseline, fault scenarios/injector, compiled
plan artifacts).  :mod:`repro.fsutil` itself is exempt — it is the
sink the rule points at.  Deliberate torn writes in chaos-injection
code carry ``# repro-analysis: ignore[REPRO230]`` pragmas.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from .callgraph import CallGraph, ModuleInfo, _spelled_name
from .findings import Finding
from .lint import enclosing_symbols

RULE_RAW_WRITE = "REPRO230"
RULE_RENAME_NO_FSYNC = "REPRO231"

#: Path parts whose files are durable artifacts.
DURABILITY_PARTS: Set[str] = {"store", "tuning"}
#: Specific durable-artifact modules outside those parts.
DURABILITY_FILES: Set[str] = {
    "plan_cache.py", "baseline.py", "scenario.py", "injector.py",
    "artifact.py",
}
#: Modules exempt by name — the atomic sink implementation itself.
EXEMPT_MODULES: Set[str] = {"fsutil"}

_WRITE_MODES = ("w", "a", "x")
_PATH_WRITERS = {"write_text", "write_bytes"}
_RENAMERS = {"os.rename", "os.replace"}


def in_durability_scope(module: ModuleInfo) -> bool:
    path = module.ctx.path
    if module.name.rsplit(".", 1)[-1] in EXEMPT_MODULES:
        return False
    return (
        bool(DURABILITY_PARTS.intersection(path.parts))
        or path.name in DURABILITY_FILES
    )


def _open_write_mode(call: ast.Call, canonical: str) -> bool:
    """Is this an ``open(...)`` (or ``os.open``-free builtin) for writing?"""
    if canonical not in ("open", "io.open"):
        return False
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in mode.value for flag in _WRITE_MODES)
    return True  # dynamic mode: assume the worst


def _is_path_write(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _PATH_WRITERS:
        return func.attr
    return None


def _is_json_dump(canonical: str) -> bool:
    return canonical == "json.dump"


def _is_rename(call: ast.Call, canonical: str) -> bool:
    if canonical in _RENAMERS:
        return True
    func = call.func
    # Path.replace / Path.rename take exactly one positional target;
    # str.replace takes two — the arity keeps string munging out.
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("replace", "rename")
        and len(call.args) == 1
        and not call.keywords
    ):
        return True
    return False


def _canonical(call: ast.Call, module: ModuleInfo) -> str:
    spelled = _spelled_name(call.func)
    if spelled is None:
        return ""
    head, _, rest = spelled.partition(".")
    target = module.aliases.get(head, head)
    return f"{target}.{rest}" if rest else target


def _function_bodies(
    tree: ast.Module,
) -> Iterator[Sequence[ast.stmt]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _calls_in(body: Sequence[ast.stmt]) -> Iterator[ast.Call]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node


class DurabilityAnalysis:
    """Per-module sink scan + per-function rename/fsync pairing."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    def check(self) -> List[Finding]:
        findings: List[Finding] = []
        for _, module in sorted(self.graph.modules.items()):
            if not in_durability_scope(module):
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        symbols = enclosing_symbols(module.tree)

        def emit(rule: str, node: ast.Call, message: str) -> None:
            line = node.lineno
            if self.graph.suppressed(module, line, rule):
                return
            findings.append(Finding(
                rule=rule,
                path=module.display_path,
                line=line,
                symbol=symbols.get(line, ""),
                message=message,
            ))

        # REPRO230: raw write sinks anywhere in the module.
        for call in ast.walk(module.tree):
            if not isinstance(call, ast.Call):
                continue
            canonical = _canonical(call, module)
            writer = _is_path_write(call)
            if writer is not None:
                emit(
                    RULE_RAW_WRITE, call,
                    f".{writer}() writes a durable file non-atomically; "
                    f"use fsutil.atomic_write_text",
                )
            elif _open_write_mode(call, canonical):
                emit(
                    RULE_RAW_WRITE, call,
                    'open(..., "w") writes a durable file non-atomically; '
                    "use fsutil.atomic_write_text",
                )
            elif _is_json_dump(canonical):
                emit(
                    RULE_RAW_WRITE, call,
                    "json.dump to a raw handle is non-atomic; "
                    "json.dumps + fsutil.atomic_write_text",
                )

        # REPRO231: per function, write + rename with no fsync between.
        for body in _function_bodies(module.tree):
            calls = list(_calls_in(body))
            wrote = any(
                _is_path_write(call) is not None
                or _open_write_mode(call, _canonical(call, module))
                for call in calls
            )
            fsynced = any(
                _canonical(call, module) == "os.fsync" for call in calls
            )
            if not wrote or fsynced:
                continue
            for call in calls:
                if _is_rename(call, _canonical(call, module)):
                    emit(
                        RULE_RENAME_NO_FSYNC, call,
                        "rename after write without os.fsync: a crash can "
                        "publish a torn file; use fsutil.atomic_write_text",
                    )
        return findings


def check_durability(graph: CallGraph) -> List[Finding]:
    """Run the REPRO23x pass over a built call graph."""
    return DurabilityAnalysis(graph).check()


__all__ = [
    "DURABILITY_FILES",
    "DURABILITY_PARTS",
    "DurabilityAnalysis",
    "RULE_RAW_WRITE",
    "RULE_RENAME_NO_FSYNC",
    "check_durability",
    "in_durability_scope",
]
