"""AST-based lint framework with repo-specific rules.

The rules encode invariants this codebase actually depends on:

* **REPRO101 — wall-clock call in virtual-clock code.**  Everything
  under ``sim/``, ``serving/``, ``faults/``, ``workloads/``,
  ``cluster/`` and the tuner runs on the *virtual* clock; a single
  ``time.time()`` there
  silently breaks replay determinism and the cross-process digest
  gates.
* **REPRO102 — unseeded randomness in virtual-clock code.**  Module
  level ``random.*`` and ``np.random.*`` draw from hidden global
  state; only explicitly seeded generators
  (``np.random.default_rng(seed)``) keep runs reproducible.
* **REPRO103 — bare ``except:``** and **REPRO104 — swallowed
  exception** in the engine and backends (``core/``, ``compile/``,
  ``baselines/``): resilience decisions must be explicit (retry,
  degrade, re-raise), never silent.
* **REPRO105 — provenance-free decision branch** in the tuner and the
  degradation manager: a public method that both branches and mutates
  state must leave a record in the provenance log (the "why did the
  plan change" audit trail the obs layer exists for).
* **REPRO106 — unit-suspicious numeric literal** outside ``units.py``:
  bare magnitudes like ``1e9`` or ``1024 ** 3`` are how GB-vs-GiB and
  FLOPs-vs-bytes bugs are born; spell them via :mod:`repro.units`.
* **REPRO110 — wall-clock call in timeline telemetry.**
  ``repro.obs.timeline`` sits under ``obs`` (outside REPRO101's scope)
  but produces sha256-digest-gated artifacts; wall-clock reads there
  break cross-process bit-identity only intermittently, so the module
  gets a dedicated rule.

Suppression: a trailing ``# repro-analysis: ignore[REPRO1xx]`` comment
silences one rule on that line; repo-wide intentional hits live in the
committed baseline file (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .. import units
from ..errors import ReproError
from .findings import Finding

#: Directories (path parts) whose code runs on the virtual clock.
#: ``tuning`` and ``store`` joined with the PR 9 fleet: their replay
#: determinism (byte-identical double-run manifests) depends on the
#: same no-wall-clock / no-hidden-RNG discipline.
VIRTUAL_CLOCK_PARTS: Set[str] = {
    "sim", "serving", "faults", "workloads", "cluster", "tuning", "store",
}
#: File names that run on the virtual clock wherever they live.
VIRTUAL_CLOCK_FILES: Set[str] = {"tuner.py"}
#: Path parts of the engine + execution backends (exception discipline).
ENGINE_PARTS: Set[str] = {"core", "compile", "baselines"}
#: File names whose decision branches must log provenance.
DECISION_FILES: Set[str] = {"tuner.py", "degradation.py"}

_IGNORE_RE = re.compile(r"#\s*repro-analysis:\s*ignore\[([A-Z0-9,\s]+)\]")

#: Wall-clock callables that must never run on virtual-clock paths.
WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: np.random attributes that are fine (explicitly seeded constructors).
_SEEDED_NP_FACTORIES: Set[str] = {"default_rng", "Generator", "SeedSequence"}
#: Names that mark a provenance-recording call site.
PROVENANCE_MARKERS: Set[str] = {
    "provenance",
    "_emit",
    "_record_partition",
    "record_partition",
    "record_placement",
    "record_degradation",
}
#: Container mutators whose receiver is shared state (concurrency rule
#: reuses this set).
MUTATING_METHODS: Set[str] = {
    "append", "extend", "insert", "add", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end",
}

#: Magnitudes that smell like hand-rolled unit conversions.  Expressed
#: through :mod:`repro.units` so this module never trips its own rule.
SUSPICIOUS_MAGNITUDES: Set[float] = {units.MB, units.GB, units.GB * 1000.0}
_POW_BASE = int(units.KIB)          # 1024 ** n
_SHIFT_MIN_BITS = 20                # 1 << 20 and up


@dataclass
class LintContext:
    """Everything a rule needs to know about one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    ignores: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def for_file(cls, path: Path, display_path: Optional[str] = None) -> "LintContext":
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ReproError(f"cannot parse {path}: {exc}") from exc
        ignores: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                ignores[lineno] = rules
        return cls(
            path=path,
            display_path=display_path or str(path),
            source=source,
            tree=tree,
            ignores=ignores,
        )

    # -- path categories ------------------------------------------------------

    @property
    def parts(self) -> Sequence[str]:
        return self.path.parts

    @property
    def is_units_module(self) -> bool:
        return self.path.name == "units.py"

    @property
    def is_virtual_clock(self) -> bool:
        return (
            bool(VIRTUAL_CLOCK_PARTS.intersection(self.parts))
            or self.path.name in VIRTUAL_CLOCK_FILES
        )

    @property
    def is_engine(self) -> bool:
        return bool(set(ENGINE_PARTS).intersection(self.parts))

    @property
    def is_decision_module(self) -> bool:
        return self.path.name in DECISION_FILES

    @property
    def is_analysis_module(self) -> bool:
        return "analysis" in self.parts

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.ignores.get(line, set())


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Map line number -> dotted enclosing def/class symbol."""
    spans: List[tuple] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end or child.lineno, name))
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    out: Dict[int, str] = {}
    # Inner (later, narrower) spans overwrite outer ones.
    for start, end, name in sorted(spans, key=lambda s: (s[0], -(s[1]))):
        for line in range(start, end + 1):
            out[line] = name
    return out


class LintRule:
    """Base class: one rule = one id + applicability + a check pass."""

    id: str = "REPRO000"
    title: str = ""

    def applies(self, ctx: LintContext) -> bool:  # pragma: no cover - trivial
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------

    def finding(
        self, ctx: LintContext, node: ast.AST, message: str,
        *, severity: str = "error",
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        symbol = enclosing_symbols(ctx.tree).get(line, "")
        return Finding(
            rule=self.id,
            path=ctx.display_path,
            line=line,
            symbol=symbol,
            message=message,
            severity=severity,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Alias -> canonical dotted name, from module-level imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _canonical_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call target, resolving import aliases."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical_head = aliases.get(head, head)
    return f"{canonical_head}.{rest}" if rest else canonical_head


class WallClockRule(LintRule):
    """REPRO101: wall-clock reads are forbidden on the virtual clock."""

    id = "REPRO101"
    title = "wall-clock call in virtual-clock code"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_virtual_clock

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {canonical}() in virtual-clock code; "
                    f"use the simulation timeline instead",
                )


class UnseededRandomRule(LintRule):
    """REPRO102: global-state RNG draws are forbidden on the virtual clock."""

    id = "REPRO102"
    title = "unseeded randomness in virtual-clock code"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_virtual_clock

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical is None:
                continue
            if canonical.startswith("random."):
                fn = canonical.split(".", 1)[1]
                if fn == "Random" and (node.args or node.keywords):
                    continue  # random.Random(seed) is reproducible
                yield self.finding(
                    ctx, node,
                    f"module-level {canonical}() draws from hidden global "
                    f"state; pass a seeded generator instead",
                )
            elif canonical.startswith("numpy.random."):
                fn = canonical.rsplit(".", 1)[1]
                if fn in _SEEDED_NP_FACTORIES:
                    if fn == "default_rng" and not (node.args or node.keywords):
                        yield self.finding(
                            ctx, node,
                            "np.random.default_rng() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                    continue
                yield self.finding(
                    ctx, node,
                    f"global np.random.{fn}() call; use a passed "
                    f"np.random.Generator (default_rng(seed))",
                )


class BareExceptRule(LintRule):
    """REPRO103: bare ``except:`` in engine/backends code."""

    id = "REPRO103"
    title = "bare except in engine/backend code"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_engine

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                    "name the exception family (ReproError subclasses)",
                )


def _body_is_noop(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


class SwallowedExceptionRule(LintRule):
    """REPRO104: an except block whose body does nothing at all."""

    id = "REPRO104"
    title = "swallowed exception in engine/backend code"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_engine

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _body_is_noop(node.body):
                caught = dotted_name(node.type) if node.type else "everything"
                yield self.finding(
                    ctx, node,
                    f"exception handler for {caught} swallows the error "
                    f"silently; log, degrade, or re-raise",
                )


def _assigns_attribute(node: ast.stmt) -> bool:
    """Does this statement mutate attribute state (x.y = / x.y += /
    x.y[k] = / self.attr.mutator())?"""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        func = node.value.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
        )
    else:
        return False
    for target in targets:
        if isinstance(target, ast.Attribute):
            return True
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            return True
        if isinstance(target, (ast.Tuple, ast.List)) and any(
            isinstance(el, ast.Attribute) for el in target.elts
        ):
            return True
    return False


class ProvenanceRule(LintRule):
    """REPRO105: decision branches must leave a provenance record.

    In the tuner and the degradation manager, a *public* function that
    both branches (``if``) and mutates attribute state is a decision
    point; it must reference the provenance log (directly or through a
    recording helper) so `repro trace` can explain the choice.
    """

    id = "REPRO105"
    title = "provenance-free decision branch"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_decision_module

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            has_branch = any(
                isinstance(n, ast.If) for n in ast.walk(node)
            )
            mutates = any(
                _assigns_attribute(n)
                for n in ast.walk(node)
                if isinstance(n, ast.stmt)
            )
            if not (has_branch and mutates):
                continue
            names = {
                n.attr for n in ast.walk(node) if isinstance(n, ast.Attribute)
            } | {
                n.id for n in ast.walk(node) if isinstance(n, ast.Name)
            }
            if names.intersection(PROVENANCE_MARKERS):
                continue
            yield self.finding(
                ctx, node,
                f"decision function {node.name}() branches and mutates "
                f"state without recording provenance; emit a decision "
                f"record (obs.provenance) on every taken branch",
            )


class UnitLiteralRule(LintRule):
    """REPRO106: bare magnitude literals outside units.py."""

    id = "REPRO106"
    title = "unit-suspicious numeric literal"

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_units_module and not ctx.is_analysis_module

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, (int, float)
            ) and not isinstance(node.value, bool):
                if float(node.value) in SUSPICIOUS_MAGNITUDES:
                    yield self.finding(
                        ctx, node,
                        f"bare magnitude {node.value:g}; spell it via "
                        f"repro.units (MB/GB/MEGA/GIGA/...) so the unit "
                        f"is explicit",
                    )
            elif isinstance(node, ast.BinOp):
                if (
                    isinstance(node.op, ast.Pow)
                    and isinstance(node.left, ast.Constant)
                    and node.left.value == _POW_BASE
                    and isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)
                    and node.right.value >= 2
                ):
                    yield self.finding(
                        ctx, node,
                        f"bare binary magnitude {_POW_BASE}**"
                        f"{node.right.value}; use repro.units.MIB/GIB",
                    )
                elif (
                    isinstance(node.op, ast.LShift)
                    and isinstance(node.left, ast.Constant)
                    and node.left.value == 1
                    and isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)
                    and node.right.value >= _SHIFT_MIN_BITS
                ):
                    yield self.finding(
                        ctx, node,
                        f"bare binary magnitude 1<<{node.right.value}; "
                        f"use repro.units.MIB/GIB",
                    )


class TimelineWallClockRule(LintRule):
    """REPRO110: wall-clock reads are forbidden in timeline telemetry.

    ``repro.obs.timeline`` lives under ``obs`` — deliberately outside
    ``VIRTUAL_CLOCK_PARTS``, so REPRO101 never scans it — yet its
    artifacts are digest-gated for cross-process bit-identity.  A single
    ``time.time()`` leaking into a window boundary or a meta field
    breaks that gate only intermittently (two fast runs can land in the
    same second), which is the worst way to break it; the timeline
    module therefore gets its own dedicated rule.
    """

    id = "REPRO110"
    title = "wall-clock call in timeline telemetry"

    def applies(self, ctx: LintContext) -> bool:
        return "obs" in ctx.parts and ctx.path.name == "timeline.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {canonical}() in repro.obs.timeline; "
                    f"timeline artifacts are digest-gated and must be a "
                    f"pure function of the virtual clock",
                )


#: Every registered lint rule, in id order.
ALL_RULES: Sequence[LintRule] = (
    WallClockRule(),
    UnseededRandomRule(),
    BareExceptRule(),
    SwallowedExceptionRule(),
    ProvenanceRule(),
    UnitLiteralRule(),
    TimelineWallClockRule(),
)


def rules_by_id(ids: Optional[Iterable[str]] = None) -> List[LintRule]:
    """Resolve rule ids (None = all); raises ReproError on unknown ids."""
    if ids is None:
        return list(ALL_RULES)
    known = {r.id: r for r in ALL_RULES}
    wanted = list(ids)
    unknown = [i for i in wanted if i not in known]
    if unknown:
        raise ReproError(
            f"unknown lint rules {unknown}; available: {sorted(known)}"
        )
    return [known[i] for i in wanted]


def lint_file(
    path: Path,
    rules: Optional[Sequence[LintRule]] = None,
    *,
    display_path: Optional[str] = None,
) -> List[Finding]:
    """Run the lint rules over one file."""
    ctx = LintContext.for_file(path, display_path)
    active = list(rules) if rules is not None else list(ALL_RULES)
    out: List[Finding] = []
    for rule in active:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                out.append(finding)
    return out


__all__ = [
    "ALL_RULES",
    "LintContext",
    "LintRule",
    "lint_file",
    "rules_by_id",
    "WALL_CLOCK_CALLS",
    "PROVENANCE_MARKERS",
    "MUTATING_METHODS",
    "SUSPICIOUS_MAGNITUDES",
]
