"""repro.analysis — domain-aware static analysis for this codebase.

Three complementary passes, all exposed through ``repro analyze`` and
``repro check-plan`` (and gated in CI):

* **Lint** (:mod:`repro.analysis.lint`) — AST rules encoding this
  repo's determinism and robustness contracts: no wall-clock or
  unseeded randomness in virtual-clock code, no bare/swallowed
  exceptions in the engine and backends, provenance records on tuner /
  degradation decision branches, no bare unit magnitudes outside
  :mod:`repro.units`.
* **Concurrency** (:mod:`repro.analysis.concurrency`) — shared-state
  mutations outside ``with self._lock`` in the threaded modules.
* **Verifiers** (:mod:`repro.analysis.verifiers`) — static validation
  of plan artifacts, fault scenarios, device specs, and network graphs
  *without executing them*: checksums, partition-fraction ranges,
  allocation coverage, zero-copy-implies-unified-memory, roofline
  consistency, window disjointness, and graph dataflow.

Intentional findings live in a committed baseline file
(:mod:`repro.analysis.baseline`) with per-entry justifications; anything
not baselined fails the run.  See ``docs/analysis.md``.
"""

from __future__ import annotations

from .baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    find_default_baseline,
)
from .concurrency import RULE_ID as CONCURRENCY_RULE_ID
from .findings import Finding, FindingCollector
from .lint import ALL_RULES, LintContext, LintRule, lint_file, rules_by_id
from .runner import AnalysisReport, analyze_paths, collect_python_files
from .verifiers import (
    verify_artifact_file,
    verify_catalogs,
    verify_device_spec,
    verify_fault_scenario,
    verify_fault_scenario_data,
    verify_network_graph,
    verify_plan_artifact_data,
    verify_plan_store,
)

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "CONCURRENCY_RULE_ID",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "FindingCollector",
    "LintContext",
    "LintRule",
    "analyze_paths",
    "collect_python_files",
    "find_default_baseline",
    "lint_file",
    "rules_by_id",
    "verify_artifact_file",
    "verify_catalogs",
    "verify_device_spec",
    "verify_fault_scenario",
    "verify_fault_scenario_data",
    "verify_network_graph",
    "verify_plan_artifact_data",
    "verify_plan_store",
]
