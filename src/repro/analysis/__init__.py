"""repro.analysis — domain-aware static analysis for this codebase.

Three complementary passes, all exposed through ``repro analyze`` and
``repro check-plan`` (and gated in CI):

* **Lint** (:mod:`repro.analysis.lint`) — AST rules encoding this
  repo's determinism and robustness contracts: no wall-clock or
  unseeded randomness in virtual-clock code, no bare/swallowed
  exceptions in the engine and backends, provenance records on tuner /
  degradation decision branches, no bare unit magnitudes outside
  :mod:`repro.units`.
* **Concurrency** (:mod:`repro.analysis.concurrency`) — shared-state
  mutations outside ``with self._lock`` in the threaded modules,
  sharpened by the per-class lock escape analysis in
  :mod:`repro.analysis.locks` (helpers proven to run with the lock
  held are exempt, not baselined).
* **Dataflow** (:mod:`repro.analysis.callgraph` +
  :mod:`repro.analysis.dataflow` / :mod:`repro.analysis.locks` /
  :mod:`repro.analysis.durability`) — interprocedural passes over a
  project-wide call graph: REPRO21x seed-taint (every RNG descends
  from an explicit seed), REPRO220 lock-acquisition-order cycles,
  REPRO23x durability discipline (durable writes go through
  ``fsutil.atomic_write_text``).
* **Protocol** (:mod:`repro.analysis.protocol`) — REPRO240, an
  exhaustive two-worker model check of the tuning lease protocol
  against the real :class:`~repro.tuning.queue.JobQueue`.
* **Verifiers** (:mod:`repro.analysis.verifiers`) — static validation
  of plan artifacts, fault scenarios, device specs, and network graphs
  *without executing them*: checksums, partition-fraction ranges,
  allocation coverage, zero-copy-implies-unified-memory, roofline
  consistency, window disjointness, and graph dataflow.

Intentional findings live in a committed baseline file
(:mod:`repro.analysis.baseline`) with per-entry justifications; anything
not baselined fails the run.  See ``docs/analysis.md``.
"""

from __future__ import annotations

from .baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    find_default_baseline,
)
from .callgraph import CallGraph, build_call_graph
from .concurrency import RULE_ID as CONCURRENCY_RULE_ID
from .dataflow import check_seed_taint
from .durability import check_durability
from .findings import Finding, FindingCollector
from .lint import ALL_RULES, LintContext, LintRule, lint_file, rules_by_id
from .locks import analyze_class_escapes, check_lock_order, proven_lock_held
from .protocol import LeaseModelChecker, check_lease_protocol
from .runner import (
    AnalysisReport,
    EXTRA_RULES,
    analyze_paths,
    collect_python_files,
    expand_rule_ids,
    known_rule_ids,
)
from .verifiers import (
    verify_artifact_file,
    verify_catalogs,
    verify_device_spec,
    verify_fault_scenario,
    verify_fault_scenario_data,
    verify_network_graph,
    verify_plan_artifact_data,
    verify_plan_store,
)

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "CONCURRENCY_RULE_ID",
    "CallGraph",
    "DEFAULT_BASELINE_NAME",
    "EXTRA_RULES",
    "Finding",
    "FindingCollector",
    "LeaseModelChecker",
    "LintContext",
    "LintRule",
    "analyze_class_escapes",
    "analyze_paths",
    "build_call_graph",
    "check_durability",
    "check_lease_protocol",
    "check_lock_order",
    "check_seed_taint",
    "collect_python_files",
    "expand_rule_ids",
    "find_default_baseline",
    "known_rule_ids",
    "lint_file",
    "proven_lock_held",
    "rules_by_id",
    "verify_artifact_file",
    "verify_catalogs",
    "verify_device_spec",
    "verify_fault_scenario",
    "verify_fault_scenario_data",
    "verify_network_graph",
    "verify_plan_artifact_data",
    "verify_plan_store",
]
