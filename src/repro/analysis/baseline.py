"""Baseline suppression: existing findings are explicit, new ones fail.

A freshly adopted analyzer always finds *something* in a living
codebase.  Instead of turning rules off, every intentional finding is
recorded in a committed baseline file with a one-line justification:

.. code-block:: json

    {
      "schema": "repro.analysis-baseline",
      "version": 1,
      "entries": [
        {
          "fingerprint": "0123abcd0123abcd",
          "rule": "REPRO201",
          "path": "src/repro/core/plan_cache.py",
          "symbol": "PlanCache._store",
          "justification": "documented call-with-lock-held helper"
        }
      ]
    }

The fingerprint (see :meth:`repro.analysis.findings.Finding.fingerprint`)
is line-number free, so unrelated edits don't invalidate the baseline;
changing the offending code *does*, which forces a fresh decision.
Entries that no longer match anything are reported as *stale* so the
file never accumulates dead weight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from ..errors import ReproError
from ..fsutil import atomic_write_text
from .findings import Finding

BASELINE_SCHEMA = "repro.analysis-baseline"
BASELINE_VERSION = 1
#: Conventional committed location (repo root).
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding and why it is acceptable."""

    fingerprint: str
    rule: str
    path: str
    symbol: str = ""
    justification: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BaselineEntry":
        try:
            return cls(
                fingerprint=str(data["fingerprint"]),
                rule=str(data["rule"]),
                path=str(data["path"]),
                symbol=str(data.get("symbol", "")),
                justification=str(data.get("justification", "")),
            )
        except KeyError as exc:
            raise ReproError(
                f"baseline entry missing field {exc}: {data!r}"
            ) from exc


@dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: List[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        entries: Dict[str, BaselineEntry] = {}
        for f in findings:
            fp = f.fingerprint()
            entries.setdefault(fp, BaselineEntry(
                fingerprint=fp,
                rule=f.rule,
                path=f.path,
                symbol=f.symbol,
                justification=justification,
            ))
        return cls(entries=list(entries.values()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        file_path = Path(path)
        try:
            data = json.loads(file_path.read_text())
        except OSError as exc:
            raise ReproError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
            raise ReproError(
                f"{path} is not an analysis baseline "
                f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
            )
        if data.get("version") != BASELINE_VERSION:
            raise ReproError(
                f"unsupported baseline version {data.get('version')!r}"
            )
        raw_entries = data.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ReproError(f"baseline {path} entries must be a list")
        return cls(entries=[BaselineEntry.from_dict(e) for e in raw_entries])

    def save(self, path: Union[str, Path]) -> Path:
        file_path = Path(path)
        payload = {
            "schema": BASELINE_SCHEMA,
            "version": BASELINE_VERSION,
            "entries": [e.to_dict() for e in sorted(
                self.entries, key=lambda e: (e.path, e.rule, e.symbol)
            )],
        }
        # The committed baseline is a durable artifact: a crash mid-save
        # must not leave a torn file that fails every later run (REPRO230).
        atomic_write_text(file_path, json.dumps(payload, indent=1) + "\n")
        return file_path

    def fingerprints(self) -> Dict[str, BaselineEntry]:
        return {e.fingerprint: e for e in self.entries}

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (new, baselined) + stale entries."""
        known = self.fingerprints()
        new: List[Finding] = []
        baselined: List[Finding] = []
        matched: set = set()
        for finding in findings:
            fp = finding.fingerprint()
            if fp in known:
                baselined.append(finding)
                matched.add(fp)
            else:
                new.append(finding)
        stale = [e for e in self.entries if e.fingerprint not in matched]
        return new, baselined, stale


def find_default_baseline(start: Union[str, Path]) -> Union[Path, None]:
    """Walk up from ``start`` looking for the conventional baseline file."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


__all__ = [
    "BASELINE_SCHEMA",
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "find_default_baseline",
]
